//! Oracle-differential proof that the optimization pipeline is
//! semantics-preserving: random operation programs must produce
//! bitwise-identical observable state with all passes enabled, each
//! pass enabled alone, and every pass disabled — and each of those
//! must match blocking (eager) execution, which never consults the
//! optimizer at all.
//!
//! The program generator is deliberately biased toward the rewrites
//! under proof: a small operand pool makes duplicate expressions (CSE
//! bait) common, an initially-empty slot doubles as a known-empty
//! operand and an empty mask (no-op folding bait), identity `apply`
//! and dropped temporaries bait the no-op and liveness passes, and
//! mask/accum/replace combinations guard the non-plain paths that the
//! passes must refuse to touch.

use proptest::prelude::*;

use pygb::{
    apply, reduce, Accumulator, BinaryOp, DType, DynScalar, EdgeUpdate, Matrix, MergePolicy,
    StreamingMatrix, UnaryOp, Vector,
};
use pygb_algorithms as algos;
use pygb_runtime::{reset_passes, set_passes, PassKind};

const N: usize = 8;
const POOL: usize = 4;
const OPS: [&str; 4] = ["Plus", "Times", "Min", "Max"];
const ACCUMS: [&str; 2] = ["Plus", "Min"];

/// Restore the ambient `PYGB_PASSES` configuration on drop, so a
/// panicking proptest case cannot leak an override into later tests.
struct PassScope;

impl PassScope {
    fn new(passes: &[PassKind]) -> PassScope {
        set_passes(passes);
        PassScope
    }
}

impl Drop for PassScope {
    fn drop(&mut self) {
        reset_passes();
    }
}

/// Every optimizer configuration under proof.
fn optimizer_configs() -> Vec<(&'static str, Vec<PassKind>)> {
    vec![
        (
            "all",
            vec![
                PassKind::Dce,
                PassKind::Cse,
                PassKind::Sparsity,
                PassKind::Noop,
            ],
        ),
        ("dce-only", vec![PassKind::Dce]),
        ("cse-only", vec![PassKind::Cse]),
        ("sparsity-only", vec![PassKind::Sparsity]),
        ("noop-only", vec![PassKind::Noop]),
        ("off", vec![]),
    ]
}

/// One random program step, decoded from plain integers.
#[derive(Clone, Debug)]
struct Step {
    /// 0 = eWise add, 1 = eWise mult, 2 = bound apply, 3 = copy,
    /// 4 = reduce, 5 = identity apply, 6 = dropped temporary.
    kind: usize,
    target: usize,
    a: usize,
    b: usize,
    op: usize,
    /// 0 = no mask, 1 = mask, 2 = complemented mask.
    mask_mode: usize,
    mask: usize,
    /// 0 = plain assign, 1.. = accum_assign with `ACCUMS[accum - 1]`.
    accum: usize,
    replace: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        (0usize..7, 0usize..POOL, 0usize..POOL, 0usize..POOL),
        (0usize..OPS.len(), 0usize..3, 0usize..POOL),
        (0usize..=ACCUMS.len(), any::<bool>()),
    )
        .prop_map(
            |((kind, target, a, b), (op, mask_mode, mask), (accum, replace))| Step {
                kind,
                target,
                a,
                b,
                op,
                mask_mode,
                mask,
                accum,
                replace,
            },
        )
}

/// Deterministic mixed-dtype pool: dense int32, sparse int64, dense
/// fp64, and an initially *empty* fp64 slot. The empty slot is the
/// no-op pass's bait: used as an operand it triggers the known-empty
/// folds, used as a mask it triggers the empty-mask folds — until some
/// step writes to it, after which the gates must see it as non-empty.
fn init_pool() -> Vec<Vector> {
    let mut v0 = Vector::new(N, DType::Int32);
    let mut v1 = Vector::new(N, DType::Int64);
    let mut v2 = Vector::new(N, DType::Fp64);
    let v3 = Vector::new(N, DType::Fp64);
    for i in 0..N {
        v0.set(i, i as i32 + 1).unwrap();
        if i % 2 == 0 {
            v1.set(i, (i as i64) * 10 - 30).unwrap();
        }
        v2.set(i, i as f64 * 0.5 - 1.0).unwrap();
    }
    vec![v0, v1, v2, v3]
}

fn apply_step(pool: &mut [Vector], s: &Step) -> pygb::Result<Option<DynScalar>> {
    if s.kind == 4 {
        return reduce(&pool[s.a]).map(Some);
    }
    if s.kind == 6 {
        // A result nobody ever observes: liveness bait. Blocking mode
        // computes and discards it; the DCE pass must elide it without
        // perturbing anything the program *does* observe.
        let _op = BinaryOp::new(OPS[s.op])?.enter();
        let _dead = Vector::from_expr(&pool[s.a] + &pool[s.b])?;
        return Ok(None);
    }
    let a = pool[s.a].clone();
    let b = pool[s.b].clone();
    let mask = pool[s.mask].clone();
    let expr_op = BinaryOp::new(OPS[s.op])?;
    let target = &mut pool[s.target];

    macro_rules! emit {
        ($expr:expr) => {{
            let _op_guard = expr_op.enter();
            match (s.mask_mode, s.accum) {
                (0, 0) => target.no_mask().assign($expr)?,
                (0, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    target.no_mask().accum_assign($expr)?
                }
                (1, 0) if s.replace => target.masked(&mask).replace().assign($expr)?,
                (1, 0) => target.masked(&mask).assign($expr)?,
                (1, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target.masked(&mask).replace().accum_assign($expr)?
                    } else {
                        target.masked(&mask).accum_assign($expr)?
                    }
                }
                (_, 0) if s.replace => target.masked_complement(&mask).replace().assign($expr)?,
                (_, 0) => target.masked_complement(&mask).assign($expr)?,
                (_, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target
                            .masked_complement(&mask)
                            .replace()
                            .accum_assign($expr)?
                    } else {
                        target.masked_complement(&mask).accum_assign($expr)?
                    }
                }
            }
        }};
    }

    match s.kind {
        0 => emit!(&a + &b),
        1 => emit!(&a * &b),
        2 => {
            let unary = UnaryOp::bound("Plus", 3.0)?;
            let _u = unary.enter();
            emit!(apply(&a))
        }
        5 => {
            // Identity apply: the no-op pass may rewrite the plain
            // same-dtype shape of this into a pure alias.
            let unary = UnaryOp::new("Identity")?;
            let _u = unary.enter();
            emit!(apply(&a))
        }
        _ => emit!(&a),
    }
    Ok(None)
}

/// Run a program under one configuration. `passes: None` is the
/// blocking oracle; `Some(passes)` runs nonblocking with exactly that
/// pipeline. Returns the full observable state: the settled pool and
/// every reduction result.
fn run_program(prog: &[Step], passes: Option<&[PassKind]>) -> (Vec<Vector>, Vec<DynScalar>) {
    let _scope = passes.map(PassScope::new);
    let mut pool = init_pool();
    let mut reductions = Vec::new();
    {
        let _guard = passes.map(|_| pygb_runtime::nonblocking().unwrap());
        for s in prog {
            if let Some(r) = apply_step(&mut pool, s).unwrap() {
                reductions.push(r);
            }
        }
        if passes.is_some() {
            pygb_runtime::flush().unwrap();
        }
    }
    for v in &mut pool {
        v.settle().unwrap();
    }
    (pool, reductions)
}

proptest! {
    /// The load-bearing proof: for random programs, every optimizer
    /// configuration is bit-identical to the blocking oracle (and thus
    /// to every other configuration).
    #[test]
    fn every_pass_config_matches_the_blocking_oracle(
        prog in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        let (o_pool, o_red) = run_program(&prog, None);
        for (name, passes) in optimizer_configs() {
            let (pool, red) = run_program(&prog, Some(&passes));
            for (i, (o, p)) in o_pool.iter().zip(&pool).enumerate() {
                prop_assert_eq!(o.dtype(), p.dtype(), "config {} slot {} dtype", name, i);
                prop_assert_eq!(
                    o.extract_pairs(),
                    p.extract_pairs(),
                    "config {} slot {}",
                    name,
                    i
                );
            }
            prop_assert_eq!(&o_red, &red, "config {} reductions", name);
        }
    }

    /// Duplicated expressions — the CSE pass's prime target — assigned
    /// to *different* targets must still leave both targets correct
    /// under every configuration, including when one of the duplicates
    /// is subsequently read inside the scope (a flush-on-read through
    /// an alias-resolved placeholder).
    #[test]
    fn duplicate_expressions_stay_independent_after_merging(
        operands in (0usize..POOL, 0usize..POOL),
        op in 0usize..OPS.len(),
        read_first in any::<bool>(),
    ) {
        let (ai, bi) = operands;
        type Pairs = Vec<(usize, DynScalar)>;
        let run = |passes: Option<&[PassKind]>| -> (Pairs, Pairs) {
            let _scope = passes.map(PassScope::new);
            let pool = init_pool();
            let mut x = Vector::new(N, DType::Fp64);
            let mut y = Vector::new(N, DType::Fp64);
            {
                let _guard = passes.map(|_| pygb_runtime::nonblocking().unwrap());
                let _op = BinaryOp::new(OPS[op]).unwrap().enter();
                x.no_mask().assign(&pool[ai] + &pool[bi]).unwrap();
                y.no_mask().assign(&pool[ai] + &pool[bi]).unwrap();
                if read_first {
                    // Force a flush mid-scope through one duplicate.
                    let _ = x.nvals();
                }
            }
            x.settle().unwrap();
            y.settle().unwrap();
            (x.extract_pairs(), y.extract_pairs())
        };
        let oracle = run(None);
        for (name, passes) in optimizer_configs() {
            prop_assert_eq!(&run(Some(&passes)), &oracle, "config {}", name);
        }
    }

    /// Streamed-graph coverage: a masked SpMV over a mid-stream
    /// `StreamingMatrix::snapshot()` (taken while deletes and
    /// overwrites are still pending in the delta) answers identically
    /// under every optimizer configuration.
    #[test]
    fn streamed_snapshot_spmv_matches_across_configs(
        edges in proptest::collection::vec((0usize..N, 0usize..N, 1i64..6), 1..16),
        updates in proptest::collection::vec(
            (0usize..N, 0usize..N, (0u8..4, 1i64..6).prop_map(|(k, v)| (k > 0).then_some(v))),
            0..10),
        masked in any::<bool>(),
    ) {
        let triples: Vec<(usize, usize, DynScalar)> = edges
            .iter()
            .map(|&(i, j, v)| (i, j, DynScalar::Fp64(v as f64)))
            .collect();
        let base = Matrix::from_triples_dyn(N, N, &triples, Some(DType::Fp64)).unwrap();
        let mut stream = StreamingMatrix::with_policy(
            &base,
            MergePolicy { max_pending: 4, ..MergePolicy::default() },
        )
        .unwrap();
        let batch: Vec<EdgeUpdate> = updates
            .iter()
            .map(|&(i, j, v)| match v {
                Some(v) => EdgeUpdate::add(i, j, DynScalar::Fp64(v as f64)),
                None => EdgeUpdate::del(i, j),
            })
            .collect();
        stream.update_edges(&batch).unwrap();
        let snap = stream.snapshot();

        let mut x = Vector::new(N, DType::Fp64);
        for i in 0..N {
            x.set(i, (i + 1) as f64).unwrap();
        }
        let mask = {
            let mut m = Vector::new(N, DType::Bool);
            for i in (0..N).step_by(2) {
                m.set(i, true).unwrap();
            }
            m
        };

        let run = |passes: Option<&[PassKind]>| -> Vec<(usize, DynScalar)> {
            let _scope = passes.map(PassScope::new);
            let mut y = Vector::new(N, DType::Fp64);
            {
                let _guard = passes.map(|_| pygb_runtime::nonblocking().unwrap());
                let _sr = pygb::ArithmeticSemiring.enter();
                let t = Vector::from_expr(snap.t().mxv(&x)).unwrap();
                if masked {
                    y.masked(&mask).assign(&t).unwrap();
                } else {
                    y.no_mask().assign(&t).unwrap();
                }
                if passes.is_some() {
                    pygb_runtime::flush().unwrap();
                }
            }
            y.settle().unwrap();
            y.extract_pairs()
        };
        let oracle = run(None);
        for (name, passes) in optimizer_configs() {
            prop_assert_eq!(&run(Some(&passes)), &oracle, "config {}", name);
        }
    }
}

/// Build a small deterministic strongly-connected digraph: a ring with
/// forward chords, enough structure for PageRank to take several
/// iterations.
fn ring_with_chords(n: usize) -> Matrix {
    let mut triples = Vec::new();
    for i in 0..n {
        triples.push((i, (i + 1) % n, DynScalar::Fp64(1.0)));
        if i % 3 == 0 {
            triples.push((i, (i + 4) % n, DynScalar::Fp64(1.0)));
        }
    }
    Matrix::from_triples_dyn(n, n, &triples, Some(DType::Fp64)).unwrap()
}

/// Iterative f64 workload: PageRank's damped power iteration runs the
/// same number of iterations and lands on ranks within tolerance under
/// every configuration. (Ranks pass through row normalization and a
/// convergence loop, so the comparison is tolerance-based, not
/// bit-exact — the discrete workloads above carry the exactness
/// proof.)
#[test]
fn pagerank_agrees_across_pass_configs_within_tolerance() {
    let graph = ring_with_chords(24);
    let opts = algos::PageRankOptions {
        max_iters: 200,
        ..algos::PageRankOptions::default()
    };
    let (oracle, oracle_iters) = {
        let _scope = PassScope::new(&[]);
        algos::pagerank_nonblocking(&graph, opts).unwrap()
    };
    for (name, passes) in optimizer_configs() {
        let _scope = PassScope::new(&passes);
        let (ranks, iters) = algos::pagerank_nonblocking(&graph, opts).unwrap();
        assert_eq!(iters, oracle_iters, "config {name} iteration count");
        for i in 0..24 {
            let a = oracle.get(i).unwrap().as_f64();
            let b = ranks.get(i).unwrap().as_f64();
            assert!(
                (a - b).abs() <= 1e-12,
                "config {name} rank[{i}]: {a} vs {b}"
            );
        }
    }
}

/// BFS (blocking-vs-nonblocking discrete oracle) stays exact under
/// every configuration — the frontier loop leans on masked assigns,
/// replace, and rule-3 fusion, all of which the passes must leave
/// semantically untouched.
#[test]
fn bfs_levels_are_bit_exact_across_pass_configs() {
    let graph = ring_with_chords(24);
    let oracle = {
        let _scope = PassScope::new(&[]);
        algos::bfs_nonblocking(&graph, 0).unwrap().extract_pairs()
    };
    for (name, passes) in optimizer_configs() {
        let _scope = PassScope::new(&passes);
        let levels = algos::bfs_nonblocking(&graph, 0).unwrap().extract_pairs();
        assert_eq!(levels, oracle, "config {name}");
    }
}
