//! Section V's type-inference rules through the full stack: "When two
//! containers of different types are combined in a binary operation, an
//! upcast will be performed automatically according to C++'s upcasting
//! rules, unless the output type is specified by the user."

use pygb::dtype::ALL_DTYPES;
use pygb::prelude::*;

#[test]
fn fresh_output_takes_promoted_dtype() {
    // C = A + B with mixed dtypes: result dtype = promote(a, b).
    let a = Vector::from_dense(&[1i32, 2]);
    let b = Vector::from_dense(&[0.5f64, 0.5]);
    let w = Vector::from_expr(&a + &b).unwrap();
    assert_eq!(w.dtype(), DType::Fp64);
    assert_eq!(w.get(0).unwrap().as_f64(), 1.5);
}

#[test]
fn existing_output_dtype_wins() {
    // "unless the output type is specified by the user": assigning into
    // an int32 container computes in int32.
    let a = Vector::from_dense(&[1.9f64, 2.9]);
    let b = Vector::from_dense(&[0.2f64, 0.2]);
    let mut w = Vector::new(2, DType::Int32);
    w.no_mask().assign(&a + &b).unwrap();
    assert_eq!(w.dtype(), DType::Int32);
    // Inputs cast to int32 *before* the op (C semantics): 1 + 0 = 1.
    assert_eq!(w.get(0).unwrap().as_i64(), 1);
}

#[test]
fn promotion_matrix_rules() {
    // Spot-check the C++ usual-arithmetic-conversion lattice.
    let cases = [
        (DType::Int8, DType::Int32, DType::Int32),
        (DType::UInt8, DType::Int64, DType::Int64),
        (DType::Int32, DType::UInt32, DType::UInt32),
        (DType::Int64, DType::Fp32, DType::Fp32),
        (DType::Bool, DType::UInt16, DType::UInt16),
        (DType::Fp32, DType::Fp64, DType::Fp64),
    ];
    for (a, b, expect) in cases {
        assert_eq!(DType::promote(a, b), expect, "{a} + {b}");
        assert_eq!(DType::promote(b, a), expect, "commutative {a} + {b}");
    }
}

#[test]
fn promotion_drives_expression_dtype_for_all_pairs() {
    for a_dt in ALL_DTYPES {
        for b_dt in ALL_DTYPES {
            let a = Vector::new(2, a_dt);
            let b = Vector::new(2, b_dt);
            let expr = &a + &b;
            assert_eq!(
                expr.result_dtype(),
                DType::promote(a_dt, b_dt),
                "{a_dt} + {b_dt}"
            );
        }
    }
}

#[test]
fn mxv_promotes_matrix_and_vector() {
    let m = Matrix::from_dense(&[vec![2i16, 0], vec![0, 2]]).unwrap();
    let u = Vector::from_dense(&[1.5f32, 2.5]);
    let _sr = ArithmeticSemiring.enter();
    let w = Vector::from_expr(m.mxv(&u)).unwrap();
    assert_eq!(w.dtype(), DType::Fp32);
    assert_eq!(w.get(0).unwrap().as_f64(), 3.0);
}

#[test]
fn mask_dtype_is_independent() {
    // Masks coerce to bool whatever their dtype; they do not affect the
    // compute dtype.
    let src = Vector::from_dense(&[7.5f64, 7.5]);
    let mask = Vector::from_dense(&[1i8, 0]);
    let mut w = Vector::new(2, DType::Fp64);
    w.masked(&mask).assign(&src).unwrap();
    assert_eq!(w.dtype(), DType::Fp64);
    assert_eq!(w.nvals(), 1);
    assert_eq!(w.get(0).unwrap().as_f64(), 7.5);
}

#[test]
fn scalar_assignment_casts_into_container_dtype() {
    let mut w = Vector::new(3, DType::UInt8);
    w.no_mask().slice(..).assign_scalar(300i64).unwrap(); // wraps: 300 % 256
    assert_eq!(w.get(0).unwrap().as_i64(), 44);

    let mut f = Vector::new(1, DType::Fp32);
    f.no_mask().slice(..).assign_scalar(0.5f64).unwrap();
    assert_eq!(f.get(0).unwrap().as_f64(), 0.5);
}

#[test]
fn default_python_dtypes() {
    // Section V: unspecified dtypes fall back to 64-bit ints / floats.
    let ints = [(0usize, 0usize, DynScalar::from(1i64))];
    assert_eq!(
        Matrix::from_triples_dyn(1, 1, &ints, None).unwrap().dtype(),
        DType::Int64
    );
    let floats = [(0usize, DynScalar::from(1.0f64))];
    assert_eq!(
        Vector::from_pairs_dyn(1, &floats, None).unwrap().dtype(),
        DType::Fp64
    );
}

#[test]
fn cross_dtype_bfs_pattern() {
    // BFS works regardless of the edge dtype because the DSL upcasts
    // into the frontier's bool domain through truthiness.
    use pygb_algorithms::bfs_dsl_loops;
    // Weight 1.0 survives every cast truthy (0.25 would truncate to a
    // stored — falsy — 0 in integer dtypes, correctly breaking the
    // path; see `DynScalar::cast`).
    let edges = [(0usize, 1usize, 1.0f64), (1, 2, 1.0)];
    let g = Matrix::from_triples(3, 3, edges).unwrap();
    for dtype in [DType::Fp64, DType::Fp32, DType::Int64, DType::Bool] {
        let levels = bfs_dsl_loops(&g.cast(dtype), 0).unwrap();
        assert_eq!(levels.get(2).map(|v| v.as_i64()), Some(3), "{dtype}");
    }
}

#[test]
fn bool_degrades_gracefully_in_arithmetic() {
    // bool × bool in an arithmetic context acts as the Boolean ring.
    let a = Vector::from_dense(&[true, true, false]);
    let b = Vector::from_dense(&[true, false, false]);
    let w = Vector::from_expr(&a + &b).unwrap();
    assert_eq!(w.dtype(), DType::Bool);
    assert_eq!(w.get(0).unwrap().as_i64(), 1); // true OR true
    assert_eq!(w.get(1).unwrap().as_i64(), 1);
    assert_eq!(w.get(2).unwrap().as_i64(), 0);
}
