//! Integration tests for the op-lifecycle observability layer
//! (`pygb-obs`, DESIGN.md §4f): span nesting across the whole
//! lifecycle, Chrome trace-event export shape and determinism,
//! histogram/counter agreement, plan vs trace-report node identity,
//! and the zero-footprint disabled mode.
//!
//! The tracing flag, event buffer, and metrics registry are
//! process-global, so every test here serializes on one lock and
//! restores the disabled state before releasing it.

use std::sync::{Mutex, MutexGuard};

use pygb::prelude::*;
use pygb_obs::Cat;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Take the observability lock and reset collection state.
fn obs_guard() -> MutexGuard<'static, ()> {
    let g = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pygb_obs::disable();
    pygb_obs::clear_events();
    g
}

fn dense(vals: &[f64]) -> Vector {
    let mut v = Vector::new(vals.len(), DType::Fp64);
    for (i, &x) in vals.iter().enumerate() {
        v.set(i, x).unwrap();
    }
    v
}

fn small_graph() -> Matrix {
    Matrix::from_triples(
        5,
        5,
        vec![
            (0usize, 1usize, 1.0f64),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 4, 4.0),
            (4, 0, 5.0),
        ],
    )
    .unwrap()
}

/// One deferred SpMV flushed on scope exit, with tracing on.
fn traced_mxv_flush() {
    let g = small_graph();
    let u = dense(&[1.0, 1.0, 1.0, 1.0, 1.0]);
    let mut w = Vector::new(5, DType::Fp64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = ArithmeticSemiring.enter();
        w.no_mask().assign(g.mxv(&u)).unwrap();
    }
    assert!(w.nvals() > 0);
}

/// The whole lifecycle nests: flush ⊇ wave ⊇ exec ⊇ kernel, by time
/// containment on one thread (single-node waves execute inline).
#[test]
fn lifecycle_spans_nest_flush_wave_exec_kernel() {
    let _g = obs_guard();
    traced_mxv_flush(); // warm the JIT so the traced run is steady-state
    pygb_obs::enable();
    pygb_obs::clear_events();
    traced_mxv_flush();
    pygb_obs::disable();

    let evs = pygb_obs::events();
    let find = |cat: Cat| {
        evs.iter()
            .find(|e| e.cat == cat)
            .unwrap_or_else(|| panic!("no {} span", cat.name()))
    };
    let flush = find(Cat::Flush);
    let wave = find(Cat::Wave);
    let exec = find(Cat::Exec);
    let kernel = find(Cat::Kernel);
    let contains = |outer: &pygb_obs::SpanEvent, inner: &pygb_obs::SpanEvent| {
        outer.ts_ns <= inner.ts_ns && inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns
    };
    assert!(contains(flush, wave), "wave inside flush");
    assert!(contains(wave, exec), "exec inside wave");
    assert!(contains(exec, kernel), "kernel inside exec");
    assert_eq!(wave.name, "wave/0");
    assert!(exec.name.starts_with("exec/n0 "), "{}", exec.name);
    assert!(kernel.dur_ns > 0, "kernel span must measure nonzero time");

    // Enqueue/analyze/fuse phases were traced too, and all precede the
    // kernel execution.
    for cat in [Cat::Analyze, Cat::Enqueue, Cat::Fuse] {
        assert!(find(cat).ts_ns <= kernel.ts_ns);
    }
}

/// The Chrome export is schema-valid JSON: X/M events only, complete
/// spans with positive fractional-microsecond durations.
#[test]
fn chrome_trace_export_is_schema_valid() {
    let _g = obs_guard();
    traced_mxv_flush();
    pygb_obs::enable();
    pygb_obs::clear_events();
    traced_mxv_flush();
    pygb_obs::disable();

    let json = pygb_obs::chrome_trace_json();
    let doc = pygb_jit::json::parse(&json).expect("export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut saw_kernel = false;
    for ev in events {
        match ev.get("ph").and_then(|v| v.as_str()) {
            Some("M") => {
                assert_eq!(ev.get("name").and_then(|v| v.as_str()), Some("thread_name"));
            }
            Some("X") => {
                assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
                let cat = ev.get("cat").and_then(|v| v.as_str()).expect("cat");
                let dur = match ev.get("dur") {
                    Some(pygb_jit::json::Value::Number(n)) => *n,
                    other => panic!("dur must be a number, got {other:?}"),
                };
                assert!(dur > 0.0, "complete spans keep positive dur");
                if cat == "kernel" {
                    saw_kernel = true;
                }
            }
            other => panic!("unexpected ph: {other:?}"),
        }
    }
    assert!(saw_kernel, "every executed kernel exports a complete span");
}

/// Under a fixed-order single-thread flush, two identical runs emit
/// the same event sequence — the export is deterministic up to
/// timestamps.
#[test]
fn trace_is_deterministic_for_identical_single_thread_runs() {
    let _g = obs_guard();
    traced_mxv_flush(); // warm: JIT compiles must not differ run-to-run
    let mut sequences = Vec::new();
    for _ in 0..2 {
        pygb_obs::enable();
        pygb_obs::clear_events();
        traced_mxv_flush();
        pygb_obs::disable();
        let seq: Vec<(String, String)> = pygb_obs::events()
            .iter()
            .map(|e| (e.cat.name().to_string(), e.name.clone()))
            .collect();
        sequences.push(seq);
    }
    assert!(!sequences[0].is_empty());
    assert_eq!(
        sequences[0], sequences[1],
        "identical runs must trace identical (cat, name) sequences"
    );
}

/// Acceptance criterion: the per-kernel histogram counts in the
/// metrics snapshot equal the JIT kernel-selection counters for the
/// same run — the two observation points (gbtl hook vs core dispatch)
/// agree on every SpMV.
#[test]
fn kernel_histograms_match_selection_counters() {
    let _g = obs_guard();
    traced_mxv_flush(); // ensure the global runtime (and its "jit" source) exists
    pygb_obs::enable();
    let before = pygb_obs::registry().snapshot();
    const RUNS: u64 = 3;
    for _ in 0..RUNS {
        traced_mxv_flush();
    }
    let after = pygb_obs::registry().snapshot();
    pygb_obs::disable();

    let spmv_families = ["pull", "masked_pull", "push", "masked_push"];
    let hist_total: u64 = spmv_families
        .iter()
        .map(|f| {
            let name = format!("kernel/mxv/{f}");
            after.histogram_count(&name) - before.histogram_count(&name)
        })
        .sum();
    let sel_total: u64 = spmv_families
        .iter()
        .map(|f| {
            let name = format!("jit/sel_{f}");
            after.counter(&name) - before.counter(&name)
        })
        .sum();
    assert_eq!(hist_total, RUNS, "one SpMV kernel execution per run");
    assert_eq!(
        hist_total, sel_total,
        "histogram counts must equal kernel-selection counters"
    );
    // And per family, not just in aggregate.
    for f in spmv_families {
        let h = format!("kernel/mxv/{f}");
        let c = format!("jit/sel_{f}");
        assert_eq!(
            after.histogram_count(&h) - before.histogram_count(&h),
            after.counter(&c) - before.counter(&c),
            "family {f}"
        );
    }
}

/// Histogram bucket boundaries are fixed powers of two — snapshots
/// taken at different times bucket the same value identically.
#[test]
fn histogram_bucket_boundaries_are_stable() {
    let _g = obs_guard();
    pygb_obs::enable();
    let h = pygb_obs::registry().histogram("test/stable_buckets");
    h.record(1000);
    h.record(100_000);
    let snap1 = h.snapshot();
    h.record(1000);
    h.record(100_000);
    let snap2 = h.snapshot();
    pygb_obs::disable();
    let bounds1: Vec<u64> = snap1.buckets.iter().map(|&(b, _)| b).collect();
    let bounds2: Vec<u64> = snap2.buckets.iter().map(|&(b, _)| b).collect();
    assert_eq!(bounds1, bounds2, "bucket boundaries must not move");
    for &b in &bounds1 {
        assert!(b.is_power_of_two(), "bound {b} must be a power of two");
    }
    assert_eq!(snap2.count, 2 * snap1.count);
}

/// plan() and trace_report() agree on node identity: the ids the plan
/// shows before the flush are the ids the report shows after it, with
/// the same kernel names for unfused nodes.
#[test]
fn plan_and_trace_report_share_node_ids() {
    let _g = obs_guard();
    traced_mxv_flush(); // warm
    pygb_obs::enable();
    let g = small_graph();
    let u = dense(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    let v = dense(&[0.5, 0.5, 0.5, 0.5, 0.5]);
    let mut w = Vector::new(5, DType::Fp64);
    let mut z = Vector::new(5, DType::Fp64);
    let plan;
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = ArithmeticSemiring.enter();
        w.no_mask().assign(g.mxv(&u)).unwrap(); // n0: independent SpMV
        z.no_mask().assign(&u + &v).unwrap(); // n1: independent eWise
        plan = pygb_runtime::plan();
    }
    let report = pygb_runtime::trace_report();
    pygb_obs::disable();

    assert_eq!(plan.nodes.len(), 2);
    assert_eq!(report.nodes.len(), 2, "{report}");
    for (p, r) in plan.nodes.iter().zip(report.nodes.iter()) {
        assert_eq!(p.id, r.id, "plan and report disagree on node identity");
        assert_eq!(p.id.to_string(), r.id.to_string());
        assert_eq!(p.kernel, r.kernel, "unfused node keeps its kernel");
        assert_eq!(p.op, r.op, "same op rendering in both views");
        assert!(r.ns > 0, "executed node carries a measured time");
    }
    // The rendered forms use the same `n<id>` token.
    let plan_str = plan.to_string();
    let report_str = report.to_string();
    for p in &plan.nodes {
        let tok = format!("{} ", p.id);
        assert!(plan_str.contains(&tok), "{plan_str}");
        assert!(report_str.contains(&tok), "{report_str}");
    }
    // Exec span labels carry the same ids.
    let evs = pygb_obs::events();
    for r in &report.nodes {
        let prefix = format!("exec/{} ", r.id);
        assert!(
            evs.iter()
                .any(|e| e.cat == Cat::Exec && e.name.starts_with(&prefix)),
            "no exec span for {}",
            r.id
        );
    }
}

/// Ids restart at n0 once a DAG drains — per-scope numbering is
/// deterministic, matching what a fresh plan shows.
#[test]
fn node_ids_reset_between_scopes() {
    let _g = obs_guard();
    pygb_obs::enable();
    for _ in 0..2 {
        let u = dense(&[1.0, 2.0]);
        let mut w = Vector::new(2, DType::Fp64);
        let _nb = pygb_runtime::nonblocking().unwrap();
        w.no_mask().assign(&u + &u).unwrap();
        let plan = pygb_runtime::plan();
        assert_eq!(plan.nodes[0].id, pygb_runtime::NodeId(0));
    }
    pygb_obs::disable();
}

/// Disabled mode is inert: no events, an empty trace report, and
/// histograms do not move.
#[test]
fn disabled_mode_records_nothing() {
    let _g = obs_guard();
    let before = pygb_obs::registry().snapshot();
    traced_mxv_flush();
    let after = pygb_obs::registry().snapshot();
    assert!(pygb_obs::events().is_empty(), "no spans while disabled");
    assert!(
        pygb_runtime::trace_report().nodes.is_empty(),
        "no report while disabled"
    );
    for (name, h) in &after.histograms {
        if let Some(prev) = before.histograms.get(name) {
            assert_eq!(h.count, prev.count, "histogram {name} moved while disabled");
        } else {
            assert_eq!(h.count, 0, "histogram {name} appeared while disabled");
        }
    }
}

/// The legacy JitStats snapshot facade and the unified registry agree:
/// every jit/* counter in the registry equals the corresponding
/// snapshot field.
#[test]
fn jit_stats_facade_matches_registry() {
    let _g = obs_guard();
    traced_mxv_flush(); // ensure the global runtime is up and has traffic
    let stats = pygb::runtime().cache().stats().snapshot();
    let reg = pygb_obs::registry().snapshot();
    let pairs: [(&str, u64); 8] = [
        ("jit/invocations", stats.invocations),
        ("jit/compiles", stats.compiles),
        ("jit/memory_hits", stats.memory_hits),
        ("jit/deferred_ops", stats.deferred_ops),
        ("jit/fused_ops", stats.fused_ops),
        ("jit/elided_ops", stats.elided_ops),
        ("jit/refused_fusions", stats.refused_fusions),
        ("jit/sel_pull", stats.sel_pull),
    ];
    for (key, want) in pairs {
        assert_eq!(reg.counter(key), want, "{key}");
    }
    // The flat JSON form of the snapshot parses and carries them too.
    let doc = pygb_jit::json::parse(&reg.to_json()).expect("snapshot JSON parses");
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("jit/invocations"))
            .and_then(|v| v.as_u64()),
        Some(stats.invocations)
    );
}
