//! Property-based equivalence: random operation programs produce
//! bitwise-identical containers whether executed eagerly (blocking
//! mode) or deferred through the nonblocking op-DAG with fusion.
//!
//! Programs draw from a pool of mixed-dtype vectors and combine eWise
//! add/mult under five operators, `apply`, plain copy-assignment, and
//! reductions, each optionally under a (complemented) mask, an
//! accumulator, and the replace flag — so every fusion rule and the
//! mask/accum/replace write path get exercised against the blocking
//! reference, including dtype promotion.

use proptest::prelude::*;

use pygb::{apply, reduce, Accumulator, BinaryOp, DType, DynScalar, UnaryOp, Vector};

const N: usize = 8;
const POOL: usize = 4;
const OPS: [&str; 5] = ["Plus", "Times", "Minus", "Min", "Max"];
const ACCUMS: [&str; 3] = ["Plus", "Min", "Second"];

/// One random program step, decoded from plain integers so the
/// strategy stays a nest of small tuples.
#[derive(Clone, Debug)]
struct Step {
    /// 0 = eWise add, 1 = eWise mult, 2 = apply, 3 = copy, 4 = reduce.
    kind: usize,
    target: usize,
    a: usize,
    b: usize,
    op: usize,
    /// 0 = no mask, 1 = mask, 2 = complemented mask.
    mask_mode: usize,
    mask: usize,
    /// 0 = plain assign, 1.. = accum_assign with `ACCUMS[accum - 1]`.
    accum: usize,
    replace: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        (0usize..5, 0usize..POOL, 0usize..POOL, 0usize..POOL),
        (0usize..OPS.len(), 0usize..3, 0usize..POOL),
        (0usize..=ACCUMS.len(), any::<bool>()),
    )
        .prop_map(
            |((kind, target, a, b), (op, mask_mode, mask), (accum, replace))| Step {
                kind,
                target,
                a,
                b,
                op,
                mask_mode,
                mask,
                accum,
                replace,
            },
        )
}

/// Deterministic mixed-dtype starting pool: dense int32, sparse int64,
/// dense fp64, and an initially empty fp64 slot.
fn init_pool() -> Vec<Vector> {
    let mut v0 = Vector::new(N, DType::Int32);
    let mut v1 = Vector::new(N, DType::Int64);
    let mut v2 = Vector::new(N, DType::Fp64);
    let v3 = Vector::new(N, DType::Fp64);
    for i in 0..N {
        v0.set(i, i as i32 + 1).unwrap();
        if i % 2 == 0 {
            v1.set(i, (i as i64) * 10 - 30).unwrap();
        }
        v2.set(i, i as f64 * 0.5 - 1.0).unwrap();
    }
    vec![v0, v1, v2, v3]
}

fn apply_step(pool: &mut [Vector], s: &Step) -> pygb::Result<Option<DynScalar>> {
    if s.kind == 4 {
        // Reduction (default Plus monoid); a flush point in
        // nonblocking mode, possibly fused with its producer.
        return reduce(&pool[s.a]).map(Some);
    }
    // Snapshot handles so a step may read its own target (both modes
    // then see the pre-step value).
    let a = pool[s.a].clone();
    let b = pool[s.b].clone();
    let mask = pool[s.mask].clone();
    let expr_op = BinaryOp::new(OPS[s.op])?;
    let target = &mut pool[s.target];

    // The builder chain isn't nameable as one type, so each shape is
    // spelled out; `go` runs with the operator contexts entered.
    macro_rules! emit {
        ($expr:expr) => {{
            let _op_guard = expr_op.enter();
            match (s.mask_mode, s.accum) {
                (0, 0) => target.no_mask().assign($expr)?,
                (0, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    target.no_mask().accum_assign($expr)?
                }
                (1, 0) if s.replace => target.masked(&mask).replace().assign($expr)?,
                (1, 0) => target.masked(&mask).assign($expr)?,
                (1, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target.masked(&mask).replace().accum_assign($expr)?
                    } else {
                        target.masked(&mask).accum_assign($expr)?
                    }
                }
                (_, 0) if s.replace => target.masked_complement(&mask).replace().assign($expr)?,
                (_, 0) => target.masked_complement(&mask).assign($expr)?,
                (_, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target
                            .masked_complement(&mask)
                            .replace()
                            .accum_assign($expr)?
                    } else {
                        target.masked_complement(&mask).accum_assign($expr)?
                    }
                }
            }
        }};
    }

    match s.kind {
        0 => emit!(&a + &b),
        1 => emit!(&a * &b),
        2 => {
            let unary = UnaryOp::bound("Plus", 3.0)?;
            let _u = unary.enter();
            emit!(apply(&a))
        }
        _ => emit!(&a),
    }
    Ok(None)
}

/// Run a program in one mode; returns the settled pool and every
/// reduction result, the full observable state.
fn run_program(prog: &[Step], nonblocking: bool) -> (Vec<Vector>, Vec<DynScalar>) {
    let mut pool = init_pool();
    let mut reductions = Vec::new();
    {
        let _guard = if nonblocking {
            Some(pygb_runtime::nonblocking().unwrap())
        } else {
            None
        };
        for s in prog {
            if let Some(r) = apply_step(&mut pool, s).unwrap() {
                reductions.push(r);
            }
        }
        if nonblocking {
            pygb_runtime::flush().unwrap();
        }
    }
    for v in &mut pool {
        v.settle().unwrap();
    }
    (pool, reductions)
}

proptest! {
    #[test]
    fn nonblocking_matches_blocking(prog in proptest::collection::vec(step_strategy(), 1..10)) {
        let (b_pool, b_red) = run_program(&prog, false);
        let (n_pool, n_red) = run_program(&prog, true);
        for (i, (b, n)) in b_pool.iter().zip(&n_pool).enumerate() {
            prop_assert_eq!(b.dtype(), n.dtype(), "slot {} dtype", i);
            prop_assert_eq!(b.extract_pairs(), n.extract_pairs(), "slot {}", i);
        }
        prop_assert_eq!(b_red, n_red);
    }

    /// Scoped temporaries (the fusion-friendly shape) are equivalent
    /// too: producer feeding consumer inside one scope.
    #[test]
    fn fused_chains_match_blocking(
        operands in (0usize..POOL, 0usize..POOL, 0usize..POOL),
        ops in (0usize..OPS.len(), 0usize..OPS.len()),
        mult in any::<bool>(),
    ) {
        let (ai, bi, ci) = operands;
        let (op1, op2) = ops;
        let run = |nonblocking: bool| -> Vec<(usize, DynScalar)> {
            let pool = init_pool();
            let mut out = Vector::new(N, DType::Fp64);
            {
                let _guard = if nonblocking {
                    Some(pygb_runtime::nonblocking().unwrap())
                } else {
                    None
                };
                {
                    let t = {
                        let _o = BinaryOp::new(OPS[op1]).unwrap().enter();
                        Vector::from_expr(&pool[ai] + &pool[bi]).unwrap()
                    };
                    let _o = BinaryOp::new(OPS[op2]).unwrap().enter();
                    if mult {
                        out.no_mask().assign(&t * &pool[ci]).unwrap();
                    } else {
                        out.no_mask().assign(&t + &pool[ci]).unwrap();
                    }
                }
                if nonblocking {
                    pygb_runtime::flush().unwrap();
                }
            }
            out.settle().unwrap();
            out.extract_pairs()
        };
        prop_assert_eq!(run(false), run(true));
    }
}
