//! Section IV's multi-threading discussion, resolved: "each thread
//! would need to keep track of its own operator stack". Our context
//! stacks are thread-local and guards are `!Send`, so concurrent DSL
//! programs compose; the JIT module cache is shared and thread-safe.

use std::sync::Arc;
use std::thread;

use pygb::prelude::*;
use pygb_algorithms::bfs_dsl_loops;
use pygb_io::generators;

#[test]
fn operator_contexts_are_per_thread() {
    // Thread A computes under MinPlus while thread B computes under
    // Arithmetic; neither context leaks into the other.
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let b2 = Arc::clone(&barrier);

    let a = thread::spawn(move || {
        let u = Vector::from_dense(&[3.0f64]);
        let v = Vector::from_dense(&[5.0f64]);
        let _sr = MinPlusSemiring.enter();
        b2.wait(); // both threads hold their contexts simultaneously
        let w = Vector::from_expr(&u + &v).unwrap(); // ⊕ = Min
        w.get(0).unwrap().as_f64()
    });
    let b = thread::spawn(move || {
        let u = Vector::from_dense(&[3.0f64]);
        let v = Vector::from_dense(&[5.0f64]);
        let _sr = ArithmeticSemiring.enter();
        barrier.wait();
        let w = Vector::from_expr(&u + &v).unwrap(); // ⊕ = Plus
        w.get(0).unwrap().as_f64()
    });
    assert_eq!(a.join().unwrap(), 3.0);
    assert_eq!(b.join().unwrap(), 8.0);
}

#[test]
fn concurrent_dsl_algorithms_share_the_jit_cache() {
    // Many threads run BFS through the DSL at once; the shared module
    // cache serves them all, and every thread gets correct results.
    let edges = generators::erdos_renyi_power(128, 21);
    let graph = edges.to_pygb(DType::Fp64);
    let reference: Vec<(usize, i64)> = bfs_dsl_loops(&graph, 0)
        .unwrap()
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_i64()))
        .collect();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let g = graph.clone(); // Arc handle, shared storage
            thread::spawn(move || {
                bfs_dsl_loops(&g, 0)
                    .unwrap()
                    .extract_pairs()
                    .into_iter()
                    .map(|(i, v)| (i, v.as_i64()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference);
    }
}

#[test]
fn cow_handles_are_safe_to_mutate_across_threads() {
    // Each thread mutates its own clone of a shared container;
    // copy-on-write keeps them isolated.
    let base = Vector::from_dense(&[0.0f64; 16]);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let mut v = base.clone();
            thread::spawn(move || {
                v.set(t, (t + 1) as f64).unwrap();
                (t, v.get(t).unwrap().as_f64(), v.nvals())
            })
        })
        .collect();
    for h in handles {
        let (t, val, nvals) = h.join().unwrap();
        assert_eq!(val, (t + 1) as f64);
        assert_eq!(nvals, 16);
    }
    // The base snapshot never changed.
    assert_eq!(base.to_dense_f64(), vec![0.0; 16]);
}

#[test]
fn parallel_and_small_sequential_kernels_agree() {
    // The Rayon row-parallel path kicks in above the threshold; results
    // must be identical to the small-problem sequential path. Compute
    // the same product as one big matrix and as its small blocks.
    let n = gbtl::parallel::PAR_THRESHOLD * 2; // forces the parallel path
    let edges = generators::erdos_renyi(n, n * 4, 31);
    let a: gbtl::Matrix<f64> = edges.to_gbtl();
    let mut big = gbtl::Matrix::<f64>::new(n, n);
    gbtl::operations::mxm(
        &mut big,
        &gbtl::NoMask,
        gbtl::NoAccumulate,
        &gbtl::prelude::ArithmeticSemiring::new(),
        &a,
        &a,
        gbtl::Replace(false),
    )
    .unwrap();
    // Sequential reference through the exposed sequential row-mapper.
    let seq_rows = gbtl::parallel::row_map_sequential(
        n,
        || gbtl::workspace::Spa::<f64>::new(n),
        |spa, i| {
            let (cols, vals) = a.row(i);
            for (&k, &av) in cols.iter().zip(vals) {
                let (bc, bv) = a.row(k);
                for (&j, &b) in bc.iter().zip(bv) {
                    spa.scatter(j, av * b, |x, y| x + y);
                }
            }
            spa.drain_sorted()
        },
    );
    for (i, row) in seq_rows.iter().enumerate() {
        let (cols, vals) = big.row(i);
        let lib_row: Vec<(usize, f64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        assert_eq!(&lib_row, row, "row {i}");
    }
}
