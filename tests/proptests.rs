//! Property-based tests over the core data structures and the
//! GraphBLAS semantics, checked against simple reference models.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use gbtl::ops::accum::{Accumulate, NoAccumulate};
use gbtl::prelude::*;

const N: usize = 10;

/// A sparse vector as a model map.
fn sparse_map() -> impl Strategy<Value = BTreeMap<usize, i64>> {
    proptest::collection::btree_map(0..N, -100i64..100, 0..N)
}

/// A sparse matrix as a model map.
fn sparse_mat_map() -> impl Strategy<Value = BTreeMap<(usize, usize), i64>> {
    proptest::collection::btree_map((0..N, 0..N), -100i64..100, 0..(N * N / 2))
}

fn to_vector(m: &BTreeMap<usize, i64>) -> Vector<i64> {
    Vector::from_pairs(N, m.iter().map(|(&i, &v)| (i, v))).unwrap()
}

fn to_matrix(m: &BTreeMap<(usize, usize), i64>) -> Matrix<i64> {
    Matrix::from_triples(N, N, m.iter().map(|(&(i, j), &v)| (i, j, v))).unwrap()
}

proptest! {
    #[test]
    fn container_roundtrip(model in sparse_mat_map()) {
        let m = to_matrix(&model);
        prop_assert!(m.is_valid());
        prop_assert_eq!(m.nvals(), model.len());
        for (&(i, j), &v) in &model {
            prop_assert_eq!(m.get(i, j), Some(v));
        }
        let back: BTreeMap<(usize, usize), i64> =
            m.iter().map(|(i, j, v)| ((i, j), v)).collect();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn transpose_is_involution(model in sparse_mat_map()) {
        let m = to_matrix(&model);
        let tt = m.transpose_owned().transpose_owned();
        prop_assert_eq!(tt, m);
    }

    #[test]
    fn mxm_matches_dense_reference(a in sparse_mat_map(), b in sparse_mat_map()) {
        let am = to_matrix(&a);
        let bm = to_matrix(&b);
        let mut c = Matrix::<i64>::new(N, N);
        operations::mxm(
            &mut c, &NoMask, NoAccumulate,
            &ArithmeticSemiring::new(), &am, &bm, Replace(false),
        ).unwrap();
        // Dense wrapping reference.
        for i in 0..N {
            for j in 0..N {
                let mut acc: Option<i64> = None;
                for k in 0..N {
                    if let (Some(&x), Some(&y)) = (a.get(&(i, k)), b.get(&(k, j))) {
                        let prod = x.wrapping_mul(y);
                        acc = Some(acc.map_or(prod, |s| s.wrapping_add(prod)));
                    }
                }
                prop_assert_eq!(c.get(i, j), acc, "({}, {})", i, j);
            }
        }
    }

    #[test]
    fn mxv_gather_and_scatter_agree(a in sparse_mat_map(), u in sparse_map()) {
        let am = to_matrix(&a);
        let uv = to_vector(&u);
        let mut direct = Vector::<i64>::new(N);
        operations::mxv(
            &mut direct, &NoMask, NoAccumulate,
            &ArithmeticSemiring::new(), &am, &uv, Replace(false),
        ).unwrap();
        // Same product through the scatter kernel: A·u = (Aᵀ)ᵀ·u.
        let at = am.transpose_owned();
        let mut scattered = Vector::<i64>::new(N);
        operations::mxv(
            &mut scattered, &NoMask, NoAccumulate,
            &ArithmeticSemiring::new(), transpose(&at), &uv, Replace(false),
        ).unwrap();
        prop_assert_eq!(direct, scattered);
    }

    #[test]
    fn ewise_add_is_union_with_plus(u in sparse_map(), v in sparse_map()) {
        let uv = to_vector(&u);
        let vv = to_vector(&v);
        let mut w = Vector::<i64>::new(N);
        operations::e_wise_add_vector(
            &mut w, &NoMask, NoAccumulate,
            gbtl::ops::binary::Plus::new(), &uv, &vv, Replace(false),
        ).unwrap();
        let keys: BTreeSet<usize> = u.keys().chain(v.keys()).copied().collect();
        prop_assert_eq!(w.nvals(), keys.len());
        for i in keys {
            let expect = match (u.get(&i), v.get(&i)) {
                (Some(&x), Some(&y)) => x.wrapping_add(y),
                (Some(&x), None) => x,
                (None, Some(&y)) => y,
                (None, None) => unreachable!(),
            };
            prop_assert_eq!(w.get(i), Some(expect));
        }
    }

    #[test]
    fn ewise_mult_is_intersection(u in sparse_map(), v in sparse_map()) {
        let uv = to_vector(&u);
        let vv = to_vector(&v);
        let mut w = Vector::<i64>::new(N);
        operations::e_wise_mult_vector(
            &mut w, &NoMask, NoAccumulate,
            gbtl::ops::binary::Times::new(), &uv, &vv, Replace(false),
        ).unwrap();
        let both: Vec<usize> = u.keys().filter(|k| v.contains_key(k)).copied().collect();
        prop_assert_eq!(w.nvals(), both.len());
        for i in both {
            prop_assert_eq!(w.get(i), Some(u[&i].wrapping_mul(v[&i])));
        }
    }

    #[test]
    fn masked_write_matches_elementwise_model(
        c0 in sparse_map(),
        t in sparse_map(),
        mask in proptest::collection::btree_set(0..N, 0..N),
        complemented in any::<bool>(),
        accumulate in any::<bool>(),
        replace in any::<bool>(),
    ) {
        let mut c = to_vector(&c0);
        let tv = to_vector(&t);
        let mv = Vector::from_pairs(N, mask.iter().map(|&i| (i, 1i64))).unwrap();

        // Library result.
        let go = |c: &mut Vector<i64>, m: &dyn VectorMask| {
            if accumulate {
                gbtl::write::write_vector(c, m, &Accumulate(gbtl::ops::binary::Plus::<i64>::new()), tv.clone(), Replace(replace));
            } else {
                gbtl::write::write_vector(c, m, &NoAccumulate, tv.clone(), Replace(replace));
            }
        };
        if complemented {
            go(&mut c, &complement(&mv));
        } else {
            go(&mut c, &mv);
        }

        // Element-by-element spec model.
        for i in 0..N {
            let allowed = mask.contains(&i) != complemented;
            let z = if accumulate {
                match (c0.get(&i), t.get(&i)) {
                    (Some(&x), Some(&y)) => Some(x.wrapping_add(y)),
                    (Some(&x), None) => Some(x),
                    (None, Some(&y)) => Some(y),
                    (None, None) => None,
                }
            } else {
                t.get(&i).copied()
            };
            let expect = if allowed {
                z
            } else if replace {
                None
            } else {
                c0.get(&i).copied()
            };
            prop_assert_eq!(c.get(i), expect, "i={}", i);
        }
    }

    #[test]
    fn reduce_scalar_is_sum(u in sparse_map()) {
        let uv = to_vector(&u);
        let total = operations::reduce_vector_scalar(
            &gbtl::ops::monoid::PlusMonoid::new(), &uv);
        let expect = u.values().fold(0i64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(total, expect);
    }

    #[test]
    fn extract_then_assign_roundtrips(
        m in sparse_mat_map(),
        lo in 0usize..N/2,
    ) {
        let hi = lo + N / 2;
        let src = to_matrix(&m);
        // C = A[lo..hi, lo..hi]
        let k = hi - lo;
        let mut sub = Matrix::<i64>::new(k, k);
        operations::extract_matrix(
            &mut sub, &NoMask, NoAccumulate, &src,
            &Indices::Range(lo, hi), &Indices::Range(lo, hi), Replace(false),
        ).unwrap();
        // Assign it back into a blank matrix at the same place.
        let mut out = Matrix::<i64>::new(N, N);
        operations::assign_matrix(
            &mut out, &NoMask, NoAccumulate, &sub,
            &Indices::Range(lo, hi), &Indices::Range(lo, hi), Replace(false),
        ).unwrap();
        for ((i, j), &v) in &m {
            let inside = (lo..hi).contains(i) && (lo..hi).contains(j);
            prop_assert_eq!(out.get(*i, *j), inside.then_some(v));
        }
    }

    #[test]
    fn sssp_is_a_fixpoint(edges in proptest::collection::btree_map((0..N, 0..N), 1i64..20, 0..N*2)) {
        let g = Matrix::from_triples(
            N, N, edges.iter().map(|(&(i, j), &w)| (i, j, w)),
        ).unwrap();
        let dist = gbtl::algorithms::sssp_from(&g, 0).unwrap();
        // No edge can relax any further.
        for (&(u, v), &w) in &edges {
            if let Some(du) = dist.get(u) {
                let dv = dist.get(v).expect("reachable through u");
                prop_assert!(dv <= du + w, "edge {}->{} violates", u, v);
            }
        }
        // Every reachable distance is witnessed by an incoming edge
        // (or is the source).
        for (v, dv) in dist.iter() {
            if v == 0 && dv == 0 { continue; }
            let witnessed = edges.iter().any(|(&(s, d), &w)| {
                d == v && dist.get(s).is_some_and(|ds| ds + w == dv)
            });
            prop_assert!(witnessed, "distance at {} unwitnessed", v);
        }
    }

    #[test]
    fn dsl_matches_native_on_random_ewise(
        u in sparse_map(),
        v in sparse_map(),
        op_idx in 0usize..17,
    ) {
        use gbtl::ops::kind::ALL_BINARY_OPS;
        let kind = ALL_BINARY_OPS[op_idx];

        // Native.
        let mut nat = Vector::<i64>::new(N);
        operations::e_wise_add_vector(
            &mut nat, &NoMask, NoAccumulate,
            gbtl::ops::kind::KindBinaryOp(kind), &to_vector(&u), &to_vector(&v),
            Replace(false),
        ).unwrap();

        // DSL.
        let du = pygb::Vector::from_pairs(N, u.iter().map(|(&i, &x)| (i, x))).unwrap();
        let dv = pygb::Vector::from_pairs(N, v.iter().map(|(&i, &x)| (i, x))).unwrap();
        let _op = pygb::BinaryOp::new(kind.name()).unwrap().enter();
        let dw = pygb::Vector::from_expr(&du + &dv).unwrap();

        prop_assert_eq!(dw.nvals(), nat.nvals());
        for (i, x) in nat.iter() {
            prop_assert_eq!(dw.get(i).map(|d| d.as_i64()), Some(x), "op {} at {}", kind.name(), i);
        }
    }

    #[test]
    fn dsl_mxm_matches_native_mxm(a in sparse_mat_map(), b in sparse_mat_map()) {
        // Native.
        let mut nat = Matrix::<i64>::new(N, N);
        operations::mxm(
            &mut nat, &NoMask, NoAccumulate,
            &ArithmeticSemiring::new(), &to_matrix(&a), &to_matrix(&b),
            Replace(false),
        ).unwrap();

        // DSL, through the full JIT dispatch pipeline.
        let da = pygb::Matrix::from_triples(
            N, N, a.iter().map(|(&(i, j), &v)| (i, j, v)),
        ).unwrap();
        let db = pygb::Matrix::from_triples(
            N, N, b.iter().map(|(&(i, j), &v)| (i, j, v)),
        ).unwrap();
        let _sr = pygb::ArithmeticSemiring.enter();
        let dc = pygb::Matrix::from_expr(da.matmul(&db)).unwrap();

        prop_assert_eq!(dc.nvals(), nat.nvals());
        for (i, j, v) in nat.iter() {
            prop_assert_eq!(dc.get(i, j).map(|x| x.as_i64()), Some(v), "({}, {})", i, j);
        }
    }

    #[test]
    fn dsl_masked_mxv_matches_native(
        a in sparse_mat_map(),
        u in sparse_map(),
        mask in proptest::collection::btree_set(0..N, 0..N),
        complemented in any::<bool>(),
        replace in any::<bool>(),
    ) {
        let am = to_matrix(&a);
        let uv = to_vector(&u);
        let mv = Vector::from_pairs(N, mask.iter().map(|&i| (i, 1i64))).unwrap();

        let mut nat = Vector::<i64>::new(N);
        if complemented {
            operations::mxv(&mut nat, &complement(&mv), NoAccumulate,
                &ArithmeticSemiring::new(), &am, &uv, Replace(replace)).unwrap();
        } else {
            operations::mxv(&mut nat, &mv, NoAccumulate,
                &ArithmeticSemiring::new(), &am, &uv, Replace(replace)).unwrap();
        }

        let da = pygb::Matrix::from_triples(
            N, N, a.iter().map(|(&(i, j), &v)| (i, j, v)),
        ).unwrap();
        let du = pygb::Vector::from_pairs(N, u.iter().map(|(&i, &v)| (i, v))).unwrap();
        let dm = pygb::Vector::from_pairs(N, mask.iter().map(|&i| (i, 1i64))).unwrap();
        let mut dw = pygb::Vector::new(N, pygb::DType::Int64);
        {
            let _sr = pygb::ArithmeticSemiring.enter();
            let expr = da.mxv(&du);
            let target = if complemented {
                dw.masked_complement(&dm)
            } else {
                dw.masked(&dm)
            };
            let target = if replace { target.replace() } else { target.merge() };
            target.assign(expr).unwrap();
        }
        prop_assert_eq!(dw.nvals(), nat.nvals());
        for (i, v) in nat.iter() {
            prop_assert_eq!(dw.get(i).map(|x| x.as_i64()), Some(v), "i={}", i);
        }
    }

    #[test]
    fn cast_preserves_in_range_values(m in sparse_mat_map()) {
        let src = to_matrix(&m); // values in -100..100 fit everywhere signed
        let f: Matrix<f64> = src.cast();
        let back: Matrix<i64> = f.cast();
        prop_assert_eq!(&back, &src);
        let small: Matrix<i8> = src.cast();
        for (i, j, v) in src.iter() {
            prop_assert_eq!(small.get(i, j), Some(v as i8));
        }
    }
}
