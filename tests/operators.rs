//! Fig. 6's operator inventory: every predefined name constructs, every
//! constructor form works, and the context-precedence rules of
//! Section IV behave as the paper's examples require.

use gbtl::ops::kind::{ALL_BINARY_OPS, ALL_UNARY_OPS};
use pygb::prelude::*;

#[test]
fn all_seventeen_binary_ops_construct() {
    let names = [
        "LogicalOr",
        "LogicalAnd",
        "LogicalXor",
        "Equal",
        "NotEqual",
        "GreaterThan",
        "LessThan",
        "GreaterEqual",
        "LessEqual",
        "First",
        "Second",
        "Min",
        "Max",
        "Plus",
        "Minus",
        "Times",
        "Div",
    ];
    assert_eq!(names.len(), 17);
    assert_eq!(ALL_BINARY_OPS.len(), 17);
    for name in names {
        assert!(BinaryOp::new(name).is_ok(), "{name}");
    }
    assert!(BinaryOp::new("Modulo").is_err());
}

#[test]
fn all_four_unary_ops_construct() {
    let names = [
        "Identity",
        "AdditiveInverse",
        "LogicalNot",
        "MultiplicativeInverse",
    ];
    assert_eq!(names.len(), 4);
    assert_eq!(ALL_UNARY_OPS.len(), 4);
    for name in names {
        assert!(UnaryOp::new(name).is_ok(), "{name}");
    }
}

#[test]
fn fig6_example_constructors() {
    // The exact constructor chain at the bottom of Fig. 6.
    let _additive_inv = UnaryOp::new("AdditiveInverse").unwrap();
    let plus_op = BinaryOp::new("Plus").unwrap();
    let times_op = BinaryOp::new("Times").unwrap();
    let _plus_accumulate = Accumulator::from_op(plus_op);
    let plus_monoid = Monoid::from_op(plus_op, 0.0).unwrap();
    let arithmetic_sr = Semiring::from_parts(plus_monoid, times_op);
    assert_eq!(arithmetic_sr, ArithmeticSemiring);
}

#[test]
fn min_monoid_by_name_matches_fig4_text() {
    // gb.MinMonoid == gb.Monoid("Min", "MinIdentity")
    assert_eq!(Monoid::new("Min", "MinIdentity").unwrap(), MinMonoid);
    // gb.MinPlusSemiring == gb.Semiring(gb.MinMonoid, "Plus")
    assert_eq!(Semiring::new(MinMonoid, "Plus").unwrap(), MinPlusSemiring);
}

#[test]
fn predefined_semirings_all_resolve() {
    for name in [
        "ArithmeticSemiring",
        "LogicalSemiring",
        "MinPlusSemiring",
        "MaxTimesSemiring",
        "MinSelect1stSemiring",
        "MinSelect2ndSemiring",
        "MaxSelect1stSemiring",
        "MaxSelect2ndSemiring",
    ] {
        assert!(Semiring::predefined(name).is_ok(), "{name}");
    }
}

#[test]
fn each_binary_op_computes_through_the_dsl() {
    // Every op drives an eWiseMult on a small intersection and must
    // produce its mathematical result.
    let u = Vector::from_dense(&[6.0f64]);
    let v = Vector::from_dense(&[4.0f64]);
    let cases: [(&str, f64); 17] = [
        ("LogicalOr", 1.0),
        ("LogicalAnd", 1.0),
        ("LogicalXor", 0.0),
        ("Equal", 0.0),
        ("NotEqual", 1.0),
        ("GreaterThan", 1.0),
        ("LessThan", 0.0),
        ("GreaterEqual", 1.0),
        ("LessEqual", 0.0),
        ("First", 6.0),
        ("Second", 4.0),
        ("Min", 4.0),
        ("Max", 6.0),
        ("Plus", 10.0),
        ("Minus", 2.0),
        ("Times", 24.0),
        ("Div", 1.5),
    ];
    for (name, expected) in cases {
        let _op = BinaryOp::new(name).unwrap().enter();
        let w = Vector::from_expr(&u * &v).unwrap();
        assert_eq!(w.get(0).unwrap().as_f64(), expected, "{name}");
    }
}

#[test]
fn each_unary_op_computes_through_the_dsl() {
    let u = Vector::from_dense(&[4.0f64]);
    let cases: [(&str, f64); 4] = [
        ("Identity", 4.0),
        ("AdditiveInverse", -4.0),
        ("LogicalNot", 0.0),
        ("MultiplicativeInverse", 0.25),
    ];
    for (name, expected) in cases {
        let _op = UnaryOp::new(name).unwrap().enter();
        let w = Vector::from_expr(pygb::apply(&u)).unwrap();
        assert_eq!(w.get(0).unwrap().as_f64(), expected, "{name}");
    }
}

#[test]
fn bound_unary_op_like_pagerank() {
    // with gb.UnaryOp("Times", 0.85): apply(m)
    let u = Vector::from_dense(&[2.0f64]);
    let _op = UnaryOp::bound("Times", 0.85).unwrap().enter();
    let w = Vector::from_expr(pygb::apply(&u)).unwrap();
    assert!((w.get(0).unwrap().as_f64() - 1.7).abs() < 1e-12);
}

#[test]
fn nested_contexts_fig7_precedence() {
    // Fig. 7 lines 20-28: an inner BinaryOp("Minus") takes precedence
    // over the enclosing ArithmeticSemiring for `+`, while `@` still
    // resolves the semiring.
    let u = Vector::from_dense(&[10.0f64]);
    let v = Vector::from_dense(&[4.0f64]);
    let _sr = ArithmeticSemiring.enter();
    {
        let _minus = BinaryOp::new("Minus").unwrap().enter();
        let w = Vector::from_expr(&u + &v).unwrap();
        assert_eq!(w.get(0).unwrap().as_f64(), 6.0); // Minus, not Plus
    }
    let w = Vector::from_expr(&u + &v).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 14.0); // back to Plus
}

#[test]
fn operator_captured_at_expression_construction() {
    // Sec. IV: "The expression object also captures the value of the
    // binary operator from the context of the A + B expression."
    let u = Vector::from_dense(&[10.0f64]);
    let v = Vector::from_dense(&[4.0f64]);
    let expr = {
        let _minus = BinaryOp::new("Minus").unwrap().enter();
        &u + &v
    };
    // The guard is dropped; evaluation must still use Minus.
    let w = Vector::from_expr(expr).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 6.0);
}

#[test]
fn replace_flag_context() {
    // Fig. 2b: with gb.LogicalSemiring, gb.Replace: ...
    let mask = Vector::from_pairs(3, [(0usize, true)]).unwrap();
    let src = Vector::from_dense(&[1.0f64, 1.0, 1.0]);

    let mut keep = Vector::from_pairs(3, [(2usize, 9.0f64)]).unwrap();
    keep.masked(&mask).assign(&src).unwrap();
    assert_eq!(keep.get(2).unwrap().as_f64(), 9.0); // merge default

    let mut cleared = Vector::from_pairs(3, [(2usize, 9.0f64)]).unwrap();
    {
        let _r = Replace.enter();
        cleared.masked(&mask).assign(&src).unwrap();
    }
    assert!(cleared.get(2).is_none()); // replace from context
}

#[test]
fn explicit_merge_overrides_replace_context() {
    let mask = Vector::from_pairs(2, [(0usize, true)]).unwrap();
    let src = Vector::from_dense(&[1.0f64, 1.0]);
    let mut w = Vector::from_pairs(2, [(1usize, 5.0f64)]).unwrap();
    let _r = Replace.enter();
    w.masked(&mask).merge().assign(&src).unwrap();
    assert_eq!(w.get(1).unwrap().as_f64(), 5.0);
}

#[test]
fn context_stack_depth_is_balanced() {
    assert_eq!(pygb::context::depth(), 0);
    {
        let _a = ArithmeticSemiring.enter();
        let _b = MinMonoid.enter();
        let _c = Replace.enter();
        assert_eq!(pygb::context::depth(), 3);
    }
    assert_eq!(pygb::context::depth(), 0);
}
