//! Golden snapshots of the raw-vs-optimized [`pygb_runtime::plan`]
//! view for a Fig. 1 BFS wavefront, one file per pass toggle.
//!
//! The deferred program is a single BFS step over the paper's Fig. 1
//! graph, salted with one bait per pass: a duplicate wavefront (CSE),
//! an identity `apply` (no-op folding), and a dropped temporary
//! (liveness/DCE). Each configuration's full `plan()` rendering — raw
//! nodes, optimized nodes, and per-node rewrite provenance — is frozen
//! under `tests/golden/plans/`, so a change to a pass, the fusion
//! assessment, or the plan renderer fails loudly with a file to diff.

use pygb::{apply, BinaryOp, DType, UnaryOp, Vector};
use pygb_integration::fig1_graph;
use pygb_runtime::{set_passes, PassKind};

/// Every pass toggle under snapshot, with its golden file stem.
fn configs() -> Vec<(&'static str, Vec<PassKind>)> {
    vec![
        (
            "all",
            vec![
                PassKind::Dce,
                PassKind::Cse,
                PassKind::Sparsity,
                PassKind::Noop,
            ],
        ),
        ("dce_only", vec![PassKind::Dce]),
        ("cse_only", vec![PassKind::Cse]),
        ("sparsity_only", vec![PassKind::Sparsity]),
        ("noop_only", vec![PassKind::Noop]),
        ("off", vec![]),
    ]
}

fn golden(name: &str) -> &'static str {
    match name {
        "all" => include_str!("golden/plans/bfs_fig1_all.txt"),
        "dce_only" => include_str!("golden/plans/bfs_fig1_dce_only.txt"),
        "cse_only" => include_str!("golden/plans/bfs_fig1_cse_only.txt"),
        "sparsity_only" => include_str!("golden/plans/bfs_fig1_sparsity_only.txt"),
        "noop_only" => include_str!("golden/plans/bfs_fig1_noop_only.txt"),
        "off" => include_str!("golden/plans/bfs_fig1_off.txt"),
        other => panic!("no golden registered for config {other}"),
    }
}

/// Render the plan of the deferred BFS wavefront under one pass
/// configuration. Runs on a fresh thread so node ids always start at
/// `n0` and the thread-local pass override cannot leak into other
/// tests.
fn render_plan(passes: Vec<PassKind>) -> String {
    std::thread::spawn(move || {
        set_passes(&passes);
        let graph = fig1_graph();
        let mut frontier = Vector::new(7, DType::Fp64);
        frontier.set(0, 1.0f64).unwrap();
        let mut visited = Vector::new(7, DType::Fp64);
        visited.set(0, 1.0f64).unwrap();

        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = pygb::ArithmeticSemiring.enter();

        // The wavefront: unvisited neighbors of the frontier. Masked
        // with replace, so every pass must leave it untouched.
        let mut next = Vector::new(7, DType::Fp64);
        next.masked_complement(&visited)
            .replace()
            .assign(graph.t().mxv(&frontier))
            .unwrap();
        // Two plain reachability pulls with identical structure — CSE
        // bait: plain nodes key on expression + output shape only, so
        // the second merges into the first.
        let _pull = Vector::from_expr(graph.t().mxv(&frontier)).unwrap();
        let _pull_dup = Vector::from_expr(graph.t().mxv(&frontier)).unwrap();
        // Identity apply of the wave: no-op folding bait.
        let mut snapshot = Vector::new(7, DType::Fp64);
        {
            let unary = UnaryOp::new("Identity").unwrap();
            let _u = unary.enter();
            snapshot.no_mask().assign(apply(&next)).unwrap();
        }
        // A temporary nobody observes: liveness/DCE bait.
        {
            let _plus = BinaryOp::new("Plus").unwrap().enter();
            let _ = Vector::from_expr(&next + &snapshot).unwrap();
        }

        format!("{}", pygb_runtime::plan())
        // Scope ends here: the flush executes whatever the configured
        // pipeline leaves, which the equivalence suite proves correct.
    })
    .join()
    .expect("plan rendering thread panicked")
}

#[test]
fn bfs_wavefront_plan_matches_golden_per_pass_toggle() {
    for (name, passes) in configs() {
        let got = render_plan(passes);
        assert_eq!(
            got.trim_end(),
            golden(name).trim_end(),
            "plan drifted for pass config `{name}` — diff \
             tests/golden/plans/bfs_fig1_{name}.txt (regenerate with \
             `cargo test -p pygb-integration --test plan_golden -- \
             --ignored regenerate` after an intentional change)"
        );
    }
}

/// The full pipeline's snapshot must show real optimization: fewer
/// surviving nodes than raw, and every elision attributed to a named
/// pass. Structural guard on top of the byte-exact goldens, so the
/// failure mode is readable when both drift together.
#[test]
fn full_pipeline_plan_attributes_every_elision() {
    let rendered = render_plan(vec![
        PassKind::Dce,
        PassKind::Cse,
        PassKind::Sparsity,
        PassKind::Noop,
    ]);
    assert!(
        rendered.contains("elided by dce") || rendered.contains("dce"),
        "no DCE attribution in:\n{rendered}"
    );
    assert!(
        rendered.contains("cse"),
        "no CSE attribution in:\n{rendered}"
    );
    // The off config keeps everything: raw and optimized counts match.
    let off = render_plan(vec![]);
    let count_of = |s: &str, prefix: &str| {
        s.lines()
            .find_map(|l| {
                l.strip_prefix(prefix)
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|n| n.parse::<usize>().ok())
            })
            .unwrap_or_else(|| panic!("no `{prefix}` line in:\n{s}"))
    };
    let raw = count_of(&off, "nonblocking plan: ");
    assert!(
        off.contains(&format!("): {raw} node(s)")),
        "off config dropped nodes:\n{off}"
    );
}

/// Regenerates the plan golden files from the current implementation.
/// Ignored in normal runs; invoke explicitly after an *intentional*
/// pass or renderer change:
/// `cargo test -p pygb-integration --test plan_golden -- --ignored regenerate`
#[test]
#[ignore = "writes tests/golden/plans/*.txt; run only to re-freeze"]
fn regenerate_plan_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/plans");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, passes) in configs() {
        let rendered = render_plan(passes);
        std::fs::write(dir.join(format!("bfs_fig1_{name}.txt")), rendered).unwrap();
    }
}
