//! Property-based **update ≡ rebuild** proof at the DSL layer: random
//! interleavings of insert/delete batches and settle points, pushed
//! through [`pygb::StreamingMatrix`], must produce containers
//! bit-identical to tearing the graph down and rebuilding it from the
//! surviving triples — and every algorithm, in blocking and
//! nonblocking mode, with and without masks, must agree on the two.
//!
//! The gbtl-level twin of this suite (`crates/gbtl/tests/delta_oracle`)
//! proves the typed delta container against the dense reference
//! oracle; this one proves the dtype-erased stack above it: the
//! analyzer-validated [`pygb::Matrix::update_edges`] entry point,
//! mid-stream `snapshot()` views with pending deltas, and the
//! algorithm layer consuming published merges.

use proptest::prelude::*;

use pygb::{BinaryOp, DType, DynScalar, EdgeUpdate, Matrix, MergePolicy, StreamingMatrix, Vector};
use pygb_algorithms as algos;

const N: usize = 8;

/// `Some(v)` = insert/overwrite with weight `v`, `None` = delete.
/// Roughly a quarter of the ops are deletes.
fn maybe_weight() -> impl Strategy<Value = Option<i64>> {
    (0u8..4, 1i64..6).prop_map(|(k, v)| (k > 0).then_some(v))
}

/// One streamed step: an edge batch plus whether to settle afterwards.
type Step = (Vec<(usize, usize, Option<i64>)>, bool);

fn step() -> impl Strategy<Value = Step> {
    (
        proptest::collection::vec((0usize..N, 0usize..N, maybe_weight()), 0..12),
        any::<bool>(),
    )
}

fn script() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(step(), 1..6)
}

fn base_edges() -> impl Strategy<Value = Vec<(usize, usize, i64)>> {
    proptest::collection::vec((0usize..N, 0usize..N, 1i64..6), 0..16)
}

/// Dense last-write-wins model of the final graph.
fn model_apply(model: &mut [Vec<Option<i64>>], batch: &[(usize, usize, Option<i64>)]) {
    for &(i, j, v) in batch {
        model[i][j] = v;
    }
}

fn model_of(base: &[(usize, usize, i64)]) -> Vec<Vec<Option<i64>>> {
    let mut model = vec![vec![None; N]; N];
    for &(i, j, v) in base {
        model[i][j] = Some(v);
    }
    model
}

fn model_triples(model: &[Vec<Option<i64>>], dtype: DType) -> Vec<(usize, usize, DynScalar)> {
    let mut out = Vec::new();
    for (i, row) in model.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                out.push((i, j, DynScalar::Int64(*v).cast(dtype)));
            }
        }
    }
    out
}

/// The rebuild side of the equivalence: the final model as a fresh
/// `from_triples` container.
fn rebuilt(model: &[Vec<Option<i64>>], dtype: DType) -> Matrix {
    Matrix::from_triples_dyn(N, N, &model_triples(model, dtype), Some(dtype)).unwrap()
}

fn to_batch(batch: &[(usize, usize, Option<i64>)], dtype: DType) -> Vec<EdgeUpdate> {
    batch
        .iter()
        .map(|&(i, j, v)| match v {
            Some(v) => EdgeUpdate::add(i, j, DynScalar::Int64(v).cast(dtype)),
            None => EdgeUpdate::del(i, j),
        })
        .collect()
}

proptest! {
    /// The streamed container matches the rebuilt one after *every*
    /// step — including mid-stream `snapshot()` views taken while
    /// deletes and overwrites are still pending in the delta — under a
    /// merge policy small enough to force interior auto-merges.
    #[test]
    fn streamed_snapshots_match_rebuild_at_every_step(
        base in base_edges(),
        steps in script(),
    ) {
        let mut model = model_of(&base);
        let start = rebuilt(&model, DType::Fp64);
        let mut stream = StreamingMatrix::with_policy(
            &start,
            MergePolicy { max_pending: 5, ..MergePolicy::default() },
        ).unwrap();

        for (batch, settle_after) in &steps {
            stream.update_edges(&to_batch(batch, DType::Fp64)).unwrap();
            model_apply(&mut model, batch);
            if *settle_after {
                stream.settle();
                prop_assert!(stream.is_settled());
            }
            let oracle = rebuilt(&model, DType::Fp64);
            prop_assert_eq!(stream.nvals(), oracle.nvals());
            let snap = stream.snapshot();
            prop_assert_eq!(snap.dtype(), oracle.dtype());
            prop_assert_eq!(snap.extract_triples(), oracle.extract_triples());
        }
    }

    /// Same equivalence through the one-shot `Matrix::update_edges`
    /// front door, swept across integer, float, and bool dtypes (the
    /// wire values cast on entry, as REGISTER/UPDATE ingest does).
    #[test]
    fn update_edges_matches_rebuild_across_dtypes(
        base in base_edges(),
        steps in script(),
    ) {
        for dtype in [DType::Fp64, DType::Fp32, DType::Int32, DType::UInt8, DType::Bool] {
            let mut model = model_of(&base);
            let mut updated = rebuilt(&model, dtype);
            for (batch, _) in &steps {
                updated.update_edges(&to_batch(batch, dtype)).unwrap();
                model_apply(&mut model, batch);
            }
            let oracle = rebuilt(&model, dtype);
            prop_assert_eq!(updated.dtype(), oracle.dtype(), "dtype {}", dtype);
            prop_assert_eq!(
                updated.extract_triples(),
                oracle.extract_triples(),
                "dtype {}", dtype
            );
        }
    }

    /// BFS, SSSP, PageRank, and triangle count — each in blocking and
    /// nonblocking mode — agree between the streamed graph and the
    /// rebuilt graph.
    #[test]
    fn four_algorithms_agree_on_updated_vs_rebuilt(
        base in base_edges(),
        steps in script(),
        source in 0usize..N,
    ) {
        let mut model = model_of(&base);
        let mut updated = rebuilt(&model, DType::Fp64);
        for (batch, _) in &steps {
            updated.update_edges(&to_batch(batch, DType::Fp64)).unwrap();
            model_apply(&mut model, batch);
        }
        let oracle = rebuilt(&model, DType::Fp64);

        // BFS: blocking and nonblocking.
        let b_upd = algos::bfs_dsl_loops(&updated, source).unwrap();
        let b_ora = algos::bfs_dsl_loops(&oracle, source).unwrap();
        prop_assert_eq!(b_upd.extract_pairs(), b_ora.extract_pairs());
        let nb_upd = algos::bfs_nonblocking(&updated, source).unwrap();
        let nb_ora = algos::bfs_nonblocking(&oracle, source).unwrap();
        prop_assert_eq!(nb_upd.extract_pairs(), nb_ora.extract_pairs());

        // SSSP (weights are positive by construction).
        let sssp = |g: &Matrix, nb: bool| -> Vec<(usize, DynScalar)> {
            let mut path = Vector::new(N, DType::Fp64);
            path.set(source, 0.0f64).unwrap();
            if nb {
                algos::sssp_nonblocking(g, &mut path).unwrap();
            } else {
                algos::sssp_dsl_loops(g, &mut path).unwrap();
            }
            path.extract_pairs()
        };
        prop_assert_eq!(sssp(&updated, false), sssp(&oracle, false));
        prop_assert_eq!(sssp(&updated, true), sssp(&oracle, true));

        // PageRank: identical inputs must give bit-identical ranks and
        // iteration counts in both modes.
        let opts = algos::PageRankOptions { max_iters: 60, ..Default::default() };
        let (r_upd, i_upd) = algos::pagerank_dsl_loops(&updated, opts).unwrap();
        let (r_ora, i_ora) = algos::pagerank_dsl_loops(&oracle, opts).unwrap();
        prop_assert_eq!(i_upd, i_ora);
        prop_assert_eq!(r_upd.extract_pairs(), r_ora.extract_pairs());
        let (nr_upd, ni_upd) = algos::pagerank_nonblocking(&updated, opts).unwrap();
        let (nr_ora, ni_ora) = algos::pagerank_nonblocking(&oracle, opts).unwrap();
        prop_assert_eq!(ni_upd, ni_ora);
        prop_assert_eq!(nr_upd.extract_pairs(), nr_ora.extract_pairs());

        // Triangle count on the lower-triangular restriction.
        let lower = |g: &Matrix| -> Matrix {
            let tri: Vec<_> = g
                .extract_triples()
                .into_iter()
                .filter(|&(i, j, _)| j < i)
                .collect();
            Matrix::from_triples_dyn(N, N, &tri, Some(DType::Fp64)).unwrap()
        };
        let t_upd = algos::tricount_dsl_loops(&lower(&updated)).unwrap();
        let t_ora = algos::tricount_nonblocking(&lower(&oracle)).unwrap();
        prop_assert_eq!(t_upd.as_f64(), t_ora.as_f64());
    }

    /// Masked writes see the same mask whether it was streamed into
    /// place or rebuilt: `C⟨updated⟩ = A ⊕ A` ≡ `C⟨rebuilt⟩ = A ⊕ A`,
    /// plus the complemented form.
    #[test]
    fn masked_ops_agree_on_updated_vs_rebuilt(
        base in base_edges(),
        steps in script(),
    ) {
        let mut model = model_of(&base);
        let mut updated = rebuilt(&model, DType::Fp64);
        for (batch, _) in &steps {
            updated.update_edges(&to_batch(batch, DType::Fp64)).unwrap();
            model_apply(&mut model, batch);
        }
        let oracle = rebuilt(&model, DType::Fp64);
        let a = Matrix::from_triples(
            N, N,
            (0..N).flat_map(|i| (0..N).map(move |j| (i, j, (i * N + j) as f64 + 1.0)))
                .collect::<Vec<_>>(),
        ).unwrap();

        let run = |mask: &Matrix, complement: bool| -> Vec<(usize, usize, DynScalar)> {
            let mut c = Matrix::new(N, N, DType::Fp64);
            let _op = BinaryOp::new("Plus").unwrap().enter();
            if complement {
                c.masked_complement(mask).assign(&a + &a).unwrap();
            } else {
                c.masked(mask).assign(&a + &a).unwrap();
            }
            c.extract_triples()
        };
        prop_assert_eq!(run(&updated, false), run(&oracle, false));
        prop_assert_eq!(run(&updated, true), run(&oracle, true));
    }

    /// Insert-only batches keep the incremental BFS exact: warm
    /// relaxation from the stale levels equals a fresh traversal of
    /// the updated graph, bit for bit.
    #[test]
    fn incremental_bfs_matches_fresh_traversal_on_inserts(
        base in base_edges(),
        inserts in proptest::collection::vec((0usize..N, 0usize..N, 1i64..6), 0..10),
        source in 0usize..N,
    ) {
        let mut model = model_of(&base);
        let old = rebuilt(&model, DType::Fp64);
        let prev = algos::bfs_nonblocking(&old, source).unwrap();

        let batch: Vec<(usize, usize, Option<i64>)> =
            inserts.iter().map(|&(i, j, v)| (i, j, Some(v))).collect();
        let mut updated = old.clone();
        updated.update_edges(&to_batch(&batch, DType::Fp64)).unwrap();
        model_apply(&mut model, &batch);

        let warm = algos::bfs_incremental(&updated, source, &prev, &to_batch(&batch, DType::Fp64))
            .unwrap();
        let fresh = algos::bfs_nonblocking(&rebuilt(&model, DType::Fp64), source).unwrap();
        prop_assert_eq!(warm.extract_pairs(), fresh.extract_pairs());
    }
}
