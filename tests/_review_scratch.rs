//! Scratch test (review only): blocking vs nonblocking when an eWise
//! chain routes through a narrower-dtype temp that is dropped unread.

use pygb::{DType, Vector};

fn dense(vals: &[f64]) -> Vector {
    let mut v = Vector::new(vals.len(), DType::Fp64);
    for (i, &x) in vals.iter().enumerate() {
        v.set(i, x).unwrap();
    }
    v
}

#[test]
fn fused_chain_preserves_intermediate_dtype() {
    let u = dense(&[2.5, 2.5]);
    let v = dense(&[1.0, 1.0]);
    let x = dense(&[1.0, 1.0]);

    // Blocking reference: t is Int32, so u+v truncates to 3 before the
    // outer add.
    let mut t = Vector::new(2, DType::Int32);
    t.no_mask().assign(&u + &v).unwrap();
    let mut w = Vector::new(2, DType::Fp64);
    w.no_mask().assign(&t + &x).unwrap();
    let blocking = w.to_dense_f64();

    // Nonblocking: same program, temp dropped before the flush.
    let mut t2 = Vector::new(2, DType::Int32);
    let mut w2 = Vector::new(2, DType::Fp64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        t2.no_mask().assign(&u + &v).unwrap();
        w2.no_mask().assign(&t2 + &x).unwrap();
        drop(t2);
    }
    let nonblocking = w2.to_dense_f64();

    assert_eq!(blocking, nonblocking);
}
