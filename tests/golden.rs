//! Golden-file regression tests: BFS, SSSP, PageRank, and triangle
//! counting on small fixed graphs, checked against frozen expected
//! outputs in `tests/golden/`. Each algorithm runs in blocking mode,
//! nonblocking (deferred-DAG) mode, and — where a statically-typed
//! baseline exists — as the native GBTL implementation, so a kernel or
//! fusion-rule change that shifts any algorithm's output fails loudly
//! with a file to diff against.

use pygb::{DType, DynScalar, EdgeUpdate, Matrix, Vector};
use pygb_algorithms::{
    bfs_dsl_loops, bfs_incremental, bfs_native, bfs_nonblocking, pagerank_dsl_loops,
    pagerank_incremental, pagerank_nonblocking, sssp_dsl_loops, sssp_nonblocking,
    tricount_dsl_loops, tricount_nonblocking, PageRankOptions,
};
use pygb_integration::fig1_graph;

/// Parse "index value" lines (# comments and blanks skipped).
fn parse_pairs(golden: &str) -> Vec<(usize, f64)> {
    golden
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let i = it.next().unwrap().parse().unwrap();
            let v = it.next().unwrap().parse().unwrap();
            (i, v)
        })
        .collect()
}

/// Parse a single scalar golden file.
fn parse_scalar(golden: &str) -> f64 {
    golden
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .unwrap()
        .parse()
        .unwrap()
}

fn assert_matches_golden(got: &Vector, golden: &str, tol: f64, context: &str) {
    let want = parse_pairs(golden);
    let got: Vec<(usize, f64)> = got
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_f64()))
        .collect();
    assert_eq!(
        got.len(),
        want.len(),
        "{context}: stored-entry count (got {got:?})"
    );
    for ((gi, gv), (wi, wv)) in got.iter().zip(&want) {
        assert_eq!(gi, wi, "{context}: pattern mismatch");
        assert!(
            (gv - wv).abs() <= tol,
            "{context}: vertex {gi}: got {gv}, want {wv} (tol {tol})"
        );
    }
}

const BFS_GOLDEN: &str = include_str!("golden/bfs_fig1.txt");
const SSSP_GOLDEN: &str = include_str!("golden/sssp_weighted.txt");
const PAGERANK_GOLDEN: &str = include_str!("golden/pagerank_fig1.txt");
const TRICOUNT_GOLDEN: &str = include_str!("golden/tricount_k5.txt");

fn sssp_graph() -> Matrix {
    Matrix::from_triples(
        4,
        4,
        vec![
            (0usize, 1usize, 2.0f64),
            (1, 2, 3.0),
            (0, 2, 10.0),
            (2, 3, 1.0),
        ],
    )
    .unwrap()
}

/// Strictly-lower-triangular K5.
fn l_k5() -> Matrix {
    let mut triples = Vec::new();
    for i in 0..5usize {
        for j in 0..i {
            triples.push((i, j, 1.0f64));
        }
    }
    Matrix::from_triples(5, 5, triples).unwrap()
}

#[test]
fn bfs_blocking_matches_golden() {
    let levels = bfs_dsl_loops(&fig1_graph(), 0).unwrap();
    assert_matches_golden(&levels, BFS_GOLDEN, 0.0, "bfs blocking");
}

#[test]
fn bfs_nonblocking_matches_golden() {
    let levels = bfs_nonblocking(&fig1_graph(), 0).unwrap();
    assert_matches_golden(&levels, BFS_GOLDEN, 0.0, "bfs nonblocking");
}

#[test]
fn bfs_native_matches_golden() {
    let g: gbtl::Matrix<f64> = gbtl::Matrix::from_triples(
        7,
        7,
        fig1_graph()
            .extract_triples()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.as_f64())),
    )
    .unwrap();
    let levels = bfs_native(&g, 0).unwrap();
    let want = parse_pairs(BFS_GOLDEN);
    let got: Vec<(usize, f64)> = (0..7)
        .filter_map(|i| levels.get(i).map(|v| (i, v as f64)))
        .collect();
    assert_eq!(got, want, "bfs native");
}

#[test]
fn sssp_blocking_matches_golden() {
    let mut path = Vector::new(4, DType::Fp64);
    path.set(0, 0.0f64).unwrap();
    sssp_dsl_loops(&sssp_graph(), &mut path).unwrap();
    assert_matches_golden(&path, SSSP_GOLDEN, 0.0, "sssp blocking");
}

#[test]
fn sssp_nonblocking_matches_golden() {
    let mut path = Vector::new(4, DType::Fp64);
    path.set(0, 0.0f64).unwrap();
    sssp_nonblocking(&sssp_graph(), &mut path).unwrap();
    assert_matches_golden(&path, SSSP_GOLDEN, 0.0, "sssp nonblocking");
}

#[test]
fn pagerank_blocking_matches_golden() {
    let (pr, _) = pagerank_dsl_loops(&fig1_graph(), PageRankOptions::default()).unwrap();
    assert_matches_golden(&pr, PAGERANK_GOLDEN, 1e-9, "pagerank blocking");
}

#[test]
fn pagerank_nonblocking_matches_golden() {
    let (pr, _) = pagerank_nonblocking(&fig1_graph(), PageRankOptions::default()).unwrap();
    assert_matches_golden(&pr, PAGERANK_GOLDEN, 1e-9, "pagerank nonblocking");
}

#[test]
fn tricount_blocking_matches_golden() {
    let n = tricount_dsl_loops(&l_k5()).unwrap();
    assert_eq!(
        n.as_f64(),
        parse_scalar(TRICOUNT_GOLDEN),
        "tricount blocking"
    );
}

#[test]
fn tricount_nonblocking_matches_golden() {
    let n = tricount_nonblocking(&l_k5()).unwrap();
    assert_eq!(
        n.as_f64(),
        parse_scalar(TRICOUNT_GOLDEN),
        "tricount nonblocking"
    );
}

#[test]
fn tricount_native_matches_golden() {
    let l: gbtl::Matrix<i64> = gbtl::Matrix::from_triples(
        5,
        5,
        l_k5()
            .extract_triples()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.as_f64() as i64)),
    )
    .unwrap();
    let n = gbtl::algorithms::triangle_count(&l).unwrap();
    assert_eq!(n as f64, parse_scalar(TRICOUNT_GOLDEN), "tricount native");
    // The mask-guided dot-product kernel must agree with the golden too.
    let nd = gbtl::algorithms::triangle_count_masked_dot(&l).unwrap();
    assert_eq!(nd as f64, parse_scalar(TRICOUNT_GOLDEN), "tricount dot");
}

/// DynScalar output sanity for the scalar-returning path.
#[test]
fn tricount_dtype_is_preserved() {
    let n: DynScalar = tricount_dsl_loops(&l_k5()).unwrap();
    assert_eq!(n.as_f64(), 10.0);
}

// ---------------------------------------------------------------------
// Streaming-mutation goldens: the Fig. 1 graph after an insert batch
// (and one delete case), frozen for both recompute paths — the
// incremental "delta applied" path and the "settled then queried"
// full-algorithm path. A change to the delta container, the splice
// merge, or the incremental relaxations that shifts any answer fails
// against a file to diff.
// ---------------------------------------------------------------------

const BFS_STREAM_GOLDEN: &str = include_str!("golden/bfs_fig1_stream.txt");
const BFS_STREAM_DEL_GOLDEN: &str = include_str!("golden/bfs_fig1_stream_del.txt");
const PAGERANK_STREAM_GOLDEN: &str = include_str!("golden/pagerank_fig1_stream.txt");

/// The streamed insert batch: a back edge 2→6 and a return edge 5→0.
fn stream_inserts() -> Vec<EdgeUpdate> {
    vec![EdgeUpdate::add(2, 6, 1.0f64), EdgeUpdate::add(5, 0, 1.0f64)]
}

/// The delete batch applied on top: cut 0→1.
fn stream_delete() -> Vec<EdgeUpdate> {
    vec![EdgeUpdate::del(0, 1)]
}

/// Fig. 1 with [`stream_inserts`] streamed in and settled.
fn streamed_fig1() -> Matrix {
    let mut g = fig1_graph();
    g.update_edges(&stream_inserts()).unwrap();
    g
}

fn stream_pr_opts() -> PageRankOptions {
    PageRankOptions {
        threshold: 1e-12,
        ..Default::default()
    }
}

#[test]
fn streamed_bfs_delta_path_matches_golden() {
    // "Delta applied": warm relaxation from the pre-update levels.
    let prev = bfs_nonblocking(&fig1_graph(), 0).unwrap();
    let levels = bfs_incremental(&streamed_fig1(), 0, &prev, &stream_inserts()).unwrap();
    assert_matches_golden(&levels, BFS_STREAM_GOLDEN, 0.0, "bfs stream delta");
}

#[test]
fn streamed_bfs_settled_path_matches_golden() {
    // "Settled then queried": full traversals of the merged graph.
    let g = streamed_fig1();
    let blocking = bfs_dsl_loops(&g, 0).unwrap();
    assert_matches_golden(&blocking, BFS_STREAM_GOLDEN, 0.0, "bfs stream settled");
    let nonblocking = bfs_nonblocking(&g, 0).unwrap();
    assert_matches_golden(
        &nonblocking,
        BFS_STREAM_GOLDEN,
        0.0,
        "bfs stream settled nb",
    );
}

#[test]
fn streamed_bfs_delete_fallback_matches_golden() {
    // A batch with a delete takes the full-recompute fallback inside
    // `bfs_incremental`; the answer must still be the fresh traversal.
    let mut g = streamed_fig1();
    let prev = bfs_nonblocking(&g, 0).unwrap();
    g.update_edges(&stream_delete()).unwrap();
    let fallback = bfs_incremental(&g, 0, &prev, &stream_delete()).unwrap();
    assert_matches_golden(
        &fallback,
        BFS_STREAM_DEL_GOLDEN,
        0.0,
        "bfs stream del delta",
    );
    let fresh = bfs_dsl_loops(&g, 0).unwrap();
    assert_matches_golden(&fresh, BFS_STREAM_DEL_GOLDEN, 0.0, "bfs stream del settled");
}

#[test]
fn streamed_pagerank_delta_path_matches_golden() {
    // Warm start from the pre-update fixed point: same fixed point,
    // within convergence tolerance (not bit-identical by design — the
    // warm iteration stops at a different nearby iterate, so the
    // tolerance here is the convergence radius, not roundoff).
    let (prev, _) = pagerank_nonblocking(&fig1_graph(), stream_pr_opts()).unwrap();
    let (ranks, _) = pagerank_incremental(&streamed_fig1(), &prev, stream_pr_opts()).unwrap();
    assert_matches_golden(
        &ranks,
        PAGERANK_STREAM_GOLDEN,
        1e-7,
        "pagerank stream delta",
    );
}

#[test]
fn streamed_pagerank_settled_path_matches_golden() {
    let g = streamed_fig1();
    let (blocking, _) = pagerank_dsl_loops(&g, stream_pr_opts()).unwrap();
    assert_matches_golden(
        &blocking,
        PAGERANK_STREAM_GOLDEN,
        1e-9,
        "pagerank stream settled",
    );
    let (nonblocking, _) = pagerank_nonblocking(&g, stream_pr_opts()).unwrap();
    assert_matches_golden(
        &nonblocking,
        PAGERANK_STREAM_GOLDEN,
        1e-9,
        "pagerank stream settled nb",
    );
}

/// Regenerates the streaming golden files from the current
/// implementation. Ignored in normal runs; invoke explicitly after an
/// *intentional* semantic change:
/// `cargo test -p pygb-integration --test golden -- --ignored regenerate`
#[test]
#[ignore = "writes tests/golden/*_stream*.txt; run only to re-freeze"]
fn regenerate_stream_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let dump = |v: &Vector, header: &str| -> String {
        let mut out = format!("# {header}\n# vertex  value\n");
        for (i, val) in v.extract_pairs() {
            out.push_str(&format!("{i} {}\n", val.as_f64()));
        }
        out
    };

    let g = streamed_fig1();
    let bfs = bfs_dsl_loops(&g, 0).unwrap();
    std::fs::write(
        dir.join("bfs_fig1_stream.txt"),
        dump(
            &bfs,
            "BFS levels from 0, Fig. 1 + streamed inserts (2,6),(5,0)",
        ),
    )
    .unwrap();

    let mut del = g.clone();
    del.update_edges(&stream_delete()).unwrap();
    let bfs_del = bfs_dsl_loops(&del, 0).unwrap();
    std::fs::write(
        dir.join("bfs_fig1_stream_del.txt"),
        dump(
            &bfs_del,
            "BFS levels from 0 after further streamed delete (0,1)",
        ),
    )
    .unwrap();

    let (pr, _) = pagerank_nonblocking(&g, stream_pr_opts()).unwrap();
    std::fs::write(
        dir.join("pagerank_fig1_stream.txt"),
        dump(
            &pr,
            "PageRank (d=0.85, threshold 1e-12), Fig. 1 + streamed inserts (2,6),(5,0)",
        ),
    )
    .unwrap();
}
