//! Section VIII future work, implemented: user-defined operators flow
//! through the whole stack — name resolution, context capture, monoid
//! and semiring construction, JIT module keys, and kernels.

use pygb::prelude::*;

#[test]
fn user_binary_op_through_the_dsl() {
    let hypot = BinaryOp::define("Hypot", |a, b| (a * a + b * b).sqrt());
    assert_eq!(hypot.name(), "Hypot");

    let u = Vector::from_dense(&[3.0f64, 5.0]);
    let v = Vector::from_dense(&[4.0f64, 12.0]);
    let _op = hypot.enter();
    let w = Vector::from_expr(&u * &v).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 5.0);
    assert_eq!(w.get(1).unwrap().as_f64(), 13.0);
}

#[test]
fn user_op_resolves_by_name_after_definition() {
    BinaryOp::define("SaturatingSub", |a, b| (a - b).max(0.0));
    // Later code can look it up by name, like a Fig. 6 operator.
    let op = BinaryOp::new("SaturatingSub").unwrap();
    let u = Vector::from_dense(&[5.0f64]);
    let v = Vector::from_dense(&[9.0f64]);
    let _g = op.enter();
    let w = Vector::from_expr(&u * &v).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 0.0);
}

#[test]
fn user_op_with_identity_forms_a_semiring() {
    // A custom ⊕ with identity 0 drives mxv: "log-sum" style semiring
    // (⊕ = hypot, ⊗ = times).
    let hypot =
        BinaryOp::define_with_identity("HypotAdd", |a, b| (a * a + b * b).sqrt(), "Zero").unwrap();
    let monoid = Monoid::from_op(hypot, 0.0).unwrap();
    let sr = Semiring::new(monoid, "Times").unwrap();

    let a = Matrix::from_dense(&[vec![1.0f64, 1.0]]).unwrap();
    let u = Vector::from_dense(&[3.0f64, 4.0]);
    let _sr = sr.enter();
    let w = Vector::from_expr(a.mxv(&u)).unwrap();
    // hypot(1·3, 1·4) = 5.
    assert_eq!(w.get(0).unwrap().as_f64(), 5.0);
}

#[test]
fn user_op_as_accumulator() {
    let keep_bigger_abs =
        BinaryOp::define("BiggerAbs", |a, b| if a.abs() >= b.abs() { a } else { b });
    let mut w = Vector::from_dense(&[-10.0f64, 1.0]);
    let d = Vector::from_dense(&[3.0f64, -7.0]);
    let _acc = Accumulator::from_op(keep_bigger_abs).enter();
    let _sr = ArithmeticSemiring.enter(); // unrelated; accumulator must win
    w.no_mask().accum_assign(&d).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), -10.0);
    assert_eq!(w.get(1).unwrap().as_f64(), -7.0);
}

#[test]
fn user_unary_op_in_apply() {
    let clamp01 = UnaryOp::define("Clamp01", |a| a.clamp(0.0, 1.0));
    let u = Vector::from_dense(&[-0.5f64, 0.25, 7.0]);
    let _op = clamp01.enter();
    let w = Vector::from_expr(pygb::apply(&u)).unwrap();
    assert_eq!(w.to_dense_f64(), vec![0.0, 0.25, 1.0]);
}

#[test]
fn user_ops_get_their_own_jit_modules() {
    // Distinct user ops must hash to distinct module keys.
    let before = pygb::runtime().cache().stats().snapshot();
    let u = Vector::from_dense(&[1.0f64]);
    let v = Vector::from_dense(&[2.0f64]);
    for (name, f) in [
        ("ModKeyOpA", (|a, b| a + 2.0 * b) as fn(f64, f64) -> f64),
        ("ModKeyOpB", |a, b| 2.0 * a + b),
    ] {
        let op = BinaryOp::define(name, f);
        let _g = op.enter();
        let _ = Vector::from_expr(&u * &v).unwrap();
    }
    let after = pygb::runtime().cache().stats().snapshot();
    assert!(
        after.compiles >= before.compiles + 2,
        "each user op is its own module"
    );
}

#[test]
fn redefining_a_user_op_replaces_it() {
    let op1 = BinaryOp::define("Redefined", |a, _| a);
    let op2 = BinaryOp::define("Redefined", |_, b| b);
    // Same id (name reused), new behaviour.
    assert_eq!(op1, op2);
    let u = Vector::from_dense(&[1.0f64]);
    let v = Vector::from_dense(&[2.0f64]);
    let _g = op2.enter();
    let w = Vector::from_expr(&u * &v).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 2.0);
}

#[test]
fn user_ops_cast_through_f64_on_integer_domains() {
    // The documented boundary: integer containers round-trip through
    // f64 around the user function.
    let avg = BinaryOp::define("AvgInt", |a, b| (a + b) / 2.0);
    let u = Vector::from_dense(&[3i64, 4]);
    let v = Vector::from_dense(&[4i64, 4]);
    let _g = avg.enter();
    let w = Vector::from_expr(&u * &v).unwrap();
    assert_eq!(w.dtype(), DType::Int64);
    assert_eq!(w.get(0).unwrap().as_i64(), 3); // 3.5 truncates
    assert_eq!(w.get(1).unwrap().as_i64(), 4);
}
