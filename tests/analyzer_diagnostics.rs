//! The plan-time static analyzer (`pygb-analyze`) end to end: the
//! exhaustive dimension- and dtype-mismatch matrix for every operation
//! that can fail, each with its golden diagnostic string — errors must
//! name the op, the offending dimensions/dtypes, and the rendered
//! source expression, and must surface at expression-build time, never
//! first at flush.

use pygb::{
    take_lints, ArithmeticSemiring, DType, Matrix, PygbError, Replace, StrictTypes, Vector,
};

fn vf64(vals: &[f64]) -> Vector {
    Vector::from_dense(vals)
}

fn m(nrows: usize, ncols: usize) -> Matrix {
    Matrix::new(nrows, ncols, DType::Fp64)
}

/// Assert an analyzer rejection: the typed fields AND the rendered
/// diagnostic must both match.
fn assert_invalid(err: PygbError, op: &str, golden: &str) {
    match &err {
        PygbError::Invalid { op: got, .. } => assert_eq!(*got, op, "{err}"),
        other => panic!("expected an analyzer diagnostic, got {other:?}"),
    }
    assert_eq!(err.to_string(), golden);
}

// ---------------------------------------------------------------------
// Vector dimension matrix.
// ---------------------------------------------------------------------

#[test]
fn mxv_dimension_mismatch() {
    let _sr = ArithmeticSemiring.enter();
    let a = m(2, 3);
    let u = vf64(&[1.0, 2.0]); // need size 3
    let err = Vector::from_expr(a.mxv(&u)).unwrap_err();
    assert_invalid(
        err,
        "mxv",
        "invalid `mxv`: matrix is 2x3 but vector has size 2 (need 3); \
         in mxv([2x3 fp64], [2 fp64])",
    );
}

#[test]
fn vxm_dimension_mismatch() {
    let _sr = ArithmeticSemiring.enter();
    let a = m(2, 4);
    let u = vf64(&[1.0, 2.0, 3.0]); // need size 2
    let err = Vector::from_expr(u.vxm(&a)).unwrap_err();
    assert_invalid(
        err,
        "vxm",
        "invalid `vxm`: vector has size 3 but matrix is 2x4 (need 2); \
         in vxm([3 fp64], [2x4 fp64])",
    );
}

#[test]
fn ewise_vector_size_mismatches() {
    let u = vf64(&[1.0, 2.0]);
    let v = vf64(&[1.0, 2.0, 3.0]);
    let err = Vector::from_expr(&u + &v).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: operands have sizes 2 and 3; \
         in eWiseAdd([2 fp64], [3 fp64])",
    );
    let err = Vector::from_expr(&u * &v).unwrap_err();
    assert_invalid(
        err,
        "eWiseMult",
        "invalid `eWiseMult`: operands have sizes 2 and 3; \
         in eWiseMult([2 fp64], [3 fp64])",
    );
}

#[test]
fn vector_extract_out_of_bounds() {
    let u = vf64(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    let err = Vector::from_expr(u.extract(3..9)).unwrap_err();
    match &err {
        PygbError::Invalid { op, expr, .. } => {
            assert_eq!(*op, "extract");
            assert_eq!(expr, "extract([5 fp64], 3..9)");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn result_size_must_match_target() {
    let u = vf64(&[1.0, 2.0, 3.0]);
    let mut w = Vector::new(2, DType::Fp64);
    let err = w.no_mask().assign(&u + &u).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: result has size 3 but the target vector has size 2; \
         in eWiseAdd([3 fp64], [3 fp64])",
    );
}

#[test]
fn accumulated_assign_gets_the_same_diagnostics() {
    let _acc = pygb::Accumulator::new("Plus").unwrap().enter();
    let u = vf64(&[1.0, 2.0, 3.0]);
    let mut w = Vector::new(2, DType::Fp64);
    let err = w.no_mask().accum_assign(&u + &u).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: result has size 3 but the target vector has size 2; \
         in eWiseAdd([3 fp64], [3 fp64])",
    );
}

#[test]
fn vector_mask_size_mismatch_is_an_error() {
    let u = vf64(&[1.0, 2.0, 3.0]);
    let bad_mask = Vector::new(2, DType::Bool);
    let mut w = Vector::new(3, DType::Fp64);
    let err = w.masked(&bad_mask).assign(&u + &u).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: mask has size 2 but the output has size 3; \
         in eWiseAdd([3 fp64], [3 fp64])",
    );
}

#[test]
fn region_count_must_match_rhs_size() {
    let u = vf64(&[1.0, 2.0, 3.0]);
    let mut w = Vector::new(5, DType::Fp64);
    let err = w.no_mask().slice(1..3).assign(&u + &u).unwrap_err();
    assert_invalid(
        err,
        "assign",
        "invalid `assign`: index region 1..3 selects 2 positions but the \
         right-hand side has size 3; in eWiseAdd([3 fp64], [3 fp64])",
    );
}

#[test]
fn scalar_assign_mask_and_region_diagnostics() {
    let bad_mask = Vector::new(2, DType::Bool);
    let mut w = Vector::new(3, DType::Fp64);
    let err = w.masked(&bad_mask).assign_scalar(1.0f64).unwrap_err();
    assert_invalid(
        err,
        "assign",
        "invalid `assign`: mask has size 2 but the output has size 3; \
         in [3 fp64] = fp64",
    );
    let mut w = Vector::new(5, DType::Fp64);
    let err = w.no_mask().slice(4..9).assign_scalar(1.0f64).unwrap_err();
    match &err {
        PygbError::Invalid { op, expr, .. } => {
            assert_eq!(*op, "assign");
            assert_eq!(expr, "[5 fp64] = fp64");
        }
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Matrix dimension matrix.
// ---------------------------------------------------------------------

#[test]
fn mxm_inner_dimension_mismatch() {
    let _sr = ArithmeticSemiring.enter();
    let a = m(2, 3);
    let b = m(4, 2);
    let err = Matrix::from_expr(a.matmul(&b)).unwrap_err();
    assert_invalid(
        err,
        "mxm",
        "invalid `mxm`: inner dimensions disagree: 2x3 @ 4x2; \
         in mxm([2x3 fp64], [4x2 fp64])",
    );
}

#[test]
fn ewise_matrix_shape_mismatches() {
    let a = m(2, 3);
    let b = m(3, 2);
    let err = Matrix::from_expr(a.ewise_add(&b)).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: operands have shapes 2x3 and 3x2; \
         in eWiseAdd([2x3 fp64], [3x2 fp64])",
    );
    let err = Matrix::from_expr(a.ewise_mult(&b)).unwrap_err();
    assert_invalid(
        err,
        "eWiseMult",
        "invalid `eWiseMult`: operands have shapes 2x3 and 3x2; \
         in eWiseMult([2x3 fp64], [3x2 fp64])",
    );
}

#[test]
fn matrix_extract_selection_diagnostics() {
    let a = m(4, 4);
    let err = Matrix::from_expr(a.extract(5..9, ..)).unwrap_err();
    match &err {
        PygbError::Invalid { op, reason, .. } => {
            assert_eq!(*op, "extract");
            assert!(reason.starts_with("row selection:"), "{reason}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let err = Matrix::from_expr(a.extract(.., 5..9)).unwrap_err();
    match &err {
        PygbError::Invalid { op, reason, .. } => {
            assert_eq!(*op, "extract");
            assert!(reason.starts_with("column selection:"), "{reason}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn matrix_result_shape_must_match_target() {
    let a = m(2, 2);
    let mut c = Matrix::new(3, 3, DType::Fp64);
    let err = c.no_mask().assign(a.ewise_add(&a)).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: result has shape 2x2 but the target matrix has \
         shape 3x3; in eWiseAdd([2x2 fp64], [2x2 fp64])",
    );
}

#[test]
fn matrix_mask_shape_mismatch_is_an_error() {
    let a = m(2, 2);
    let bad_mask = Matrix::new(3, 2, DType::Bool);
    let mut c = Matrix::new(2, 2, DType::Fp64);
    let err = c.masked(&bad_mask).assign(a.ewise_add(&a)).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: mask has shape 3x2 but the output has shape 2x2; \
         in eWiseAdd([2x2 fp64], [2x2 fp64])",
    );
}

#[test]
fn matrix_region_shape_must_match_rhs() {
    let a = m(3, 3);
    let mut c = Matrix::new(4, 4, DType::Fp64);
    let err = c
        .no_mask()
        .region(0..2, 0..2)
        .assign(a.ewise_add(&a))
        .unwrap_err();
    assert_invalid(
        err,
        "assign",
        "invalid `assign`: index region (0..2, 0..2) selects 2x2 positions but \
         the right-hand side has shape 3x3; in eWiseAdd([3x3 fp64], [3x3 fp64])",
    );
}

// ---------------------------------------------------------------------
// Dtype-promotion matrix (Table 1 lattice).
// ---------------------------------------------------------------------

#[test]
fn lossy_promotion_lints_by_default_and_still_computes() {
    let _ = take_lints();
    let u = Vector::from_dense(&[1i64, 2]);
    let v = Vector::from_dense(&[0.5f32, 0.5]);
    let w = Vector::from_expr(&u + &v).unwrap();
    assert_eq!(w.dtype(), DType::Fp32);
    let lints = take_lints();
    assert_eq!(
        lints,
        vec!["`eWiseAdd`: lossy dtype promotion int64 ⊕ fp32 → fp32 \
             (int64: integer values exceed the float mantissa precision); \
             in eWiseAdd([2 int64], [2 fp32])"
            .to_string()]
    );
}

#[test]
fn strict_types_turns_lossy_promotion_into_an_error() {
    let _st = StrictTypes.enter();
    let u = Vector::from_dense(&[1i64, 2]);
    let v = Vector::from_dense(&[0.5f32, 0.5]);
    let err = Vector::from_expr(&u + &v).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: lossy dtype promotion int64 ⊕ fp32 → fp32 \
         (int64: integer values exceed the float mantissa precision); \
         in eWiseAdd([2 int64], [2 fp32])",
    );
}

#[test]
fn exact_promotions_stay_silent_even_in_strict_mode() {
    let _ = take_lints();
    let _st = StrictTypes.enter();
    let u = Vector::from_dense(&[1i16, 2]);
    let v = Vector::from_dense(&[0.5f64, 0.5]);
    let w = Vector::from_expr(&u + &v).unwrap();
    assert_eq!(w.dtype(), DType::Fp64);
    assert!(take_lints().is_empty());
}

#[test]
fn result_cast_into_narrower_target_lints_then_errors_in_strict_mode() {
    let _ = take_lints();
    let u = vf64(&[1.5, 2.5]);
    let mut w = Vector::new(2, DType::Int32);
    w.no_mask().assign(&u + &u).unwrap(); // default: lint, computes
    let lints = take_lints();
    assert_eq!(
        lints,
        vec![
            "`eWiseAdd`: result dtype fp64 does not fit output dtype int32 \
             (float values are truncated to integer); \
             in eWiseAdd([2 fp64], [2 fp64])"
                .to_string()
        ]
    );

    let _st = StrictTypes.enter();
    let err = w.no_mask().assign(&u + &u).unwrap_err();
    assert_invalid(
        err,
        "eWiseAdd",
        "invalid `eWiseAdd`: result dtype fp64 does not fit output dtype int32 \
         (float values are truncated to integer); \
         in eWiseAdd([2 fp64], [2 fp64])",
    );
}

// ---------------------------------------------------------------------
// Mask-domain lints.
// ---------------------------------------------------------------------

#[test]
fn complemented_empty_mask_lints() {
    let _ = take_lints();
    let u = vf64(&[1.0, 2.0]);
    let empty = Vector::new(2, DType::Bool);
    let mut w = Vector::new(2, DType::Fp64);
    w.masked_complement(&empty).assign(&u + &u).unwrap();
    let lints = take_lints();
    assert_eq!(
        lints,
        vec![
            "`eWiseAdd`: complemented mask has no stored values, so it selects \
             the entire output; in eWiseAdd([2 fp64], [2 fp64])"
                .to_string()
        ]
    );
    assert_eq!(w.to_dense_f64(), vec![2.0, 4.0]);
}

#[test]
fn replace_without_a_mask_lints() {
    let _ = take_lints();
    let u = vf64(&[1.0, 2.0]);
    let mut w = Vector::new(2, DType::Fp64);
    let _rp = Replace.enter();
    w.no_mask().assign(&u + &u).unwrap();
    let lints = take_lints();
    assert_eq!(
        lints,
        vec![
            "`eWiseAdd`: replace without a mask has no effect beyond a full \
             overwrite; in eWiseAdd([2 fp64], [2 fp64])"
                .to_string()
        ]
    );
}

// ---------------------------------------------------------------------
// Provenance: the typed fields every diagnostic must carry.
// ---------------------------------------------------------------------

#[test]
fn diagnostics_carry_op_reason_and_rendered_expression() {
    let _sr = ArithmeticSemiring.enter();
    let a = m(2, 3);
    let u = vf64(&[1.0, 2.0]);
    let err = Vector::from_expr(a.mxv(&u)).unwrap_err();
    match err {
        PygbError::Invalid { op, reason, expr } => {
            assert_eq!(op, "mxv");
            assert!(reason.contains("2x3") && reason.contains('2'), "{reason}");
            assert_eq!(expr, "mxv([2x3 fp64], [2 fp64])");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Transposed operands are analyzed at their logical shape: `Aᵀ @ u`
/// conforms when `A`'s row count matches, and the diagnostic renders
/// the transposed shape when it does not.
#[test]
fn transpose_is_analyzed_at_logical_shape() {
    let _sr = ArithmeticSemiring.enter();
    let a = m(3, 2); // Aᵀ is 2x3
    let u = vf64(&[1.0, 2.0, 3.0]);
    assert!(Vector::from_expr(a.t().mxv(&u)).is_ok());
    let short = vf64(&[1.0, 2.0]);
    let err = Vector::from_expr(a.t().mxv(&short)).unwrap_err();
    assert_invalid(
        err,
        "mxv",
        "invalid `mxv`: matrix is 2x3 but vector has size 2 (need 3); \
         in mxv([2x3 fp64], [2 fp64])",
    );
}
