//! Fig. 3: constructing PyGB containers from every supported source —
//! Python-list analogs, NumPy/SciPy/NetworkX analogs, Matrix Market
//! files — and extracting data back out.

use pygb::prelude::*;
use pygb_io::{dense, generators, matrix_market};

#[test]
fn fig3a_sparse_coordinate_form() {
    // m = gb.Matrix((vals, (row_idx, col_idx)), shape=(r, c))
    let m = Matrix::from_coo(&[1.0f64, 2.0, 3.0], &[0, 1, 2], &[2, 0, 1], (3, 3)).unwrap();
    assert_eq!(m.nvals(), 3);
    assert_eq!(m.get(1, 0).unwrap().as_f64(), 2.0);

    // v = gb.Vector((vals, idx), shape=(l,))
    let v = Vector::from_pairs(5, [(4usize, 9i64), (0, 1)]).unwrap();
    assert_eq!(v.nvals(), 2);
    assert_eq!(v.get(4).unwrap().as_i64(), 9);
}

#[test]
fn fig3a_dense_form() {
    // m = gb.Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    let m = Matrix::from_dense(&[vec![1i64, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]).unwrap();
    assert_eq!(m.shape(), (3, 3));
    assert_eq!(m.nvals(), 9);
    assert_eq!(m.dtype(), DType::Int64); // Python default int

    // v = gb.Vector([1, 2, 3, 4, 5])
    let v = Vector::from_dense(&[1i64, 2, 3, 4, 5]);
    assert_eq!(v.nvals(), 5);
}

#[test]
fn fig3b_numpy_random() {
    // m = gb.Matrix(np.random.rand(3, 3))
    let m = dense::random_matrix(3, 3, 1234);
    assert_eq!(m.shape(), (3, 3));
    assert_eq!(m.nvals(), 9);
    assert_eq!(m.dtype(), DType::Fp64);
    // Deterministic per seed.
    let m2 = dense::random_matrix(3, 3, 1234);
    assert_eq!(m.extract_triples(), m2.extract_triples());
}

#[test]
fn fig3b_scipy_diags() {
    // m = gb.Matrix(sc.sparse.diags([1, 1, 1], [-1, 0, 1], shape=(3, 3)))
    let m = dense::diags(&[1.0, 1.0, 1.0], &[-1, 0, 1], (3, 3)).unwrap();
    assert_eq!(m.nvals(), 7);
    for i in 0..3 {
        assert_eq!(m.get(i, i).unwrap().as_f64(), 1.0);
    }
    assert!(m.get(0, 2).is_none());
}

#[test]
fn fig3b_networkx_balanced_tree() {
    // m = gb.Matrix(nx.balanced_tree(r=4, h=8)) — scaled to r=4, h=3
    // for test time: n = (4^4 - 1) / 3 = 85.
    let tree = generators::balanced_tree(4, 3);
    assert_eq!(tree.n, 85);
    let m = tree.to_pygb(DType::Fp64);
    assert_eq!(m.shape(), (85, 85));
    assert_eq!(m.nvals(), 2 * 84); // undirected: both directions
}

#[test]
fn dtype_override_at_construction() {
    // "The user may optionally specify a data type to cast the values to."
    let boxed = [(0usize, 0usize, DynScalar::from(3.9f64))];
    let m = Matrix::from_triples_dyn(1, 1, &boxed, Some(DType::Int8)).unwrap();
    assert_eq!(m.dtype(), DType::Int8);
    assert_eq!(m.get(0, 0).unwrap().as_i64(), 3); // cast truncates
}

#[test]
fn matrix_market_roundtrip_both_paths() {
    let edges = generators::erdos_renyi(32, 64, 77);
    let text = matrix_market::to_string(&edges);

    let native = matrix_market::read_native(text.as_bytes()).unwrap();
    let interpreted = matrix_market::read_interpreted(text.as_bytes(), DType::Fp64).unwrap();

    assert_eq!(native.nvals(), 64);
    assert_eq!(interpreted.nvals(), 64);
    for (i, j, v) in native.iter() {
        assert_eq!(interpreted.get(i, j).unwrap().as_f64(), v, "({i},{j})");
    }
}

#[test]
fn extract_tuples_roundtrip() {
    // Fig. 11's third leg: data out must equal data in.
    let edges = generators::erdos_renyi(24, 50, 5);
    let m = edges.to_pygb(DType::Fp64);
    let triples = m.extract_triples();
    assert_eq!(triples.len(), 50);
    let rebuilt = Matrix::from_triples_dyn(24, 24, &triples, Some(DType::Fp64)).unwrap();
    assert_eq!(rebuilt.extract_triples(), triples);
}

#[test]
fn copy_on_write_isolates_construction_sources() {
    let m = Matrix::from_dense(&[vec![1.0f64]]).unwrap();
    let mut copy = m.clone();
    copy.set(0, 0, 2.0f64).unwrap();
    assert_eq!(m.get(0, 0).unwrap().as_f64(), 1.0);
    assert_eq!(copy.get(0, 0).unwrap().as_f64(), 2.0);
}

#[test]
fn construction_errors() {
    // Ragged dense data.
    assert!(Matrix::from_dense(&[vec![1i64, 2], vec![3]]).is_err());
    // Mismatched COO arrays.
    assert!(Matrix::from_coo(&[1.0f64], &[0, 1], &[0], (2, 2)).is_err());
    // Out-of-range indices.
    assert!(Matrix::from_triples(2, 2, [(5usize, 0usize, 1i64)]).is_err());
    assert!(Vector::from_pairs(3, [(3usize, 1i64)]).is_err());
    // Duplicate coordinates.
    assert!(Matrix::from_triples(2, 2, [(0usize, 0usize, 1i64), (0, 0, 2)]).is_err());
}

#[test]
fn every_dtype_constructs_and_casts() {
    use pygb::dtype::ALL_DTYPES;
    let m = Matrix::from_dense(&[vec![1.0f64, 0.0], vec![2.5, -3.0]]).unwrap();
    for dtype in ALL_DTYPES {
        let cast = m.cast(dtype);
        assert_eq!(cast.dtype(), dtype);
        assert_eq!(cast.nvals(), 4, "{dtype}");
        let fresh = Matrix::new(2, 2, dtype);
        assert_eq!(fresh.dtype(), dtype);
    }
}
