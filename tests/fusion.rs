//! Section V's planned deferred-chain compilation, implemented and
//! verified: `f(A ⊕.⊗ u)` as one module vs. two.

use pygb::prelude::*;

fn graph() -> Matrix {
    Matrix::from_dense(&[
        vec![0.0f64, 0.5, 0.5],
        vec![1.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0],
    ])
    .unwrap()
}

#[test]
fn fused_chain_matches_two_step_evaluation() {
    let m = graph();
    let u = Vector::from_dense(&[0.3f64, 0.3, 0.4]);

    // Two dispatches: vxm, then apply.
    let two_step = {
        let _sr = ArithmeticSemiring.enter();
        let mut t = Vector::new(3, DType::Fp64);
        t.no_mask().assign(u.vxm(&m)).unwrap();
        let _op = UnaryOp::bound("Plus", 0.05).unwrap().enter();
        let mut out = Vector::new(3, DType::Fp64);
        out.no_mask().assign(apply(&t)).unwrap();
        out
    };

    // One dispatch: the fused chain.
    let fused = {
        let _sr = ArithmeticSemiring.enter();
        let _op = UnaryOp::bound("Plus", 0.05).unwrap().enter();
        let expr = u.vxm(&m).then_apply().unwrap();
        let mut out = Vector::new(3, DType::Fp64);
        out.no_mask().assign(expr).unwrap();
        out
    };

    assert_eq!(two_step.extract_pairs(), fused.extract_pairs());
}

#[test]
fn fused_chain_is_one_dispatch() {
    let m = graph();
    let u = Vector::from_dense(&[1.0f64, 1.0, 1.0]);
    let _sr = ArithmeticSemiring.enter();
    let _op = UnaryOp::bound("Times", 2.0).unwrap().enter();

    // Warm both code paths so compiles don't muddy the count.
    let warm = u.vxm(&m).then_apply().unwrap();
    let mut out = Vector::new(3, DType::Fp64);
    out.no_mask().assign(warm).unwrap();

    let before = pygb::runtime().cache().stats().snapshot();
    let expr = u.vxm(&m).then_apply().unwrap();
    out.no_mask().assign(expr).unwrap();
    let after = pygb::runtime().cache().stats().snapshot();
    assert_eq!(
        after.total_dispatches() - before.total_dispatches(),
        1,
        "the whole chain must be one module dispatch"
    );
}

#[test]
fn fused_chain_respects_mask_accum_replace() {
    // The write controls apply to the *applied* result, once.
    let m = graph();
    let u = Vector::from_dense(&[1.0f64, 1.0, 1.0]);
    let mask = Vector::from_pairs(3, [(0usize, true)]).unwrap();
    let _sr = ArithmeticSemiring.enter();
    let _op = UnaryOp::bound("Times", 10.0).unwrap().enter();

    let mut out = Vector::from_pairs(3, [(2usize, 99.0f64)]).unwrap();
    let expr = m.mxv(&u).then_apply().unwrap();
    out.masked(&mask).replace().assign(expr).unwrap();
    // Only position 0 written (masked); old entry at 2 cleared (replace).
    assert_eq!(out.nvals(), 1);
    assert_eq!(out.get(0).unwrap().as_f64(), 10.0); // (0.5 + 0.5) · 10
}

#[test]
fn mxv_and_vxm_orientations() {
    let m = graph();
    let u = Vector::from_dense(&[1.0f64, 2.0, 3.0]);
    let _sr = ArithmeticSemiring.enter();
    let _op = UnaryOp::new("AdditiveInverse").unwrap().enter();

    let mxv = Vector::from_expr(m.mxv(&u).then_apply().unwrap()).unwrap();
    let vxm = Vector::from_expr(u.vxm(&m).then_apply().unwrap()).unwrap();
    // mxv row 0: −(0.5·2 + 0.5·3) = −2.5; vxm col 0: −(1·2) = −2.
    assert_eq!(mxv.get(0).unwrap().as_f64(), -2.5);
    assert_eq!(vxm.get(0).unwrap().as_f64(), -2.0);
}

#[test]
fn fusion_requires_a_product_head() {
    let u = Vector::from_dense(&[1.0f64]);
    let v = Vector::from_dense(&[2.0f64]);
    let err = (&u + &v).then_apply().unwrap_err();
    assert!(matches!(err, PygbError::Unsupported { .. }));
}

#[test]
fn fusion_without_unary_in_context_errors_at_eval() {
    let m = graph();
    let u = Vector::from_dense(&[1.0f64, 1.0, 1.0]);
    let _sr = ArithmeticSemiring.enter();
    let expr = m.mxv(&u).then_apply().unwrap(); // no unary in context
    let mut out = Vector::new(3, DType::Fp64);
    let err = out.no_mask().assign(expr).unwrap_err();
    assert!(matches!(
        err,
        PygbError::MissingOperator {
            needed: "unary operator",
            ..
        }
    ));
}
