//! The dynamic-compilation machinery end-to-end through the DSL:
//! module keys, cache behaviour, trace stages, and the Section V
//! combinatorics.

use pygb::prelude::*;
use pygb_jit::{CacheOutcome, JitRuntime, ModuleKey, Stage};

/// An isolated runtime with PyGB's factories (the global one is shared
/// across tests in this binary, so counting tests build their own).
fn isolated_runtime() -> JitRuntime {
    let rt = JitRuntime::in_memory();
    pygb::kernels::register_all(rt.registry());
    rt
}

#[test]
fn one_compile_per_distinct_key_through_the_dsl() {
    // Run the same operation many times on the global runtime: the
    // compile count for its key must rise by exactly one (warm-up may
    // or may not compile depending on test order — measure the delta
    // across a *novel* dtype combination instead).
    let u = Vector::from_dense(&[1i16, 2]); // int16: unlikely elsewhere
    let v = Vector::from_dense(&[3i16, 4]);
    let before = pygb::runtime().cache().stats().snapshot();
    for _ in 0..10 {
        let _op = BinaryOp::new("Max").unwrap().enter();
        let w = Vector::from_expr(&u * &v).unwrap();
        assert_eq!(w.get(0).unwrap().as_i64(), 3);
    }
    let after = pygb::runtime().cache().stats().snapshot();
    let new_compiles = after.compiles - before.compiles;
    let new_dispatches = after.total_dispatches() - before.total_dispatches();
    assert!(new_compiles <= 1, "expected ≤1 compile, got {new_compiles}");
    assert_eq!(new_dispatches, 10);
}

#[test]
fn distinct_dtypes_are_distinct_modules() {
    let rt = isolated_runtime();
    for dtype in ["fp64", "fp32", "int64", "int32", "bool"] {
        let key = ModuleKey::new("apply_v")
            .with("c_type", dtype)
            .with("unary", "Identity");
        let (_, outcome) = rt
            .cache()
            .get_or_compile(&key, |k| rt.registry().instantiate(k))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Compiled, "{dtype}");
    }
    assert_eq!(rt.cache().resident_modules(), 5);
    assert_eq!(rt.cache().stats().snapshot().compiles, 5);
}

#[test]
fn distinct_operators_are_distinct_modules() {
    let rt = isolated_runtime();
    for op in ["Plus", "Minus", "Times", "Min", "Max"] {
        let key = ModuleKey::new("ewise_add_v")
            .with("c_type", "fp64")
            .with("binop", op);
        rt.cache()
            .get_or_compile(&key, |k| rt.registry().instantiate(k))
            .unwrap();
    }
    assert_eq!(rt.cache().resident_modules(), 5);
}

#[test]
fn structural_flags_partition_the_key_space() {
    // at/bt/complement/replace all enter the key, as in the paper's
    // counting argument.
    let rt = isolated_runtime();
    let mut count = 0;
    for at in ["0", "1"] {
        for replace in ["0", "1"] {
            let key = ModuleKey::new("mxv")
                .with("c_type", "fp64")
                .with("semiring", "Plus_Zero_Times")
                .with("at", at)
                .with("replace", replace);
            let (_, outcome) = rt
                .cache()
                .get_or_compile(&key, |k| rt.registry().instantiate(k))
                .unwrap();
            assert_eq!(outcome, CacheOutcome::Compiled);
            count += 1;
        }
    }
    assert_eq!(rt.cache().resident_modules(), count);
}

#[test]
fn dispatch_traces_cover_fig9_stages() {
    let rt = pygb::runtime();
    rt.set_tracing(true);
    let a = Matrix::from_dense(&[vec![1u32, 0], vec![0, 1]]).unwrap();
    {
        let _sr = ArithmeticSemiring.enter();
        let _c = Matrix::from_expr(a.matmul(&a)).unwrap();
    }
    let traces = rt.take_traces();
    rt.set_tracing(false);
    assert!(!traces.is_empty());
    let t = traces.last().unwrap();
    for stage in [
        Stage::ExpressionConstruction,
        Stage::TypeInference,
        Stage::KeyHash,
        Stage::ModuleRetrieval,
        Stage::Invocation,
    ] {
        assert!(t.stage_ns(stage).is_some(), "missing stage {stage:?}");
    }
    assert!(t.outcome.is_some());
    assert!(t.key.contains("mxm"));
    assert!(t.key.contains("uint32"));
    assert!(t.total_ns() >= t.overhead_ns());
}

#[test]
fn warm_dispatch_is_much_cheaper_than_compile() {
    let rt = isolated_runtime();
    let key = ModuleKey::new("reduce_v_scalar")
        .with("c_type", "fp64")
        .with("monoid", "Plus_Zero");
    rt.cache()
        .get_or_compile(&key, |k| rt.registry().instantiate(k))
        .unwrap();
    for _ in 0..100 {
        let (_, outcome) = rt
            .cache()
            .get_or_compile(&key, |k| rt.registry().instantiate(k))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
    }
    let snap = rt.cache().stats().snapshot();
    assert_eq!(snap.compiles, 1);
    assert_eq!(snap.memory_hits, 100);
    assert!(snap.hit_rate() > 0.98);
}

#[test]
fn section_v_combinatorics() {
    use pygb_jit::combinatorics as comb;
    assert_eq!(comb::mxm_type_combinations(), 14_641);
    assert_eq!(comb::accumulator_combinations(), 22_627);
    let total = comb::mxm_total_combinations();
    assert!(
        (1_000_000_000_000..100_000_000_000_000).contains(&total),
        "total = {total} should be trillions"
    );
    // A real session touches a vanishing fraction of the space.
    assert!(comb::coverage_fraction(1000) < 1e-8);
}

#[test]
fn disk_index_amortizes_across_restarts() {
    let dir = std::env::temp_dir().join(format!("pygb-it-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |expect: CacheOutcome| {
        let rt = JitRuntime::with_disk_index(&dir);
        pygb::kernels::register_all(rt.registry());
        let key = ModuleKey::new("apply_m")
            .with("c_type", "fp64")
            .with("unary", "LogicalNot");
        let (_, outcome) = rt
            .cache()
            .get_or_compile(&key, |k| rt.registry().instantiate(k))
            .unwrap();
        assert_eq!(outcome, expect);
    };
    run(CacheOutcome::Compiled); // first process: cold
    run(CacheOutcome::DiskHit); // second process: warm from disk
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernel_errors_propagate_through_dispatch() {
    // A dimension error is now caught by the static analyzer before any
    // kernel dispatches, and surfaces as a typed diagnostic naming the
    // op and both operand shapes — not a panic, and not a late JIT
    // error from inside GBTL.
    let _sr = ArithmeticSemiring.enter();
    let a = Matrix::new(2, 3, DType::Fp64);
    let b = Matrix::new(4, 2, DType::Fp64); // inner dims clash
    let err = Matrix::from_expr(a.matmul(&b)).unwrap_err();
    match err {
        PygbError::Invalid {
            op,
            ref reason,
            ref expr,
        } => {
            assert_eq!(op, "mxm");
            assert!(reason.contains("2x3") && reason.contains("4x2"), "{reason}");
            assert_eq!(expr, "mxm([2x3 fp64], [4x2 fp64])");
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert_eq!(
        err.to_string(),
        "invalid `mxm`: inner dimensions disagree: 2x3 @ 4x2; in mxm([2x3 fp64], [4x2 fp64])"
    );
}
