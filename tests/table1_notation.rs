//! Table I, row by row: every GraphBLAS operation form in its PyGB
//! notation, executed through the DSL and checked against the
//! mathematical definition — including the mask / accumulate / replace
//! decorations the table's left column carries.

use pygb::prelude::*;

fn a() -> Matrix {
    Matrix::from_dense(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]).unwrap()
}

fn b() -> Matrix {
    Matrix::from_dense(&[vec![5.0f64, 6.0], vec![7.0, 8.0]]).unwrap()
}

fn u() -> Vector {
    Vector::from_dense(&[1.0f64, 2.0])
}

fn v() -> Vector {
    Vector::from_dense(&[10.0f64, 20.0])
}

#[test]
fn mxm_c_eq_a_matmul_b() {
    // C⟨M, z⟩ = C ⊙ A ⊕.⊗ B   →   C[M, z] = A @ B
    let _sr = ArithmeticSemiring.enter();
    let c = Matrix::from_expr(a().matmul(&b())).unwrap();
    assert_eq!(c.get(0, 0).unwrap().as_f64(), 19.0); // 1·5 + 2·7
    assert_eq!(c.get(0, 1).unwrap().as_f64(), 22.0);
    assert_eq!(c.get(1, 0).unwrap().as_f64(), 43.0);
    assert_eq!(c.get(1, 1).unwrap().as_f64(), 50.0);
}

#[test]
fn mxm_masked_with_replace() {
    let _sr = ArithmeticSemiring.enter();
    let mask = Matrix::from_triples(2, 2, [(0usize, 0usize, true)]).unwrap();
    let mut c = Matrix::from_dense(&[vec![100.0f64, 100.0], vec![100.0, 100.0]]).unwrap();
    c.masked(&mask).replace().assign(a().matmul(&b())).unwrap();
    assert_eq!(c.get(0, 0).unwrap().as_f64(), 19.0);
    assert_eq!(c.nvals(), 1); // replace cleared the rest

    let mut c2 = Matrix::from_dense(&[vec![100.0f64, 100.0], vec![100.0, 100.0]]).unwrap();
    c2.masked(&mask).assign(a().matmul(&b())).unwrap();
    assert_eq!(c2.nvals(), 4); // merge keeps masked-out entries
    assert_eq!(c2.get(1, 1).unwrap().as_f64(), 100.0);
}

#[test]
fn mxv_w_eq_a_matmul_u() {
    // w⟨m, z⟩ = w ⊙ A ⊕.⊗ u   →   w[m, z] = A @ u
    let _sr = ArithmeticSemiring.enter();
    let w = Vector::from_expr(a().mxv(&u())).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 5.0); // 1·1 + 2·2
    assert_eq!(w.get(1).unwrap().as_f64(), 11.0);
}

#[test]
fn ewise_mult_matrix_and_vector() {
    // C[M, z] = A * B ; w[m, z] = u * v
    let c = Matrix::from_expr(a().ewise_mult(&b())).unwrap();
    assert_eq!(c.get(1, 1).unwrap().as_f64(), 32.0);
    let w = Vector::from_expr(&u() * &v()).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 10.0);
    assert_eq!(w.get(1).unwrap().as_f64(), 40.0);
}

#[test]
fn ewise_add_matrix_and_vector() {
    // C[M, z] = A + B ; w[m, z] = u + v
    let c = Matrix::from_expr(&a() + &b()).unwrap();
    assert_eq!(c.get(0, 0).unwrap().as_f64(), 6.0);
    let w = Vector::from_expr(u().ewise_add(&v())).unwrap();
    assert_eq!(w.get(1).unwrap().as_f64(), 22.0);
}

#[test]
fn reduce_row_form() {
    // w[m, z] = reduce(monoid, A)
    let _m = MaxMonoid.enter();
    let w = Vector::from_expr(pygb::reduce_rows(&a())).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 2.0);
    assert_eq!(w.get(1).unwrap().as_f64(), 4.0);
}

#[test]
fn reduce_scalar_forms() {
    // s = reduce(A) ; s = reduce(u)
    assert_eq!(reduce(&a()).unwrap().as_f64(), 10.0);
    assert_eq!(reduce(&u()).unwrap().as_f64(), 3.0);
    // With an explicit monoid in context:
    let _m = MinMonoid.enter();
    assert_eq!(reduce(&a()).unwrap().as_f64(), 1.0);
}

#[test]
fn apply_forms() {
    // C[M, z] = apply(A) ; w[m, z] = apply(u)
    let _op = UnaryOp::new("MultiplicativeInverse").unwrap().enter();
    let c = Matrix::from_expr(pygb::apply(&a())).unwrap();
    assert_eq!(c.get(0, 1).unwrap().as_f64(), 0.5);
    let w = Vector::from_expr(pygb::apply(&u())).unwrap();
    assert_eq!(w.get(1).unwrap().as_f64(), 0.5);
}

#[test]
fn transpose_form() {
    // C[M, z] = A.T
    let c = Matrix::from_expr(a().t().expr()).unwrap();
    assert_eq!(c.get(0, 1).unwrap().as_f64(), 3.0);
    assert_eq!(c.get(1, 0).unwrap().as_f64(), 2.0);
}

#[test]
fn extract_forms() {
    // C[M, z] = A[i, j] ; w[m, z] = u[i]
    let big = Matrix::from_dense(&[
        vec![1.0f64, 2.0, 3.0],
        vec![4.0, 5.0, 6.0],
        vec![7.0, 8.0, 9.0],
    ])
    .unwrap();
    let c = Matrix::from_expr(big.extract(1..3, 0..2)).unwrap();
    assert_eq!(c.shape(), (2, 2));
    assert_eq!(c.get(0, 0).unwrap().as_f64(), 4.0);
    assert_eq!(c.get(1, 1).unwrap().as_f64(), 8.0);

    let w = Vector::from_expr(u().extract(vec![1usize, 0])).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 2.0);
    assert_eq!(w.get(1).unwrap().as_f64(), 1.0);
}

#[test]
fn assign_container_forms() {
    // C⟨M, z⟩(i, j) = C(i, j) ⊙ A   →   C[M, z][i, j] = A
    let mut c = Matrix::new(3, 3, DType::Fp64);
    c.set(0, 0, 99.0f64).unwrap();
    c.no_mask().region(1..3, 1..3).assign(&a()).unwrap();
    assert_eq!(c.get(0, 0).unwrap().as_f64(), 99.0); // outside region
    assert_eq!(c.get(1, 1).unwrap().as_f64(), 1.0);
    assert_eq!(c.get(2, 2).unwrap().as_f64(), 4.0);

    // w⟨m, z⟩(i) = w(i) ⊙ u   →   w[m, z][i] = u
    let mut w = Vector::new(4, DType::Fp64);
    w.set(0, 50.0f64).unwrap();
    w.no_mask().slice(2..4).assign(&u()).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 50.0);
    assert_eq!(w.get(2).unwrap().as_f64(), 1.0);
    assert_eq!(w.get(3).unwrap().as_f64(), 2.0);
}

#[test]
fn assign_constant_forms() {
    // page_rank[:] = 1.0 / rows (Fig. 7) — constant over a slice
    let mut w = Vector::new(4, DType::Fp64);
    w.no_mask().slice(..).assign_scalar(0.25f64).unwrap();
    assert_eq!(w.to_dense_f64(), vec![0.25; 4]);

    // levels[frontier][:] = depth (Fig. 2b) — constant under a mask
    let mut levels = Vector::new(4, DType::UInt64);
    let frontier = Vector::from_pairs(4, [(1usize, true), (3, true)]).unwrap();
    levels.masked(&frontier).assign_scalar(7u64).unwrap();
    assert_eq!(levels.nvals(), 2);
    assert_eq!(levels.get(3).unwrap().as_i64(), 7);
}

#[test]
fn accumulate_assign() {
    // w[m, z] += expr with an accumulator from context (Fig. 4a)
    let _sr = MinPlusSemiring.enter();
    let _acc = Accumulator::new("Min").unwrap().enter();
    let mut w = Vector::from_dense(&[5.0f64, 5.0]);
    let delta = Vector::from_dense(&[3.0f64, 9.0]);
    w.no_mask().accum_assign(&delta).unwrap();
    assert_eq!(w.get(0).unwrap().as_f64(), 3.0); // min(5, 3)
    assert_eq!(w.get(1).unwrap().as_f64(), 5.0); // min(5, 9)
}

#[test]
fn accumulate_falls_back_to_semiring_monoid() {
    // Paper: without an explicit Accumulator, += uses the semiring's
    // monoid (MinMonoid from MinPlusSemiring).
    let d = Vector::from_dense(&[9.0f64]);
    {
        let _sr = MinPlusSemiring.enter();
        let mut w = Vector::from_dense(&[5.0f64]);
        w.no_mask().accum_assign(&d).unwrap();
        assert_eq!(w.get(0).unwrap().as_f64(), 5.0); // min
    }
    // And += without any context is an error.
    let mut w2 = Vector::from_dense(&[1.0f64]);
    let err = w2.no_mask().accum_assign(&d).unwrap_err();
    assert!(matches!(err, PygbError::MissingOperator { .. }));
}

#[test]
fn submatrix_assign_of_expression_forces_temp() {
    // Sec. IV: C[2:4, 2:4] = A @ B — evaluated via an intermediate.
    let _sr = ArithmeticSemiring.enter();
    let mut c = Matrix::new(4, 4, DType::Fp64);
    c.no_mask()
        .region(2..4, 2..4)
        .assign(a().matmul(&b()))
        .unwrap();
    assert_eq!(c.get(2, 2).unwrap().as_f64(), 19.0);
    assert_eq!(c.get(3, 3).unwrap().as_f64(), 50.0);
    assert!(c.get(0, 0).is_none());
}

#[test]
fn missing_semiring_errors_at_evaluation() {
    // Expression built with no semiring in context: error surfaces at
    // assignment (the paper's Python would raise at evaluation).
    let expr = a().matmul(&b());
    let mut c = Matrix::new(2, 2, DType::Fp64);
    let err = c.no_mask().assign(expr).unwrap_err();
    assert!(matches!(
        err,
        PygbError::MissingOperator {
            needed: "semiring",
            ..
        }
    ));
}

#[test]
fn transposed_operands_in_table_forms() {
    // "input matrices A and B may be optionally transposed"
    let _sr = ArithmeticSemiring.enter();
    let c1 = Matrix::from_expr(a().t().matmul(&b())).unwrap();
    let at = Matrix::from_expr(a().t().expr()).unwrap();
    let c2 = Matrix::from_expr(at.matmul(&b())).unwrap();
    assert_eq!(c1.extract_triples(), c2.extract_triples());

    let c3 = Matrix::from_expr(a().matmul(b().t())).unwrap();
    let bt = Matrix::from_expr(b().t().expr()).unwrap();
    let c4 = Matrix::from_expr(a().matmul(&bt)).unwrap();
    assert_eq!(c3.extract_triples(), c4.extract_triples());
}
