//! Cross-crate integration tests for the nonblocking execution
//! runtime: `pygb` containers defer into the `pygb-runtime` op-DAG,
//! fused kernels dispatch through `pygb-jit`, and execution lands in
//! `gbtl` — the full stack driven end to end.

use pygb::{
    apply, reduce, ArithmeticSemiring, BinaryOp, DType, LogicalSemiring, Matrix, Replace, UnaryOp,
    Vector,
};
use pygb_integration::{
    assert_matrices_identical, assert_vectors_identical, fig1_graph, measure_dispatches,
};

fn dense(vals: &[f64]) -> Vector {
    let mut v = Vector::new(vals.len(), DType::Fp64);
    for (i, &x) in vals.iter().enumerate() {
        v.set(i, x).unwrap();
    }
    v
}

/// Rule 3 end to end: materializing an SpMV into a temporary and then
/// assigning the temporary under mask+replace collapses back into ONE
/// masked SpMV dispatch.
#[test]
fn ref_collapse_fuses_masked_spmv() {
    let g = fig1_graph();
    let run = |frontier: &mut Vector, levels: &Vector| {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let t = Vector::from_expr(g.t().mxv(frontier)).unwrap();
        frontier.masked_complement(levels).assign(&t).unwrap();
    };

    let mut levels = Vector::new(7, DType::UInt64);
    levels.set(3, 1u64).unwrap();
    let mut frontier = Vector::new(7, DType::Bool);
    frontier.set(3, true).unwrap();
    run(&mut frontier, &levels); // warm the masked-mxv kernel

    let mut frontier2 = Vector::new(7, DType::Bool);
    frontier2.set(3, true).unwrap();
    let ((), d) = measure_dispatches(|| run(&mut frontier2, &levels));
    frontier2.settle().unwrap();
    assert_eq!(d.invocations, 1, "temp + masked assign must fuse");
    assert_eq!(d.fused, 1);
    assert_eq!(d.deferred, 2);
    // The collapsed node carries the consumer's complemented mask, so
    // the substrate must have picked a *masked* kernel for the single
    // fused dispatch. The frontier's density (1/7) sits above the
    // push/pull threshold, so the sparsity analysis statically hints
    // pull and the runtime honors it by flipping to the cached
    // transpose — the transposed operand no longer forces push.
    assert_eq!(
        d.sel_masked_pull, 1,
        "fused SpMV must select masked pull from the static density hint"
    );
    assert_eq!(d.sel_pull + d.sel_masked_push + d.sel_push, 0);

    // Same result as the direct blocking spelling.
    let mut blocking = Vector::new(7, DType::Bool);
    blocking.set(3, true).unwrap();
    {
        let _sr = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let expr = g.t().mxv(&blocking.clone());
        blocking.masked_complement(&levels).assign(expr).unwrap();
    }
    assert_vectors_identical(&blocking, &frontier2, "rule 3");
}

/// Rule 2 end to end: `apply(mxv(...))` through a temporary becomes a
/// single `vxm_apply` composite dispatch.
#[test]
fn apply_after_mxv_fuses() {
    let g = fig1_graph();
    let u = dense(&[1.0; 7]);
    let run = |out: &mut Vector| {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = ArithmeticSemiring.enter();
        let t = Vector::from_expr(u.vxm(&g)).unwrap();
        let _op = UnaryOp::bound("Plus", 0.5).unwrap().enter();
        out.no_mask().assign(apply(&t)).unwrap();
    };
    let mut warm = Vector::new(7, DType::Fp64);
    run(&mut warm);

    let mut out = Vector::new(7, DType::Fp64);
    let ((), d) = measure_dispatches(|| run(&mut out));
    out.settle().unwrap();
    assert_eq!(d.invocations, 1, "vxm + apply must fuse");
    assert_eq!(d.fused, 1);

    // Blocking reference through the eager two-dispatch spelling.
    let mut blocking = Vector::new(7, DType::Fp64);
    {
        let _sr = ArithmeticSemiring.enter();
        let t = Vector::from_expr(u.vxm(&g)).unwrap();
        let _op = UnaryOp::bound("Plus", 0.5).unwrap().enter();
        blocking.no_mask().assign(apply(&t)).unwrap();
    }
    assert_vectors_identical(&blocking, &out, "rule 2");
}

/// Rule 1 with a distinct third operand: `t = u + v; w = t * x`
/// becomes one `fused_ewise_chain` dispatch.
#[test]
fn ewise_chain_with_third_operand_fuses() {
    let u = dense(&[1.0, 2.0, 3.0]);
    let v = dense(&[10.0, 20.0, 30.0]);
    let x = dense(&[2.0, 2.0, 2.0]);
    let run = |w: &mut Vector| {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let t = Vector::from_expr(&u + &v).unwrap();
        w.no_mask().assign(&t * &x).unwrap();
    };
    let mut warm = Vector::new(3, DType::Fp64);
    run(&mut warm);

    let mut w = Vector::new(3, DType::Fp64);
    let ((), d) = measure_dispatches(|| run(&mut w));
    w.settle().unwrap();
    assert_eq!(d.invocations, 1);
    assert_eq!(d.fused, 1);
    assert_eq!(w.to_dense_f64(), vec![22.0, 44.0, 66.0]);
}

/// Rule 4 end to end: an eWise producer feeding only a reduction runs
/// as one `fused_ewise_reduce` dispatch and still materializes the
/// vector for later reads.
#[test]
fn reduce_after_ewise_fuses() {
    let u = dense(&[1.0, 2.0, 3.0, 4.0]);
    let mut d_vec = Vector::new(4, DType::Fp64);
    let mut run = || {
        let _nb = pygb_runtime::nonblocking().unwrap();
        d_vec.no_mask().assign(&u * &u).unwrap();
        reduce(&d_vec).unwrap().as_f64()
    };
    assert_eq!(run(), 30.0); // warm

    let (total, d) = measure_dispatches(run);
    assert_eq!(total, 30.0);
    assert_eq!(d.invocations, 1, "eWise + reduce must fuse");
    assert_eq!(d.fused, 1);
    assert_eq!(d_vec.to_dense_f64(), vec![1.0, 4.0, 9.0, 16.0]);
}

/// Deferred operations under mask, accumulator, and replace produce
/// bitwise-identical containers to blocking mode.
#[test]
fn masked_accumulated_ops_match_blocking() {
    let u = dense(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    let v = dense(&[10.0, 0.0, 30.0, 0.0, 50.0]);
    let mut mask = Vector::new(5, DType::Bool);
    mask.set(0, true).unwrap();
    mask.set(2, true).unwrap();
    mask.set(3, true).unwrap();

    let body = |w: &mut Vector| -> pygb::Result<()> {
        let _acc = pygb::Accumulator::new("Plus")?.enter();
        w.masked(&mask).accum_assign(&u + &v)?;
        let _b = BinaryOp::new("Max")?.enter();
        let snapshot = w.clone();
        w.masked_complement(&mask)
            .replace()
            .assign(&snapshot + &u)?;
        Ok(())
    };

    let mut blocking = dense(&[7.0, 7.0, 7.0, 7.0, 7.0]);
    body(&mut blocking).unwrap();

    let mut nonblocking = dense(&[7.0, 7.0, 7.0, 7.0, 7.0]);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        body(&mut nonblocking).unwrap();
    }
    assert_vectors_identical(&blocking, &nonblocking, "mask/accum/replace");
}

/// A deferred matrix product chain matches blocking mode.
#[test]
fn deferred_matrix_chain_matches_blocking() {
    let g = fig1_graph();
    let body = |b: &mut Matrix| -> pygb::Result<()> {
        let _sr = ArithmeticSemiring.enter();
        b.masked(&g).assign(g.matmul(g.t()))?;
        let _u = UnaryOp::bound("Times", 2.0)?.enter();
        let snapshot = b.clone();
        b.no_mask().assign(apply(&snapshot))?;
        Ok(())
    };

    let mut blocking = Matrix::new(7, 7, DType::Fp64);
    body(&mut blocking).unwrap();

    let mut nonblocking = Matrix::new(7, 7, DType::Fp64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        body(&mut nonblocking).unwrap();
    }
    assert_matrices_identical(&blocking, &nonblocking, "matrix chain");
}

/// A wave of data-independent SpMVs all lands correctly through the
/// parallel scheduler.
#[test]
fn independent_wave_executes_in_parallel_correctly() {
    let g = fig1_graph();
    let inputs: Vec<Vector> = (0..8).map(|k| dense(&[k as f64 + 1.0; 7])).collect();

    let mut blocking: Vec<Vector> = (0..8).map(|_| Vector::new(7, DType::Fp64)).collect();
    {
        let _sr = ArithmeticSemiring.enter();
        for (out, u) in blocking.iter_mut().zip(&inputs) {
            out.no_mask().assign(g.mxv(u)).unwrap();
        }
    }

    let mut nonblocking: Vec<Vector> = (0..8).map(|_| Vector::new(7, DType::Fp64)).collect();
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = ArithmeticSemiring.enter();
        for (out, u) in nonblocking.iter_mut().zip(&inputs) {
            out.no_mask().assign(g.mxv(u)).unwrap();
        }
    }
    for (i, (b, nb)) in blocking.iter().zip(&nonblocking).enumerate() {
        assert_vectors_identical(b, nb, &format!("wave output {i}"));
    }
}

/// Dtype promotion through deferred expressions matches blocking mode.
#[test]
fn promotion_matches_blocking() {
    let mut a = Vector::new(4, DType::Int32);
    let mut b = Vector::new(4, DType::Int64);
    for i in 0..4 {
        a.set(i, (i as i32) - 1).unwrap();
        b.set(i, (i as i64) * 100).unwrap();
    }

    let blocking = {
        let t = Vector::from_expr(&a + &b).unwrap();
        Vector::from_expr(&t + &a).unwrap()
    };
    let nonblocking = {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let t = Vector::from_expr(&a + &b).unwrap();
        let mut out = Vector::from_expr(&t + &a).unwrap();
        out.settle().unwrap();
        out
    };
    assert_eq!(blocking.dtype(), DType::Int64);
    assert_vectors_identical(&blocking, &nonblocking, "promotion");
}

/// Reads are flush points: `nvals` inside a scope observes the
/// deferred writes.
#[test]
fn nvals_is_a_flush_point() {
    let u = dense(&[1.0, 0.0, 3.0]);
    let mut w = Vector::new(3, DType::Fp64);
    let _nb = pygb_runtime::nonblocking().unwrap();
    w.no_mask().assign(&u * &u).unwrap();
    assert_eq!(w.nvals(), 3);
}

/// A container produced inside a nonblocking scope on a worker thread
/// is fully resolved once the scope exits, and can be read anywhere.
#[test]
fn worker_thread_scope_resolves_before_handoff() {
    let g = fig1_graph();
    let handle = std::thread::spawn(move || {
        let u = dense(&[1.0; 7]);
        let mut out = Vector::new(7, DType::Fp64);
        {
            let _nb = pygb_runtime::nonblocking().unwrap();
            let _sr = ArithmeticSemiring.enter();
            out.no_mask().assign(g.mxv(&u)).unwrap();
        }
        out.settle().unwrap();
        out
    });
    let out = handle.join().unwrap();
    assert!(out.nvals() > 0);
}

/// The four algorithm variants match their blocking transcriptions on
/// the Fig. 1 graph.
#[test]
fn algorithms_match_blocking_on_fig1() {
    let g = fig1_graph();

    let bfs_b = pygb_algorithms::bfs_dsl_loops(&g, 3).unwrap();
    let bfs_nb = pygb_algorithms::bfs_nonblocking(&g, 3).unwrap();
    assert_vectors_identical(&bfs_b, &bfs_nb, "bfs");

    let mut sssp_b = Vector::new(7, DType::Fp64);
    sssp_b.set(3, 0.0f64).unwrap();
    let mut sssp_nb = sssp_b.clone();
    pygb_algorithms::sssp_dsl_loops(&g, &mut sssp_b).unwrap();
    pygb_algorithms::sssp_nonblocking(&g, &mut sssp_nb).unwrap();
    assert_vectors_identical(&sssp_b, &sssp_nb, "sssp");

    let mut triples = Vec::new();
    for i in 0..5usize {
        for j in 0..i {
            triples.push((i, j, 1i64));
        }
    }
    let l = Matrix::from_triples(5, 5, triples).unwrap();
    let tri_b = pygb_algorithms::tricount_dsl_loops(&l).unwrap();
    let tri_nb = pygb_algorithms::tricount_nonblocking(&l).unwrap();
    assert_eq!(tri_b.as_i64(), tri_nb.as_i64());
}

/// Satellite regression: an op the analyzer rejects is refused at
/// enqueue — it never enters the DAG, so it cannot poison the flush of
/// the valid operations around it.
#[test]
fn invalid_op_is_rejected_at_enqueue_with_provenance() {
    let u = dense(&[1.0, 2.0]);
    let bad = dense(&[1.0, 2.0, 3.0]);
    let mut w = Vector::new(2, DType::Fp64);
    let mut ok = Vector::new(2, DType::Fp64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        ok.no_mask().assign(&u + &u).unwrap(); // valid neighbour defers
        let err = w.no_mask().assign(&u + &bad).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid `eWiseAdd`: operands have sizes 2 and 3; \
             in eWiseAdd([2 fp64], [3 fp64])"
        );
        // Only the valid neighbour is pending; the flush runs it clean.
        assert_eq!(pygb_runtime::plan().nodes.len(), 1);
        assert!(pygb_runtime::flush().is_ok());
    }
    assert_eq!(ok.to_dense_f64(), vec![2.0, 4.0]);
    assert_eq!(w.nvals(), 0, "the rejected op must never write");
}

/// Acceptance: a rule-3 collapse whose consumer output shares a store
/// with the producer's merge base (two container handles, one store) is
/// REFUSED by the aliasing analysis — counted, logged with a reason —
/// and the unfused execution still matches blocking mode exactly.
#[test]
fn aliased_output_refuses_fusion_then_executes_correctly() {
    let g = fig1_graph();
    let u = dense(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);

    let run = |w: &mut Vector| {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = ArithmeticSemiring.enter();
        let mut t = w.clone(); // t aliases w's store
        t.no_mask().assign(g.mxv(&u)).unwrap();
        w.no_mask().assign(&t).unwrap();
        drop(t);
    };

    let mut warm = dense(&[0.0; 7]);
    run(&mut warm); // warm the mxv and identity-assign kernels
    warm.settle().unwrap();

    let mut w = dense(&[9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0]);
    let ((), d) = measure_dispatches(|| {
        run(&mut w);
        w.settle().unwrap();
    });
    assert_eq!(
        d.refused, 1,
        "the aliasing analysis must refuse the collapse"
    );
    assert_eq!(d.fused, 0);
    assert_eq!(d.deferred, 2);
    assert_eq!(d.invocations, 2, "refused pair dispatches unfused");
    let refusals = pygb_runtime::last_refusals();
    assert_eq!(refusals.len(), 1);
    assert!(
        refusals[0].contains("aliases the producer's merge base"),
        "{}",
        refusals[0]
    );

    // Unfused execution is still exactly the blocking result.
    let mut expect = Vector::new(7, DType::Fp64);
    {
        let _sr = ArithmeticSemiring.enter();
        expect.no_mask().assign(g.mxv(&u)).unwrap();
    }
    assert_vectors_identical(&w, &expect, "refused-then-correct");
}

/// The plan()/explain API: per-node shapes, dtypes, chosen kernels,
/// dependencies, and fusion decisions of the pending DAG — read-only.
#[test]
fn plan_reports_shapes_kernels_and_fusion_decisions() {
    let g = fig1_graph();
    let mut f = Vector::new(7, DType::Bool);
    f.set(3, true).unwrap();
    let levels = Vector::new(7, DType::UInt64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _sr = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let t = Vector::from_expr(g.t().mxv(&f)).unwrap();
        f.masked_complement(&levels).assign(&t).unwrap();
        drop(t);

        let plan = pygb_runtime::plan();
        assert_eq!(plan.nodes.len(), 2);
        let n0 = &plan.nodes[0];
        assert_eq!(n0.kernel, "mxv");
        assert!(n0.op.starts_with("mxv([7x7 fp64], [7 bool])"), "{}", n0.op);
        assert!(n0.output.starts_with("[7 "), "{}", n0.output);
        assert!(n0.deps.is_empty());
        assert!(!n0.masked && !n0.accum);
        let n1 = &plan.nodes[1];
        assert_eq!(n1.kernel, "apply_v");
        assert!(n1.masked && n1.complemented && n1.replace);
        assert_eq!(n1.deps, vec![pygb_runtime::NodeId(0)]);
        assert_eq!(
            n1.fusion.as_deref(),
            Some("fuses node n0 (rule 3: ref collapse)")
        );
        let rendered = plan.to_string();
        assert!(rendered.contains("kernel=mxv"), "{rendered}");
        assert!(rendered.contains("mask=~m"), "{rendered}");
        assert!(rendered.contains("deps=[n0]"), "{rendered}");
    } // flush on scope exit: plan() must not have disturbed the DAG
    f.settle().unwrap();
    assert_eq!(f.nvals(), 2, "one BFS step from vertex 3 reaches {{0, 2}}");
}
