//! Fig. 10's correctness precondition: for each of the four algorithms,
//! the three variants (DSL per-op dispatch, DSL fused kernel, native
//! GBTL) must compute identical results on random graphs.

use pygb::{DType, Vector};
use pygb_algorithms as algos;
use pygb_io::generators;

fn pairs_i64(v: &Vector) -> Vec<(usize, i64)> {
    v.extract_pairs()
        .into_iter()
        .map(|(i, x)| (i, x.as_i64()))
        .collect()
}

fn pairs_f64(v: &Vector) -> Vec<(usize, f64)> {
    v.extract_pairs()
        .into_iter()
        .map(|(i, x)| (i, x.as_f64()))
        .collect()
}

#[test]
fn bfs_three_variants_agree_across_graphs() {
    for (n, seed) in [(32usize, 1u64), (64, 2), (128, 3)] {
        let edges = generators::erdos_renyi_power(n, seed);
        let g = edges.to_pygb(DType::Fp64);
        let ng: gbtl::Matrix<f64> = edges.to_gbtl();

        let loops = algos::bfs_dsl_loops(&g, 0).unwrap();
        let fused = algos::bfs_dsl_fused(&g, 0).unwrap();
        let native = algos::bfs_native(&ng, 0).unwrap();

        assert_eq!(pairs_i64(&loops), pairs_i64(&fused), "n={n} seed={seed}");
        let native_pairs: Vec<(usize, i64)> = native.iter().map(|(i, v)| (i, v as i64)).collect();
        assert_eq!(pairs_i64(&loops), native_pairs, "n={n} seed={seed}");
    }
}

#[test]
fn bfs_on_tree_reaches_every_level() {
    let tree = generators::balanced_tree(3, 4); // 121 vertices
    let g = tree.to_pygb(DType::Fp64);
    let levels = algos::bfs_dsl_loops(&g, 0).unwrap();
    assert_eq!(levels.nvals(), 121);
    let max_level = levels
        .extract_pairs()
        .into_iter()
        .map(|(_, v)| v.as_i64())
        .max()
        .unwrap();
    assert_eq!(max_level, 5); // root at 1, height 4
}

#[test]
fn sssp_three_variants_agree_across_graphs() {
    for (n, seed) in [(32usize, 4u64), (64, 5), (128, 6)] {
        let edges = generators::erdos_renyi_power(n, seed);
        let g = edges.to_pygb(DType::Fp64);
        let ng: gbtl::Matrix<f64> = edges.to_gbtl();

        let mut loops = Vector::new(n, DType::Fp64);
        loops.set(0, 0.0f64).unwrap();
        algos::sssp_dsl_loops(&g, &mut loops).unwrap();

        let mut fused = Vector::new(n, DType::Fp64);
        fused.set(0, 0.0f64).unwrap();
        algos::sssp_dsl_fused(&g, &mut fused).unwrap();
        assert_eq!(pairs_f64(&loops), pairs_f64(&fused), "n={n}");

        let mut native = gbtl::Vector::<f64>::new(n);
        native.set(0, 0.0).unwrap();
        algos::sssp_native(&ng, &mut native).unwrap();
        let native_pairs: Vec<(usize, f64)> = native.iter().collect();
        assert_eq!(pairs_f64(&loops), native_pairs, "n={n}");
    }
}

#[test]
fn tricount_three_variants_agree_across_graphs() {
    for (n, seed) in [(32usize, 7u64), (64, 8), (96, 9)] {
        let lower = generators::erdos_renyi_power(n, seed)
            .symmetrize()
            .lower_triangular()
            .unweighted();
        let l = lower.to_pygb(DType::Fp64);
        let nl: gbtl::Matrix<f64> = lower.to_gbtl();

        let loops = algos::tricount_dsl_loops(&l).unwrap().as_i64();
        let fused = algos::tricount_dsl_fused(&l).unwrap().as_i64();
        let native = algos::tricount_native(&nl).unwrap() as i64;
        let masked_dot = gbtl::algorithms::triangle_count_masked_dot(&nl).unwrap() as i64;

        assert_eq!(loops, fused, "n={n}");
        assert_eq!(loops, native, "n={n}");
        assert_eq!(loops, masked_dot, "n={n}");
    }
}

#[test]
fn pagerank_fused_is_bitwise_native() {
    // The fused variant literally runs the native algorithm; ranks and
    // iteration counts must match exactly.
    let edges = generators::erdos_renyi_power(64, 10).symmetrize();
    let g = edges.to_pygb(DType::Fp64);
    let ng: gbtl::Matrix<f64> = edges.to_gbtl();
    let opts = algos::PageRankOptions::default();

    let (fused, fused_iters) = algos::pagerank_dsl_fused(&g, opts).unwrap();
    let (native, native_iters) = algos::pagerank_native(&ng, opts).unwrap();
    assert_eq!(fused_iters, native_iters);
    let native_pairs: Vec<(usize, f64)> = native.iter().collect();
    assert_eq!(pairs_f64(&fused), native_pairs);
}

#[test]
fn pagerank_dsl_converges_to_same_fixed_point() {
    // Fig. 7 (DSL) and Fig. 8 (native) differ in when the teleport
    // fix-up runs, but on graphs whose rank vector stays dense they
    // converge to the same stationary distribution.
    let edges = generators::erdos_renyi_power(48, 11).symmetrize();
    let g = edges.to_pygb(DType::Fp64);
    // Drive both formulations to the true fixed point: the default
    // threshold (1e-5 on *mean* squared error) lets each stop at a
    // different iterate, several 1e-3 apart per entry.
    let opts = algos::PageRankOptions {
        threshold: 1e-14,
        max_iters: 10_000,
        ..Default::default()
    };

    let (dsl, _) = algos::pagerank_dsl_loops(&g, opts).unwrap();
    let (fused, _) = algos::pagerank_dsl_fused(&g, opts).unwrap();
    for i in 0..48 {
        let a = dsl.get(i).map(|v| v.as_f64()).unwrap_or(0.0);
        let b = fused.get(i).map(|v| v.as_f64()).unwrap_or(0.0);
        assert!((a - b).abs() < 1e-3, "vertex {i}: {a} vs {b}");
    }
    let total: f64 = dsl.to_dense_f64().iter().sum();
    assert!((total - 1.0).abs() < 1e-2, "Σrank = {total}");
}

#[test]
fn variants_on_rmat_graph() {
    // A skewed graph family exercises different sparsity patterns.
    let edges = generators::rmat(7, 8, (0.57, 0.19, 0.19, 0.05), 12);
    let g = edges.to_pygb(DType::Fp64);
    let ng: gbtl::Matrix<f64> = edges.to_gbtl();

    let loops = algos::bfs_dsl_loops(&g, 0).unwrap();
    let native = algos::bfs_native(&ng, 0).unwrap();
    let native_pairs: Vec<(usize, i64)> = native.iter().map(|(i, v)| (i, v as i64)).collect();
    assert_eq!(pairs_i64(&loops), native_pairs);
}

#[test]
fn integer_dtype_graphs_work_end_to_end() {
    let edges = generators::erdos_renyi_power(48, 13).unweighted();
    let g = edges.to_pygb(DType::Int32);
    let loops = algos::bfs_dsl_loops(&g, 0).unwrap();
    let fused = algos::bfs_dsl_fused(&g, 0).unwrap();
    assert_eq!(pairs_i64(&loops), pairs_i64(&fused));
}
