//! GraphBLAS output-write semantics through the full stack: the DSL's
//! masked/complemented/replace/merge/accumulated assignments must agree
//! exactly with direct statically-typed GBTL calls on the same data.

use gbtl::ops::accum::{Accumulate, NoAccumulate};
use gbtl::prelude::*;
use pygb::prelude::{ArithmeticSemiring as DslArithmetic, Matrix as DMatrix, Vector as DVector};
use pygb::DType;

/// Deterministic pseudo-random sparse data without external deps.
fn lcg_pairs(n: usize, nnz: usize, mut state: u64) -> Vec<(usize, f64)> {
    let mut out = std::collections::BTreeMap::new();
    while out.len() < nnz.min(n) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (state >> 33) as usize % n;
        let val = ((state >> 11) % 1000) as f64 / 100.0 - 5.0;
        out.insert(idx, val);
    }
    out.into_iter().collect()
}

fn dsl_vec(pairs: &[(usize, f64)], n: usize) -> DVector {
    DVector::from_pairs(n, pairs.iter().copied()).unwrap()
}

fn gbtl_vec(pairs: &[(usize, f64)], n: usize) -> Vector<f64> {
    Vector::from_pairs(n, pairs.iter().copied()).unwrap()
}

fn compare(dsl: &DVector, native: &Vector<f64>) {
    assert_eq!(dsl.nvals(), native.nvals(), "nvals differ");
    for (i, v) in native.iter() {
        assert_eq!(
            dsl.get(i).map(|x| x.as_f64()),
            Some(v),
            "value at {i} differs"
        );
    }
}

/// Run `u + v` through both stacks under every combination of
/// (mask, complement, accumulate, replace) and compare.
#[test]
fn ewise_add_write_semantics_match_native_exhaustively() {
    let n = 32;
    let c0 = lcg_pairs(n, 10, 1);
    let u = lcg_pairs(n, 12, 2);
    let v = lcg_pairs(n, 12, 3);
    let mask_pairs: Vec<(usize, f64)> = lcg_pairs(n, 16, 4)
        .into_iter()
        .map(|(i, val)| (i, if val > 0.0 { 1.0 } else { 0.0 }))
        .collect();

    for use_mask in [false, true] {
        for complemented in [false, true] {
            if !use_mask && complemented {
                continue;
            }
            for accumulate in [false, true] {
                for replace in [false, true] {
                    // --- DSL side ---
                    let mut dsl_c = dsl_vec(&c0, n);
                    let dsl_u = dsl_vec(&u, n);
                    let dsl_v = dsl_vec(&v, n);
                    let dsl_mask = dsl_vec(&mask_pairs, n);
                    {
                        let _sr = DslArithmetic.enter();
                        let expr = &dsl_u + &dsl_v;
                        let target = match (use_mask, complemented) {
                            (false, _) => dsl_c.no_mask(),
                            (true, false) => dsl_c.masked(&dsl_mask),
                            (true, true) => dsl_c.masked_complement(&dsl_mask),
                        };
                        let target = if replace { target.replace() } else { target };
                        if accumulate {
                            target.accum_assign(expr).unwrap();
                        } else {
                            target.assign(expr).unwrap();
                        }
                    }

                    // --- native side ---
                    let mut nat_c = gbtl_vec(&c0, n);
                    let nat_u = gbtl_vec(&u, n);
                    let nat_v = gbtl_vec(&v, n);
                    let nat_mask = gbtl_vec(&mask_pairs, n);
                    let run = |c: &mut Vector<f64>, m: &dyn VectorMask| {
                        if accumulate {
                            operations::e_wise_add_vector(
                                c,
                                m,
                                Accumulate(gbtl::ops::binary::Plus::<f64>::new()),
                                gbtl::ops::binary::Plus::<f64>::new(),
                                &nat_u,
                                &nat_v,
                                Replace(replace),
                            )
                            .unwrap();
                        } else {
                            operations::e_wise_add_vector(
                                c,
                                m,
                                NoAccumulate,
                                gbtl::ops::binary::Plus::<f64>::new(),
                                &nat_u,
                                &nat_v,
                                Replace(replace),
                            )
                            .unwrap();
                        }
                    };
                    match (use_mask, complemented) {
                        (false, _) => run(&mut nat_c, &NoMask),
                        (true, false) => run(&mut nat_c, &nat_mask),
                        (true, true) => {
                            let comp = complement(&nat_mask);
                            run(&mut nat_c, &comp)
                        }
                    }

                    compare(&dsl_c, &nat_c);
                }
            }
        }
    }
}

#[test]
fn mask_values_coerce_to_bool() {
    // A stored 0.0 in the mask is false (the paper: "data will be
    // coerced to boolean values").
    let mut c = DVector::new(3, DType::Fp64);
    let mask = DVector::from_pairs(3, [(0usize, 0.0f64), (1, 2.5), (2, -1.0)]).unwrap();
    let src = DVector::from_dense(&[7.0f64, 7.0, 7.0]);
    c.masked(&mask).assign(&src).unwrap();
    assert!(c.get(0).is_none()); // stored zero masks out
    assert_eq!(c.get(1).unwrap().as_f64(), 7.0);
    assert_eq!(c.get(2).unwrap().as_f64(), 7.0); // negative is truthy
}

#[test]
fn masked_in_absence_deletes_without_accum() {
    // Z = T without accumulator: a masked-in position where T is empty
    // loses its old C entry.
    let mut c = DVector::from_pairs(2, [(0usize, 9.0f64)]).unwrap();
    let mask = DVector::from_dense(&[1.0f64, 1.0]);
    let empty = DVector::new(2, DType::Fp64);
    c.masked(&mask).assign(&empty).unwrap();
    assert_eq!(c.nvals(), 0);
}

#[test]
fn matrix_mask_complement_replace() {
    let a = DMatrix::from_dense(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]).unwrap();
    let mask = DMatrix::from_triples(2, 2, [(0usize, 0usize, true)]).unwrap();
    let mut c = DMatrix::from_triples(2, 2, [(0usize, 0usize, 50.0f64), (1, 1, 60.0)]).unwrap();
    // Complemented mask allows everything except (0,0); replace clears
    // (0,0)'s old entry.
    c.masked_complement(&mask).replace().assign(&a).unwrap();
    assert!(c.get(0, 0).is_none());
    assert_eq!(c.get(0, 1).unwrap().as_f64(), 2.0);
    assert_eq!(c.get(1, 1).unwrap().as_f64(), 4.0);
    assert_eq!(c.nvals(), 3);
}

#[test]
fn self_masked_assignment_via_snapshot() {
    // Fig. 7 line 39: page_rank[~page_rank] = page_rank + new_rank.
    let mut page_rank = DVector::from_pairs(3, [(0usize, 0.5f64)]).unwrap();
    let new_rank = DVector::from_dense(&[0.1f64, 0.1, 0.1]);
    let snapshot = page_rank.clone();
    let expr = &snapshot + &new_rank;
    page_rank.masked_complement(&snapshot).assign(expr).unwrap();
    // Position 0 (masked out): keeps 0.5. Positions 1, 2: get 0.1.
    assert_eq!(page_rank.get(0).unwrap().as_f64(), 0.5);
    assert_eq!(page_rank.get(1).unwrap().as_f64(), 0.1);
    assert_eq!(page_rank.get(2).unwrap().as_f64(), 0.1);
}

#[test]
fn in_place_vs_rebinding_semantics() {
    // Sec. IV: C[None] = A @ B mutates the existing container; C = A @ B
    // creates a fresh one. With copy-on-write handles the old snapshot
    // survives rebinding.
    let a = DMatrix::from_dense(&[vec![1.0f64, 0.0], vec![0.0, 1.0]]).unwrap();
    let before = a.clone();

    let _sr = DslArithmetic.enter();
    let mut c = DMatrix::new(2, 2, DType::Fp64);
    c.set(0, 1, 42.0f64).unwrap();
    c.no_mask().assign(a.matmul(&a)).unwrap(); // in place: overwrites
    assert!(c.get(0, 1).is_none() || c.get(0, 1).unwrap().as_f64() != 42.0);

    let rebound = DMatrix::from_expr(a.matmul(&a)).unwrap();
    assert_eq!(rebound.get(0, 0).unwrap().as_f64(), 1.0);
    assert_eq!(a, before); // operands untouched
}
