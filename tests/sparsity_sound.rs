//! Soundness suite for the plan-time sparsity abstract interpretation
//! (`crate::sparsity` in `pygb-runtime`, domain in `pygb::facts`).
//!
//! Every flush with the `sparsity` pass enabled runs the *checked
//! interpretation*: after each node's kernel, the concrete `nvals` of
//! the written container is compared against the node's inferred
//! interval. A violation bumps the `opt/fact_misses` counter and
//! debug-asserts (these tests run under `cargo test`, i.e. with debug
//! assertions on — an unsound transfer function panics the suite).
//! The tests here drive randomly generated programs biased toward the
//! hard write-back corners — masks, complements, accumulators,
//! REPLACE, mixed dtypes, region assigns, streamed snapshots — and
//! then assert the miss counter never moved.
//!
//! On top of γ-membership, the deterministic tests pin the pass's
//! *strength*: provably-empty results reached only through pending
//! placeholders (invisible to the syntactic no-op pass) must fold, the
//! structure lints must fire, and a statically decided SpMV direction
//! must be taken — with results identical to blocking execution.

use proptest::prelude::*;

use pygb::{
    apply, reduce, Accumulator, BinaryOp, DType, DynScalar, EdgeUpdate, Matrix, MergePolicy,
    StreamingMatrix, UnaryOp, Vector,
};
use pygb_runtime::{reset_passes, set_passes, PassKind};

const N: usize = 8;
const POOL: usize = 5;
const OPS: [&str; 4] = ["Plus", "Times", "Min", "Max"];
const ACCUMS: [&str; 2] = ["Plus", "Min"];

fn fact_misses() -> u64 {
    pygb_obs::registry().snapshot().counter("opt/fact_misses")
}

fn empty_folded() -> u64 {
    pygb_obs::registry().snapshot().counter("opt/empty_folded")
}

fn static_hints() -> u64 {
    pygb_obs::registry()
        .snapshot()
        .counter("opt/static_kernel_hints")
}

/// Restore the ambient pass configuration on drop, so a panicking case
/// cannot leak an override into later tests.
struct PassScope;

impl PassScope {
    fn new(passes: &[PassKind]) -> PassScope {
        set_passes(passes);
        PassScope
    }
}

impl Drop for PassScope {
    fn drop(&mut self) {
        reset_passes();
    }
}

fn full_pipeline() -> Vec<PassKind> {
    vec![
        PassKind::Dce,
        PassKind::Cse,
        PassKind::Sparsity,
        PassKind::Noop,
    ]
}

/// One random program step. Compared to the equivalence suite, the
/// generator adds SpMV steps (`mxv`/`vxm` exercise the matrix transfer
/// functions and the static direction hints), scalar broadcasts (the
/// `full_iso` transfer), and region assigns (the ⊤ degradation path).
#[derive(Clone, Debug)]
struct Step {
    /// 0 = eWise add, 1 = eWise mult, 2 = bound apply, 3 = copy,
    /// 4 = reduce, 5 = identity apply, 6 = dropped temporary,
    /// 7 = mxv, 8 = vxm, 9 = scalar broadcast, 10 = region assign.
    kind: usize,
    target: usize,
    a: usize,
    b: usize,
    op: usize,
    /// 0 = no mask, 1 = mask, 2 = complemented mask.
    mask_mode: usize,
    mask: usize,
    /// 0 = plain assign, 1.. = accum_assign with `ACCUMS[accum - 1]`.
    accum: usize,
    replace: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        (0usize..11, 0usize..POOL, 0usize..POOL, 0usize..POOL),
        (0usize..OPS.len(), 0usize..3, 0usize..POOL),
        (0usize..=ACCUMS.len(), any::<bool>()),
    )
        .prop_map(
            |((kind, target, a, b), (op, mask_mode, mask), (accum, replace))| Step {
                kind,
                target,
                a,
                b,
                op,
                mask_mode,
                mask,
                accum,
                replace,
            },
        )
}

/// Mixed-dtype pool biased toward the analysis's interesting corners:
/// dense int32, sparse int64, dense fp64, an initially *empty* fp64
/// slot (provable-emptiness bait), and a sparse bool slot
/// (structural-only facts, and a natural mask).
fn init_pool() -> Vec<Vector> {
    let mut v0 = Vector::new(N, DType::Int32);
    let mut v1 = Vector::new(N, DType::Int64);
    let mut v2 = Vector::new(N, DType::Fp64);
    let v3 = Vector::new(N, DType::Fp64);
    let mut v4 = Vector::new(N, DType::Bool);
    for i in 0..N {
        v0.set(i, i as i32 + 1).unwrap();
        if i % 2 == 0 {
            v1.set(i, (i as i64) * 10 - 30).unwrap();
        }
        v2.set(i, i as f64 * 0.5 - 1.0).unwrap();
        if i % 3 == 0 {
            v4.set(i, true).unwrap();
        }
    }
    vec![v0, v1, v2, v3, v4]
}

/// An `N × N` directed ring with chords, fp64, for the SpMV steps.
fn graph() -> Matrix {
    let mut triples = Vec::new();
    for i in 0..N {
        triples.push((i, (i + 1) % N, DynScalar::Fp64(1.0)));
        if i % 3 == 0 {
            triples.push((i, (i + 4) % N, DynScalar::Fp64(1.0)));
        }
    }
    Matrix::from_triples_dyn(N, N, &triples, Some(DType::Fp64)).unwrap()
}

fn apply_step(g: &Matrix, pool: &mut [Vector], s: &Step) -> pygb::Result<Option<DynScalar>> {
    if s.kind == 4 {
        return reduce(&pool[s.a]).map(Some);
    }
    if s.kind == 6 {
        let _op = BinaryOp::new(OPS[s.op])?.enter();
        let _dead = Vector::from_expr(&pool[s.a] + &pool[s.b])?;
        return Ok(None);
    }
    let a = pool[s.a].clone();
    let b = pool[s.b].clone();
    let mask = pool[s.mask].clone();
    let expr_op = BinaryOp::new(OPS[s.op])?;
    let target = &mut pool[s.target];

    if s.kind == 9 {
        // Scalar broadcast: the full_iso transfer, under every mask
        // mode (the write-back math is what's under test).
        match s.mask_mode {
            0 => target.no_mask().assign_scalar(7.5f64)?,
            1 if s.replace => target.masked(&mask).replace().assign_scalar(7.5f64)?,
            1 => target.masked(&mask).assign_scalar(7.5f64)?,
            _ if s.replace => target
                .masked_complement(&mask)
                .replace()
                .assign_scalar(7.5f64)?,
            _ => target.masked_complement(&mask).assign_scalar(7.5f64)?,
        }
        return Ok(None);
    }
    if s.kind == 10 {
        // Region assign: the analysis degrades to ⊤, which must still
        // admit whatever the kernel writes.
        let hi = (s.a % N).max(1);
        target.no_mask().slice(0..hi).assign_scalar(1.25f64)?;
        return Ok(None);
    }

    macro_rules! emit {
        ($expr:expr) => {{
            let _op_guard = expr_op.enter();
            match (s.mask_mode, s.accum) {
                (0, 0) => target.no_mask().assign($expr)?,
                (0, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    target.no_mask().accum_assign($expr)?
                }
                (1, 0) if s.replace => target.masked(&mask).replace().assign($expr)?,
                (1, 0) => target.masked(&mask).assign($expr)?,
                (1, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target.masked(&mask).replace().accum_assign($expr)?
                    } else {
                        target.masked(&mask).accum_assign($expr)?
                    }
                }
                (_, 0) if s.replace => target.masked_complement(&mask).replace().assign($expr)?,
                (_, 0) => target.masked_complement(&mask).assign($expr)?,
                (_, acc) => {
                    let _a = Accumulator::new(ACCUMS[acc - 1])?.enter();
                    if s.replace {
                        target
                            .masked_complement(&mask)
                            .replace()
                            .accum_assign($expr)?
                    } else {
                        target.masked_complement(&mask).accum_assign($expr)?
                    }
                }
            }
        }};
    }

    match s.kind {
        0 => emit!(&a + &b),
        1 => emit!(&a * &b),
        2 => {
            let unary = UnaryOp::bound("Plus", 3.0)?;
            let _u = unary.enter();
            emit!(apply(&a))
        }
        5 => {
            let unary = UnaryOp::new("Identity")?;
            let _u = unary.enter();
            emit!(apply(&a))
        }
        7 => {
            let _sr = pygb::ArithmeticSemiring.enter();
            emit!(g.t().mxv(&a))
        }
        8 => {
            let _sr = pygb::ArithmeticSemiring.enter();
            emit!(a.vxm(g))
        }
        _ => emit!(&a),
    }
    Ok(None)
}

/// Run a program under one configuration; `None` is the blocking
/// oracle. Returns the settled pool plus reductions.
fn run_program(
    g: &Matrix,
    prog: &[Step],
    passes: Option<&[PassKind]>,
) -> (Vec<Vector>, Vec<DynScalar>) {
    let _scope = passes.map(PassScope::new);
    let mut pool = init_pool();
    let mut reductions = Vec::new();
    {
        let _guard = passes.map(|_| pygb_runtime::nonblocking().unwrap());
        for s in prog {
            if let Some(r) = apply_step(g, &mut pool, s).unwrap() {
                reductions.push(r);
            }
        }
        if passes.is_some() {
            pygb_runtime::flush().unwrap();
        }
    }
    for v in &mut pool {
        v.settle().unwrap();
    }
    (pool, reductions)
}

proptest! {
    /// The soundness proof: random programs over every dtype, mask
    /// mode, accumulator, REPLACE, SpMV, scalar broadcast, and region
    /// assign never trip the checked interpretation (`opt/fact_misses`
    /// stays flat; a miss also debug-asserts), and the sparsity-enabled
    /// pipeline is bit-identical to the blocking oracle.
    #[test]
    fn random_programs_never_miss_a_fact(
        prog in proptest::collection::vec(step_strategy(), 1..14),
    ) {
        let g = graph();
        let misses_before = fact_misses();
        let (o_pool, o_red) = run_program(&g, &prog, None);
        let passes = full_pipeline();
        let (pool, red) = run_program(&g, &prog, Some(&passes));
        for (i, (o, p)) in o_pool.iter().zip(&pool).enumerate() {
            prop_assert_eq!(o.dtype(), p.dtype(), "slot {} dtype", i);
            prop_assert_eq!(o.extract_pairs(), p.extract_pairs(), "slot {}", i);
        }
        prop_assert_eq!(&o_red, &red, "reductions");
        prop_assert_eq!(
            fact_misses(),
            misses_before,
            "checked interpretation recorded a fact miss"
        );
    }

    /// Streamed-graph coverage: SpMV over a mid-stream
    /// `StreamingMatrix::snapshot()` (deletes and overwrites pending in
    /// the delta) under the sparsity pass — facts hold, results match.
    #[test]
    fn streamed_snapshots_never_miss_a_fact(
        edges in proptest::collection::vec((0usize..N, 0usize..N, 1i64..6), 1..16),
        updates in proptest::collection::vec(
            (0usize..N, 0usize..N, (0u8..4, 1i64..6).prop_map(|(k, v)| (k > 0).then_some(v))),
            0..10),
        masked in any::<bool>(),
    ) {
        let triples: Vec<(usize, usize, DynScalar)> = edges
            .iter()
            .map(|&(i, j, v)| (i, j, DynScalar::Fp64(v as f64)))
            .collect();
        let base = Matrix::from_triples_dyn(N, N, &triples, Some(DType::Fp64)).unwrap();
        let mut stream = StreamingMatrix::with_policy(
            &base,
            MergePolicy { max_pending: 4, ..MergePolicy::default() },
        )
        .unwrap();
        let batch: Vec<EdgeUpdate> = updates
            .iter()
            .map(|&(i, j, v)| match v {
                Some(v) => EdgeUpdate::add(i, j, DynScalar::Fp64(v as f64)),
                None => EdgeUpdate::del(i, j),
            })
            .collect();
        stream.update_edges(&batch).unwrap();
        let snap = stream.snapshot();

        let mut x = Vector::new(N, DType::Fp64);
        for i in 0..N {
            x.set(i, (i + 1) as f64).unwrap();
        }
        let mask = {
            let mut m = Vector::new(N, DType::Bool);
            for i in (0..N).step_by(2) {
                m.set(i, true).unwrap();
            }
            m
        };

        let misses_before = fact_misses();
        let run = |passes: Option<&[PassKind]>| -> Vec<(usize, DynScalar)> {
            let _scope = passes.map(PassScope::new);
            let mut y = Vector::new(N, DType::Fp64);
            {
                let _guard = passes.map(|_| pygb_runtime::nonblocking().unwrap());
                let _sr = pygb::ArithmeticSemiring.enter();
                let t = Vector::from_expr(snap.t().mxv(&x)).unwrap();
                if masked {
                    y.masked(&mask).assign(&t).unwrap();
                } else {
                    y.no_mask().assign(&t).unwrap();
                }
                if passes.is_some() {
                    pygb_runtime::flush().unwrap();
                }
            }
            y.settle().unwrap();
            y.extract_pairs()
        };
        let oracle = run(None);
        let passes = full_pipeline();
        prop_assert_eq!(&run(Some(&passes)), &oracle, "streamed snapshot spmv");
        prop_assert_eq!(fact_misses(), misses_before, "fact miss on streamed snapshot");
    }
}

/// The strength claim: a provably-empty result reached only *through a
/// pending placeholder* is invisible to the syntactic no-op pass
/// (pending operands are never "known empty") but folds under the
/// sparsity pass — and the downstream-consumption lint fires on the
/// real flush.
#[test]
fn empty_chain_through_pending_placeholders_folds_and_lints() {
    let _scope = PassScope::new(&[PassKind::Sparsity]);
    let empty = Vector::new(N, DType::Fp64);
    let mut dense = Vector::new(N, DType::Fp64);
    for i in 0..N {
        dense.set(i, i as f64 + 1.0).unwrap();
    }
    let folded_before = empty_folded();
    let _ = pygb::take_lints();
    let mut out = Vector::new(N, DType::Fp64);
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _op = BinaryOp::new("Times").unwrap().enter();
        // t1 = empty ⊗ dense: provably empty (and syntactically so).
        let t1 = Vector::from_expr(&empty * &dense).unwrap();
        // t2 = t1 ⊗ dense: t1 is a *pending placeholder* here, so the
        // no-op pass cannot see its emptiness — only the abstract
        // interpretation can.
        let t2 = Vector::from_expr(&t1 * &dense).unwrap();
        // out = t2 ⊗ dense: consumed downstream → lint.
        out.no_mask().assign(&t2 * &dense).unwrap();
    }
    out.settle().unwrap();
    assert_eq!(out.nvals(), 0, "folded chain must still produce emptiness");
    assert!(
        empty_folded() - folded_before >= 2,
        "sparsity pass must fold the provably-empty chain (pending-placeholder \
         emptiness is invisible to noop): folded delta {}",
        empty_folded() - folded_before
    );
    let lints = pygb::take_lints();
    assert!(
        lints.iter().any(|l| l.contains("provably empty")),
        "expected a provably-empty-consumed lint, got: {lints:?}"
    );
}

/// Masked write-back strength: an empty complemented mask admits every
/// write; an empty plain mask admits none — under REPLACE the result
/// is provably empty even though the right-hand side is dense, and the
/// disjoint-mask lint fires.
#[test]
fn empty_mask_replace_folds_with_disjoint_lint() {
    let _scope = PassScope::new(&[PassKind::Sparsity]);
    let empty_mask = Vector::new(N, DType::Bool);
    let mut dense = Vector::new(N, DType::Fp64);
    for i in 0..N {
        dense.set(i, 2.0 * i as f64).unwrap();
    }
    let _ = pygb::take_lints();
    let folded_before = empty_folded();
    let mut out = Vector::new(N, DType::Fp64);
    out.set(0, 9.0f64).unwrap();
    {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _op = BinaryOp::new("Plus").unwrap().enter();
        out.masked(&empty_mask)
            .replace()
            .assign(&dense + &dense)
            .unwrap();
    }
    out.settle().unwrap();
    assert_eq!(out.nvals(), 0, "empty mask + replace must clear the target");
    assert!(
        empty_folded() > folded_before,
        "provably-empty masked write must fold"
    );
    let lints = pygb::take_lints();
    assert!(
        lints.iter().any(|l| l.contains("disjoint")),
        "expected a disjoint-mask lint, got: {lints:?}"
    );
}

/// The static-hint claim of the tentpole: a BFS-style frontier mxv
/// whose vector density is statically known takes its push/pull
/// decision from the analysis (counter moves), with results identical
/// to the blocking oracle.
#[test]
fn bfs_frontier_mxv_selects_direction_from_static_hint() {
    let g = pygb_integration::fig1_graph().cast(DType::Fp64);
    let run = |nonblocking: bool| -> Vec<(usize, DynScalar)> {
        let _scope = nonblocking.then(|| PassScope::new(&full_pipeline()));
        let mut frontier = Vector::new(7, DType::Fp64);
        frontier.set(3, 1.0f64).unwrap();
        let mut next = Vector::new(7, DType::Fp64);
        {
            let _nb = nonblocking.then(|| pygb_runtime::nonblocking().unwrap());
            let _sr = pygb::ArithmeticSemiring.enter();
            next.no_mask().assign(g.t().mxv(&frontier)).unwrap();
        }
        next.settle().unwrap();
        next.extract_pairs()
    };
    let oracle = run(false);
    let hints_before = static_hints();
    let got = run(true);
    assert_eq!(got, oracle, "hinted SpMV must match blocking results");
    assert!(
        static_hints() > hints_before,
        "frontier mxv must take a static push/pull hint"
    );
}
