//! The Fig. 9 execution model, stage by stage: expression construction
//! → context resolution → type inference → key hash → module retrieval
//! (compile on first use, cache hit after) → invocation.
//!
//! ```text
//! cargo run --example jit_pipeline
//! ```

use pygb::prelude::*;
use pygb_jit::ModuleKey;

fn main() -> pygb::Result<()> {
    let rt = pygb::runtime();
    rt.set_tracing(true);

    // The exact code at the top of Fig. 9:
    //     with ArithmeticSemiring:
    //         C[M] = A @ B
    let a = Matrix::from_dense(&[vec![1i64, 2], vec![3, 4]])?;
    let b = Matrix::from_dense(&[vec![5i64, 6], vec![7, 8]])?;
    let mask = Matrix::from_triples(2, 2, [(0usize, 0usize, true), (1, 1, true)])?;
    let mut c = Matrix::new(2, 2, DType::Int64);

    println!("== first dispatch: cold, instantiates the module ==\n");
    {
        let _sr = ArithmeticSemiring.enter();
        let expr = a.matmul(&b);
        c.masked(&mask).assign(expr)?;
    }
    for trace in rt.take_traces() {
        println!("{}", trace.render());
    }

    println!("== second dispatch: identical key, memory hit ==\n");
    {
        let _sr = ArithmeticSemiring.enter();
        let expr = a.matmul(&b);
        c.masked(&mask).assign(expr)?;
    }
    for trace in rt.take_traces() {
        println!("{}", trace.render());
    }

    println!("== a different dtype is a different module ==\n");
    {
        let af = a.cast(DType::Fp64);
        let bf = b.cast(DType::Fp64);
        let mut cf = Matrix::new(2, 2, DType::Fp64);
        let _sr = ArithmeticSemiring.enter();
        let expr = af.matmul(&bf);
        cf.no_mask().assign(expr)?;
    }
    for trace in rt.take_traces() {
        println!("{}", trace.render());
    }
    rt.set_tracing(false);

    // The "gcc" stage the paper's implementation would run for this key:
    let key = ModuleKey::new("mxm")
        .with("a_type", "int64")
        .with("b_type", "int64")
        .with("c_type", "int64")
        .with("semiring", "Plus_Zero_Times");
    println!("equivalent compiler invocation (paper's pipeline):");
    println!("  {}\n", key.as_gcc_command());

    // Section V's counting argument, computed by the jit crate:
    use pygb_jit::combinatorics as comb;
    println!("why precompilation is infeasible (Section V):");
    println!(
        "  mxm container-type combinations : 11^4 = {}",
        comb::mxm_type_combinations()
    );
    println!(
        "  accumulator combinations        : 17·11³ = {}",
        comb::accumulator_combinations()
    );
    println!(
        "  total mxm key space             : ~{:.1e}",
        comb::mxm_total_combinations() as f64
    );
    let stats = rt.cache().stats().snapshot();
    println!(
        "  this run touched {} keys — {:.1e} of the space",
        stats.compiles,
        comb::coverage_fraction(stats.compiles)
    );

    println!(
        "\ncache: {} resident modules, hit rate {:.0}%",
        rt.cache().resident_modules(),
        stats.hit_rate() * 100.0
    );
    assert_eq!(c.get(0, 0).unwrap().as_i64(), 19); // (1·5 + 2·7)
    Ok(())
}
