//! BFS end-to-end — Fig. 2 of the paper, in all three variants, on an
//! Erdős–Rényi graph.
//!
//! ```text
//! cargo run --example bfs [n]       # default n = 256
//! ```

use std::time::Instant;

use pygb_algorithms::{bfs_dsl_fused, bfs_dsl_loops, bfs_native};
use pygb_io::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);
    let graph = generators::erdos_renyi_power(n, 42);
    println!(
        "Erdős–Rényi: |V| = {n}, |E| = {} (n^1.5 density)",
        graph.nnz()
    );

    let pygb_graph = graph.to_pygb(pygb::DType::Fp64);
    let gbtl_graph: gbtl::Matrix<f64> = graph.to_gbtl();
    let source = 0;

    // Variant 1: DSL with the outer loop out here (Fig. 2b).
    let t = Instant::now();
    let levels_loops = bfs_dsl_loops(&pygb_graph, source)?;
    let dt_loops = t.elapsed();

    // Variant 2: one dispatch to a fused whole-algorithm kernel.
    let t = Instant::now();
    let levels_fused = bfs_dsl_fused(&pygb_graph, source)?;
    let dt_fused = t.elapsed();

    // Variant 3: native GBTL (Fig. 2c).
    let t = Instant::now();
    let levels_native = bfs_native(&gbtl_graph, source)?;
    let dt_native = t.elapsed();

    let reached = levels_native.nvals();
    let max_depth = levels_native.values().iter().copied().max().unwrap_or(0);
    println!("reached {reached}/{n} vertices, max depth {max_depth}");
    println!("pygb-loops : {dt_loops:?}");
    println!("pygb-fused : {dt_fused:?}");
    println!("native     : {dt_native:?}");

    // All three agree.
    let a: Vec<(usize, i64)> = levels_loops
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_i64()))
        .collect();
    let b: Vec<(usize, i64)> = levels_fused
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_i64()))
        .collect();
    let c: Vec<(usize, i64)> = levels_native.iter().map(|(i, v)| (i, v as i64)).collect();
    assert_eq!(a, b);
    assert_eq!(a, c);
    println!("all three variants produced identical levels ✓");
    Ok(())
}
