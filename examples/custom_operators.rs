//! Section VIII future work, implemented: user-defined operators and
//! direct native file loading.
//!
//! The paper: "Another missing feature is user-defined operators for
//! use in the PyGB operations. Implementing this feature requires
//! either using an intermediate language such as Cython or forcing the
//! user to write code directly in C++." Here a plain function defines
//! an operator usable everywhere a Fig. 6 operator is — including as a
//! semiring component, with its own JIT module key.
//!
//! ```text
//! cargo run --example custom_operators
//! ```

use pygb::prelude::*;
use pygb_io::{generators, matrix_market};

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // --- A custom "widest bottleneck" semiring: ⊕ = max, ⊗ = min ---
    // (maximum-capacity paths; expressible with built-ins, but defined
    // here from scratch to show the machinery).
    let soft_or = BinaryOp::define_with_identity(
        "SoftOr",
        |a, b| a + b - a * b, // probabilistic OR on [0, 1]
        "Zero",
    )?;
    let soft_or_monoid = Monoid::from_op(soft_or, 0.0)?;
    let reliability = Semiring::new(soft_or_monoid, "Times")?;
    println!("defined Semiring(SoftOr, Times): path-reliability algebra");

    // Edge weights are success probabilities; w = A ⊕.⊗ u computes the
    // probability that at least one one-hop route delivers.
    let a = Matrix::from_dense(&[
        vec![0.0f64, 0.9, 0.5],
        vec![0.0, 0.0, 0.8],
        vec![0.0, 0.0, 0.0],
    ])?;
    let u = Vector::from_dense(&[0.0f64, 1.0, 1.0]);
    let w = {
        let _sr = reliability.enter();
        Vector::from_expr(a.mxv(&u))?
    };
    // Row 0: soft_or(0.9·1, 0.5·1) = 0.9 + 0.5 − 0.45 = 0.95.
    println!(
        "delivery probability to vertex 0: {:.3} (expect 0.950)",
        w.get(0).unwrap().as_f64()
    );
    assert!((w.get(0).unwrap().as_f64() - 0.95).abs() < 1e-12);

    // --- A user unary op in apply ---
    let sigmoid = UnaryOp::define("Sigmoid", |x| 1.0 / (1.0 + (-x).exp()));
    let scores = Vector::from_dense(&[-2.0f64, 0.0, 2.0]);
    let probs = {
        let _op = sigmoid.enter();
        Vector::from_expr(apply(&scores))?
    };
    println!(
        "sigmoid({:?}) = {:?}",
        scores.to_dense_f64(),
        probs.to_dense_f64()
    );

    // --- Each user op is its own JIT module ---
    pygb::runtime().set_tracing(true);
    {
        let _sr = reliability.enter();
        let _ = Vector::from_expr(a.mxv(&u))?;
    }
    for trace in pygb::runtime().take_traces() {
        println!("\nmodule key for the custom semiring:\n  {}", trace.key);
    }
    pygb::runtime().set_tracing(false);

    // --- Direct native file load (Sec. VIII) ---
    let edges = generators::erdos_renyi(64, 256, 3);
    let text = matrix_market::to_string(&edges);
    let loaded = matrix_market::read_native_pygb(text.as_bytes(), DType::Fp64)?;
    println!(
        "\nread_native_pygb: {}x{} matrix, {} entries, dtype {} — no boxed intermediate",
        loaded.nrows(),
        loaded.ncols(),
        loaded.nvals(),
        loaded.dtype()
    );
    assert_eq!(loaded.nvals(), 256);
    Ok(())
}
