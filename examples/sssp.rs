//! Single-source shortest paths — Fig. 4 of the paper, with a
//! Dijkstra cross-check.
//!
//! ```text
//! cargo run --example sssp [n]      # default n = 128
//! ```

use std::collections::BinaryHeap;

use pygb::{DType, Vector};
use pygb_algorithms::{sssp_dsl_fused, sssp_dsl_loops};
use pygb_io::generators;

/// Textbook Dijkstra over the same edge list (non-negative weights),
/// used as an independent oracle.
fn dijkstra(n: usize, edges: &[(usize, usize, f64)], source: usize) -> Vec<f64> {
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for &(s, d, w) in edges {
        adj[s].push((d, w));
    }
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push((std::cmp::Reverse(ordered(0.0)), source));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        let d = unordered(d);
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push((std::cmp::Reverse(ordered(nd)), v));
            }
        }
    }
    dist
}

fn ordered(x: f64) -> u64 {
    x.to_bits()
}
fn unordered(b: u64) -> f64 {
    f64::from_bits(b)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);
    let graph = generators::erdos_renyi_power(n, 7);
    println!("Erdős–Rényi: |V| = {n}, |E| = {}", graph.nnz());

    let pygb_graph = graph.to_pygb(DType::Fp64);
    let source = 0;

    // Fig. 4a: with gb.MinPlusSemiring, gb.Accumulator("Min"): loop.
    let mut path = Vector::new(n, DType::Fp64);
    path.set(source, 0.0f64)?;
    sssp_dsl_loops(&pygb_graph, &mut path)?;

    let mut path_fused = Vector::new(n, DType::Fp64);
    path_fused.set(source, 0.0f64)?;
    sssp_dsl_fused(&pygb_graph, &mut path_fused)?;
    assert_eq!(path.extract_pairs(), path_fused.extract_pairs());

    // Oracle check.
    let oracle = dijkstra(n, &graph.edges, source);
    let mut reached = 0;
    #[allow(clippy::needless_range_loop)] // oracle and path share the index
    for i in 0..n {
        match path.get(i) {
            Some(v) => {
                assert!(
                    (v.as_f64() - oracle[i]).abs() < 1e-9,
                    "vertex {i}: {} vs oracle {}",
                    v.as_f64(),
                    oracle[i]
                );
                reached += 1;
            }
            None => assert!(oracle[i].is_infinite(), "vertex {i} should be reachable"),
        }
    }
    println!("distances to {reached}/{n} reachable vertices match Dijkstra ✓");
    let far = (0..n)
        .filter_map(|i| path.get(i).map(|v| v.as_f64()))
        .fold(0.0f64, f64::max);
    println!("eccentricity of source: {far:.4}");
    Ok(())
}
