//! Triangle counting — Fig. 5 of the paper, with a brute-force
//! cross-check.
//!
//! ```text
//! cargo run --example triangle_count [n]     # default n = 128
//! ```

use pygb::DType;
use pygb_algorithms::{tricount_dsl_fused, tricount_dsl_loops, tricount_native, tril};
use pygb_io::generators;

/// O(n³) reference count over the adjacency matrix.
fn brute_force(n: usize, adj: &gbtl::Matrix<f64>) -> u64 {
    let mut count = 0;
    for i in 0..n {
        for j in 0..i {
            if adj.get(i, j).is_none() {
                continue;
            }
            for k in 0..j {
                if adj.get(i, k).is_some() && adj.get(j, k).is_some() {
                    count += 1;
                }
            }
        }
    }
    count
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);
    // Undirected ER graph: symmetrize, then take the lower triangle.
    let graph = generators::erdos_renyi_power(n, 11).symmetrize();
    let adj: gbtl::Matrix<f64> = graph.to_gbtl();
    let pattern: gbtl::Matrix<f64> = graph.clone().unweighted().to_gbtl();
    let l_typed = tril(&pattern);
    println!(
        "undirected Erdős–Rényi: |V| = {n}, |E| = {} (directed nnz)",
        graph.nnz()
    );

    // DSL (Fig. 5a): B[L] = L @ L.T; triangles = reduce(B).
    let l = graph.lower_triangular().unweighted().to_pygb(DType::Fp64);
    let dsl = tricount_dsl_loops(&l)?.as_i64();
    let fused = tricount_dsl_fused(&l)?.as_i64();
    // Native (Fig. 5b).
    let native = tricount_native(&l_typed)? as i64;
    // Oracle.
    let oracle = brute_force(n, &adj) as i64;

    println!("pygb-loops : {dsl} triangles");
    println!("pygb-fused : {fused} triangles");
    println!("native     : {native} triangles");
    println!("brute force: {oracle} triangles");
    assert_eq!(dsl, fused);
    assert_eq!(dsl, native);
    assert_eq!(dsl, oracle);
    println!("all four agree ✓");
    Ok(())
}
