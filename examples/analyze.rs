//! The plan-time static analyzer (`pygb-analyze`) end to end:
//! build-time shape diagnostics with op provenance, dtype-promotion
//! lints and `StrictTypes`, the `plan()` explain API over a pending
//! op-DAG, and the aliasing analysis refusing an unprovable fusion
//! (DESIGN.md §4e).
//!
//! ```text
//! cargo run --example analyze
//! ```

use pygb::prelude::*;

fn main() -> pygb::Result<()> {
    // 1. Shape errors surface at the line that builds the expression,
    //    never first at flush — the diagnostic names the op, both
    //    operand shapes, and the rendered source expression.
    let _sr = ArithmeticSemiring.enter();
    let a = Matrix::new(2, 3, DType::Fp64);
    let u = Vector::from_dense(&[1.0f64, 2.0]); // mxv needs size 3
    let err = Vector::from_expr(a.mxv(&u)).unwrap_err();
    println!("== build-time diagnostic ==");
    println!("   {err}");

    // 2. Lossy dtype promotions lint by default...
    let big = Vector::from_dense(&[1i64, 2, 3]);
    let small = Vector::from_dense(&[1.0f32, 2.0, 3.0]);
    let _ = Vector::from_expr(&big + &small)?;
    println!("== promotion lints ==");
    for lint in pygb::take_lints() {
        println!("   lint: {lint}");
    }
    // ...and become hard errors under StrictTypes.
    {
        let _strict = StrictTypes.enter();
        let err = Vector::from_expr(&big + &small).unwrap_err();
        println!("   strict: {err}");
    }

    // 3. plan(): dump the analyzed DAG — inferred shapes, the kernel
    //    each node will dispatch, dependencies, fusion verdicts —
    //    without executing anything.
    let g = Matrix::from_triples(
        7,
        7,
        vec![(0usize, 1usize, 1.0f64), (1, 4, 1.0), (4, 5, 1.0)],
    )?;
    let mut f = Vector::new(7, DType::Bool);
    f.set(0, true)?;
    let seen = Vector::new(7, DType::UInt64);
    {
        let _nb = pygb_runtime::nonblocking()?;
        let _lg = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let t = Vector::from_expr(g.t().mxv(&f))?; // one BFS step
        f.masked_complement(&seen).assign(&t)?; // mask-into-product
        drop(t);
        println!("== plan() before flush ==");
        print!("{}", pygb_runtime::plan());
    } // flush executes exactly what the plan showed
    println!("   frontier after flush: {} vertex(es)", f.nvals());

    // 4. The aliasing analysis: two handles to ONE store make the
    //    fusion rewrite unprovable, so it is refused — counted in
    //    JitStats and explained — and the chain still runs correctly.
    let w0 = Vector::from_dense(&[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    let mut w = w0.clone();
    let stats = pygb::runtime().cache().stats();
    let before = stats.snapshot();
    {
        let _nb = pygb_runtime::nonblocking()?;
        let mut t = w.clone(); // t and w share one store
        t.no_mask().assign(g.mxv(&w0))?;
        w.no_mask().assign(&t)?;
    }
    let after = stats.snapshot();
    println!("== aliasing refusal ==");
    println!(
        "   refused fusions: {}   (fused: {})",
        after.refused_fusions - before.refused_fusions,
        after.fused_ops - before.fused_ops,
    );
    for reason in pygb_runtime::last_refusals() {
        println!("   reason: {reason}");
    }
    println!("   result (correct, unfused): {:?}", w.to_dense_f64());
    Ok(())
}
