//! PageRank — Fig. 7 (DSL) vs Fig. 8 (native GBTL) of the paper.
//!
//! ```text
//! cargo run --example pagerank [n]      # default n = 128
//! ```

use pygb::DType;
use pygb_algorithms::{pagerank_dsl_fused, pagerank_dsl_loops, PageRankOptions};
use pygb_io::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);
    // Symmetrized ER graph so every vertex has in-edges (see
    // DESIGN.md: Fig. 7/8 drop rank entries of in-degree-0 vertices).
    let graph = generators::erdos_renyi_power(n, 23).symmetrize();
    let pg = graph.to_pygb(DType::Fp64);
    println!(
        "Erdős–Rényi (symmetrized): |V| = {n}, |E| = {}",
        graph.nnz()
    );

    let opts = PageRankOptions::default();
    let (pr_dsl, iters_dsl) = pagerank_dsl_loops(&pg, opts)?;
    let (pr_fused, iters_fused) = pagerank_dsl_fused(&pg, opts)?;

    println!("pygb-loops converged in {iters_dsl} iterations");
    println!("pygb-fused converged in {iters_fused} iterations");

    // Compare the two formulations (Fig. 7 vs Fig. 8) — same fixed
    // point on graphs with dense rank vectors.
    let mut max_diff = 0.0f64;
    for i in 0..n {
        let a = pr_dsl.get(i).map(|v| v.as_f64()).unwrap_or(0.0);
        let b = pr_fused.get(i).map(|v| v.as_f64()).unwrap_or(0.0);
        max_diff = max_diff.max((a - b).abs());
    }
    println!("max |pygb − native| = {max_diff:.2e}");
    assert!(max_diff < 1e-3);

    let total: f64 = pr_dsl.to_dense_f64().iter().sum();
    println!("Σ rank = {total:.6}");

    // Top 5 vertices.
    let mut ranked: Vec<(usize, f64)> = pr_dsl
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_f64()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top vertices:");
    for (i, r) in ranked.iter().take(5) {
        println!("  vertex {i:>4}: {r:.6}");
    }
    Ok(())
}
