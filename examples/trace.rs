//! End-to-end op-lifecycle tracing (`pygb-obs`, DESIGN.md §4f): run a
//! nonblocking workload with tracing on, then show every layer of the
//! observability stack — the plan before the flush, the trace report
//! after it (same node ids, now with measured timings), the per-phase
//! span totals, per-kernel latency histograms, the unified metrics
//! snapshot, and the Chrome trace-event export.
//!
//! ```text
//! PYGB_TRACE=trace.json cargo run -p pygb-runtime --example trace
//! ```
//!
//! Load the written `trace.json` in Perfetto (https://ui.perfetto.dev)
//! or `chrome://tracing` to see kernel spans nested under their flush
//! waves. Without `PYGB_TRACE` the example still traces (it enables
//! collection programmatically) but skips the file export.

use pygb::prelude::*;

fn main() -> pygb::Result<()> {
    // `PYGB_TRACE=<path>` turns tracing on and selects the export
    // destination; `enable()` turns it on without a file.
    if !pygb_obs::init_from_env() {
        pygb_obs::enable();
    }

    // A small graph workload: one BFS-like frontier expansion plus an
    // eWise chain, deferred into the op-DAG and flushed on scope exit.
    let g = Matrix::from_triples(
        7,
        7,
        vec![
            (0usize, 1usize, 1.0f64),
            (0, 3, 1.0),
            (1, 4, 1.0),
            (3, 5, 1.0),
            (4, 6, 1.0),
            (5, 6, 1.0),
        ],
    )?;
    let u = Vector::from_dense(&[1.0f64, 0.5, 0.25, 1.0, 0.5, 0.25, 1.0]);
    let mut w = Vector::new(7, DType::Fp64);
    let mut z = Vector::new(7, DType::Fp64);

    let before = pygb_obs::registry().snapshot();
    {
        let _nb = pygb_runtime::nonblocking()?;
        let _sr = ArithmeticSemiring.enter();
        w.no_mask().assign(g.mxv(&u))?; // deferred SpMV
        let t = Vector::from_expr(&u + &u)?; // deferred eWise producer
        z.no_mask().assign(&t * &u)?; // deferred consumer: fuses with t
        drop(t); // release the temp so the planner can prove the fusion

        println!("== plan() before the flush ==");
        print!("{}", pygb_runtime::plan());
    } // scope exit flushes: fuse pass, then waves of kernel dispatches

    println!("== trace_report() after the flush (same node ids) ==");
    print!("{}", pygb_runtime::trace_report());

    println!("== per-phase span totals ==");
    for (phase, ns) in pygb_obs::phase_totals() {
        println!("   {phase:<10} {:>10} ns", ns);
    }

    let after = pygb_obs::registry().snapshot();
    println!("== per-kernel latency histograms ==");
    for (name, h) in &after.histograms {
        let Some(family) = name.strip_prefix("kernel/") else {
            continue;
        };
        let delta = h.count - before.histogram_count(name);
        if delta == 0 {
            continue;
        }
        println!(
            "   {family:<20} count={delta:<3} mean={:>8.0} ns  p50<={} ns",
            h.mean(),
            h.quantile_bound(0.5)
        );
    }

    println!("== unified metrics snapshot (jit/* via MetricsRegistry) ==");
    for key in ["jit/deferred_ops", "jit/fused_ops", "jit/invocations"] {
        println!("   {key:<20} {}", after.counter(key));
    }

    // With PYGB_TRACE set, write the Chrome trace-event file.
    match pygb_obs::finish() {
        Ok(Some(path)) => println!("\nchrome trace written to {}", path.display()),
        Ok(None) => println!("\nset PYGB_TRACE=<path> to export a Chrome trace"),
        Err(e) => eprintln!("\ntrace export failed: {e}"),
    }
    Ok(())
}
