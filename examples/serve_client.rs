//! End-to-end tour of a `pygb-serve` instance from a wire client.
//!
//! Starts an in-process server (or connects to `PYGB_SERVE_ADDR` if
//! set, so it doubles as a smoke client for a live deployment),
//! registers two graphs, runs every query verb, streams edge
//! mutations through `UPDATE`, exercises a batch, and prints the
//! server's own `serve/*` metrics at the end.
//!
//! ```text
//! cargo run --example serve_client
//! PYGB_SERVE_ADDR=127.0.0.1:7411 cargo run --example serve_client
//! ```

use pygb_serve::{Catalog, Client, Frame, Server, ServerConfig};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Either attach to a live server or spin one up in-process.
    let (addr, _server) = match std::env::var("PYGB_SERVE_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let server = Server::start(Arc::new(Catalog::new()), ServerConfig::default())?;
            (server.local_addr().to_string(), Some(server))
        }
    };
    println!("connecting to {addr}");

    let mut client = Client::connect(&addr)?;
    println!("HELLO     -> {}", client.hello("example")?);
    println!("PING      -> {}", client.ping()?);

    // Two named graphs: a directed ER digraph and a symmetrized one
    // for the undirected algorithms.
    println!(
        "REGISTER  -> {}",
        client.request_ok("REGISTER web ER 500 3000 42")?
    );
    println!(
        "REGISTER  -> {}",
        client.request_ok("REGISTER social ER 300 2400 7 SYM")?
    );
    println!("LIST      -> {}", client.list()?);

    // Traversals against `web`, analytics against `social`.
    let bfs = client.request_ok("QUERY web BFS 0")?;
    println!(
        "BFS       -> {} bytes: {}...",
        bfs.len(),
        &bfs[..bfs.len().min(96)]
    );
    let sssp = client.request_ok("QUERY web SSSP 0")?;
    println!("SSSP      -> {} bytes", sssp.len());
    let pr = client.request_ok("QUERY web PAGERANK 50")?;
    println!("PAGERANK  -> {} bytes", pr.len());
    println!(
        "TRICOUNT  -> {}",
        trim(&client.request_ok("QUERY social TRICOUNT")?)
    );
    let cc = client.request_ok("QUERY social CC")?;
    println!("CC        -> {}...", &cc[..cc.len().min(96)]);

    // Streamed mutations: each UPDATE publishes the next catalog
    // version (readers keep the version they were admitted with) and
    // answers with the new version's descriptor.
    println!(
        "UPDATE    -> {}",
        client.request_ok("UPDATE web ADD 0:1:2.5,1:0:1")?
    );
    println!("UPDATE    -> {}", client.request_ok("UPDATE web DEL 0:1")?);

    // A raw masked expression published back into the catalog:
    // two_hop[social] = web_sym? No — square `social` under the
    // arithmetic semiring, masked by itself (count 2-paths that close).
    let expr =
        client.request_ok("EXPR social MXM social SEMIRING ARITHMETIC MASK social INTO twohop")?;
    println!("EXPR      -> {expr}");

    // Batched round-trip: one admission, three queries, one frame.
    match client.batch(&[
        "QUERY web BFS 1",
        "QUERY social TRICOUNT",
        "QUERY twohop CC",
    ])? {
        Frame::Ok(payload) | Frame::OkWarn(payload, _) => {
            println!("BATCH     -> {} bytes", payload.len())
        }
        Frame::Err(code, msg) => println!("BATCH     -> ERR {code}: {msg}"),
    }

    println!("DROP      -> {}", client.request_ok("DROP twohop")?);

    // The server's own metrics, filtered to the serve namespace.
    let stats = client.stats()?;
    let serve_lines: Vec<&str> = stats
        .lines()
        .filter(|l| l.contains("serve/") || l.contains("push_pull_density"))
        .collect();
    println!("STATS (serve/*):");
    for line in serve_lines {
        println!("  {}", line.trim().trim_end_matches(','));
    }
    Ok(())
}

fn trim(s: &str) -> String {
    s.chars().take(120).collect()
}
