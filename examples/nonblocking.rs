//! Nonblocking mode end to end: the same operation chain run eagerly
//! and deferred, with the JIT counters showing the DAG fusing the
//! chain into fewer kernel dispatches (DESIGN.md §4c).
//!
//! ```text
//! cargo run --example nonblocking
//! ```

use pygb::prelude::*;

fn counters() -> (u64, u64, u64, u64) {
    let s = pygb::runtime().cache().stats().snapshot();
    (s.invocations, s.deferred_ops, s.fused_ops, s.elided_ops)
}

fn main() -> pygb::Result<()> {
    let n = 8usize;
    let mut u = Vector::new(n, DType::Fp64);
    let mut v = Vector::new(n, DType::Fp64);
    for i in 0..n {
        u.set(i, i as f64 + 1.0)?;
        v.set(i, 10.0 * (i as f64 + 1.0))?;
    }

    // Blocking (the default): every assignment dispatches immediately.
    let mut w_blocking = Vector::new(n, DType::Fp64);
    let before = counters();
    {
        let t = Vector::from_expr(&u + &v)?; // dispatch 1
        w_blocking.no_mask().assign(&t * &u)?; // dispatch 2
    }
    let after = counters();
    println!("== blocking: t = u + v; w = t * u ==");
    println!(
        "   kernel invocations: {}   (deferred {}, fused {})",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
    );

    // Nonblocking: both operations enqueue into the op-DAG; at flush
    // (scope exit) the fusion pass rewrites the pair into ONE
    // fused_ewise_chain kernel, since the temporary `t` is provably
    // unobservable.
    let mut w_nonblocking = Vector::new(n, DType::Fp64);
    let before = counters();
    {
        let _nb = pygb_runtime::nonblocking()?;
        let t = Vector::from_expr(&u + &v)?; // enqueued
        w_nonblocking.no_mask().assign(&t * &u)?; // enqueued
    } // guard drops -> fuse -> single dispatch
    let after = counters();
    println!("== nonblocking: same chain through the op-DAG ==");
    println!(
        "   kernel invocations: {}   (deferred {}, fused {})",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
    );

    assert_eq!(w_blocking.extract_pairs(), w_nonblocking.extract_pairs());
    println!(
        "   containers bitwise identical: {:?}",
        w_nonblocking.to_dense_f64()
    );

    // Reads are flush points: no explicit flush() needed, ever.
    let before = counters();
    let total = {
        let _nb = pygb_runtime::nonblocking()?;
        let mut d = Vector::new(n, DType::Fp64);
        d.no_mask().assign(&u * &u)?; // enqueued
        pygb::reduce(&d)?.as_f64() // read -> fused ewise+reduce
    };
    let after = counters();
    println!("== nonblocking: d = u * u; reduce(d) ==");
    println!(
        "   kernel invocations: {}   (deferred {}, fused {})   sum of squares = {total}",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
    );
    Ok(())
}
