//! Quickstart: containers, operators, and one ply of BFS — Figs. 1 and
//! 3 of the paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pygb::prelude::*;

fn main() -> pygb::Result<()> {
    // --- Construction, Fig. 3a: sparse (vals, (rows, cols)) and dense ---
    let m = Matrix::from_coo(&[1.0f64, 2.0, 3.0], &[0, 1, 2], &[1, 2, 0], (3, 3))?;
    println!("coo matrix: shape {:?}, nvals {}", m.shape(), m.nvals());

    let dense = Matrix::from_dense(&[vec![1i64, 2, 3], vec![4, 5, 6], vec![7, 8, 9]])?;
    println!(
        "dense matrix: dtype {}, nvals {} (dense data stores every element)",
        dense.dtype(),
        dense.nvals()
    );

    let v = Vector::from_dense(&[1i64, 2, 3, 4, 5]);
    println!("vector: size {}, nvals {}", v.size(), v.nvals());

    // --- Fig. 1: one ply of BFS, vᵀ = Aᵀ ⊕.⊗ v over Boolean algebra ---
    // The 7-vertex digraph of Fig. 1 (0-based; the paper's vertex 4 is
    // our vertex 3).
    let edges: Vec<(usize, usize, bool)> = vec![
        (0, 1, true),
        (0, 3, true),
        (1, 4, true),
        (1, 6, true),
        (2, 5, true),
        (3, 0, true),
        (3, 2, true),
        (4, 5, true),
        (5, 2, true),
        (6, 2, true),
        (6, 3, true),
        (6, 4, true),
    ];
    let graph = Matrix::from_triples(7, 7, edges)?;

    let mut frontier = Vector::new(7, DType::Bool);
    frontier.set(3, true)?;

    // with gb.LogicalSemiring: next = graph.T @ frontier
    let next = {
        let _sr = LogicalSemiring.enter();
        Vector::from_expr(graph.t().mxv(&frontier))?
    };
    let reached: Vec<usize> = next.extract_pairs().into_iter().map(|(i, _)| i).collect();
    println!("one BFS ply from vertex 3 reaches {reached:?} (paper: vertices 1 and 3, 1-based)");
    assert_eq!(reached, vec![0, 2]);

    // --- Operator constructors, Fig. 6 ---
    let plus = BinaryOp::new("Plus")?;
    let plus_monoid = Monoid::from_op(plus, 0.0)?;
    let arithmetic = Semiring::new(plus_monoid, "Times")?;
    println!(
        "built gb.Semiring(gb.Monoid(PlusOp, 0), TimesOp) == gb.ArithmeticSemiring: {}",
        arithmetic == ArithmeticSemiring
    );

    // --- eWise ops and reduce through the DSL ---
    let a = Vector::from_dense(&[1.0f64, 2.0, 3.0]);
    let b = Vector::from_dense(&[10.0f64, 20.0, 30.0]);
    let mut sum = Vector::new(3, DType::Fp64);
    sum.no_mask().assign(&a + &b)?;
    println!("a + b = {:?}", sum.to_dense_f64());
    let total = reduce(&sum)?;
    println!("reduce(a + b) = {total}");
    assert_eq!(total.as_f64(), 66.0);

    // --- Peek at the JIT: every operation above was a module dispatch ---
    let stats = pygb::runtime().cache().stats().snapshot();
    println!(
        "JIT cache: {} modules compiled, {} warm hits, {} total dispatches",
        stats.compiles,
        stats.memory_hits + stats.disk_hits,
        stats.total_dispatches()
    );
    Ok(())
}
