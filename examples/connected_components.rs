//! Connected components — a fifth algorithm built entirely on the
//! public PyGB API (min-label propagation over the MinSelect2nd
//! semiring), in all three execution variants.
//!
//! ```text
//! cargo run --example connected_components [n]     # default n = 256
//! ```

use pygb::DType;
use pygb_algorithms::{cc_dsl_fused, cc_dsl_loops, cc_native, count_components};
use pygb_io::generators;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);
    // A sparse graph with several components: m ≈ n/2 random edges.
    let graph = generators::erdos_renyi(n, n / 2, 77);
    let g = graph.to_pygb(DType::Fp64);
    println!(
        "Erdős–Rényi: |V| = {n}, |E| = {} (sparse, fragmented)",
        graph.nnz()
    );

    let (labels_loops, rounds) = cc_dsl_loops(&g)?;
    let (labels_fused, _) = cc_dsl_fused(&g)?;
    let ng: gbtl::Matrix<f64> = g.to_typed().unwrap();
    let (labels_native, _) = cc_native(&ng)?;

    let k = count_components(&labels_loops);
    println!("{k} components, converged in {rounds} rounds");

    // All three agree.
    assert_eq!(labels_loops.extract_pairs(), labels_fused.extract_pairs());
    let native_pairs: Vec<(usize, i64)> =
        labels_native.iter().map(|(i, v)| (i, v as i64)).collect();
    let loop_pairs: Vec<(usize, i64)> = labels_loops
        .extract_pairs()
        .into_iter()
        .map(|(i, v)| (i, v.as_i64()))
        .collect();
    assert_eq!(loop_pairs, native_pairs);
    println!("all three variants produced identical labels ✓");

    // Component size histogram (top 5).
    let mut sizes = std::collections::HashMap::new();
    for (_, label) in labels_loops.extract_pairs() {
        *sizes.entry(label.as_i64()).or_insert(0usize) += 1;
    }
    let mut by_size: Vec<(i64, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("largest components:");
    for (label, size) in by_size.iter().take(5) {
        println!(
            "  component rooted at vertex {:>4}: {size} vertices",
            label - 1
        );
    }
    Ok(())
}
