//! Streaming edge mutations: hypersparse deltas, deferred merge, and
//! incremental recompute.
//!
//! Builds a graph, streams insert/delete batches through
//! [`pygb::StreamingMatrix`] (O(batch) absorb, sort-free splice merge
//! on settle), proves the result matches a from-scratch rebuild, then
//! reuses stale BFS levels and PageRank ranks on the mutated graph via
//! the incremental algorithms — and prints the `stream/*` metrics the
//! whole path feeds.
//!
//! ```text
//! cargo run --example streaming
//! ```

use pygb::{DType, EdgeUpdate, Matrix, MergePolicy, StreamingMatrix};
use pygb_algorithms::{bfs_incremental, bfs_nonblocking, pagerank_incremental, PageRankOptions};

fn main() -> pygb::Result<()> {
    // A directed 8-vertex ring 0→1→…→7→0 plus a hub fan-in, the
    // settled starting point. (A ring, not a path: every vertex needs
    // an out-edge or PageRank's dangling mass stalls convergence, and
    // the hub makes in-degrees irregular so a warm start has an edge.)
    let n = 8usize;
    let ring = (0..n).map(|i| (i, (i + 1) % n, 1.0f64));
    let hub = (2..n - 1).map(|i| (i, 0, 1.0f64));
    let base = Matrix::from_triples(n, n, ring.chain(hub).collect::<Vec<_>>())?;
    println!("base graph: {} vertices, {} edges", n, base.nvals());

    // --- Stream batches into a delta over the settled CSR ---
    let mut stream = StreamingMatrix::with_policy(
        &base,
        MergePolicy {
            max_pending: 4,
            ..MergePolicy::default()
        },
    )?;
    // Batch 1: a shortcut and a back edge. Absorbed into the delta;
    // the CSR underneath is untouched.
    stream.update_edges(&[
        EdgeUpdate::add(0usize, 4usize, 1.0f64),
        EdgeUpdate::add(7usize, 0usize, 1.0f64),
    ])?;
    println!(
        "after batch 1: nvals {} (settled: {})",
        stream.nvals(),
        stream.is_settled()
    );
    // Batch 2: delete the first hop and overwrite a weight. This blows
    // the max_pending=4 policy, so the splice merge runs automatically.
    stream.update_edges(&[
        EdgeUpdate::del(0usize, 1usize),
        EdgeUpdate::add(1usize, 2usize, 9.0f64),
        EdgeUpdate::add(4usize, 0usize, 1.0f64),
    ])?;
    println!(
        "after batch 2: nvals {} (settled: {} — policy forced a merge)",
        stream.nvals(),
        stream.is_settled()
    );

    // --- update ≡ rebuild ---
    let updated = stream.snapshot();
    let rebuilt = Matrix::from_triples_dyn(n, n, &updated.extract_triples(), Some(DType::Fp64))?;
    assert_eq!(updated.extract_triples(), rebuilt.extract_triples());
    println!("update ≡ rebuild: {} edges, bit-identical", updated.nvals());

    // --- Incremental BFS: reuse stale levels across an insert batch ---
    let old_levels = bfs_nonblocking(&base, 0)?;
    let inserts = vec![EdgeUpdate::add(0usize, 6usize, 1.0f64)];
    let mut grown = base.clone();
    grown.update_edges(&inserts)?;
    let warm = bfs_incremental(&grown, 0, &old_levels, &inserts)?;
    let fresh = bfs_nonblocking(&grown, 0)?;
    assert_eq!(warm.extract_pairs(), fresh.extract_pairs());
    println!(
        "incremental BFS after insert (0→6): vertex 6 level {} → {}, warm ≡ fresh",
        old_levels.get(6).unwrap().as_i64(),
        warm.get(6).unwrap().as_i64()
    );

    // --- Incremental PageRank: warm-start from stale ranks ---
    let opts = PageRankOptions {
        threshold: 1e-14,
        max_iters: 5_000,
        ..Default::default()
    };
    let (old_ranks, cold_iters) = pygb_algorithms::pagerank_nonblocking(&base, opts)?;
    let (_, warm_iters) = pagerank_incremental(&grown, &old_ranks, opts)?;
    println!("incremental PageRank: {cold_iters} cold iterations, {warm_iters} warm");

    // --- The metrics every batch and merge fed ---
    println!("stream/* metrics:");
    let snapshot = pygb_obs::registry().snapshot();
    for (key, value) in snapshot.counters {
        if key.starts_with("stream/") {
            println!("  {key} = {value}");
        }
    }
    Ok(())
}
