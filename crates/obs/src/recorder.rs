//! The always-on request flight recorder: a fixed-capacity, lock-free
//! ring of per-request records that costs nothing to keep running.
//!
//! Serving turns the unit of diagnosis from a *process* into a
//! *request*: when a tenant reports one slow `QUERY`, a process-global
//! histogram says nothing about it. The flight recorder keeps the last
//! [`RECORDER_CAPACITY`] completed requests — tenant, verb, graph,
//! queue-wait, execution time, outcome, and opt/kernel counter deltas —
//! in a ring that is *always* recording, so the evidence for "what just
//! happened" exists before anyone thinks to ask.
//!
//! ## Hot-path contract
//!
//! [`FlightRecorder::record`] is called once per completed request on
//! the serve worker thread and must never allocate, lock, or syscall:
//!
//! * the ring and every slot are fixed at construction — recording is a
//!   `fetch_add` to claim a slot plus relaxed stores into preallocated
//!   atomics (string fields are copied byte-by-byte into fixed
//!   [`NAME_CAP`]-byte arrays, truncating);
//! * a seqlock-style per-slot sequence word (odd while a write is in
//!   flight) lets readers detect and discard torn records instead of
//!   writers waiting for readers;
//! * if two writers collide on one slot (the ring lapped itself within
//!   one write — requires ≥ [`RECORDER_CAPACITY`] concurrent writers),
//!   the loser drops its record and bumps a collision counter rather
//!   than spin.
//!
//! The `obs_overhead` bench asserts the zero-allocation property for
//! both the muted and the active path on every CI run.
//!
//! ## Readers
//!
//! [`FlightRecorder::tail`] and [`FlightRecorder::slow`] are cold-path
//! drains (the `TAIL` / `SLOW` wire verbs): they copy out every stable
//! slot, validate each against its sequence word, and sort. Records
//! overwritten mid-read are simply skipped — the ring never blocks the
//! writer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Number of ring slots in the process-wide recorder. 4096 records at
/// ~128 bytes each is a fixed ~512 KiB — enough to hold several seconds
/// of history at saturation throughput, small enough to never matter.
pub const RECORDER_CAPACITY: usize = 4096;

/// Fixed byte budget for each recorded string field (tenant, verb,
/// graph). Longer names are truncated on record; every current verb and
/// the example tenants/graphs fit with room to spare.
pub const NAME_CAP: usize = 24;

/// How a recorded request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Outcome {
    /// Completed and produced an `OK` frame.
    Ok = 0,
    /// Completed with an `ERR` frame (bad request, execution failure).
    Error = 1,
    /// Shed at admission: the global in-flight ceiling was hit.
    ShedGlobal = 2,
    /// Shed at admission: the per-tenant ceiling was hit.
    ShedTenant = 3,
    /// Shed at submission: the worker-pool queue was full.
    ShedQueue = 4,
    /// Admitted but expired in the queue past its deadline.
    Timeout = 5,
}

impl Outcome {
    /// Stable wire/debug name for the outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::ShedGlobal => "shed-global",
            Outcome::ShedTenant => "shed-tenant",
            Outcome::ShedQueue => "shed-queue",
            Outcome::Timeout => "timeout",
        }
    }

    fn from_u8(v: u8) -> Outcome {
        match v {
            1 => Outcome::Error,
            2 => Outcome::ShedGlobal,
            3 => Outcome::ShedTenant,
            4 => Outcome::ShedQueue,
            5 => Outcome::Timeout,
            _ => Outcome::Ok,
        }
    }
}

/// The borrowed input to [`FlightRecorder::record`] — everything the
/// caller already has on hand, so recording copies bytes but never
/// allocates.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord<'a> {
    /// The request ID minted at admission (the `rN` echoed on the wire).
    pub id: u64,
    /// Tenant that issued the request (truncated to [`NAME_CAP`]).
    pub tenant: &'a str,
    /// Wire verb (`QUERY`, `EXPR`, ...; truncated to [`NAME_CAP`]).
    pub verb: &'a str,
    /// Graph the request touched, empty when none.
    pub graph: &'a str,
    /// Version of the graph snapshot served, 0 when not applicable.
    pub version: u64,
    /// Nanoseconds spent waiting in the worker-pool queue.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent executing (0 for shed/expired requests).
    pub exec_ns: u64,
    /// How the request ended.
    pub outcome: Outcome,
    /// Kernel dispatches attributed to this request (counter delta).
    pub kernel_delta: u64,
    /// Optimizer launches saved for this request (counter delta).
    pub opt_delta: u64,
}

/// An owned, validated copy of one ring slot, as drained by
/// [`FlightRecorder::tail`] / [`FlightRecorder::slow`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedRequest {
    /// Request ID (`rN` on the wire).
    pub id: u64,
    /// Tenant name (possibly truncated at record time).
    pub tenant: String,
    /// Wire verb.
    pub verb: String,
    /// Graph name, empty when the request had none.
    pub graph: String,
    /// Graph snapshot version, 0 when not applicable.
    pub version: u64,
    /// Nanoseconds queued before a worker picked the request up.
    pub queue_wait_ns: u64,
    /// Nanoseconds executing.
    pub exec_ns: u64,
    /// Final outcome.
    pub outcome: Outcome,
    /// Kernel dispatches attributed to this request.
    pub kernel_delta: u64,
    /// Optimizer launches saved for this request.
    pub opt_delta: u64,
}

/// One fixed-size name field: a length byte plus [`NAME_CAP`] data
/// bytes, all atomics so the slot needs no lock and no `unsafe`.
struct NameField {
    len: AtomicU8,
    bytes: [AtomicU8; NAME_CAP],
}

impl NameField {
    fn new() -> NameField {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU8 = AtomicU8::new(0);
        NameField {
            len: ZERO,
            bytes: [ZERO; NAME_CAP],
        }
    }

    /// Store `s` (truncated to a UTF-8 boundary within [`NAME_CAP`]).
    fn store(&self, s: &str) {
        let mut end = s.len().min(NAME_CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        for (i, b) in s.as_bytes()[..end].iter().enumerate() {
            self.bytes[i].store(*b, Ordering::Relaxed);
        }
        self.len.store(end as u8, Ordering::Relaxed);
    }

    /// Copy the field out. Torn reads are possible here; the caller
    /// rejects them via the slot sequence word.
    fn load(&self) -> String {
        let len = (self.len.load(Ordering::Relaxed) as usize).min(NAME_CAP);
        let raw: Vec<u8> = self.bytes[..len]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        String::from_utf8_lossy(&raw).into_owned()
    }
}

/// One ring slot. `seq` is the seqlock word: 0 = never written, odd =
/// write in flight, even > 0 = stable. Writers bump it odd, fill the
/// fields, then publish with a release store of the next even value;
/// readers accept a slot only if `seq` is even, nonzero, and unchanged
/// across the field reads.
struct Slot {
    seq: AtomicU64,
    id: AtomicU64,
    tenant: NameField,
    verb: NameField,
    graph: NameField,
    version: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
    outcome: AtomicU8,
    kernel_delta: AtomicU64,
    opt_delta: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            id: AtomicU64::new(0),
            tenant: NameField::new(),
            verb: NameField::new(),
            graph: NameField::new(),
            version: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            exec_ns: AtomicU64::new(0),
            outcome: AtomicU8::new(0),
            kernel_delta: AtomicU64::new(0),
            opt_delta: AtomicU64::new(0),
        }
    }
}

/// The lock-free bounded flight recorder. See the module docs for the
/// hot-path contract; construct one per process via [`recorder`] (tests
/// may build private instances with [`FlightRecorder::with_capacity`]).
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// Next logical write position; slot = `head % slots.len()`.
    head: AtomicU64,
    /// Total records accepted (not dropped by mute or collision).
    recorded: AtomicU64,
    /// Records dropped because another writer held the slot.
    collisions: AtomicU64,
    /// When true, [`FlightRecorder::record`] is one load + branch.
    muted: AtomicBool,
}

impl FlightRecorder {
    /// Build a recorder with `capacity` slots (rounded up to 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            muted: AtomicBool::new(false),
        }
    }

    /// Record one completed request. Never allocates, locks, or blocks:
    /// claim a slot with one `fetch_add`, mark it mid-write (odd seq),
    /// store the fields, publish (even seq). A concurrent writer on the
    /// same slot — only possible with ≥ capacity writers in flight —
    /// makes the later claimant drop the record and count a collision.
    pub fn record(&self, r: &RequestRecord<'_>) {
        if self.muted.load(Ordering::Relaxed) {
            return;
        }
        let pos = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[pos];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            // Another writer is mid-flight in this slot; drop ours.
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.id.store(r.id, Ordering::Relaxed);
        slot.tenant.store(r.tenant);
        slot.verb.store(r.verb);
        slot.graph.store(r.graph);
        slot.version.store(r.version, Ordering::Relaxed);
        slot.queue_wait_ns.store(r.queue_wait_ns, Ordering::Relaxed);
        slot.exec_ns.store(r.exec_ns, Ordering::Relaxed);
        slot.outcome.store(r.outcome as u8, Ordering::Relaxed);
        slot.kernel_delta.store(r.kernel_delta, Ordering::Relaxed);
        slot.opt_delta.store(r.opt_delta, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Validated copy of one slot, `None` if empty, mid-write, or torn.
    fn read_slot(&self, slot: &Slot) -> Option<RecordedRequest> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let rec = RecordedRequest {
            id: slot.id.load(Ordering::Relaxed),
            tenant: slot.tenant.load(),
            verb: slot.verb.load(),
            graph: slot.graph.load(),
            version: slot.version.load(Ordering::Relaxed),
            queue_wait_ns: slot.queue_wait_ns.load(Ordering::Relaxed),
            exec_ns: slot.exec_ns.load(Ordering::Relaxed),
            outcome: Outcome::from_u8(slot.outcome.load(Ordering::Relaxed)),
            kernel_delta: slot.kernel_delta.load(Ordering::Relaxed),
            opt_delta: slot.opt_delta.load(Ordering::Relaxed),
        };
        // Acquire fence via re-load: if the slot was rewritten while we
        // copied, the sequence moved and the copy may be torn — discard.
        if slot.seq.load(Ordering::Acquire) != s1 {
            return None;
        }
        Some(rec)
    }

    /// Every currently-stable record, unordered. Cold path.
    fn drain(&self) -> Vec<RecordedRequest> {
        self.slots
            .iter()
            .filter_map(|s| self.read_slot(s))
            .collect()
    }

    /// The `n` most recent records, newest first (by request ID, which
    /// is minted monotonically at admission).
    pub fn tail(&self, n: usize) -> Vec<RecordedRequest> {
        let mut all = self.drain();
        all.sort_by_key(|r| std::cmp::Reverse(r.id));
        all.truncate(n);
        all
    }

    /// The `n` slowest records currently in the ring, by execution
    /// time, slowest first (ties broken newest-first).
    pub fn slow(&self, n: usize) -> Vec<RecordedRequest> {
        let mut all = self.drain();
        all.sort_by(|a, b| b.exec_ns.cmp(&a.exec_ns).then(b.id.cmp(&a.id)));
        all.truncate(n);
        all
    }

    /// Mute or unmute recording. Muted, [`FlightRecorder::record`] is a
    /// single relaxed load and a branch — the A/B lever `serve_bench`
    /// uses to price the recorder itself.
    pub fn set_muted(&self, muted: bool) {
        self.muted.store(muted, Ordering::Relaxed);
    }

    /// Whether recording is currently muted.
    pub fn muted(&self) -> bool {
        self.muted.load(Ordering::Relaxed)
    }

    /// Total records accepted into the ring.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records dropped to a same-slot writer collision.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// The process-wide flight recorder ([`RECORDER_CAPACITY`] slots),
/// built on first use.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(RECORDER_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, exec_ns: u64) -> RequestRecord<'static> {
        RequestRecord {
            id,
            tenant: "t",
            verb: "QUERY",
            graph: "g",
            version: 1,
            queue_wait_ns: 10,
            exec_ns,
            outcome: Outcome::Ok,
            kernel_delta: 2,
            opt_delta: 1,
        }
    }

    #[test]
    fn record_and_tail_roundtrip() {
        let r = FlightRecorder::with_capacity(8);
        for i in 1..=5 {
            r.record(&rec(i, i * 100));
        }
        let tail = r.tail(3);
        assert_eq!(tail.iter().map(|t| t.id).collect::<Vec<_>>(), [5, 4, 3]);
        assert_eq!(tail[0].tenant, "t");
        assert_eq!(tail[0].verb, "QUERY");
        assert_eq!(tail[0].exec_ns, 500);
        assert_eq!(tail[0].outcome, Outcome::Ok);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.collisions(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::with_capacity(4);
        for i in 1..=10 {
            r.record(&rec(i, i));
        }
        let tail = r.tail(10);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail.iter().map(|t| t.id).collect::<Vec<_>>(), [10, 9, 8, 7]);
    }

    #[test]
    fn slow_orders_by_exec_ns() {
        let r = FlightRecorder::with_capacity(8);
        r.record(&rec(1, 500));
        r.record(&rec(2, 10_000));
        r.record(&rec(3, 40));
        let slow = r.slow(2);
        assert_eq!(slow.iter().map(|s| s.id).collect::<Vec<_>>(), [2, 1]);
    }

    #[test]
    fn muted_records_nothing() {
        let r = FlightRecorder::with_capacity(4);
        r.set_muted(true);
        r.record(&rec(1, 1));
        assert!(r.muted());
        assert_eq!(r.recorded(), 0);
        assert!(r.tail(4).is_empty());
        r.set_muted(false);
        r.record(&rec(2, 2));
        assert_eq!(r.tail(4).len(), 1);
    }

    #[test]
    fn long_names_truncate_on_char_boundary() {
        let r = FlightRecorder::with_capacity(2);
        let long = "tenant-name-well-past-the-cap-àéîõü";
        r.record(&RequestRecord {
            tenant: long,
            ..rec(1, 1)
        });
        let t = &r.tail(1)[0].tenant;
        assert!(t.len() <= NAME_CAP);
        assert!(long.starts_with(t.as_str()));
    }

    #[test]
    fn outcome_round_trips() {
        for o in [
            Outcome::Ok,
            Outcome::Error,
            Outcome::ShedGlobal,
            Outcome::ShedTenant,
            Outcome::ShedQueue,
            Outcome::Timeout,
        ] {
            assert_eq!(Outcome::from_u8(o as u8), o);
            assert!(!o.as_str().is_empty());
        }
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let id = t * 1_000_000 + i;
                        // Tenant encodes the id so a torn record is
                        // detectable as a field mismatch.
                        let tenant = format!("t{id}");
                        r.record(&RequestRecord {
                            id,
                            tenant: &tenant,
                            exec_ns: id,
                            ..rec(0, 0)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for got in r.tail(usize::MAX) {
            assert_eq!(got.tenant, format!("t{}", got.id), "torn record: {got:?}");
            assert_eq!(got.exec_ns, got.id);
        }
    }
}
