//! The unified metrics registry: counters, log-bucketed latency
//! histograms, and pluggable snapshot sources.
//!
//! One process-wide [`MetricsRegistry`] (see [`registry`]) replaces the
//! three ad-hoc counter surfaces that grew up across the codebase —
//! JitStats, kernel-selection tallies, and the fusion counters. Live
//! subsystems keep their own lock-free structs for the hot path and
//! plug in as a [`MetricsSource`]; everything is read out through one
//! [`MetricsRegistry::snapshot`] and one flat-JSON export.
//!
//! Histogram buckets are fixed powers of two (bucket `i` counts values
//! with `bound(i-1) < v ≤ bound(i)`... precisely: index by the bit
//! length of the value), so bucket boundaries are stable across
//! snapshots, runs, and processes — a hard requirement for diffing two
//! `bench_summary.json` baselines.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log buckets: one per possible bit length of a `u64`
/// nanosecond value (bucket 0 holds `0..=1` ns, the last is open-ended
/// in practice — `2^62` ns ≈ 146 years).
pub const HISTOGRAM_BUCKETS: usize = 63;

/// A log-bucketed latency histogram with power-of-two bucket bounds.
/// Recording is two relaxed `fetch_add`s plus one on the bucket; all
/// bounds are compile-time fixed so snapshots are structurally stable.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: ZERO,
            sum: ZERO,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket a value falls into: its bit length, i.e. bucket `i`
    /// covers `(2^(i-1), 2^i]` with bucket 0 covering `{0, 1}`.
    pub fn bucket_index(value: u64) -> usize {
        let bits = (64 - value.saturating_sub(1).leading_zeros()) as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`2^i` nanoseconds).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i.min(62)
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((Self::bucket_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one [`Histogram`]. Only nonzero buckets are
/// materialized, keyed by their (stable) inclusive upper bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (nanoseconds at every call site).
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each nonzero bucket,
    /// ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`) — a conservative estimate, 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.buckets.last().map(|&(b, _)| b).unwrap_or(0)
    }
}

/// A live subsystem that contributes counters to the registry
/// snapshot. `collect` returns `(name, value)` pairs; the registry
/// prefixes each with the source's registration name.
pub trait MetricsSource: Send + Sync {
    /// Read out the current counter values.
    fn collect(&self) -> Vec<(String, u64)>;
}

/// The process-wide registry: named counters, named histograms, and
/// registered [`MetricsSource`]s, all folded into one
/// [`MetricsSnapshot`].
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sources: Mutex<Vec<(String, Arc<dyn MetricsSource>)>>,
}

impl MetricsRegistry {
    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the counter `name` carrying `labels` — one
    /// independent series per distinct label set, keyed by
    /// [`labeled_name`]. Callers on hot paths should cache the returned
    /// `Arc` per label set rather than re-resolve it per event.
    pub fn labeled_counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled_name(name, labels))
    }

    /// Get or create the histogram `name` carrying `labels`; see
    /// [`MetricsRegistry::labeled_counter`].
    pub fn labeled_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled_name(name, labels))
    }

    /// Register (or replace) a snapshot source. Its counters appear in
    /// snapshots as `<name>/<counter>`.
    pub fn register_source(&self, name: &str, source: Arc<dyn MetricsSource>) {
        let mut sources = self.sources.lock().unwrap();
        if let Some(slot) = sources.iter_mut().find(|(n, _)| n == name) {
            slot.1 = source;
        } else {
            sources.push((name.to_string(), source));
        }
    }

    /// Fold every counter, histogram, and source into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        for (prefix, source) in self.sources.lock().unwrap().iter() {
            for (name, value) in source.collect() {
                counters.insert(format!("{prefix}/{name}"), value);
            }
        }
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// The canonical registry key for a labeled series:
/// `name{k1="v1",k2="v2"}` with labels sorted by key, so the same label
/// set always maps to the same series regardless of call-site order.
/// Label values are escaped Prometheus-style (`\\`, `\"`, `\n`).
pub fn labeled_name(name: &str, labels: &[(&str, &str)]) -> String {
    let mut ls: Vec<&(&str, &str)> = labels.iter().collect();
    ls.sort_by_key(|&&(k, _)| k);
    let mut out = String::with_capacity(name.len() + 16 * ls.len() + 2);
    out.push_str(name);
    out.push('{');
    for (i, &&(k, v)) in ls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Split a registry key produced by [`labeled_name`] back into
/// `(base name, label block)`, where the label block includes the
/// braces and is empty for unlabeled series.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Rewrite a slash-namespaced registry name into a Prometheus metric
/// name: `pygb_` prefix, every character outside `[a-zA-Z0-9_:]`
/// replaced with `_` (so `serve/request_ns` → `pygb_serve_request_ns`).
fn prom_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 5);
    out.push_str("pygb_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Merge an extra `le` label into an existing label block (`{}`-free
/// input means no other labels).
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{{{inner},le=\"{le}\"}}")
    }
}

/// The process-wide [`MetricsRegistry`].
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// A point-in-time copy of the whole registry, exportable as flat JSON.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Every counter (registry-owned and source-contributed), by name.
    pub counters: BTreeMap<String, u64>,
    /// Every histogram, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's observation count, 0 when absent.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms.get(name).map(|h| h.count).unwrap_or(0)
    }

    /// Flat JSON export:
    /// `{"counters": {...}, "histograms": {name: {"count", "sum_ns",
    /// "buckets": [{"le_ns", "count"}, ...]}, ...}}`.
    /// BTreeMap ordering makes the output deterministic.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", esc(name), value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [",
                esc(name),
                h.count,
                h.sum
            ));
            for (j, (bound, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le_ns\": {bound}, \"count\": {n}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition (format 0.0.4) of the whole snapshot.
    ///
    /// * Counters become `pygb_<name> <value>` gauge-free counter
    ///   families; slash namespaces are flattened to `_` and labeled
    ///   series (keys built by [`labeled_name`]) keep their label
    ///   blocks.
    /// * Histograms keep their nanosecond units (`*_ns` names) and are
    ///   exported cumulatively: one `_bucket{le="<bound>"}` line per
    ///   nonzero power-of-two bound, a closing `le="+Inf"`, then
    ///   `_sum` / `_count`.
    /// * One `# TYPE` line per family (BTreeMap order groups all label
    ///   sets of a family together), so the output is deterministic and
    ///   schema-checkable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in &self.counters {
            let (base, labels) = split_labels(name);
            let fam = prom_name(base);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} counter\n"));
                last_family.clone_from(&fam);
            }
            out.push_str(&format!("{fam}{labels} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let fam = prom_name(base);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} histogram\n"));
                last_family.clone_from(&fam);
            }
            let mut cumulative = 0u64;
            for &(bound, n) in &h.buckets {
                cumulative += n;
                out.push_str(&format!(
                    "{fam}_bucket{} {cumulative}\n",
                    with_le(labels, &bound.to_string())
                ));
            }
            out.push_str(&format!(
                "{fam}_bucket{} {}\n",
                with_le(labels, "+Inf"),
                h.count
            ));
            out.push_str(&format!("{fam}_sum{labels} {}\n", h.sum));
            out.push_str(&format!("{fam}_count{labels} {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert_eq!(Histogram::bucket_bound(0), 1);
        assert_eq!(Histogram::bucket_bound(10), 1024);
        // Stability: the same values land in the same buckets across
        // independent histograms and snapshots.
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [0u64, 1, 2, 700, 1024, 1 << 40] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.snapshot().buckets, b.snapshot().buckets);
        assert_eq!(a.snapshot().buckets, a.snapshot().buckets);
    }

    #[test]
    fn histogram_count_sum_quantile() {
        let h = Histogram::default();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 101_500);
        assert_eq!(s.mean(), 20_300.0);
        assert_eq!(s.quantile_bound(0.0), 128);
        assert_eq!(s.quantile_bound(0.5), 512);
        assert_eq!(s.quantile_bound(1.0), 131_072);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: vec![]
            }
            .quantile_bound(0.5),
            0
        );
    }

    #[test]
    fn registry_get_or_create_and_sources() {
        let reg = MetricsRegistry::default();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        reg.histogram("h").record(10);
        struct Fixed;
        impl MetricsSource for Fixed {
            fn collect(&self) -> Vec<(String, u64)> {
                vec![("x".to_string(), 42)]
            }
        }
        reg.register_source("src", Arc::new(Fixed));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 7);
        assert_eq!(snap.counter("src/x"), 42);
        assert_eq!(snap.histogram_count("h"), 1);
        // Replacing a source keeps one entry.
        reg.register_source("src", Arc::new(Fixed));
        assert_eq!(reg.sources.lock().unwrap().len(), 1);
    }

    #[test]
    fn labeled_series_are_independent_and_order_insensitive() {
        let reg = MetricsRegistry::default();
        reg.labeled_counter("serve/completed", &[("tenant", "a"), ("verb", "QUERY")])
            .add(2);
        // Same label set in the other order resolves to the same series.
        reg.labeled_counter("serve/completed", &[("verb", "QUERY"), ("tenant", "a")])
            .add(3);
        reg.labeled_counter("serve/completed", &[("tenant", "b"), ("verb", "QUERY")])
            .inc();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("serve/completed{tenant=\"a\",verb=\"QUERY\"}"),
            5
        );
        assert_eq!(
            snap.counter("serve/completed{tenant=\"b\",verb=\"QUERY\"}"),
            1
        );
        // Label values are escaped.
        assert_eq!(
            labeled_name("m", &[("k", "a\"b\\c\nd")]),
            "m{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::default();
        reg.counter("serve/completed").add(7);
        reg.labeled_counter("serve/completed", &[("tenant", "a")])
            .add(3);
        reg.labeled_histogram("serve/request_ns", &[("verb", "EXPR")])
            .record(1000);
        reg.labeled_histogram("serve/request_ns", &[("verb", "EXPR")])
            .record(3);
        let text = reg.snapshot().to_prometheus();
        // One TYPE line per family even with multiple label sets.
        assert_eq!(
            text.matches("# TYPE pygb_serve_completed counter").count(),
            1
        );
        assert!(text.contains("pygb_serve_completed 7\n"));
        assert!(text.contains("pygb_serve_completed{tenant=\"a\"} 3\n"));
        assert!(text.contains("# TYPE pygb_serve_request_ns histogram\n"));
        // Buckets are cumulative and closed with +Inf, sum, count.
        assert!(text.contains("pygb_serve_request_ns_bucket{verb=\"EXPR\",le=\"4\"} 1\n"));
        assert!(text.contains("pygb_serve_request_ns_bucket{verb=\"EXPR\",le=\"1024\"} 2\n"));
        assert!(text.contains("pygb_serve_request_ns_bucket{verb=\"EXPR\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("pygb_serve_request_ns_sum{verb=\"EXPR\"} 1003\n"));
        assert!(text.contains("pygb_serve_request_ns_count{verb=\"EXPR\"} 2\n"));
        // Deterministic.
        assert_eq!(text, reg.snapshot().to_prometheus());
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let reg = MetricsRegistry::default();
        reg.counter("z").add(1);
        reg.counter("a").add(2);
        reg.histogram("k").record(1000);
        let j1 = reg.snapshot().to_json();
        let j2 = reg.snapshot().to_json();
        assert_eq!(j1, j2);
        // BTreeMap ordering: "a" before "z".
        assert!(j1.find("\"a\"").unwrap() < j1.find("\"z\"").unwrap());
        assert!(j1.contains("\"le_ns\": 1024"));
    }
}
