//! Span collection and Chrome trace-event export.
//!
//! A [`Span`] is an RAII guard: construction stamps the start time,
//! drop stamps the duration and pushes one buffered [`SpanEvent`].
//! Events carry the recording thread's lane id, so the parallel flush
//! shows one Perfetto track per worker with kernel spans nested (by
//! time containment) under their wave and flush spans.
//!
//! The export is the Chrome trace-event "X" (complete) form:
//! `{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid", "args"}` with
//! timestamps in *fractional microseconds* — sub-microsecond kernels
//! keep a nonzero `dur` instead of flooring to 0. Thread lanes are
//! named with "M" metadata records, as the format specifies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span category: which lifecycle phase the span measures. Rendered as
/// the trace-event `cat` field and the key of [`phase_totals`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cat {
    /// Expression-tree construction.
    Build,
    /// Plan-time analysis (shape/dtype/mask checks).
    Analyze,
    /// Deferral of an op into the nonblocking DAG.
    Enqueue,
    /// The fusion + dead-code-elimination rewrite pass.
    Fuse,
    /// One dataflow optimization pass (dce/cse/noop) inside the
    /// pre-scheduling pipeline.
    Opt,
    /// A whole flush of the op-DAG.
    Flush,
    /// One scheduling wave within a flush.
    Wave,
    /// Execution of one DAG node (dispatch + kernel).
    Exec,
    /// One JIT dispatch (key hash → cache → invoke).
    Dispatch,
    /// One substrate kernel invocation.
    Kernel,
    /// One served request (admission through response write) in a
    /// `pygb-serve` instance.
    Serve,
}

impl Cat {
    /// Stable lowercase name used in the exported `cat` field.
    pub fn name(self) -> &'static str {
        match self {
            Cat::Build => "build",
            Cat::Analyze => "analyze",
            Cat::Enqueue => "enqueue",
            Cat::Fuse => "fuse",
            Cat::Opt => "opt",
            Cat::Flush => "flush",
            Cat::Wave => "wave",
            Cat::Exec => "exec",
            Cat::Dispatch => "dispatch",
            Cat::Kernel => "kernel",
            Cat::Serve => "serve",
        }
    }
}

/// One buffered complete span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Human label (`"flush"`, `"n3 mxv/masked_push"`, ...).
    pub name: String,
    /// Lifecycle phase.
    pub cat: Cat,
    /// Start, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (clamped to ≥ 1 on export).
    pub dur_ns: u64,
    /// Recording thread's lane id (0 = the first thread that traced).
    pub tid: u64,
    /// Extra key/value annotations exported under `args`.
    pub args: Vec<(&'static str, String)>,
}

/// Cap on buffered events; beyond it events are counted as dropped
/// rather than grown without bound.
const MAX_EVENTS: usize = 1 << 20;

static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = register_thread();
}

fn register_thread() -> u64 {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = match std::thread::current().name() {
        Some(n) => n.to_string(),
        None if tid == 0 => "main".to_string(),
        None => format!("worker-{tid}"),
    };
    thread_names().lock().unwrap().push((tid, name));
    tid
}

fn thread_names() -> &'static Mutex<Vec<(u64, String)>> {
    static NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    &NAMES
}

fn push_event(ev: SpanEvent) {
    let mut buf = EVENTS.lock().unwrap();
    if buf.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.push(ev);
}

/// Buffer a complete span that ends now and lasted `dur_ns`. Used by
/// exit-style hooks that only learn the duration after the fact.
pub(crate) fn push_complete_now(cat: Cat, name: String, dur_ns: u64) {
    let end = now_ns();
    push_event(SpanEvent {
        name,
        cat,
        ts_ns: end.saturating_sub(dur_ns),
        dur_ns,
        tid: TID.with(|t| *t),
        args: Vec::new(),
    });
}

/// An RAII span guard. `None` inside means tracing was disabled at
/// construction: drop does nothing and nothing was allocated.
#[must_use = "a span measures the scope it is held for"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    name: String,
    cat: Cat,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// Attach a key/value annotation (exported under trace-event
    /// `args`). No-op on a disabled span.
    pub fn arg(&mut self, key: &'static str, value: String) {
        if let Some(a) = self.0.as_mut() {
            a.args.push((key, value));
        }
    }

    /// Whether this span is live (tracing was enabled when it opened).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = now_ns().saturating_sub(a.start_ns);
        push_event(SpanEvent {
            name: a.name,
            cat: a.cat,
            ts_ns: a.start_ns,
            dur_ns,
            tid: TID.with(|t| *t),
            args: a.args,
        });
    }
}

/// Open a span with a static label. When tracing is disabled this is a
/// relaxed load, a branch, and `Span(None)` — no allocation.
#[inline]
pub fn span(cat: Cat, name: &'static str) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    Span(Some(ActiveSpan {
        name: name.to_string(),
        cat,
        start_ns: now_ns(),
        args: Vec::new(),
    }))
}

/// Open a span with a dynamic label. The closure is evaluated only
/// when tracing is enabled, so disabled-mode callers pay no formatting
/// or allocation cost.
#[inline]
pub fn span_labeled(cat: Cat, label: impl FnOnce() -> String) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    Span(Some(ActiveSpan {
        name: label(),
        cat,
        start_ns: now_ns(),
        args: Vec::new(),
    }))
}

/// Snapshot the buffered span events (completion order).
pub fn events() -> Vec<SpanEvent> {
    EVENTS.lock().unwrap().clone()
}

/// Drop all buffered span events and the dropped-event count.
pub fn clear_events() {
    EVENTS.lock().unwrap().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Events discarded because the buffer hit its cap.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Total nanoseconds per category across the buffered events, sorted
/// by category. Nested spans are each counted in their own category —
/// this is a per-phase attribution, not an exclusive-time profile.
pub fn phase_totals() -> Vec<(&'static str, u64)> {
    let mut totals: std::collections::BTreeMap<Cat, u64> = std::collections::BTreeMap::new();
    for ev in EVENTS.lock().unwrap().iter() {
        *totals.entry(ev.cat).or_insert(0) += ev.dur_ns;
    }
    totals.into_iter().map(|(c, ns)| (c.name(), ns)).collect()
}

/// Fractional-microsecond rendering of a nanosecond count: `1234` ns →
/// `"1.234"`. Keeps sub-microsecond durations nonzero in the export.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the buffered events as a Chrome trace-event JSON document.
/// Durations are clamped to at least 1 ns so every complete span is
/// visible; thread lanes get "M" (metadata) `thread_name` records.
pub fn chrome_trace_json() -> String {
    let events = EVENTS.lock().unwrap();
    let names = thread_names().lock().unwrap();
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in names.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }
    for ev in events.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{}",
            ev.tid,
            escape(&ev.name),
            ev.cat.name(),
            us(ev.ts_ns),
            us(ev.dur_ns.max(1)),
        ));
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_time_containment() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::enable();
        clear_events();
        {
            let _outer = span(Cat::Flush, "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span_labeled(Cat::Exec, || "inner".to_string());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let evs = events();
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        assert!(outer.dur_ns > inner.dur_ns);
        crate::disable();
        clear_events();
    }

    #[test]
    fn chrome_trace_shape_and_escaping() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::enable();
        clear_events();
        {
            let mut s = span_labeled(Cat::Kernel, || "needs \"escaping\"\n".to_string());
            s.arg("wave", "0".to_string());
        }
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\\\"escaping\\\"\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert!(json.contains("\"args\":{\"wave\":\"0\"}"));
        assert!(json.contains("\"thread_name\""));
        crate::disable();
        clear_events();
    }

    #[test]
    fn sub_microsecond_durations_stay_nonzero() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_000), "1000.000");
    }

    #[test]
    fn phase_totals_sum_by_category() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::enable();
        clear_events();
        push_complete_now(Cat::Kernel, "a".into(), 100);
        push_complete_now(Cat::Kernel, "b".into(), 50);
        push_complete_now(Cat::Fuse, "c".into(), 7);
        let totals = phase_totals();
        assert!(totals.contains(&("kernel", 150)));
        assert!(totals.contains(&("fuse", 7)));
        crate::disable();
        clear_events();
    }
}
