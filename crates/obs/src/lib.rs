//! # pygb-obs — op-lifecycle tracing and metrics for PyGB
//!
//! The paper's evaluation (Sec. VI) is entirely about *where time goes*
//! — the abstraction penalty of dispatch against kernel time — and this
//! crate is the measurement layer that makes those attributions in the
//! reproduction: hierarchical wall-clock [`span`]s over the whole op
//! lifecycle (expression build → analyze → enqueue → fuse → wave
//! schedule → kernel execute → flush), per-kernel-family log-bucketed
//! latency [`metrics::Histogram`]s, and one process-wide
//! [`metrics::MetricsRegistry`] absorbing the counters that previously
//! lived in three ad-hoc places (JitStats, kernel selection, fusion).
//!
//! ## Zero cost when disabled
//!
//! Everything is gated on one process-wide [`AtomicBool`]. A call site
//! looks like
//!
//! ```
//! let _sp = pygb_obs::span(pygb_obs::Cat::Exec, "node");
//! ```
//!
//! and when tracing is off this compiles to a relaxed atomic load, a
//! branch, and the construction of `Span(None)` — no allocation, no
//! clock read, no lock. Dynamic labels use [`span_labeled`], whose
//! closure is only evaluated once the flag check has passed. The
//! `obs_overhead` bench in `crates/bench` asserts both properties
//! (zero heap allocations and a per-call latency budget) on every CI
//! run.
//!
//! ## Activation
//!
//! * Programmatic: [`enable`] / [`disable`].
//! * Environment: [`init_from_env`] reads `PYGB_TRACE=<path>` once; when
//!   set, tracing is enabled and [`finish`] writes a Chrome trace-event
//!   JSON file (loadable in Perfetto / `chrome://tracing`) to `<path>`.
//!
//! See `examples/trace.rs` and DESIGN.md §4f for the full walkthrough.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod recorder;
pub mod trace;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use metrics::{
    labeled_name, registry, Counter, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, MetricsSource,
};
pub use recorder::{
    recorder, FlightRecorder, Outcome, RecordedRequest, RequestRecord, NAME_CAP, RECORDER_CAPACITY,
};
pub use trace::{
    chrome_trace_json, clear_events, events, phase_totals, span, span_labeled, Cat, Span, SpanEvent,
};

/// The process-wide tracing flag. Every instrumentation point loads
/// this (relaxed) and branches; nothing else happens while it is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Where [`finish`] writes the Chrome trace, when configured.
static TRACE_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Turn tracing and histogram collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Already-buffered span events are kept until
/// [`clear_events`] or [`finish`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether tracing is on. Inlined so disabled-mode instrumentation is
/// a single atomic load + branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One-time environment activation: when `PYGB_TRACE=<path>` is set
/// (and nonempty), enable tracing and remember `<path>` as the Chrome
/// trace destination for [`finish`]. Returns whether tracing is on
/// afterwards. Safe to call from multiple entry points; only the first
/// call inspects the environment.
pub fn init_from_env() -> bool {
    TRACE_PATH.get_or_init(|| match std::env::var_os("PYGB_TRACE") {
        Some(p) if !p.is_empty() => {
            enable();
            Some(PathBuf::from(p))
        }
        _ => None,
    });
    enabled()
}

/// The Chrome-trace destination configured by [`init_from_env`], if any.
pub fn trace_path() -> Option<PathBuf> {
    TRACE_PATH.get().cloned().flatten()
}

/// Write the buffered span events as Chrome trace-event JSON to the
/// `PYGB_TRACE` path. Returns `Ok(Some(path))` when a file was written,
/// `Ok(None)` when no path was configured (events stay buffered for
/// programmatic export via [`chrome_trace_json`]).
pub fn finish() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = trace_path() else {
        return Ok(None);
    };
    std::fs::write(&path, chrome_trace_json())?;
    Ok(Some(path))
}

/// Write the buffered span events as Chrome trace-event JSON to an
/// arbitrary `path`, independent of the `PYGB_TRACE` configuration.
/// Events stay buffered afterwards (the ring keeps rolling), so this is
/// safe to call repeatedly from a live server — it backs the
/// `TRACE DUMP <path>` wire verb and the periodic flush loop, which
/// exist precisely because waiting for a clean exit loses the trace.
pub fn dump_trace_to(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Record one completed kernel execution: `ns` is added to the
/// `kernel/<name>` latency histogram and a complete `Cat::Kernel` span
/// event (ending now, `ns` long) is buffered. Called by the substrate's
/// kernel exit hook; a no-op while tracing is disabled.
pub fn observe_kernel(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    registry().histogram(&format!("kernel/{name}")).record(ns);
    trace::push_complete_now(Cat::Kernel, format!("kernel/{name}"), ns);
}

/// Record an already-measured lifecycle phase that just finished: a
/// complete span ending now, `ns` long. For phases whose duration was
/// captured before tracing could wrap them (e.g. expression build time
/// stamped into the expression itself). A no-op while disabled or when
/// `ns` is zero.
pub fn observe_phase(cat: Cat, name: &'static str, ns: u64) {
    if !enabled() || ns == 0 {
        return;
    }
    trace::push_complete_now(cat, name.to_string(), ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The flag and the event buffer are process-wide; keep the tests
    // that toggle them on one lock so `cargo test` parallelism cannot
    // interleave them.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_span_is_inert() {
        let _g = TEST_LOCK.lock().unwrap();
        disable();
        clear_events();
        {
            let _a = span(Cat::Flush, "flush");
            let _b = span_labeled(Cat::Exec, || unreachable!("label must not be evaluated"));
        }
        assert!(events().is_empty());
    }

    #[test]
    fn observe_kernel_records_histogram_and_span() {
        let _g = TEST_LOCK.lock().unwrap();
        enable();
        clear_events();
        let before = registry().snapshot();
        observe_kernel("unit/test", 1234);
        observe_kernel("unit/test", 5678);
        let after = registry().snapshot();
        let d =
            after.histogram_count("kernel/unit/test") - before.histogram_count("kernel/unit/test");
        assert_eq!(d, 2);
        let evs = events();
        assert_eq!(
            evs.iter().filter(|e| e.name == "kernel/unit/test").count(),
            2
        );
        disable();
        clear_events();
    }
}
