//! Placeholder until the integration tests land.
