//! Shared fixtures and assertion helpers for the cross-crate
//! integration tests (the test sources live in the repo-root `tests/`
//! directory and are registered as `[[test]]` targets of this crate).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pygb::{DynScalar, Matrix, Vector};
use pygb_jit::stats::StatsSnapshot;

/// The paper's Fig. 1 seven-vertex example graph, edge weight 1.0.
pub fn fig1_graph() -> Matrix {
    let edges: Vec<(usize, usize, f64)> = vec![
        (0, 1, 1.0),
        (0, 3, 1.0),
        (1, 4, 1.0),
        (1, 6, 1.0),
        (2, 5, 1.0),
        (3, 0, 1.0),
        (3, 2, 1.0),
        (4, 5, 1.0),
        (5, 2, 1.0),
        (6, 2, 1.0),
        (6, 3, 1.0),
        (6, 4, 1.0),
    ];
    Matrix::from_triples(7, 7, edges).expect("fig1 graph builds")
}

/// All stored `(index, value)` pairs of a vector — the bitwise identity
/// used by the blocking/nonblocking equivalence tests (compares stored
/// pattern, dtype-tagged values, and order).
pub fn vector_pairs(v: &Vector) -> Vec<(usize, DynScalar)> {
    v.extract_pairs()
}

/// All stored `(row, col, value)` triples of a matrix.
pub fn matrix_triples(m: &Matrix) -> Vec<(usize, usize, DynScalar)> {
    m.extract_triples()
}

/// Assert two dynamic vectors are bitwise identical: same size, same
/// dtype, same stored pattern, same tagged values.
pub fn assert_vectors_identical(a: &Vector, b: &Vector, context: &str) {
    assert_eq!(a.size(), b.size(), "{context}: size");
    assert_eq!(a.dtype(), b.dtype(), "{context}: dtype");
    assert_eq!(vector_pairs(a), vector_pairs(b), "{context}: contents");
}

/// Assert two dynamic matrices are bitwise identical.
pub fn assert_matrices_identical(a: &Matrix, b: &Matrix, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shape");
    assert_eq!(a.dtype(), b.dtype(), "{context}: dtype");
    assert_eq!(matrix_triples(a), matrix_triples(b), "{context}: contents");
}

/// Dispatch-counter deltas between two [`StatsSnapshot`]s, for tests
/// that assert how many kernels a code path issued.
#[derive(Debug, Clone, Copy)]
pub struct StatsDelta {
    /// Kernel invocations issued.
    pub invocations: u64,
    /// Cache dispatches (memory hits + disk hits + compiles).
    pub dispatches: u64,
    /// Operations deferred into a nonblocking DAG.
    pub deferred: u64,
    /// DAG nodes fused into composite kernels.
    pub fused: u64,
    /// DAG nodes elided as dead code.
    pub elided: u64,
    /// Fusion-rule matches refused by the aliasing analysis.
    pub refused: u64,
    /// `mxm` dispatches that ran the unmasked Gustavson SpGEMM.
    pub sel_spgemm: u64,
    /// `mxm` dispatches that ran the mask-stamped Gustavson SpGEMM.
    pub sel_masked_spgemm: u64,
    /// `mxm` dispatches that ran the mask-guided dot-product SpGEMM.
    pub sel_dot_spgemm: u64,
    /// `mxv`/`vxm` dispatches that pulled (unmasked gather).
    pub sel_pull: u64,
    /// `mxv`/`vxm` dispatches that pulled under a structural mask.
    pub sel_masked_pull: u64,
    /// `mxv`/`vxm` dispatches that pushed (unmasked scatter).
    pub sel_push: u64,
    /// `mxv`/`vxm` dispatches that pushed under a structural mask.
    pub sel_masked_push: u64,
}

/// Run `f` and report how the global JIT counters moved across it.
pub fn measure_dispatches<R>(f: impl FnOnce() -> R) -> (R, StatsDelta) {
    let stats = pygb::runtime().cache().stats();
    let before = stats.snapshot();
    let out = f();
    let after = stats.snapshot();
    (out, delta(&before, &after))
}

fn delta(before: &StatsSnapshot, after: &StatsSnapshot) -> StatsDelta {
    StatsDelta {
        invocations: after.invocations - before.invocations,
        dispatches: after.total_dispatches() - before.total_dispatches(),
        deferred: after.deferred_ops - before.deferred_ops,
        fused: after.fused_ops - before.fused_ops,
        elided: after.elided_ops - before.elided_ops,
        refused: after.refused_fusions - before.refused_fusions,
        sel_spgemm: after.sel_spgemm - before.sel_spgemm,
        sel_masked_spgemm: after.sel_masked_spgemm - before.sel_masked_spgemm,
        sel_dot_spgemm: after.sel_dot_spgemm - before.sel_dot_spgemm,
        sel_pull: after.sel_pull - before.sel_pull,
        sel_masked_pull: after.sel_masked_pull - before.sel_masked_pull,
        sel_push: after.sel_push - before.sel_push,
        sel_masked_push: after.sel_masked_push - before.sel_masked_push,
    }
}
