//! Ablation of the nonblocking execution runtime: the same operation
//! sequences run eagerly (blocking mode) and deferred through the
//! op-DAG (nonblocking mode), isolating what each fusion rule and the
//! parallel wave scheduler buy.
//!
//! * **ewise_chain** — `t = u + u; w = t * u`: blocking dispatches two
//!   eWise kernels through an intermediate container; nonblocking fuses
//!   them into one `fused_ewise_chain` dispatch (rule 1).
//! * **ewise_reduce** — `d = u * u; reduce(d)`: blocking dispatches an
//!   eWise kernel plus a reduction; nonblocking folds both into one
//!   `fused_ewise_reduce` dispatch (rule 4).
//! * **independent_wave** — k data-independent SpMVs: blocking runs
//!   them back to back; nonblocking defers all k and executes the wave
//!   through the parallel job runner.
//! * **pagerank_body** — the full Fig. 7 iteration body, the issue's
//!   acceptance workload (rules 2 and 4 fire every iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pygb::prelude::*;
use pygb_algorithms as algos;
use pygb_bench::workloads::Workload;

fn dense_vec(n: usize) -> Vector {
    let mut v = Vector::new(n, DType::Fp64);
    v.no_mask().slice(..).assign_scalar(1.0 / n as f64).unwrap();
    v
}

fn bench(c: &mut Criterion) {
    let mut chain = c.benchmark_group("nonblocking_ewise_chain");
    chain.sample_size(15);
    for &n in &[1024usize, 16384] {
        let u = dense_vec(n);
        chain.bench_with_input(BenchmarkId::new("blocking", n), &u, |bch, u| {
            let mut w = Vector::new(n, DType::Fp64);
            bch.iter(|| {
                let t = Vector::from_expr(u + u).expect("t");
                w.no_mask().assign(&t * u).expect("assign");
            })
        });
        chain.bench_with_input(BenchmarkId::new("nonblocking", n), &u, |bch, u| {
            let mut w = Vector::new(n, DType::Fp64);
            bch.iter(|| {
                let _nb = pygb_runtime::nonblocking().expect("nb");
                let t = Vector::from_expr(u + u).expect("t");
                w.no_mask().assign(&t * u).expect("assign");
            })
        });
    }
    chain.finish();

    let mut red = c.benchmark_group("nonblocking_ewise_reduce");
    red.sample_size(15);
    for &n in &[1024usize, 16384] {
        let u = dense_vec(n);
        red.bench_with_input(BenchmarkId::new("blocking", n), &u, |bch, u| {
            let mut d = Vector::new(n, DType::Fp64);
            bch.iter(|| {
                d.no_mask().assign(u * u).expect("assign");
                pygb::reduce(&d).expect("reduce").as_f64()
            })
        });
        red.bench_with_input(BenchmarkId::new("nonblocking", n), &u, |bch, u| {
            let mut d = Vector::new(n, DType::Fp64);
            bch.iter(|| {
                let _nb = pygb_runtime::nonblocking().expect("nb");
                d.no_mask().assign(u * u).expect("assign");
                pygb::reduce(&d).expect("reduce").as_f64()
            })
        });
    }
    red.finish();

    let mut wave = c.benchmark_group("nonblocking_independent_wave");
    wave.sample_size(15);
    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let m = &w.sym_pygb;
        let u = dense_vec(n);
        const K: usize = 8;
        wave.bench_with_input(BenchmarkId::new("blocking", n), m, |bch, m| {
            let mut outs: Vec<Vector> = (0..K).map(|_| Vector::new(n, DType::Fp64)).collect();
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                for out in &mut outs {
                    out.no_mask().assign(u.vxm(m)).expect("vxm");
                }
            })
        });
        wave.bench_with_input(BenchmarkId::new("nonblocking", n), m, |bch, m| {
            let mut outs: Vec<Vector> = (0..K).map(|_| Vector::new(n, DType::Fp64)).collect();
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                let _nb = pygb_runtime::nonblocking().expect("nb");
                for out in &mut outs {
                    out.no_mask().assign(u.vxm(m)).expect("vxm");
                }
            })
        });
    }
    wave.finish();

    let mut pr = c.benchmark_group("nonblocking_pagerank");
    pr.sample_size(10);
    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let opts = algos::PageRankOptions {
            max_iters: 20,
            threshold: 0.0,
            ..Default::default()
        };
        pr.bench_with_input(
            BenchmarkId::new("blocking_loops", n),
            &w.sym_pygb,
            |bch, g| bch.iter(|| algos::pagerank_dsl_loops(g, opts).expect("pagerank")),
        );
        pr.bench_with_input(BenchmarkId::new("nonblocking", n), &w.sym_pygb, |bch, g| {
            bch.iter(|| algos::pagerank_nonblocking(g, opts).expect("pagerank"))
        });
    }
    pr.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
