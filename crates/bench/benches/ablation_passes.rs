//! Ablation of the op-DAG optimization pipeline: the same workloads
//! run with every pass enabled and with the pipeline off, measuring
//! wall-clock and — via the `opt/*` counters — how many kernel
//! launches the passes eliminated.
//!
//! * **pagerank_diag** — a PageRank power iteration instrumented the
//!   way monitoring code tends to be: each iteration computes its
//!   residual twice (CSE bait) and builds a magnitude vector nobody
//!   reads (liveness bait). The optimizer must claw back exactly those
//!   redundant launches without changing the ranks.
//! * **expr_batch** — `BATCH`ed duplicate `EXPR` traffic against a real
//!   `pygb-serve` instance: consecutive members share one flush, so
//!   duplicates collapse via CSE; the same lines sent one request at a
//!   time are the no-grouping baseline.
//! * **empty_chain** — eWiseMult chains rooted at an empty vector,
//!   reached only through pending placeholders: invisible to the
//!   syntactic no-op pass, folded wholesale by the sparsity abstract
//!   interpretation (`opt/empty_folded`), with zero kernel launches.
//! * **bfs_hint** — a BFS wavefront whose masked frontier `mxv` takes
//!   its push/pull direction from the statically inferred frontier
//!   density (`opt/static_kernel_hints`), levels bit-exact vs off.
//!
//! Writes `results/ablation_passes.json` (time samples plus the raw
//! counter deltas) so CI can archive the numbers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pygb::prelude::*;
use pygb_bench::report::{render_table, to_json, Sample};
use pygb_bench::workloads::Workload;
use pygb_obs::registry;
use pygb_runtime::{reset_passes, set_passes, PassKind};
use pygb_serve::{Catalog, Client, Server, ServerConfig};

const ALL_PASSES: &[PassKind] = &[
    PassKind::Dce,
    PassKind::Cse,
    PassKind::Sparsity,
    PassKind::Noop,
];

fn time<R>(mut f: impl FnMut() -> R) -> Duration {
    // One warm-up, then the median of three runs.
    f();
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

/// PageRank iteration body with redundant diagnostics: propagate,
/// compute the residual twice, build a dead magnitude vector, reduce
/// the residual. Returns the final ranks for the equivalence check.
fn pagerank_diag(m: &Matrix, iters: usize) -> Vector {
    let n = m.nrows();
    let mut rank = Vector::new(n, DType::Fp64);
    rank.no_mask()
        .slice(..)
        .assign_scalar(1.0 / n as f64)
        .unwrap();
    let mut new_rank = Vector::new(n, DType::Fp64);
    for _ in 0..iters {
        let _nb = pygb_runtime::nonblocking().unwrap();
        {
            let _sr = ArithmeticSemiring.enter();
            new_rank.no_mask().assign(rank.vxm(m)).unwrap();
        }
        let _op = BinaryOp::new("Minus").unwrap().enter();
        let r1 = Vector::from_expr(&new_rank + &rank).unwrap();
        let r2 = Vector::from_expr(&new_rank + &rank).unwrap(); // duplicate: CSE bait
        let _ = Vector::from_expr(&r1 * &r2).unwrap(); // dropped: liveness bait
        let _residual = pygb::reduce(&r1).unwrap(); // read → flush
        std::mem::swap(&mut rank, &mut new_rank);
    }
    rank
}

/// eWiseMult chains rooted at an always-empty vector. Each chain's
/// links after the first read a *pending placeholder*, so only the
/// abstract interpretation (not the syntactic no-op pass) can prove
/// them empty and fold them before any kernel launches.
fn empty_chain(n: usize, chains: usize, depth: usize) -> Vector {
    let empty = Vector::new(n, DType::Fp64);
    let mut dense = Vector::new(n, DType::Fp64);
    dense.no_mask().slice(..).assign_scalar(1.5f64).unwrap();
    let mut out = Vector::new(n, DType::Fp64);
    for _ in 0..chains {
        let _nb = pygb_runtime::nonblocking().unwrap();
        let _op = BinaryOp::new("Times").unwrap().enter();
        let mut t = Vector::from_expr(&empty * &dense).unwrap();
        for _ in 1..depth {
            t = Vector::from_expr(&t * &dense).unwrap();
        }
        out.no_mask().assign(&t * &dense).unwrap();
    }
    out
}

/// BFS wavefront sweep: per level, the unvisited-neighbor `mxv` is
/// masked by the complement of `visited` — and the frontier's density
/// is statically known, so with the sparsity pass on, the push/pull
/// direction comes from the plan-time hint.
fn bfs_wave(m: &Matrix, levels: usize) -> Vector {
    let n = m.nrows();
    let mut frontier = Vector::new(n, DType::Fp64);
    frontier.set(0, 1.0f64).unwrap();
    let mut visited = Vector::new(n, DType::Fp64);
    visited.set(0, 1.0f64).unwrap();
    for _ in 0..levels {
        let mut next = Vector::new(n, DType::Fp64);
        {
            let _nb = pygb_runtime::nonblocking().unwrap();
            let _sr = ArithmeticSemiring.enter();
            next.masked_complement(&visited)
                .replace()
                .assign(m.t().mxv(&frontier))
                .unwrap();
            let _acc = Accumulator::new("Plus").unwrap().enter();
            visited.no_mask().accum_assign(&next).unwrap();
        }
        frontier = next;
    }
    visited
}

struct CounterDelta {
    launches_saved: u64,
    dce_elided: u64,
    cse_deduped: u64,
    noop_folded: u64,
    empty_folded: u64,
    static_kernel_hints: u64,
    fact_misses: u64,
    invocations: u64,
}

fn measure_counters<R>(f: impl FnOnce() -> R) -> (R, CounterDelta) {
    let stats = pygb::runtime().cache().stats();
    let before = registry().snapshot();
    let inv_before = stats.snapshot().invocations;
    let out = f();
    let after = registry().snapshot();
    let inv_after = stats.snapshot().invocations;
    let d = |name: &str| after.counter(name) - before.counter(name);
    (
        out,
        CounterDelta {
            launches_saved: d("opt/launches_saved"),
            dce_elided: d("opt/dce_elided"),
            cse_deduped: d("opt/cse_deduped"),
            noop_folded: d("opt/noop_folded"),
            empty_folded: d("opt/empty_folded"),
            static_kernel_hints: d("opt/static_kernel_hints"),
            fact_misses: d("opt/fact_misses"),
            invocations: inv_after - inv_before,
        },
    )
}

fn counters_json(name: &str, c: &CounterDelta) -> String {
    format!(
        "\"{name}\":{{\"launches_saved\":{},\"dce_elided\":{},\"cse_deduped\":{},\"noop_folded\":{},\"empty_folded\":{},\"static_kernel_hints\":{},\"fact_misses\":{},\"invocations\":{}}}",
        c.launches_saved,
        c.dce_elided,
        c.cse_deduped,
        c.noop_folded,
        c.empty_folded,
        c.static_kernel_hints,
        c.fact_misses,
        c.invocations
    )
}

fn main() {
    let mut samples = Vec::new();
    let mut counter_blobs = Vec::new();

    // --- PageRank with redundant diagnostics ---
    const ITERS: usize = 20;
    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let m = &w.sym_pygb;

        set_passes(&[]);
        let (ranks_off, off) = measure_counters(|| pagerank_diag(m, ITERS));
        let t_off = time(|| pagerank_diag(m, ITERS));

        set_passes(ALL_PASSES);
        let (ranks_on, on) = measure_counters(|| pagerank_diag(m, ITERS));
        let t_on = time(|| pagerank_diag(m, ITERS));
        reset_passes();

        assert_eq!(
            ranks_off.extract_pairs(),
            ranks_on.extract_pairs(),
            "optimizer changed PageRank ranks at n={n}"
        );
        assert_eq!(off.launches_saved, 0, "passes-off must save nothing");
        assert!(
            on.launches_saved >= (2 * ITERS) as u64,
            "expected ≥{} launches saved (1 CSE + 1 DCE per iteration), got {}",
            2 * ITERS,
            on.launches_saved
        );
        assert!(
            on.invocations < off.invocations,
            "optimizer must issue fewer kernels: {} vs {}",
            on.invocations,
            off.invocations
        );

        samples.push(Sample::new(
            "ablation/passes_pagerank",
            "passes-off",
            n,
            t_off,
        ));
        samples.push(Sample::new(
            "ablation/passes_pagerank",
            "passes-on",
            n,
            t_on,
        ));
        if n == 1024 {
            counter_blobs.push(counters_json("pagerank_diag_off", &off));
            counter_blobs.push(counters_json("pagerank_diag_on", &on));
        }
    }

    // --- Batched duplicate EXPR traffic against pygb-serve ---
    let srv =
        Server::start(Arc::new(Catalog::new()), ServerConfig::default()).expect("start server");
    let mut c = Client::connect(srv.local_addr()).expect("connect");
    let n = 512usize;
    c.request_ok(&format!("REGISTER g ER {n} {} 42 SYM", n * 5))
        .expect("register");
    let lines: Vec<String> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                "EXPR g EWADD g BINOP Plus".to_string()
            } else {
                "EXPR g EWMULT g BINOP Times".to_string()
            }
        })
        .collect();
    let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();

    let (_, unbatched_counters) = measure_counters(|| {
        for l in &line_refs {
            c.request_ok(l).expect("expr");
        }
    });
    let t_unbatched = time(|| {
        for l in &line_refs {
            c.request_ok(l).expect("expr");
        }
    });
    let (_, batched_counters) = measure_counters(|| {
        c.batch(&line_refs).expect("batch");
    });
    let t_batched = time(|| {
        c.batch(&line_refs).expect("batch");
    });

    assert_eq!(
        unbatched_counters.cse_deduped, 0,
        "separate requests flush separately — nothing to CSE"
    );
    assert!(
        batched_counters.cse_deduped >= 14,
        "16 members over 2 distinct expressions must dedup ≥14, got {}",
        batched_counters.cse_deduped
    );
    samples.push(Sample::new(
        "ablation/passes_expr_batch",
        "unbatched",
        n,
        t_unbatched,
    ));
    samples.push(Sample::new(
        "ablation/passes_expr_batch",
        "batched",
        n,
        t_batched,
    ));
    counter_blobs.push(counters_json("expr_batch_unbatched", &unbatched_counters));
    counter_blobs.push(counters_json("expr_batch_batched", &batched_counters));
    drop(c);
    srv.shutdown();

    // --- Provably-empty subtrees through pending placeholders ---
    {
        let n = 4096usize;
        let (chains, depth) = (8usize, 4usize);
        set_passes(&[]);
        let (out_off, off) = measure_counters(|| empty_chain(n, chains, depth));
        let t_off = time(|| empty_chain(n, chains, depth));
        set_passes(ALL_PASSES);
        let (out_on, on) = measure_counters(|| empty_chain(n, chains, depth));
        let t_on = time(|| empty_chain(n, chains, depth));
        reset_passes();

        assert_eq!(
            out_off.extract_pairs(),
            out_on.extract_pairs(),
            "sparsity folding changed the empty-chain result"
        );
        assert_eq!(out_on.nvals(), 0, "empty chain must stay empty");
        assert!(
            on.empty_folded >= (chains * depth) as u64,
            "expected ≥{} provably-empty folds, got {}",
            chains * depth,
            on.empty_folded
        );
        assert_eq!(off.empty_folded, 0, "passes-off must fold nothing");
        assert!(
            on.invocations < off.invocations,
            "folded chains must launch fewer kernels: {} vs {}",
            on.invocations,
            off.invocations
        );
        samples.push(Sample::new(
            "ablation/passes_empty_chain",
            "passes-off",
            n,
            t_off,
        ));
        samples.push(Sample::new(
            "ablation/passes_empty_chain",
            "passes-on",
            n,
            t_on,
        ));
        counter_blobs.push(counters_json("empty_chain_off", &off));
        counter_blobs.push(counters_json("empty_chain_on", &on));
    }

    // --- BFS frontier mxv direction from the static density hint ---
    {
        let n = 1024usize;
        let levels = 6usize;
        let w = Workload::erdos_renyi(n, 7);
        let m = &w.sym_pygb;
        set_passes(&[]);
        let (vis_off, off) = measure_counters(|| bfs_wave(m, levels));
        let t_off = time(|| bfs_wave(m, levels));
        set_passes(ALL_PASSES);
        let (vis_on, on) = measure_counters(|| bfs_wave(m, levels));
        let t_on = time(|| bfs_wave(m, levels));
        reset_passes();

        assert_eq!(
            vis_off.extract_pairs(),
            vis_on.extract_pairs(),
            "static kernel hints changed BFS reachability"
        );
        assert!(
            on.static_kernel_hints > 0,
            "frontier mxv must take at least one static push/pull hint"
        );
        assert_eq!(off.static_kernel_hints, 0, "passes-off must hint nothing");
        assert_eq!(
            on.fact_misses + off.fact_misses,
            0,
            "checked interpretation recorded a fact miss during BFS"
        );
        samples.push(Sample::new(
            "ablation/passes_bfs_hint",
            "passes-off",
            n,
            t_off,
        ));
        samples.push(Sample::new(
            "ablation/passes_bfs_hint",
            "passes-on",
            n,
            t_on,
        ));
        counter_blobs.push(counters_json("bfs_hint_off", &off));
        counter_blobs.push(counters_json("bfs_hint_on", &on));
    }

    let pr: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("pagerank"))
        .cloned()
        .collect();
    let batch: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("expr_batch"))
        .cloned()
        .collect();
    println!(
        "{}",
        render_table("ablation: pass pipeline (PageRank + diagnostics)", &pr)
    );
    println!(
        "{}",
        render_table("ablation: batched EXPR grouping", &batch)
    );
    let empty: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("empty_chain"))
        .cloned()
        .collect();
    let bfs: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("bfs_hint"))
        .cloned()
        .collect();
    println!(
        "{}",
        render_table("ablation: sparsity folding (empty chains)", &empty)
    );
    println!(
        "{}",
        render_table("ablation: static SpMV direction hints (BFS)", &bfs)
    );

    // `cargo bench` runs with cwd = crates/bench; anchor the output at
    // the workspace root where the other result files live.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = format!("{dir}/ablation_passes.json");
    let json = format!(
        "{{\"samples\":{},\"counters\":{{{}}}}}",
        to_json(&samples),
        counter_blobs.join(",")
    );
    std::fs::write(&path, json).expect("write ablation_passes.json");
    println!(
        "wrote results/ablation_passes.json ({} samples)",
        samples.len()
    );
}
