//! Ablations of Section IV's design arguments:
//!
//! * **deferred vs eager temporaries** — `C[None] = A @ B` evaluates
//!   inside the assignment (no temporary container); the eager spelling
//!   materializes `A @ B` into a fresh container and then assigns it.
//! * **in-place vs rebinding** — `C[None] = expr` (reuse `C`) vs
//!   `C = expr` (`Matrix::from_expr`, new container), the performance
//!   difference the paper says "is not negligible".
//! * **mask-guided vs general masked mxm** — triangle counting through
//!   the dot-product fast path vs the general SpGEMM + masked write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pygb::prelude::*;
use pygb_bench::workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lazy");
    group.sample_size(15);

    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let a = &w.pygb;

        // Deferred: the expression evaluates straight into C.
        group.bench_with_input(BenchmarkId::new("deferred_assign", n), a, |bch, a| {
            let mut out = Matrix::new(n, n, DType::Fp64);
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                out.no_mask().assign(a.matmul(a)).expect("assign");
            })
        });

        // Eager: force a temporary, then a second assignment pass.
        group.bench_with_input(BenchmarkId::new("eager_temporary", n), a, |bch, a| {
            let mut out = Matrix::new(n, n, DType::Fp64);
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                let temp = Matrix::from_expr(a.matmul(a)).expect("temp");
                out.no_mask().assign(&temp).expect("assign");
            })
        });

        // Rebinding: C = A @ B constructs a brand-new container.
        group.bench_with_input(BenchmarkId::new("rebinding", n), a, |bch, a| {
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                Matrix::from_expr(a.matmul(a)).expect("from_expr")
            })
        });
    }

    group.finish();

    // Section V's deferred-chain compilation: f(u @ A) as one fused
    // module vs two dispatches with an intermediate container.
    let mut fusion = c.benchmark_group("ablation_fusion");
    fusion.sample_size(15);
    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let m = &w.sym_pygb;
        let u = {
            let mut v = pygb::Vector::new(n, DType::Fp64);
            v.no_mask().slice(..).assign_scalar(1.0 / n as f64).unwrap();
            v
        };
        fusion.bench_with_input(BenchmarkId::new("two_dispatches", n), m, |bch, m| {
            let mut temp = pygb::Vector::new(n, DType::Fp64);
            let mut out = pygb::Vector::new(n, DType::Fp64);
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                temp.no_mask().assign(u.vxm(m)).expect("vxm");
                let _op = UnaryOp::bound("Plus", 0.01).unwrap().enter();
                out.no_mask().assign(pygb::apply(&temp)).expect("apply");
            })
        });
        fusion.bench_with_input(BenchmarkId::new("fused_chain", n), m, |bch, m| {
            let mut out = pygb::Vector::new(n, DType::Fp64);
            bch.iter(|| {
                let _sr = ArithmeticSemiring.enter();
                let _op = UnaryOp::bound("Plus", 0.01).unwrap().enter();
                let expr = u.vxm(m).then_apply().expect("fuse");
                out.no_mask().assign(expr).expect("assign");
            })
        });
    }
    fusion.finish();

    let mut tri = c.benchmark_group("ablation_masked_mxm");
    tri.sample_size(15);
    for &n in &[256usize, 1024] {
        let w = Workload::erdos_renyi(n, 5);
        let l = &w.lower_gbtl;
        tri.bench_with_input(BenchmarkId::new("general_masked", n), l, |bch, l| {
            bch.iter(|| gbtl::algorithms::triangle_count(l).expect("count"))
        });
        tri.bench_with_input(BenchmarkId::new("mask_guided_dot", n), l, |bch, l| {
            bch.iter(|| gbtl::algorithms::triangle_count_masked_dot(l).expect("count"))
        });
    }
    tri.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
