//! Ablation: masked-kernel selection vs. the pre-selection baseline.
//!
//! Two comparisons, both on the Erdős–Rényi family:
//!
//! * **Masked SpGEMM** (triangle counting's `B⟨L⟩ = L·Lᵀ`): the
//!   mask-guided dot-product kernel and the mask-stamped Gustavson
//!   kernel against the old behaviour — full unmasked product, then
//!   post-filter (forced here by an opaque mask wrapper that hides the
//!   mask's structure from kernel selection).
//! * **Push/pull BFS**: the dual-orientation traversal (sparse
//!   frontiers push, dense frontiers pull, masked kernels confine the
//!   wavefront) against a pull-only traversal with an opaque mask.
//!
//! Unlike the criterion benches, this harness also writes its samples
//! to `results/ablation_masked.json` so CI can archive the numbers.

use std::time::{Duration, Instant};

use gbtl::prelude::*;
use gbtl::views::Complement;
use pygb_bench::report::{render_table, to_json, Sample};
use pygb_bench::workloads::Workload;

/// Forwards membership probes but hides the mask's structure, forcing
/// the pre-PR compute-everything-then-filter paths.
struct OpaqueVec<'a, M: VectorMask>(&'a M);

impl<M: VectorMask> VectorMask for OpaqueVec<'_, M> {
    fn allows(&self, i: usize) -> bool {
        self.0.allows(i)
    }
    fn mask_size(&self) -> usize {
        self.0.mask_size()
    }
}

struct OpaqueMat<'a, M: MatrixMask>(&'a M);

impl<M: MatrixMask> MatrixMask for OpaqueMat<'_, M> {
    fn allows(&self, i: usize, j: usize) -> bool {
        self.0.allows(i, j)
    }
    fn mask_shape(&self) -> (usize, usize) {
        self.0.mask_shape()
    }
}

fn time<R>(mut f: impl FnMut() -> R) -> Duration {
    // One warm-up, then the median of three runs.
    f();
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

fn masked_mxm<Mk: MatrixMask>(l: &Matrix<f64>, arg_t: bool, mask: &Mk) -> f64 {
    let mut b = Matrix::<f64>::new(l.nrows(), l.ncols());
    let lt = l.transpose_owned();
    let arg = if arg_t {
        transpose(&lt) // rows of (Lᵀ)ᵀ available: dot-product kernel
    } else {
        MatrixArg::Plain(&lt) // Gustavson over the materialized Lᵀ
    };
    operations::mxm(
        &mut b,
        mask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        l,
        arg,
        Replace(false),
    )
    .expect("mxm");
    operations::reduce_matrix_scalar(&PlusMonoid::new(), &b)
}

fn bfs_directed(g: &Matrix<f64>, opaque: bool) -> Vector<u64> {
    let n = g.nrows();
    let g: Matrix<u64> = g.cast::<bool>().cast();
    let gt = g.transpose_owned();
    let mut frontier = Vector::<u64>::new(n);
    frontier.set(0, 1).unwrap();
    let mut levels = Vector::<u64>::new(n);
    let mut depth = 0u64;
    while frontier.nvals() > 0 {
        depth += 1;
        operations::assign_vector_constant(
            &mut levels,
            &frontier,
            NoAccumulate,
            depth,
            &Indices::All,
            Replace(false),
        )
        .unwrap();
        let snapshot = frontier.clone();
        let mask = complement(&levels);
        if opaque {
            // Pre-PR shape: pull-only SpMV, structure-blind mask.
            operations::mxv(
                &mut frontier,
                &OpaqueVec(&mask),
                NoAccumulate,
                &LogicalSemiring::new(),
                &gt,
                &snapshot,
                Replace(true),
            )
            .unwrap();
        } else {
            operations::mxv(
                &mut frontier,
                &mask,
                NoAccumulate,
                &LogicalSemiring::new(),
                dual(&gt, &g),
                &snapshot,
                Replace(true),
            )
            .unwrap();
        }
    }
    levels
}

fn main() {
    let mut samples: Vec<Sample> = Vec::new();

    for &n in &[512usize, 1024, 2048] {
        let w = Workload::erdos_renyi(n, 99);
        let l = w.lower_gbtl.clone();

        // --- masked SpGEMM (triangle counting shape) ---
        let expect = masked_mxm(&l, false, &OpaqueMat(&l));
        for (series, run) in [
            (
                "masked-dot",
                Box::new(|| masked_mxm(&l, true, &l)) as Box<dyn FnMut() -> f64>,
            ),
            ("masked-gustavson", Box::new(|| masked_mxm(&l, false, &l))),
            (
                "unmasked-filter",
                Box::new(|| masked_mxm(&l, false, &OpaqueMat(&l))),
            ),
        ] {
            let mut run = run;
            assert_eq!(run(), expect, "kernel disagreement in {series}");
            let t = time(&mut run);
            samples.push(Sample::new("ablation/masked_tricount", series, n, t));
        }

        // --- push/pull BFS ---
        let g = w.sym_gbtl.clone();
        let expect = bfs_directed(&g, true);
        assert_eq!(bfs_directed(&g, false), expect, "BFS disagreement");
        let t_new = time(|| bfs_directed(&g, false));
        let t_old = time(|| bfs_directed(&g, true));
        samples.push(Sample::new("ablation/masked_bfs", "push-pull", n, t_new));
        samples.push(Sample::new("ablation/masked_bfs", "pull-opaque", n, t_old));
    }

    // Exercise the complement probe path once so the wrapper types stay
    // honest (complemented structural masks also skip the post-filter).
    let w = Workload::erdos_renyi(256, 7);
    let l = w.lower_gbtl.clone();
    let comp: Complement<&gbtl::Matrix<f64>> = complement(&l);
    let a = masked_mxm(&l, false, &comp);
    let b = masked_mxm(&l, false, &OpaqueMat(&comp));
    assert_eq!(a, b, "complement kernel disagreement");

    let tri: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("tricount"))
        .cloned()
        .collect();
    let bfs: Vec<Sample> = samples
        .iter()
        .filter(|s| s.experiment.ends_with("bfs"))
        .cloned()
        .collect();
    println!(
        "{}",
        render_table("ablation: masked SpGEMM (tricount)", &tri)
    );
    println!("{}", render_table("ablation: push/pull BFS", &bfs));

    // `cargo bench` runs with cwd = crates/bench; anchor the output at
    // the workspace root where the other result files live.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = format!("{dir}/ablation_masked.json");
    std::fs::write(&path, to_json(&samples)).expect("write ablation_masked.json");
    println!(
        "wrote results/ablation_masked.json ({} samples)",
        samples.len()
    );
}
