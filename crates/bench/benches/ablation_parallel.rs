//! Ablation: Rayon row-parallel SpGEMM vs a sequential SpGEMM sharing
//! the same sparse-accumulator kernel structure — quantifying what the
//! `parallel` feature buys (DESIGN.md design-choice bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbtl::prelude::*;
use gbtl::workspace::Spa;
use pygb_bench::workloads::Workload;

/// Sequential Gustavson SpGEMM with the same per-row structure the
/// library kernel uses (via `row_map_sequential`).
fn spgemm_sequential(a: &Matrix<f64>, b: &Matrix<f64>) -> usize {
    let sr = ArithmeticSemiring::<f64>::new();
    let rows = gbtl::parallel::row_map_sequential(
        a.nrows(),
        || Spa::<f64>::new(b.ncols()),
        |spa, i| {
            let (a_cols, a_vals) = a.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    spa.scatter(j, sr.mult(av, bv), |x, y| sr.add(x, y));
                }
            }
            spa.drain_sorted()
        },
    );
    rows.iter().map(Vec::len).sum()
}

/// Library mxm (row-parallel above the threshold).
fn spgemm_library(a: &Matrix<f64>, b: &Matrix<f64>) -> usize {
    let mut c = Matrix::<f64>::new(a.nrows(), b.ncols());
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        a,
        b,
        Replace(false),
    )
    .expect("mxm");
    c.nvals()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_spgemm");
    group.sample_size(10);
    for &n in &[512usize, 1024, 2048] {
        let w = Workload::erdos_renyi(n, 99);
        let a = w.gbtl.clone();
        group.bench_with_input(BenchmarkId::new("parallel", n), &a, |bch, a| {
            bch.iter(|| spgemm_library(a, a))
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &a, |bch, a| {
            bch.iter(|| spgemm_sequential(a, a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
