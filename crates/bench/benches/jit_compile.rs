//! Compile-time experiment: the abstract claims PyGB "compilation times
//! are not worse than for native GBTL implementation". We measure:
//!
//! * **cold compile** — instantiating one kernel for a never-seen key
//!   (the `g++` analog);
//! * **memory hit** — fetching the same key from the warm cache (the
//!   steady-state dispatch cost);
//! * **key hash** — the `hash(kwargs)` step alone;
//! * **whole-library instantiation** — all 19 operations × 11 dtypes,
//!   the analog of compiling the full GBTL template library ahead of
//!   time, which on-demand compilation avoids.

use criterion::{criterion_group, criterion_main, Criterion};
use pygb::dtype::ALL_DTYPES;
use pygb_jit::{FactoryRegistry, ModuleCache, ModuleKey};

fn key_for(i: usize) -> ModuleKey {
    ModuleKey::new("mxm")
        .with("a_type", "fp64")
        .with("b_type", "fp64")
        .with("c_type", "fp64")
        .with("semiring", "Plus_Zero_Times")
        .with("variant", i.to_string())
}

fn bench(c: &mut Criterion) {
    let registry = FactoryRegistry::new();
    pygb::kernels::register_all(&registry);

    let mut group = c.benchmark_group("jit_compile");

    // Cold compile: fresh key every iteration against a fresh cache.
    group.bench_function("cold_compile", |b| {
        let mut i = 0usize;
        let cache = ModuleCache::in_memory();
        b.iter(|| {
            i += 1;
            let key = key_for(i);
            cache
                .get_or_compile(&key, |k| registry.instantiate(k))
                .expect("compile")
        })
    });

    // Memory hit: same key, warm cache.
    group.bench_function("memory_hit", |b| {
        let cache = ModuleCache::in_memory();
        let key = key_for(0);
        cache
            .get_or_compile(&key, |k| registry.instantiate(k))
            .expect("warm");
        b.iter(|| {
            cache
                .get_or_compile(&key, |k| registry.instantiate(k))
                .expect("hit")
        })
    });

    // The hash(kwargs) step alone.
    group.bench_function("key_hash", |b| {
        let key = key_for(0);
        b.iter(|| key.module_hash())
    });

    // Whole-library instantiation: every op for every dtype — what
    // ahead-of-time compilation would pay before the first operation.
    group.bench_function("whole_library_instantiation", |b| {
        let funcs = registry.registered_functions();
        b.iter(|| {
            let mut kernels = Vec::with_capacity(funcs.len() * ALL_DTYPES.len());
            for func in &funcs {
                for dtype in ALL_DTYPES {
                    let key = ModuleKey::new(func.clone()).with("c_type", dtype.name());
                    kernels.push(registry.instantiate(&key).expect("instantiate"));
                }
            }
            kernels
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
