//! Asserts the cost contract of `pygb-obs` when tracing is disabled:
//! an instrumentation point is one relaxed atomic load and a branch —
//! zero heap allocations, no clock reads, no locks. Run as a plain
//! binary (`harness = false`) so the allocation counter wraps the
//! whole process:
//!
//! ```text
//! cargo bench -p pygb-bench --bench obs_overhead
//! ```
//!
//! Exits nonzero (panics) if a disabled span allocates, records an
//! event, or exceeds a generous per-call latency budget.
//!
//! The same contract covers `gbtl::hooks::report_fact`, the per-write
//! probe of the sparsity checked interpretation: with no fact checker
//! installed (this process never calls `install_fact_checker`), each
//! call is one `OnceLock` load and a branch — the closure computing
//! `(nvals, dim)` must never run.
//!
//! The flight recorder's contract is stricter still, because it is
//! *always on* in a serving process: `FlightRecorder::record` must not
//! allocate whether muted (one relaxed load + branch) or active (head
//! claim + seqlock write of fixed-width atomic fields), so the serve
//! hot path pays no heap traffic for its request history.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper that counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ITERS: u64 = 1_000_000;

/// Per-call budget, far above the expected cost (~1–2 ns for a relaxed
/// load + branch) but far below anything that allocates, locks, or
/// reads a clock — loose enough for a loaded CI runner.
const MAX_NS_PER_CALL: u128 = 200;

fn main() {
    pygb_obs::disable();

    // Warm up: fault in code paths and thread-locals.
    for _ in 0..1_000 {
        let _sp = pygb_obs::span(pygb_obs::Cat::Exec, "warmup");
        std::hint::black_box(&_sp);
    }

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for i in 0..ITERS {
        let sp = pygb_obs::span(pygb_obs::Cat::Exec, "disabled");
        std::hint::black_box(&sp);
        // The label closure must not run while disabled — if it did,
        // the `format!` would both allocate and trip the counter.
        let sp2 = pygb_obs::span_labeled(pygb_obs::Cat::Kernel, || format!("never-{i}"));
        std::hint::black_box(&sp2);
    }
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    assert_eq!(
        allocs, 0,
        "disabled-mode spans must not allocate ({allocs} allocations over {ITERS} iterations)"
    );
    assert!(
        pygb_obs::events().is_empty(),
        "disabled-mode spans must not record events"
    );
    let per_call = elapsed.as_nanos() / (2 * ITERS) as u128;
    assert!(
        per_call <= MAX_NS_PER_CALL,
        "disabled span cost {per_call} ns/call exceeds the {MAX_NS_PER_CALL} ns budget"
    );

    // Uninstalled fact-checker probe: the closure must not run (the
    // Vec::with_capacity inside would allocate and trip the counter),
    // and the call must fit the same per-call budget.
    let fact_allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let fact_start = Instant::now();
    for i in 0..ITERS {
        gbtl::hooks::report_fact(|| {
            let v: Vec<u64> = Vec::with_capacity(16);
            std::hint::black_box(&v);
            (i as usize, ITERS as usize)
        });
    }
    let fact_elapsed = fact_start.elapsed();
    let fact_allocs = ALLOCATIONS.load(Ordering::Relaxed) - fact_allocs_before;
    assert_eq!(
        fact_allocs, 0,
        "uninstalled report_fact must not allocate ({fact_allocs} allocations over {ITERS} calls)"
    );
    let fact_per_call = fact_elapsed.as_nanos() / ITERS as u128;
    assert!(
        fact_per_call <= MAX_NS_PER_CALL,
        "uninstalled report_fact cost {fact_per_call} ns/call exceeds the {MAX_NS_PER_CALL} ns budget"
    );

    // Flight recorder: the always-on request-history ring must not
    // allocate on the hot path, muted or active. The record uses
    // borrowed &str fields, so a correct implementation copies bytes
    // into fixed slots and never touches the heap.
    let rec = pygb_obs::recorder();
    let record = pygb_obs::RequestRecord {
        id: 1,
        tenant: "bench-tenant",
        verb: "expr",
        graph: "bench-graph",
        version: 7,
        queue_wait_ns: 1_000,
        exec_ns: 2_000,
        outcome: pygb_obs::Outcome::Ok,
        kernel_delta: 3,
        opt_delta: 2,
    };
    rec.record(&record); // fault in the ring

    let mut recorder_lines = Vec::new();
    for (mode, muted) in [("active", false), ("muted", true)] {
        rec.set_muted(muted);
        let rec_allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let rec_start = Instant::now();
        for i in 0..ITERS {
            let mut r = record;
            r.id = i;
            rec.record(&r);
        }
        let rec_elapsed = rec_start.elapsed();
        let rec_allocs = ALLOCATIONS.load(Ordering::Relaxed) - rec_allocs_before;
        assert_eq!(
            rec_allocs, 0,
            "{mode} FlightRecorder::record must not allocate \
             ({rec_allocs} allocations over {ITERS} calls)"
        );
        let rec_per_call = rec_elapsed.as_nanos() / ITERS as u128;
        assert!(
            rec_per_call <= MAX_NS_PER_CALL,
            "{mode} record cost {rec_per_call} ns/call exceeds the {MAX_NS_PER_CALL} ns budget"
        );
        recorder_lines.push(format!("{mode} {rec_per_call} ns/call"));
    }
    rec.set_muted(false);
    // Single-threaded writes must never collide; a drain must see data.
    assert_eq!(rec.collisions(), 0, "single-writer collisions are a bug");
    assert!(
        !rec.tail(16).is_empty(),
        "the ring must hold records after {ITERS} writes"
    );

    println!(
        "obs_overhead: OK: {} disabled span calls, 0 allocations, {per_call} ns/call \
         (budget {MAX_NS_PER_CALL} ns); {ITERS} uninstalled report_fact calls, \
         0 allocations, {fact_per_call} ns/call; flight recorder {} x{ITERS} calls, \
         0 allocations",
        2 * ITERS,
        recorder_lines.join(" / ")
    );
}
