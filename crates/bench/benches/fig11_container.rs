//! Fig. 11: container lifecycle (file read, construction, extraction)
//! on the interpreted ("Python") vs native ("C++") paths, as |V|
//! scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pygb_bench::fig11::{run_once, ContainerWorkload, Side, Step};

fn bench(c: &mut Criterion) {
    for step in Step::ALL {
        let mut group = c.benchmark_group(format!("fig11_{}", step.label()));
        group.sample_size(20);
        for &n in &[64usize, 256, 1024] {
            let w = ContainerWorkload::new(n, 17);
            for side in Side::ALL {
                group.bench_with_input(BenchmarkId::new(side.label(), n), &w, |b, w| {
                    b.iter(|| run_once(step, side, w))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
