//! Fig. 10, sssp panel: run time of the three variants as |V| scales on
//! Erdős–Rényi graphs with |E| = |V|^1.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pygb_algorithms::Variant;
use pygb_bench::fig10::{run_once, Algorithm};
use pygb_bench::workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_sssp");
    group.sample_size(20);
    for &n in &[64usize, 256, 512] {
        let w = Workload::erdos_renyi(n, 42);
        for variant in Variant::ALL {
            group.bench_with_input(BenchmarkId::new(variant.label(), n), &w, |b, w| {
                b.iter(|| run_once(Algorithm::Sssp, variant, w))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
