//! Streaming-update vs. full-rebuild wall time, the tentpole claim of
//! the mutation layer: absorbing a small edge batch through
//! [`pygb::StreamingMatrix`] (copy + two-pointer splice, no sort) must
//! beat tearing the container down and rebuilding it from triples
//! (`from_triples`: O(nnz log nnz) sort) on a ≥100k-edge graph.
//!
//! Both sides are timed end-to-end from the same starting point — a
//! published snapshot plus an edge batch — to a new settled container,
//! which is exactly the choice a catalog writer faces. The update side
//! pays CoW copy + batch absorb + splice merge; the rebuild side pays
//! triple extraction + last-write-wins merge + the `from_triples`
//! sort. Writes `results/stream_bench.json` for CI archival.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use pygb::{DType, EdgeUpdate, Matrix, StreamingMatrix};
use pygb_bench::report::{render_table, to_json, Sample};

const N: usize = 50_000;
const M: usize = 150_000;

fn time<R>(mut f: impl FnMut() -> R) -> Duration {
    // One warm-up, then the median of three runs.
    f();
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

/// Deterministic mixed batch: ~3/4 inserts (possibly overwriting),
/// ~1/4 deletes of likely-present coordinates.
fn make_batch(base: &[(usize, usize, f64)], len: usize, salt: usize) -> Vec<EdgeUpdate> {
    (0..len)
        .map(|k| {
            let h = k
                .wrapping_mul(2654435761)
                .wrapping_add(salt.wrapping_mul(40503));
            if k % 4 == 3 {
                // Delete an edge drawn from the base list (present
                // unless an earlier op in this batch already hit it).
                let (i, j, _) = base[h % base.len()];
                EdgeUpdate::del(i, j)
            } else {
                EdgeUpdate::add(h % N, (h / N) % N, (k % 7) as f64 + 1.0)
            }
        })
        .collect()
}

/// Last-write-wins model of `base + batch`, as a sorted triple list.
fn final_triples(base: &[(usize, usize, f64)], batch: &[EdgeUpdate]) -> Vec<(usize, usize, f64)> {
    let mut model: BTreeMap<(usize, usize), f64> =
        base.iter().map(|&(i, j, v)| ((i, j), v)).collect();
    for u in batch {
        match u.val {
            Some(v) => {
                model.insert((u.row, u.col), v.as_f64());
            }
            None => {
                model.remove(&(u.row, u.col));
            }
        }
    }
    model.into_iter().map(|((i, j), v)| (i, j, v)).collect()
}

fn main() {
    let edges = pygb_io::generators::erdos_renyi(N, M, 4242);
    let base = edges.to_pygb(DType::Fp64);
    let base_triples: Vec<(usize, usize, f64)> = base
        .extract_triples()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.as_f64()))
        .collect();
    assert!(
        base_triples.len() >= 100_000,
        "graph must carry >=100k edges, got {}",
        base_triples.len()
    );
    println!(
        "stream_bench: |V|={N}, |E|={}, batch sizes 16/256/4096",
        base_triples.len()
    );

    let mut samples: Vec<Sample> = Vec::new();
    let mut small_batch_ratio = None;

    for (bi, &batch_len) in [16usize, 256, 4096].iter().enumerate() {
        let batch = make_batch(&base_triples, batch_len, bi);
        let oracle = final_triples(&base_triples, &batch);

        // Correctness first: both paths must produce the same container.
        let updated = {
            let mut s = StreamingMatrix::from_matrix(&base).unwrap();
            s.update_edges(&batch).unwrap();
            s.into_matrix()
        };
        let rebuilt = Matrix::from_triples(N, N, oracle.clone()).unwrap();
        assert_eq!(
            updated.extract_triples(),
            rebuilt.extract_triples(),
            "update and rebuild disagree at batch={batch_len}"
        );

        // The streamed publish path: CoW copy + absorb + splice merge.
        let t_update = time(|| {
            let mut s = StreamingMatrix::from_matrix(&base).unwrap();
            s.update_edges(&batch).unwrap();
            s.settle();
            s.nvals()
        });
        // The rebuild path: extract the snapshot's triples, merge the
        // batch last-write-wins (sort + dedup, keeping the newest op
        // per coordinate), rebuild from scratch.
        let t_rebuild = time(|| {
            let mut tri: Vec<(usize, usize, usize, Option<f64>)> = base
                .extract_triples()
                .into_iter()
                .map(|(i, j, v)| (i, j, 0, Some(v.as_f64())))
                .collect();
            tri.extend(
                batch
                    .iter()
                    .enumerate()
                    .map(|(k, u)| (u.row, u.col, k + 1, u.val.map(|v| v.as_f64()))),
            );
            tri.sort_unstable_by_key(|&(i, j, seq, _)| (i, j, seq));
            let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(tri.len());
            for (i, j, _, v) in tri {
                if merged.last().is_some_and(|&(pi, pj, _)| (pi, pj) == (i, j)) {
                    merged.pop();
                }
                if let Some(v) = v {
                    merged.push((i, j, v));
                }
            }
            Matrix::from_triples(N, N, merged).unwrap().nvals()
        });

        samples.push(Sample::new(
            "stream/update_vs_rebuild",
            &format!("update-b{batch_len}"),
            base_triples.len(),
            t_update,
        ));
        samples.push(Sample::new(
            "stream/update_vs_rebuild",
            &format!("rebuild-b{batch_len}"),
            base_triples.len(),
            t_rebuild,
        ));
        let ratio = t_rebuild.as_secs_f64() / t_update.as_secs_f64().max(1e-12);
        println!("batch={batch_len:>5}: update {t_update:?}  rebuild {t_rebuild:?}  (rebuild/update = {ratio:.2}x)");
        if batch_len == 16 {
            small_batch_ratio = Some(ratio);
        }
    }

    println!("{}", render_table("streaming: update vs rebuild", &samples));

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = format!("{dir}/stream_bench.json");
    std::fs::write(&path, to_json(&samples)).expect("write stream_bench.json");
    println!(
        "wrote results/stream_bench.json ({} samples)",
        samples.len()
    );

    // The acceptance bar: small batches must beat the full rebuild.
    let ratio = small_batch_ratio.expect("batch=16 ran");
    assert!(
        ratio > 1.0,
        "streamed update (batch=16) must beat full rebuild, got {ratio:.2}x"
    );
}
