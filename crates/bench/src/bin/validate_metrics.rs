//! Schema validator for the Prometheus text exposition served by the
//! `METRICS` wire verb. Used by CI against a live server:
//!
//! ```text
//! cargo run -p pygb-bench --bin validate_metrics -- 127.0.0.1:7411
//! ```
//!
//! The single argument is either `host:port` (scrape `METRICS` over
//! `pygb-wire/1`) or a path to a file holding an exposition.
//!
//! Checks, exiting 1 with a diagnostic on the first violation:
//!
//! * every line is a `# TYPE`/`# HELP` comment or a sample
//!   `name[{labels}] value` with a well-formed metric name, label
//!   syntax, and numeric value;
//! * every sample belongs to a family announced by a preceding
//!   `# TYPE`, and each family is announced exactly once;
//! * histogram families expose `_bucket` (with an `le` label),
//!   `_sum`, and `_count` samples; bucket counts are cumulative
//!   (non-decreasing in `le` order), an `le="+Inf"` bucket exists,
//!   and it equals the series' `_count`;
//! * the scrape carries live serve data: at least one `pygb_serve_`
//!   family and the mirrored `pygb_tunables_slow_ns` threshold.

use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("validate_metrics: FAIL: {msg}");
    std::process::exit(1);
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split `name{labels}` into the name and its label pairs, validating
/// the `key="value"` syntax (values may escape `\\`, `\"`, `\n`).
fn parse_series(series: &str, line: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = series.find('{') else {
        return (series.to_string(), Vec::new());
    };
    let name = &series[..brace];
    let rest = &series[brace + 1..];
    let Some(body) = rest.strip_suffix('}') else {
        fail(&format!("unterminated label set in `{line}`"));
    };
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            fail(&format!("bad label syntax in `{line}`"));
        }
        if !valid_name(&key) {
            fail(&format!("bad label key `{key}` in `{line}`"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(e @ ('\\' | '"' | 'n')) => {
                        value.push('\\');
                        value.push(e);
                    }
                    _ => fail(&format!("bad escape in label value in `{line}`")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => fail(&format!("unterminated label value in `{line}`")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => fail(&format!("unexpected `{c}` after label value in `{line}`")),
        }
    }
    (name.to_string(), labels)
}

fn scrape(addr: &str) -> String {
    let mut c = pygb_serve::Client::connect(addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    c.hello("validate-metrics")
        .unwrap_or_else(|e| fail(&format!("HELLO failed: {e}")));
    c.request_ok("METRICS")
        .unwrap_or_else(|e| fail(&format!("METRICS failed: {e}")))
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: validate_metrics <host:port | exposition-file>"));
    let text = if arg.contains(':') && !std::path::Path::new(&arg).exists() {
        scrape(&arg)
    } else {
        std::fs::read_to_string(&arg).unwrap_or_else(|e| fail(&format!("cannot read {arg}: {e}")))
    };

    // family name -> declared type
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    // (histogram family, non-le labels) -> [(le, count)] in file order
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    let mut sums: BTreeMap<SeriesKey, bool> = BTreeMap::new();
    let mut samples = 0usize;

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let toks: Vec<&str> = comment.split_whitespace().collect();
            match toks.as_slice() {
                ["TYPE", name, kind @ ("counter" | "gauge" | "histogram")] => {
                    if !valid_name(name) {
                        fail(&format!("bad family name in `{line}`"));
                    }
                    if families
                        .insert(name.to_string(), kind.to_string())
                        .is_some()
                    {
                        fail(&format!("family `{name}` announced twice"));
                    }
                }
                ["TYPE", ..] => fail(&format!("malformed TYPE line `{line}`")),
                ["HELP", ..] => {}
                _ => fail(&format!("unknown comment `{line}`")),
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            fail(&format!("sample line without a value: `{line}`"));
        };
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .unwrap_or_else(|_| fail(&format!("non-numeric value in `{line}`")))
        };
        let (name, labels) = parse_series(series, line);
        if !valid_name(&name) {
            fail(&format!("bad metric name `{name}` in `{line}`"));
        }
        samples += 1;

        // Resolve the family: histogram samples use suffixed names.
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|f| families.get(*f).is_some_and(|k| k == "histogram"))
                    .map(|f| (f.to_string(), *s))
            })
            .unwrap_or_else(|| (name.clone(), ""));
        let Some(kind) = families.get(&family) else {
            fail(&format!("sample `{name}` precedes or lacks its TYPE line"));
        };
        if kind == "histogram" && suffix.is_empty() {
            fail(&format!("bare sample `{name}` in histogram family"));
        }

        if kind == "histogram" {
            let mut rest: Vec<(String, String)> = Vec::new();
            let mut le = None;
            for (k, v) in labels {
                if k == "le" {
                    le = Some(v);
                } else {
                    rest.push((k, v));
                }
            }
            let key = (family.clone(), rest);
            match suffix {
                "_bucket" => {
                    let le = le.unwrap_or_else(|| fail(&format!("`{line}` lacks the `le` label")));
                    buckets.entry(key).or_default().push((le, value));
                }
                "_count" => {
                    counts.insert(key, value);
                }
                "_sum" => {
                    sums.insert(key, true);
                }
                _ => unreachable!(),
            }
        }
    }

    if samples == 0 {
        fail("exposition holds no samples");
    }
    for ((family, labels), series) in &buckets {
        let ctx = format!("{family}{labels:?}");
        let mut prev = f64::NEG_INFINITY;
        for (le, _count) in series {
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .unwrap_or_else(|_| fail(&format!("bad le `{le}` in {ctx}")))
            };
            if bound <= prev {
                fail(&format!("le bounds not increasing in {ctx}"));
            }
            prev = bound;
        }
        if series.windows(2).any(|w| w[1].1 < w[0].1) {
            fail(&format!("bucket counts not cumulative in {ctx}"));
        }
        let Some(inf) = series.iter().find(|(le, _)| le == "+Inf") else {
            fail(&format!("no +Inf bucket in {ctx}"));
        };
        let key = (family.clone(), labels.clone());
        let Some(count) = counts.get(&key) else {
            fail(&format!("histogram {ctx} lacks a _count sample"));
        };
        if (inf.1 - count).abs() > f64::EPSILON {
            fail(&format!(
                "+Inf bucket ({}) != _count ({count}) in {ctx}",
                inf.1
            ));
        }
        if !sums.contains_key(&key) {
            fail(&format!("histogram {ctx} lacks a _sum sample"));
        }
    }
    for (key, _) in counts {
        if !buckets.contains_key(&key) {
            fail(&format!("histogram {key:?} has _count but no buckets"));
        }
    }

    if !families.keys().any(|f| f.starts_with("pygb_serve_")) {
        fail("no pygb_serve_* family — scrape did not hit a serving process");
    }
    if !families.contains_key("pygb_tunables_slow_ns") {
        fail("pygb_tunables_slow_ns missing — the slow threshold is not mirrored");
    }

    println!(
        "validate_metrics: OK: {samples} samples across {} families \
         ({} histogram series checked)",
        families.len(),
        buckets.len()
    );
}
