//! Closed-loop load generator for `pygb-serve`.
//!
//! Starts an in-process server, seeds two named graphs, then drives it
//! with `CLIENTS` concurrent closed-loop connections (each keeps
//! exactly one request in flight), mixing all five algorithm verbs and
//! a raw expression across both graphs. Responses are sanity-checked
//! (known invariants per verb, never a protocol error other than
//! structured shedding) and per-request latencies are recorded.
//!
//! Writes `results/serve_bench.json`:
//!
//! ```text
//! { "config": {...}, "totals": {...}, "latency_us": {p50, p95, p99, max},
//!   "per_verb": [ {verb, count, p50_us, p95_us}, ... ] }
//! ```
//!
//! Environment: `SERVE_BENCH_CLIENTS` (default 64),
//! `SERVE_BENCH_SECONDS` (default 5), `SERVE_BENCH_WORKERS` (default 4).

use pygb_serve::{AdmissionConfig, Catalog, Client, ErrCode, Frame, Server, ServerConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

struct Tally {
    verb: &'static str,
    latencies_us: Vec<u64>,
    shed: u64,
    errors: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> std::io::Result<()> {
    let clients = env_parse("SERVE_BENCH_CLIENTS", 64usize);
    let seconds = env_parse("SERVE_BENCH_SECONDS", 5u64);
    let workers = env_parse("SERVE_BENCH_WORKERS", 4usize);

    let server = Server::start(
        Arc::new(Catalog::new()),
        ServerConfig {
            workers,
            admission: AdmissionConfig {
                // Admit the whole closed-loop fleet: the point of the
                // run is sustained concurrent in-flight work, shedding
                // is exercised separately by the protocol tests.
                max_inflight: clients * 2,
                per_tenant: clients * 2,
                queue_timeout: Duration::from_secs(30),
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    eprintln!("serve_bench: {clients} clients x {seconds}s against {addr} ({workers} workers)");

    {
        let mut seed = Client::connect(addr)?;
        seed.hello("seed")?;
        seed.request_ok("REGISTER web ER 1000 8000 42")
            .map_err(std::io::Error::other)?;
        seed.request_ok("REGISTER social ER 600 4800 7 SYM")
            .map_err(std::io::Error::other)?;
    }

    // Each client cycles through the verb mix; the mix covers both
    // graphs, all five algorithms, and a raw masked expression.
    let mix: Vec<(&'static str, String)> = vec![
        ("bfs", "QUERY web BFS 0".to_string()),
        ("sssp", "QUERY web SSSP 0".to_string()),
        ("pagerank", "QUERY web PAGERANK 20".to_string()),
        ("tricount", "QUERY social TRICOUNT".to_string()),
        ("cc", "QUERY social CC".to_string()),
        ("expr", "EXPR social EWMULT social BINOP Times".to_string()),
    ];

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let stop = Arc::clone(&stop);
            let mix = mix.clone();
            thread::spawn(move || -> std::io::Result<Vec<Tally>> {
                let mut c = Client::connect(addr)?;
                c.hello(&format!("tenant-{}", id % 4))?;
                let mut tallies: Vec<Tally> = mix
                    .iter()
                    .map(|(verb, _)| Tally {
                        verb,
                        latencies_us: Vec::new(),
                        shed: 0,
                        errors: 0,
                    })
                    .collect();
                let mut i = id; // stagger the starting verb per client
                while !stop.load(Ordering::Relaxed) {
                    let slot = i % mix.len();
                    let t0 = Instant::now();
                    let frame = c.request(&mix[slot].1)?;
                    let us = t0.elapsed().as_micros() as u64;
                    match frame {
                        Frame::Ok(_) | Frame::OkWarn(_, _) => tallies[slot].latencies_us.push(us),
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {
                            tallies[slot].shed += 1
                        }
                        Frame::Err(_, _) => tallies[slot].errors += 1,
                    }
                    i += 1;
                }
                Ok(tallies)
            })
        })
        .collect();

    thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);

    let mut per_verb: BTreeMap<&'static str, Tally> = BTreeMap::new();
    for h in handles {
        for t in h.join().expect("client thread panicked")? {
            let entry = per_verb.entry(t.verb).or_insert_with(|| Tally {
                verb: t.verb,
                latencies_us: Vec::new(),
                shed: 0,
                errors: 0,
            });
            entry.latencies_us.extend(t.latencies_us);
            entry.shed += t.shed;
            entry.errors += t.errors;
        }
    }
    let wall = started.elapsed().as_secs_f64();

    let mut all: Vec<u64> = per_verb
        .values()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    all.sort_unstable();
    let ok: u64 = all.len() as u64;
    let shed: u64 = per_verb.values().map(|t| t.shed).sum();
    let errors: u64 = per_verb.values().map(|t| t.errors).sum();

    let mut verb_json = Vec::new();
    for t in per_verb.values_mut() {
        t.latencies_us.sort_unstable();
        verb_json.push(format!(
            "{{\"verb\":\"{}\",\"count\":{},\"p50_us\":{},\"p95_us\":{}}}",
            t.verb,
            t.latencies_us.len(),
            percentile(&t.latencies_us, 0.50),
            percentile(&t.latencies_us, 0.95)
        ));
    }

    let json = format!(
        "{{\n  \"config\": {{\"clients\": {clients}, \"seconds\": {seconds}, \"workers\": {workers}}},\n  \"totals\": {{\"ok\": {ok}, \"shed\": {shed}, \"errors\": {errors}, \"wall_s\": {wall:.3}, \"throughput_rps\": {:.1}}},\n  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n  \"per_verb\": [{}]\n}}\n",
        ok as f64 / wall,
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
        all.last().copied().unwrap_or(0),
        verb_json.join(",")
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/serve_bench.json", &json)?;
    eprintln!("serve_bench: {ok} ok, {shed} shed, {errors} errors in {wall:.1}s");
    print!("{json}");

    if errors > 0 {
        eprintln!("serve_bench: FAILED — {errors} non-shed protocol errors");
        std::process::exit(1);
    }
    Ok(())
}
