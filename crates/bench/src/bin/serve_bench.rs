//! Closed-loop load generator for `pygb-serve`.
//!
//! Starts an in-process server, seeds two named graphs, then drives it
//! with `CLIENTS` concurrent closed-loop connections (each keeps
//! exactly one request in flight), mixing all five algorithm verbs and
//! a raw expression across both graphs. Responses are sanity-checked
//! (known invariants per verb, never a protocol error other than
//! structured shedding) and per-request latencies are recorded.
//!
//! The run prices the always-on flight recorder with an A/B pair of
//! phases — identical load with the recorder muted, then active — and
//! reports the p99 delta (the ISSUE budget is < 5%; the JSON carries
//! the measured value either way so CI trends it). A final phase
//! measures the observability verbs themselves (`TAIL`, `SLOW`,
//! `EXPLAIN`, `METRICS`) against the ring the load phases populated.
//!
//! Writes `results/serve_bench.json`:
//!
//! ```text
//! { "config": {...}, "totals": {...}, "latency_us": {p50, p95, p99, max},
//!   "per_verb": [ {verb, count, p50_us, p95_us}, ... ],
//!   "recorder_ab": {muted_p99_us, active_p99_us, p99_regression_pct},
//!   "obs_verbs_us": [ {verb, p50_us, p99_us}, ... ] }
//! ```
//!
//! Environment: `SERVE_BENCH_CLIENTS` (default 64),
//! `SERVE_BENCH_SECONDS` (default 5, per phase),
//! `SERVE_BENCH_WORKERS` (default 4).

use pygb_serve::{AdmissionConfig, Catalog, Client, ErrCode, Frame, Server, ServerConfig};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

struct Tally {
    verb: &'static str,
    latencies_us: Vec<u64>,
    shed: u64,
    errors: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive the server with the closed-loop fleet for `seconds`, returning
/// merged per-verb tallies and the wall time.
fn run_phase(
    addr: SocketAddr,
    clients: usize,
    seconds: u64,
    mix: &[(&'static str, String)],
) -> std::io::Result<(BTreeMap<&'static str, Tally>, f64)> {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let stop = Arc::clone(&stop);
            let mix = mix.to_vec();
            thread::spawn(move || -> std::io::Result<Vec<Tally>> {
                let mut c = Client::connect(addr)?;
                c.hello(&format!("tenant-{}", id % 4))?;
                let mut tallies: Vec<Tally> = mix
                    .iter()
                    .map(|(verb, _)| Tally {
                        verb,
                        latencies_us: Vec::new(),
                        shed: 0,
                        errors: 0,
                    })
                    .collect();
                let mut i = id; // stagger the starting verb per client
                while !stop.load(Ordering::Relaxed) {
                    let slot = i % mix.len();
                    let t0 = Instant::now();
                    let frame = c.request(&mix[slot].1)?;
                    let us = t0.elapsed().as_micros() as u64;
                    match frame {
                        Frame::Ok(_) | Frame::OkWarn(_, _) => tallies[slot].latencies_us.push(us),
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {
                            tallies[slot].shed += 1
                        }
                        Frame::Err(_, _) => tallies[slot].errors += 1,
                    }
                    i += 1;
                }
                Ok(tallies)
            })
        })
        .collect();

    thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);

    let mut per_verb: BTreeMap<&'static str, Tally> = BTreeMap::new();
    for h in handles {
        for t in h.join().expect("client thread panicked")? {
            let entry = per_verb.entry(t.verb).or_insert_with(|| Tally {
                verb: t.verb,
                latencies_us: Vec::new(),
                shed: 0,
                errors: 0,
            });
            entry.latencies_us.extend(t.latencies_us);
            entry.shed += t.shed;
            entry.errors += t.errors;
        }
    }
    Ok((per_verb, started.elapsed().as_secs_f64()))
}

fn sorted_all(per_verb: &BTreeMap<&'static str, Tally>) -> Vec<u64> {
    let mut all: Vec<u64> = per_verb
        .values()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    all.sort_unstable();
    all
}

/// p50/p99 of `iters` round-trips of one observability verb.
fn time_obs_verb(c: &mut Client, line: &str, iters: usize) -> std::io::Result<(u64, u64)> {
    let mut lat: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        c.request_ok(line).map_err(std::io::Error::other)?;
        lat.push(t0.elapsed().as_micros() as u64);
    }
    lat.sort_unstable();
    Ok((percentile(&lat, 0.50), percentile(&lat, 0.99)))
}

fn main() -> std::io::Result<()> {
    let clients = env_parse("SERVE_BENCH_CLIENTS", 64usize);
    let seconds = env_parse("SERVE_BENCH_SECONDS", 5u64);
    let workers = env_parse("SERVE_BENCH_WORKERS", 4usize);

    let server = Server::start(
        Arc::new(Catalog::new()),
        ServerConfig {
            workers,
            admission: AdmissionConfig {
                // Admit the whole closed-loop fleet: the point of the
                // run is sustained concurrent in-flight work, shedding
                // is exercised separately by the protocol tests.
                max_inflight: clients * 2,
                per_tenant: clients * 2,
                queue_timeout: Duration::from_secs(30),
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    eprintln!(
        "serve_bench: {clients} clients x 2x{seconds}s (recorder muted/active) \
         against {addr} ({workers} workers)"
    );

    {
        let mut seed = Client::connect(addr)?;
        seed.hello("seed")?;
        seed.request_ok("REGISTER web ER 1000 8000 42")
            .map_err(std::io::Error::other)?;
        seed.request_ok("REGISTER social ER 600 4800 7 SYM")
            .map_err(std::io::Error::other)?;
    }

    // Each client cycles through the verb mix; the mix covers both
    // graphs, all five algorithms, and a raw masked expression.
    let mix: Vec<(&'static str, String)> = vec![
        ("bfs", "QUERY web BFS 0".to_string()),
        ("sssp", "QUERY web SSSP 0".to_string()),
        ("pagerank", "QUERY web PAGERANK 20".to_string()),
        ("tricount", "QUERY social TRICOUNT".to_string()),
        ("cc", "QUERY social CC".to_string()),
        ("expr", "EXPR social EWMULT social BINOP Times".to_string()),
    ];

    // Warm-up: drive the whole mix once so JIT compilation and cache
    // faults are paid before either measured phase.
    {
        let mut warm = Client::connect(addr)?;
        warm.hello("warmup")?;
        for (_, line) in &mix {
            warm.request_ok(line).map_err(std::io::Error::other)?;
        }
    }

    // Phases A/B price the always-on flight recorder: identical load,
    // recorder muted then active. They run at worker-level concurrency
    // so no request queues — a saturated closed loop's p99 measures
    // queue depth, which would drown the nanosecond-scale record cost
    // in scheduling noise.
    let ab_clients = workers;
    pygb_obs::recorder().set_muted(true);
    let (muted_verbs, _muted_wall) = run_phase(addr, ab_clients, seconds, &mix)?;
    let muted_all = sorted_all(&muted_verbs);
    let muted_p99 = percentile(&muted_all, 0.99);

    pygb_obs::recorder().set_muted(false);
    let (active_verbs, _active_wall) = run_phase(addr, ab_clients, seconds, &mix)?;
    let active_all = sorted_all(&active_verbs);
    let ab_active_p99 = percentile(&active_all, 0.99);

    // Load phase: the full closed-loop fleet with the recorder active
    // (the shipping configuration). Totals and per-verb stats below
    // report this phase.
    let (mut per_verb, wall) = run_phase(addr, clients, seconds, &mix)?;

    let all = sorted_all(&per_verb);
    let ok: u64 = all.len() as u64;
    let shed: u64 = per_verb.values().map(|t| t.shed).sum();
    let errors: u64 = per_verb.values().map(|t| t.errors).sum();
    let p99_regression_pct = if muted_p99 > 0 {
        (ab_active_p99 as f64 - muted_p99 as f64) * 100.0 / muted_p99 as f64
    } else {
        0.0
    };

    // Phase C: the observability verbs themselves, against the ring and
    // metric registry the load phases filled. EXPLAIN reads a capture
    // forced by a momentary zero threshold.
    let mut obs = Client::connect(addr)?;
    obs.hello("observer")?;
    obs.request_ok("SLOW THRESHOLD 1")
        .map_err(std::io::Error::other)?;
    obs.request_ok("QUERY web BFS 0")
        .map_err(std::io::Error::other)?;
    let explain_id = obs
        .last_request_id()
        .ok_or_else(|| std::io::Error::other("server echoed no request ID"))?;
    obs.request_ok(&format!("SLOW THRESHOLD {}", pygb_serve::DEFAULT_SLOW_NS))
        .map_err(std::io::Error::other)?;
    let obs_iters = 200;
    let obs_lines = [
        ("TAIL", "TAIL 64".to_string()),
        ("SLOW", "SLOW 64".to_string()),
        ("EXPLAIN", format!("EXPLAIN r{explain_id}")),
        ("METRICS", "METRICS".to_string()),
    ];
    let mut obs_json = Vec::new();
    for (verb, line) in &obs_lines {
        let (p50, p99) = time_obs_verb(&mut obs, line, obs_iters)?;
        obs_json.push(format!(
            "{{\"verb\":\"{verb}\",\"p50_us\":{p50},\"p99_us\":{p99}}}"
        ));
        eprintln!("serve_bench: {verb} p50={p50}us p99={p99}us ({obs_iters} round-trips)");
    }

    let mut verb_json = Vec::new();
    for t in per_verb.values_mut() {
        t.latencies_us.sort_unstable();
        verb_json.push(format!(
            "{{\"verb\":\"{}\",\"count\":{},\"p50_us\":{},\"p95_us\":{}}}",
            t.verb,
            t.latencies_us.len(),
            percentile(&t.latencies_us, 0.50),
            percentile(&t.latencies_us, 0.95)
        ));
    }

    let json = format!(
        "{{\n  \"config\": {{\"clients\": {clients}, \"seconds\": {seconds}, \"workers\": {workers}}},\n  \"totals\": {{\"ok\": {ok}, \"shed\": {shed}, \"errors\": {errors}, \"wall_s\": {wall:.3}, \"throughput_rps\": {:.1}}},\n  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n  \"per_verb\": [{}],\n  \"recorder_ab\": {{\"muted_p99_us\": {muted_p99}, \"active_p99_us\": {ab_active_p99}, \"p99_regression_pct\": {p99_regression_pct:.2}}},\n  \"obs_verbs_us\": [{}]\n}}\n",
        ok as f64 / wall,
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
        all.last().copied().unwrap_or(0),
        verb_json.join(","),
        obs_json.join(",")
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/serve_bench.json", &json)?;
    eprintln!(
        "serve_bench: {ok} ok, {shed} shed, {errors} errors in {wall:.1}s; \
         recorder p99 {muted_p99}us muted -> {ab_active_p99}us active \
         ({p99_regression_pct:+.2}%)"
    );
    print!("{json}");

    if errors > 0 {
        eprintln!("serve_bench: FAILED — {errors} non-shed protocol errors");
        std::process::exit(1);
    }
    Ok(())
}
