//! Regenerate every table and figure of the paper as textual tables,
//! and dump raw samples as JSON under `results/`.
//!
//! ```text
//! cargo run -p pygb-bench --bin figures --release -- all
//! cargo run -p pygb-bench --bin figures --release -- fig10 --max-pow 11 --reps 5
//! cargo run -p pygb-bench --bin figures --release -- fig11 table1 combinatorics compile-times
//! ```

use std::time::Instant;

use pygb_algorithms::Variant;
use pygb_bench::fig10::{self, Algorithm};
use pygb_bench::fig11::{self, ContainerWorkload, Side, Step};
use pygb_bench::report::{bench_summary_json, render_table, to_json, BenchSummaryEntry, Sample};
use pygb_bench::workloads::{size_sweep, Workload};

struct Options {
    max_pow: u32,
    reps: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        max_pow: 11,
        reps: 3,
    };
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-pow" => {
                opts.max_pow = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-pow needs an integer");
            }
            "--reps" => {
                opts.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs an integer");
            }
            other => commands.push(other.to_string()),
        }
    }
    if commands.is_empty() || commands.iter().any(|c| c == "all") {
        commands = vec![
            "table1".into(),
            "combinatorics".into(),
            "fig10".into(),
            "fig11".into(),
            "compile-times".into(),
            "summary".into(),
        ];
    }

    let mut all_samples: Vec<Sample> = Vec::new();
    for cmd in &commands {
        match cmd.as_str() {
            "table1" => table1(),
            "combinatorics" => combinatorics(),
            "fig10" => all_samples.extend(run_fig10(&opts)),
            "fig11" => all_samples.extend(run_fig11(&opts)),
            "compile-times" => compile_times(),
            "summary" => summary(&opts),
            other => eprintln!("unknown command `{other}` (try: all, table1, combinatorics, fig10, fig11, compile-times, summary)"),
        }
    }

    if !all_samples.is_empty() {
        let _ = std::fs::create_dir_all("results");
        let path = "results/figures.json";
        if std::fs::write(path, to_json(&all_samples)).is_ok() {
            println!("\nraw samples written to {path}");
        }
    }
}

/// Table I: every operation form, executed through the DSL and checked
/// against its mathematical definition.
fn table1() {
    use pygb::prelude::*;
    println!("# Table I — operation forms (executed + verified)\n");
    let mut rows: Vec<(&str, &str, bool)> = Vec::new();

    let a = Matrix::from_dense(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]).unwrap();
    let b = Matrix::from_dense(&[vec![5.0f64, 6.0], vec![7.0, 8.0]]).unwrap();
    let u = Vector::from_dense(&[1.0f64, 2.0]);
    let v = Vector::from_dense(&[10.0f64, 20.0]);

    // mxm: C = A ⊕.⊗ B
    {
        let _sr = ArithmeticSemiring.enter();
        let c = Matrix::from_expr(a.matmul(&b)).unwrap();
        rows.push((
            "mxm",
            "C[M, z] = A @ B",
            c.get(0, 0).unwrap().as_f64() == 19.0,
        ));
    }
    // mxv: w = A ⊕.⊗ u
    {
        let _sr = ArithmeticSemiring.enter();
        let w = Vector::from_expr(a.mxv(&u)).unwrap();
        rows.push(("mxv", "w[m, z] = A @ u", w.get(0).unwrap().as_f64() == 5.0));
    }
    // eWiseMult / eWiseAdd, both arities
    {
        let c = Matrix::from_expr(&a * &b).unwrap();
        rows.push((
            "eWiseMult (M)",
            "C[M, z] = A * B",
            c.get(0, 0).unwrap().as_f64() == 5.0,
        ));
        let w = Vector::from_expr(&u * &v).unwrap();
        rows.push((
            "eWiseMult (v)",
            "w[m, z] = u * v",
            w.get(1).unwrap().as_f64() == 40.0,
        ));
        let c2 = Matrix::from_expr(&a + &b).unwrap();
        rows.push((
            "eWiseAdd (M)",
            "C[M, z] = A + B",
            c2.get(1, 1).unwrap().as_f64() == 12.0,
        ));
        let w2 = Vector::from_expr(&u + &v).unwrap();
        rows.push((
            "eWiseAdd (v)",
            "w[m, z] = u + v",
            w2.get(0).unwrap().as_f64() == 11.0,
        ));
    }
    // reduce row / scalar
    {
        let w = Vector::from_expr(pygb::reduce_rows(&a)).unwrap();
        rows.push((
            "reduce (row)",
            "w[m, z] = reduce(monoid, A)",
            w.get(0).unwrap().as_f64() == 3.0,
        ));
        let s = reduce(&a).unwrap();
        rows.push(("reduce (scalar)", "s = reduce(A)", s.as_f64() == 10.0));
        let sv = reduce(&u).unwrap();
        rows.push(("reduce (vector)", "s = reduce(u)", sv.as_f64() == 3.0));
    }
    // apply
    {
        let _op = UnaryOp::new("AdditiveInverse").unwrap().enter();
        let c = Matrix::from_expr(pygb::apply(&a)).unwrap();
        rows.push((
            "apply (M)",
            "C[M, z] = apply(A)",
            c.get(0, 0).unwrap().as_f64() == -1.0,
        ));
        let w = Vector::from_expr(pygb::apply(&u)).unwrap();
        rows.push((
            "apply (v)",
            "w[m, z] = apply(u)",
            w.get(1).unwrap().as_f64() == -2.0,
        ));
    }
    // transpose
    {
        let c = Matrix::from_expr(a.t().expr()).unwrap();
        rows.push((
            "transpose",
            "C[M, z] = A.T",
            c.get(0, 1).unwrap().as_f64() == 3.0,
        ));
    }
    // extract
    {
        let c = Matrix::from_expr(a.extract(0..1, 0..2)).unwrap();
        rows.push(("extract (M)", "C[M, z] = A[i, j]", c.shape() == (1, 2)));
        let w = Vector::from_expr(u.extract(vec![1usize])).unwrap();
        rows.push((
            "extract (v)",
            "w[m, z] = u[i]",
            w.get(0).unwrap().as_f64() == 2.0,
        ));
    }
    // assign
    {
        let mut c = Matrix::new(3, 3, DType::Fp64);
        c.no_mask().region(0..2, 0..2).assign(&a).unwrap();
        rows.push((
            "assign (M)",
            "C[M, z][i, j] = A",
            c.get(1, 1).unwrap().as_f64() == 4.0,
        ));
        let mut w = Vector::new(4, DType::Fp64);
        w.no_mask().slice(1..3).assign(&u).unwrap();
        rows.push((
            "assign (v)",
            "w[m, z][i] = u",
            w.get(2).unwrap().as_f64() == 2.0,
        ));
    }

    for (name, notation, ok) in &rows {
        println!(
            "  {:<16} {:<28} {}",
            name,
            notation,
            if *ok { "✓" } else { "✗ FAILED" }
        );
    }
    let failed = rows.iter().filter(|r| !r.2).count();
    println!("\n  {} forms verified, {} failed\n", rows.len(), failed);
    assert_eq!(failed, 0, "Table I verification failed");
}

/// Section V's counting argument.
fn combinatorics() {
    use pygb_jit::combinatorics as comb;
    println!("# Section V — why precompilation is infeasible\n");
    println!(
        "  mxm container-type combinations : 11^4        = {:>16}",
        comb::mxm_type_combinations()
    );
    println!(
        "  accumulator combinations        : 17·11³      = {:>16}",
        comb::accumulator_combinations()
    );
    println!(
        "  semiring op pairings            : 17·17       = {:>16}",
        comb::semiring_op_pairings()
    );
    println!(
        "  typed semiring combinations     : 17²·11³     = {:>16}",
        comb::semiring_combinations()
    );
    println!(
        "  total mxm key space             :             = {:>16}  (paper: \"roughly 6 trillion\")",
        comb::mxm_total_combinations()
    );
    println!();
}

/// Fig. 10: four algorithms × three variants across the size sweep.
fn run_fig10(opts: &Options) -> Vec<Sample> {
    println!("# Fig. 10 — algorithm run time, Erdős–Rényi |E| = |V|^1.5\n");
    let mut samples = Vec::new();
    for algo in Algorithm::ALL {
        let mut algo_samples = Vec::new();
        for &n in &size_sweep(opts.max_pow) {
            let w = Workload::erdos_renyi(n, 42);
            for variant in Variant::ALL {
                let dt = fig10::run_median(algo, variant, &w, opts.reps);
                algo_samples.push(Sample::new(
                    &format!("fig10/{}", algo.label()),
                    variant.label(),
                    n,
                    dt,
                ));
            }
        }
        println!("{}", render_table(algo.label(), &algo_samples));
        samples.extend(algo_samples);
    }
    samples
}

/// Fig. 11: container lifecycle, interpreted vs native.
fn run_fig11(opts: &Options) -> Vec<Sample> {
    println!("# Fig. 11 — container lifecycle, interpreted vs native\n");
    let mut samples = Vec::new();
    for step in Step::ALL {
        let mut step_samples = Vec::new();
        for &n in &size_sweep(opts.max_pow) {
            let w = ContainerWorkload::new(n, 17);
            for side in Side::ALL {
                let dt = fig11::run_median(step, side, &w, opts.reps);
                step_samples.push(Sample::new(
                    &format!("fig11/{}", step.label()),
                    side.label(),
                    n,
                    dt,
                ));
            }
        }
        println!("{}", render_table(step.label(), &step_samples));
        samples.extend(step_samples);
    }
    samples
}

/// `results/bench_summary.json`: each algorithm's nonblocking variant
/// run once under tracing, emitting wall time, the per-phase breakdown
/// (from the observability layer's span totals), and per-kernel-family
/// execution counts (metrics histogram deltas).
fn summary(opts: &Options) {
    println!("# Bench summary — wall time + per-phase attribution (nonblocking variant)\n");
    let n = 1usize << opts.max_pow.min(8);
    let mut entries = Vec::new();
    pygb_obs::enable();
    for algo in Algorithm::ALL {
        let w = Workload::erdos_renyi(n, 42);
        // Warm the JIT cache so the breakdown attributes steady-state
        // dispatch, not first-run compilation.
        fig10::run_once(algo, Variant::Nonblocking, &w);
        pygb_obs::clear_events();
        let before = pygb_obs::registry().snapshot();
        let dt = fig10::run_once(algo, Variant::Nonblocking, &w);
        let after = pygb_obs::registry().snapshot();
        let phases = pygb_obs::phase_totals()
            .into_iter()
            .map(|(p, ns)| (p.to_string(), ns))
            .collect();
        let kernels = after
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let family = name.strip_prefix("kernel/")?;
                let delta = h.count - before.histogram_count(name);
                (delta > 0).then(|| (family.to_string(), delta))
            })
            .collect();
        let entry = BenchSummaryEntry {
            algorithm: algo.label().to_string(),
            n,
            wall_seconds: dt.as_secs_f64(),
            phases,
            kernels,
        };
        println!(
            "  {:<16} |V|={:<6} wall={}  kernels={}",
            entry.algorithm,
            entry.n,
            pygb_bench::report::format_seconds(entry.wall_seconds),
            entry.kernels.iter().map(|(_, c)| c).sum::<u64>(),
        );
        entries.push(entry);
    }
    pygb_obs::disable();
    pygb_obs::clear_events();

    let _ = std::fs::create_dir_all("results");
    let path = "results/bench_summary.json";
    match std::fs::write(path, bench_summary_json(&entries)) {
        Ok(()) => println!("\nbench summary written to {path}\n"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}\n"),
    }
}

/// Compile-time summary: cold instantiation vs warm dispatch vs
/// whole-library ahead-of-time instantiation.
fn compile_times() {
    use pygb_jit::{FactoryRegistry, ModuleCache, ModuleKey};
    println!("# Compile times — JIT instantiation vs warm dispatch\n");

    let registry = FactoryRegistry::new();
    pygb::kernels::register_all(&registry);
    let cache = ModuleCache::in_memory();

    // Cold compiles across many distinct keys.
    let n_keys = 500;
    let start = Instant::now();
    for i in 0..n_keys {
        let key = ModuleKey::new("mxm")
            .with("c_type", "fp64")
            .with("variant", i.to_string());
        cache
            .get_or_compile(&key, |k| registry.instantiate(k))
            .expect("compile");
    }
    let cold = start.elapsed() / n_keys;

    // Warm hits on one key.
    let key = ModuleKey::new("mxm")
        .with("c_type", "fp64")
        .with("variant", "0");
    let n_hits = 100_000u32;
    let start = Instant::now();
    for _ in 0..n_hits {
        cache
            .get_or_compile(&key, |k| registry.instantiate(k))
            .expect("hit");
    }
    let warm = start.elapsed() / n_hits;

    // Whole-library ahead-of-time instantiation.
    let funcs = registry.registered_functions();
    let start = Instant::now();
    let mut count = 0usize;
    for func in &funcs {
        for dtype in pygb::dtype::ALL_DTYPES {
            let k = ModuleKey::new(func.clone()).with("c_type", dtype.name());
            registry.instantiate(&k).expect("instantiate");
            count += 1;
        }
    }
    let aot = start.elapsed();

    println!("  cold compile (per key)            : {cold:?}");
    println!("  warm dispatch (memory hit)        : {warm:?}");
    println!("  ahead-of-time: {count} modules      : {aot:?}");
    let stats = cache.stats().snapshot();
    println!(
        "  cache stats: {} compiles, {} hits, hit rate {:.1}%\n",
        stats.compiles,
        stats.memory_hits,
        stats.hit_rate() * 100.0
    );
}
