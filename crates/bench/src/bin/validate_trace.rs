//! Schema validator for Chrome trace-event JSON emitted via
//! `PYGB_TRACE`. Used by CI after running `examples/trace.rs`:
//!
//! ```text
//! PYGB_TRACE=out.json cargo run -p pygb-runtime --example trace
//! cargo run -p pygb-bench --bin validate_trace -- out.json
//! ```
//!
//! Checks, exiting 1 with a diagnostic on the first violation:
//!
//! * the document parses and `traceEvents` is a nonempty array;
//! * every event's `ph` is `"X"` (complete) or `"M"` (metadata), with
//!   the fields each form requires;
//! * every `X` event has a positive `dur` (sub-microsecond spans must
//!   export fractional microseconds, not 0);
//! * at least one `kernel`-category span exists, and every kernel span
//!   is contained (by time) in a `wave` span — executed kernels nest
//!   under their flush wave.

use pygb_jit::json::{self, Value};

struct SpanX {
    name: String,
    cat: String,
    ts: f64,
    dur: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: FAIL: {msg}");
    std::process::exit(1);
}

fn num(v: &Value, what: &str) -> f64 {
    match v {
        Value::Number(n) => *n,
        other => fail(&format!("{what} must be a number, got {other:?}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: validate_trace <trace.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("invalid JSON: {e}")));

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail("`traceEvents` missing or not an array"));
    if events.is_empty() {
        fail("`traceEvents` is empty — nothing was traced");
    }

    let mut spans: Vec<SpanX> = Vec::new();
    let mut metadata = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(&format!("event {i}: missing `ph`")));
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) != Some("thread_name") {
                    fail(&format!("event {i}: metadata event is not a thread_name"));
                }
                metadata += 1;
            }
            "X" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| fail(&format!("event {i}: X event missing `name`")))
                    .to_string();
                let cat = ev
                    .get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| fail(&format!("event {i}: X event missing `cat`")))
                    .to_string();
                let ts = num(
                    ev.get("ts")
                        .unwrap_or_else(|| fail(&format!("event {i}: X event missing `ts`"))),
                    "`ts`",
                );
                let dur = num(
                    ev.get("dur")
                        .unwrap_or_else(|| fail(&format!("event {i}: X event missing `dur`"))),
                    "`dur`",
                );
                if dur <= 0.0 {
                    fail(&format!("event {i} ({name}): non-positive dur {dur}"));
                }
                ev.get("pid")
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| fail(&format!("event {i}: X event missing `pid`")));
                ev.get("tid")
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| fail(&format!("event {i}: X event missing `tid`")));
                spans.push(SpanX { name, cat, ts, dur });
            }
            other => fail(&format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if metadata == 0 {
        fail("no thread_name metadata records");
    }

    let kernels: Vec<&SpanX> = spans.iter().filter(|s| s.cat == "kernel").collect();
    if kernels.is_empty() {
        fail("no kernel-category spans — no kernel execution was traced");
    }
    let waves: Vec<&SpanX> = spans.iter().filter(|s| s.cat == "wave").collect();
    if waves.is_empty() {
        fail("no wave-category spans — no flush wave was traced");
    }
    // Kernel executions driven by the flush scheduler must nest (by
    // time) inside a wave. Kernels dispatched outside any flush (eager
    // blocking mode) legitimately have no enclosing wave, so require
    // containment only for kernels that overlap some wave.
    let mut nested = 0usize;
    for k in &kernels {
        let overlaps = waves
            .iter()
            .any(|w| k.ts < w.ts + w.dur && w.ts < k.ts + k.dur);
        if !overlaps {
            continue;
        }
        let contained = waves
            .iter()
            .any(|w| k.ts >= w.ts && k.ts + k.dur <= w.ts + w.dur);
        if !contained {
            fail(&format!(
                "kernel span `{}` overlaps a wave but is not contained in one",
                k.name
            ));
        }
        nested += 1;
    }
    if nested == 0 {
        fail("no kernel span nests inside a flush wave");
    }

    println!(
        "validate_trace: OK: {} events ({} spans, {} kernel, {} wave-nested, {} thread lanes)",
        events.len(),
        spans.len(),
        kernels.len(),
        nested,
        metadata
    );
}
