//! Paper-style table rendering and JSON result emission for the
//! `figures` binary.

use std::time::Duration;

use pygb_jit::json::escape_string;

/// One measured cell: a series name, an x value (problem size), and a
/// time.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Which figure/table the sample belongs to (e.g. `"fig10/bfs"`).
    pub experiment: String,
    /// Series within the figure (e.g. `"pygb-loops"`).
    pub series: String,
    /// Problem size (|V|).
    pub n: usize,
    /// Measured seconds.
    pub seconds: f64,
}

impl Sample {
    /// Build a sample from a [`Duration`].
    pub fn new(experiment: &str, series: &str, n: usize, time: Duration) -> Sample {
        Sample {
            experiment: experiment.to_string(),
            series: series.to_string(),
            n,
            seconds: time.as_secs_f64(),
        }
    }
}

/// Render a set of samples that share an experiment as a sizes × series
/// table (the textual equivalent of one Fig. 10 panel).
pub fn render_table(title: &str, samples: &[Sample]) -> String {
    let mut sizes: Vec<usize> = samples.iter().map(|s| s.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut series: Vec<String> = samples.iter().map(|s| s.series.clone()).collect();
    series.sort();
    series.dedup();

    let mut out = format!("## {title}\n\n");
    out.push_str(&format!("{:>8}", "|V|"));
    for s in &series {
        out.push_str(&format!(" {s:>14}"));
    }
    out.push('\n');
    for &n in &sizes {
        out.push_str(&format!("{n:>8}"));
        for s in &series {
            let cell = samples
                .iter()
                .find(|x| x.n == n && &x.series == s)
                .map(|x| format_seconds(x.seconds))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(" {cell:>14}"));
        }
        out.push('\n');
    }
    out
}

/// Human-scaled time formatting (`1.23 ms`, `45.6 µs`, ...).
pub fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Serialize samples as pretty JSON (for EXPERIMENTS.md bookkeeping).
pub fn to_json(samples: &[Sample]) -> String {
    let mut out = String::from("[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\n    \"experiment\": \"{}\",\n    \"series\": \"{}\",\n    \"n\": {},\n    \"seconds\": {}\n  }}",
            escape_string(&s.experiment),
            escape_string(&s.series),
            s.n,
            format_json_f64(s.seconds)
        ));
    }
    out.push_str(if samples.is_empty() { "]" } else { "\n]" });
    out
}

/// Format an f64 the way JSON emitters conventionally do: integral
/// values keep a `.0` so they read back as floats.
fn format_json_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------
// Bench summary: per-algorithm wall time + observability attribution.
// ---------------------------------------------------------------------

/// One per-algorithm row of `results/bench_summary.json`: the measured
/// wall time of a run plus the observability layer's attribution of
/// where it went (per-lifecycle-phase totals and per-kernel-family
/// execution counts, both from `pygb-obs`).
#[derive(Debug, Clone, Default)]
pub struct BenchSummaryEntry {
    /// Algorithm label (`"bfs"`, `"pagerank"`, ...).
    pub algorithm: String,
    /// Problem size (|V|).
    pub n: usize,
    /// End-to-end wall time of the run, seconds.
    pub wall_seconds: f64,
    /// Total nanoseconds per lifecycle phase (`pygb_obs::phase_totals`
    /// over the run's span events).
    pub phases: Vec<(String, u64)>,
    /// Executions per kernel family (metrics histogram-count deltas
    /// across the run, `kernel/` prefix stripped).
    pub kernels: Vec<(String, u64)>,
}

/// Serialize bench-summary entries as the `pygb-bench-summary/1`
/// document written to `results/bench_summary.json`.
pub fn bench_summary_json(entries: &[BenchSummaryEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"pygb-bench-summary/1\",\n  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"algorithm\": \"{}\",\n      \"n\": {},\n      \
             \"wall_seconds\": {},\n      \"phases_ns\": {{",
            escape_string(&e.algorithm),
            e.n,
            format_json_f64(e.wall_seconds)
        ));
        for (j, (phase, ns)) in e.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": {ns}", escape_string(phase)));
        }
        out.push_str("},\n      \"kernels\": {");
        for (j, (kernel, count)) in e.kernels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": {count}", escape_string(kernel)));
        }
        out.push_str("}\n    }");
    }
    out.push_str(if entries.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_scales() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0025), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-8), "25 ns");
    }

    #[test]
    fn table_has_all_cells() {
        let samples = vec![
            Sample::new("fig10/bfs", "native", 64, Duration::from_micros(10)),
            Sample::new("fig10/bfs", "pygb-loops", 64, Duration::from_micros(30)),
            Sample::new("fig10/bfs", "native", 128, Duration::from_micros(40)),
        ];
        let table = render_table("bfs", &samples);
        assert!(table.contains("native"));
        assert!(table.contains("pygb-loops"));
        assert!(table.contains("10.000 µs"));
        assert!(table.contains(" -")); // missing cell dashed
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn json_roundtrips() {
        let samples = vec![Sample::new("x", "y", 1, Duration::from_secs(1))];
        let json = to_json(&samples);
        assert!(json.contains("\"seconds\": 1.0"));
    }

    #[test]
    fn bench_summary_parses_back_with_all_fields() {
        let entries = vec![BenchSummaryEntry {
            algorithm: "bfs".into(),
            n: 256,
            wall_seconds: 0.0125,
            phases: vec![("flush".into(), 900), ("kernel".into(), 400)],
            kernels: vec![("mxv/masked_push".into(), 7)],
        }];
        let json = bench_summary_json(&entries);
        let doc = pygb_jit::json::parse(&json).expect("summary JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("pygb-bench-summary/1")
        );
        let entry = &doc.get("entries").and_then(|v| v.as_array()).unwrap()[0];
        assert_eq!(entry.get("algorithm").and_then(|v| v.as_str()), Some("bfs"));
        assert_eq!(entry.get("n").and_then(|v| v.as_u64()), Some(256));
        assert_eq!(
            entry
                .get("phases_ns")
                .and_then(|p| p.get("flush"))
                .and_then(|v| v.as_u64()),
            Some(900)
        );
        assert_eq!(
            entry
                .get("kernels")
                .and_then(|p| p.get("mxv/masked_push"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
    }

    #[test]
    fn empty_bench_summary_is_valid_json() {
        let doc = pygb_jit::json::parse(&bench_summary_json(&[])).expect("parses");
        assert_eq!(
            doc.get("entries")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(0)
        );
    }
}
