//! Benchmark workloads: the paper's Erdős–Rényi family with
//! `|E| = O(|V|^1.5)`, prepared in both container layers.

use pygb::{DType, Matrix};
use pygb_io::{generators, EdgeList};

/// One benchmark input: the same graph in every representation the
/// three variants need.
pub struct Workload {
    /// Vertex count.
    pub n: usize,
    /// The raw directed edges.
    pub edges: EdgeList,
    /// Dynamic (`fp64`) container.
    pub pygb: Matrix,
    /// Static typed container.
    pub gbtl: gbtl::Matrix<f64>,
    /// Strictly-lower-triangular half of the symmetrized graph,
    /// dynamic (for triangle counting).
    pub lower_pygb: Matrix,
    /// Same, static.
    pub lower_gbtl: gbtl::Matrix<f64>,
    /// Symmetrized graph, dynamic (for PageRank: no in-degree-0
    /// vertices).
    pub sym_pygb: Matrix,
    /// Same, static.
    pub sym_gbtl: gbtl::Matrix<f64>,
}

impl Workload {
    /// Build the workload for `n` vertices (deterministic seed).
    pub fn erdos_renyi(n: usize, seed: u64) -> Workload {
        let edges = generators::erdos_renyi_power(n, seed);
        let sym = edges.clone().symmetrize();
        let lower = sym.lower_triangular().unweighted();
        Workload {
            n,
            pygb: edges.to_pygb(DType::Fp64),
            gbtl: edges.to_gbtl(),
            lower_pygb: lower.to_pygb(DType::Fp64),
            lower_gbtl: lower.to_gbtl(),
            sym_pygb: sym.to_pygb(DType::Fp64),
            sym_gbtl: sym.to_gbtl(),
            edges,
        }
    }
}

/// The |V| sweep of Fig. 10/11, scaled to laptop time budgets:
/// powers of two from 2^6 to 2^min(max_pow, 13).
pub fn size_sweep(max_pow: u32) -> Vec<usize> {
    (6..=max_pow.min(13)).map(|p| 1usize << p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_consistent() {
        let w = Workload::erdos_renyi(64, 1);
        assert_eq!(w.n, 64);
        assert_eq!(w.pygb.shape(), (64, 64));
        assert_eq!(w.gbtl.shape(), (64, 64));
        assert_eq!(w.pygb.nvals(), w.gbtl.nvals());
        assert_eq!(w.lower_pygb.nvals(), w.lower_gbtl.nvals());
        // Lower triangle is strictly lower.
        assert!(w.lower_gbtl.iter().all(|(i, j, _)| j < i));
    }

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(size_sweep(8), vec![64, 128, 256]);
        assert_eq!(size_sweep(20).last(), Some(&8192));
    }
}
