//! Fig. 10 runners: the four algorithms × four variants (the paper's
//! three plus the nonblocking op-DAG runtime), returning wall time per
//! run so both Criterion and the `figures` binary can drive them.

use std::time::{Duration, Instant};

use pygb::{DType, Vector};
use pygb_algorithms as algos;
use pygb_algorithms::Variant;

use crate::workloads::Workload;

/// The four benchmarked algorithms, in the paper's order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search (Fig. 2).
    Bfs,
    /// PageRank (Figs. 7/8).
    PageRank,
    /// Single-source shortest path (Fig. 4).
    Sssp,
    /// Triangle counting (Fig. 5).
    TriangleCount,
}

impl Algorithm {
    /// All four, in Fig. 10's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Bfs,
        Algorithm::PageRank,
        Algorithm::Sssp,
        Algorithm::TriangleCount,
    ];

    /// Label used in output tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Bfs => "bfs",
            Algorithm::PageRank => "pagerank",
            Algorithm::Sssp => "sssp",
            Algorithm::TriangleCount => "triangle_count",
        }
    }
}

fn pagerank_opts() -> algos::PageRankOptions {
    algos::PageRankOptions {
        // Bounded so the benchmark measures per-iteration cost, not
        // convergence luck on random graphs.
        max_iters: 50,
        ..Default::default()
    }
}

/// Run one `(algorithm, variant)` combination once and return its wall
/// time. Results are asserted consistent in the integration tests, not
/// here.
pub fn run_once(algo: Algorithm, variant: Variant, w: &Workload) -> Duration {
    let start = Instant::now();
    match (algo, variant) {
        (Algorithm::Bfs, Variant::DslLoops) => {
            algos::bfs_dsl_loops(&w.pygb, 0).expect("bfs");
        }
        (Algorithm::Bfs, Variant::Nonblocking) => {
            algos::bfs_nonblocking(&w.pygb, 0).expect("bfs");
        }
        (Algorithm::Bfs, Variant::DslFused) => {
            algos::bfs_dsl_fused(&w.pygb, 0).expect("bfs");
        }
        (Algorithm::Bfs, Variant::Native) => {
            algos::bfs_native(&w.gbtl, 0).expect("bfs");
        }
        (Algorithm::Sssp, Variant::DslLoops) => {
            let mut path = Vector::new(w.n, DType::Fp64);
            path.set(0, 0.0f64).expect("set");
            algos::sssp_dsl_loops(&w.pygb, &mut path).expect("sssp");
        }
        (Algorithm::Sssp, Variant::Nonblocking) => {
            let mut path = Vector::new(w.n, DType::Fp64);
            path.set(0, 0.0f64).expect("set");
            algos::sssp_nonblocking(&w.pygb, &mut path).expect("sssp");
        }
        (Algorithm::Sssp, Variant::DslFused) => {
            let mut path = Vector::new(w.n, DType::Fp64);
            path.set(0, 0.0f64).expect("set");
            algos::sssp_dsl_fused(&w.pygb, &mut path).expect("sssp");
        }
        (Algorithm::Sssp, Variant::Native) => {
            let mut path = gbtl::Vector::<f64>::new(w.n);
            path.set(0, 0.0).expect("set");
            algos::sssp_native(&w.gbtl, &mut path).expect("sssp");
        }
        (Algorithm::PageRank, Variant::DslLoops) => {
            algos::pagerank_dsl_loops(&w.sym_pygb, pagerank_opts()).expect("pagerank");
        }
        (Algorithm::PageRank, Variant::Nonblocking) => {
            algos::pagerank_nonblocking(&w.sym_pygb, pagerank_opts()).expect("pagerank");
        }
        (Algorithm::PageRank, Variant::DslFused) => {
            algos::pagerank_dsl_fused(&w.sym_pygb, pagerank_opts()).expect("pagerank");
        }
        (Algorithm::PageRank, Variant::Native) => {
            algos::pagerank_native(&w.sym_gbtl, pagerank_opts()).expect("pagerank");
        }
        (Algorithm::TriangleCount, Variant::DslLoops) => {
            algos::tricount_dsl_loops(&w.lower_pygb).expect("tricount");
        }
        (Algorithm::TriangleCount, Variant::Nonblocking) => {
            algos::tricount_nonblocking(&w.lower_pygb).expect("tricount");
        }
        (Algorithm::TriangleCount, Variant::DslFused) => {
            algos::tricount_dsl_fused(&w.lower_pygb).expect("tricount");
        }
        (Algorithm::TriangleCount, Variant::Native) => {
            algos::tricount_native(&w.lower_gbtl).expect("tricount");
        }
    }
    start.elapsed()
}

/// Median wall time over `reps` runs (first run warms the JIT cache and
/// is discarded, like the paper amortizing compiles over reuse).
pub fn run_median(algo: Algorithm, variant: Variant, w: &Workload, reps: usize) -> Duration {
    let _warmup = run_once(algo, variant, w);
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| run_once(algo, variant, w))
        .collect();
    times.sort();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_of_fig10_runs() {
        let w = Workload::erdos_renyi(64, 3);
        for algo in Algorithm::ALL {
            for variant in Variant::ALL {
                let dt = run_once(algo, variant, &w);
                assert!(dt.as_nanos() > 0, "{algo:?}/{variant:?}");
            }
        }
    }

    #[test]
    fn median_is_positive() {
        let w = Workload::erdos_renyi(64, 4);
        let dt = run_median(Algorithm::Bfs, Variant::Native, &w, 3);
        assert!(dt.as_nanos() > 0);
    }
}
