//! Shared benchmark harness for the PyGB reproduction: workload
//! construction, the three-variant algorithm runners of Fig. 10, the
//! container-lifecycle measurements of Fig. 11, and paper-style table
//! rendering (used by both the Criterion benches and the `figures`
//! binary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig10;
pub mod fig11;
pub mod report;
pub mod workloads;
