//! Fig. 11 runners: the container lifecycle — read a matrix from a
//! (virtual) file, construct it from an in-memory container, extract
//! the data back out — on both the interpreted ("Python") and native
//! ("C++") paths.

use std::time::{Duration, Instant};

use pygb::DType;
use pygb_io::interpreted::PyCoo;
use pygb_io::{generators, matrix_market, EdgeList};

/// The three lifecycle steps Fig. 11 plots.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Parse Matrix Market text into a container.
    ReadFile,
    /// Build a container from an in-memory list/vector.
    Construct,
    /// Pull all tuples back out.
    Extract,
}

impl Step {
    /// All steps in plot order.
    pub const ALL: [Step; 3] = [Step::ReadFile, Step::Construct, Step::Extract];

    /// Label used in output tables.
    pub fn label(self) -> &'static str {
        match self {
            Step::ReadFile => "read_file",
            Step::Construct => "construct",
            Step::Extract => "extract",
        }
    }
}

/// The two language sides of Fig. 11.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Boxed, per-element dynamic path (the Python side).
    Interpreted,
    /// Typed path (the C++ side).
    Native,
}

impl Side {
    /// Both sides.
    pub const ALL: [Side; 2] = [Side::Interpreted, Side::Native];

    /// Label used in output tables.
    pub fn label(self) -> &'static str {
        match self {
            Side::Interpreted => "interpreted",
            Side::Native => "native",
        }
    }
}

/// Pre-rendered input for one size point.
pub struct ContainerWorkload {
    /// The edges.
    pub edges: EdgeList,
    /// Matrix Market text (the "file on disk").
    pub mm_text: String,
    /// Boxed object lists (the Python-list intermediate), pre-built
    /// for the construct step.
    pub boxed: PyCoo,
    /// Typed triples for the native construct step.
    pub typed: Vec<(usize, usize, f64)>,
    /// Pre-built containers for the extract step.
    pub pygb: pygb::Matrix,
    /// Same, typed.
    pub gbtl: gbtl::Matrix<f64>,
}

impl ContainerWorkload {
    /// Build the workload for `n` vertices.
    pub fn new(n: usize, seed: u64) -> ContainerWorkload {
        let edges = generators::erdos_renyi_power(n, seed);
        let mm_text = matrix_market::to_string(&edges);
        let boxed = PyCoo::from_edges(n, &edges.edges);
        let typed = edges.edges.clone();
        let pygb = edges.to_pygb(DType::Fp64);
        let gbtl = edges.to_gbtl();
        ContainerWorkload {
            edges,
            mm_text,
            boxed,
            typed,
            pygb,
            gbtl,
        }
    }
}

/// Run one `(step, side)` cell once, returning wall time.
pub fn run_once(step: Step, side: Side, w: &ContainerWorkload) -> Duration {
    let start = Instant::now();
    match (step, side) {
        (Step::ReadFile, Side::Interpreted) => {
            let m =
                matrix_market::read_interpreted(w.mm_text.as_bytes(), DType::Fp64).expect("read");
            assert_eq!(m.nvals(), w.edges.nnz());
        }
        (Step::ReadFile, Side::Native) => {
            let m = matrix_market::read_native(w.mm_text.as_bytes()).expect("read");
            assert_eq!(m.nvals(), w.edges.nnz());
        }
        (Step::Construct, Side::Interpreted) => {
            let m = w.boxed.to_matrix(DType::Fp64).expect("construct");
            assert_eq!(m.nvals(), w.edges.nnz());
        }
        (Step::Construct, Side::Native) => {
            let m = gbtl::Matrix::from_triples(w.edges.n, w.edges.n, w.typed.iter().copied())
                .expect("construct");
            assert_eq!(m.nvals(), w.edges.nnz());
        }
        (Step::Extract, Side::Interpreted) => {
            let triples = w.pygb.extract_triples();
            assert_eq!(triples.len(), w.edges.nnz());
        }
        (Step::Extract, Side::Native) => {
            let triples = w.gbtl.extract_triples();
            assert_eq!(triples.len(), w.edges.nnz());
        }
    }
    start.elapsed()
}

/// Median over `reps` runs.
pub fn run_median(step: Step, side: Side, w: &ContainerWorkload, reps: usize) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| run_once(step, side, w)).collect();
    times.sort();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_of_fig11_runs() {
        let w = ContainerWorkload::new(64, 5);
        for step in Step::ALL {
            for side in Side::ALL {
                let dt = run_once(step, side, &w);
                assert!(dt.as_nanos() > 0, "{step:?}/{side:?}");
            }
        }
    }
}
