//! PageRank in the three Fig. 10 variants.
//!
//! The DSL form transcribes Fig. 7 operation for operation, including
//! its quirks: the per-iteration teleport fix-up through a complemented
//! mask (lines 37–39) and the early `return` on convergence that skips
//! that iteration's fix-up (lines 34–35).

use pygb::{
    apply, reduce, Accumulator, BinaryOp, DType, Matrix, Monoid, Semiring, UnaryOp, Vector,
};

use crate::fused::{self, PageRankArgs};
use crate::util::normalize_rows;

pub use gbtl::algorithms::PageRankOptions;

/// Native baseline (Fig. 8).
pub use gbtl::algorithms::page_rank as pagerank_native;

/// PageRank with the iteration loop in the host language, one dynamic
/// dispatch per operation (Fig. 7). Returns the rank vector and the
/// iteration count.
pub fn pagerank_dsl_loops(graph: &Matrix, opts: PageRankOptions) -> pygb::Result<(Vector, usize)> {
    let (rows, _cols) = graph.shape();
    let rows_f = rows as f64;

    // m = gb.Matrix(shape=graph.shape, dtype=float); m[None] = graph
    let mut m = Matrix::new(rows, rows, DType::Fp64);
    m.no_mask().assign(graph)?;
    // gb.utilities.normalize_rows(m)
    normalize_rows(&mut m)?;
    // with gb.UnaryOp("Times", damping_factor): m[None] = gb.apply(m)
    {
        let _u = UnaryOp::bound("Times", opts.damping_factor)?.enter();
        let snapshot = m.clone();
        m.no_mask().assign(apply(&snapshot))?;
    }

    // page_rank[:] = 1.0 / rows
    let mut page_rank = Vector::new(rows, DType::Fp64);
    page_rank.no_mask().slice(..).assign_scalar(1.0 / rows_f)?;
    let mut new_rank = Vector::new(rows, DType::Fp64);
    let mut delta = Vector::new(rows, DType::Fp64);
    let teleport = (1.0 - opts.damping_factor) / rows_f;

    for i in 0..opts.max_iters {
        // with gb.Accumulator("Second"), gb.Semiring(gb.PlusMonoid, "Times"):
        //     new_rank[None] += page_rank @ m
        {
            let _acc = Accumulator::new("Second")?.enter();
            let plus_monoid = Monoid::new("Plus", "Zero")?;
            let _sr = Semiring::new(plus_monoid, "Times")?.enter();
            let expr = page_rank.vxm(&m);
            new_rank.no_mask().accum_assign(expr)?;
        }
        // with gb.UnaryOp("Plus", (1-d)/rows): new_rank[None] = gb.apply(new_rank)
        {
            let _u = UnaryOp::bound("Plus", teleport)?.enter();
            let snapshot = new_rank.clone();
            new_rank.no_mask().assign(apply(&snapshot))?;
        }
        // with gb.BinaryOp("Minus"): delta[None] = page_rank + new_rank
        {
            let _b = BinaryOp::new("Minus")?.enter();
            delta.no_mask().assign(&page_rank + &new_rank)?;
        }
        // delta[None] = delta * delta  (default Times)
        {
            let snapshot = delta.clone();
            delta.no_mask().assign(&snapshot * &snapshot)?;
        }
        // squared_error = gb.reduce(delta)  (default PlusMonoid)
        let squared_error = reduce(&delta)?.as_f64();

        // page_rank[:] = new_rank
        page_rank.no_mask().slice(..).assign(&new_rank)?;
        if squared_error / rows_f < opts.threshold {
            return Ok((page_rank, i + 1));
        }

        // new_rank[:] = (1 - d) / rows
        new_rank.no_mask().slice(..).assign_scalar(teleport)?;
        // with gb.BinaryOp("Plus"):
        //     page_rank[~page_rank] = page_rank + new_rank
        {
            let _b = BinaryOp::new("Plus")?.enter();
            let snapshot = page_rank.clone();
            let expr = &snapshot + &new_rank;
            page_rank.masked_complement(&snapshot).assign(expr)?;
        }
    }
    Ok((page_rank, opts.max_iters))
}

/// Fig. 7 PageRank with Section V's deferred-chain compilation: the
/// per-iteration `new_rank[None] += page_rank @ m` and the following
/// teleport `apply` fuse into ONE module dispatch, cutting the
/// dispatch count per iteration — the paper's "chain of steps in an
/// algorithm ... compiled into a single module", demonstrated in situ.
/// Matches [`pagerank_dsl_loops`] whenever the product keeps a dense
/// pattern (every vertex has in-edges); the chained overwrite skips
/// Fig. 7's keep-old-entry corner for rank-less vertices, which the
/// per-iteration fix-up re-covers.
pub fn pagerank_dsl_chained(
    graph: &Matrix,
    opts: PageRankOptions,
) -> pygb::Result<(Vector, usize)> {
    let (rows, _cols) = graph.shape();
    let rows_f = rows as f64;
    let mut m = Matrix::new(rows, rows, DType::Fp64);
    m.no_mask().assign(graph)?;
    normalize_rows(&mut m)?;
    {
        let _u = UnaryOp::bound("Times", opts.damping_factor)?.enter();
        let snapshot = m.clone();
        m.no_mask().assign(pygb::apply(&snapshot))?;
    }

    let mut page_rank = Vector::new(rows, DType::Fp64);
    page_rank.no_mask().slice(..).assign_scalar(1.0 / rows_f)?;
    let mut new_rank = Vector::new(rows, DType::Fp64);
    let mut delta = Vector::new(rows, DType::Fp64);
    let teleport = (1.0 - opts.damping_factor) / rows_f;

    for i in 0..opts.max_iters {
        // Fused: new_rank = (page_rank @ m) + teleport, one dispatch.
        // (Fig. 7's Second-accumulated += then pattern-preserving apply
        // collapses to a plain overwrite because the apply consumes the
        // whole product.)
        {
            let plus_monoid = Monoid::new("Plus", "Zero")?;
            let _sr = Semiring::new(plus_monoid, "Times")?.enter();
            let _u = UnaryOp::bound("Plus", teleport)?.enter();
            let expr = page_rank.vxm(&m).then_apply()?;
            new_rank.no_mask().assign(expr)?;
        }
        {
            let _b = BinaryOp::new("Minus")?.enter();
            delta.no_mask().assign(&page_rank + &new_rank)?;
        }
        {
            let snapshot = delta.clone();
            delta.no_mask().assign(&snapshot * &snapshot)?;
        }
        let squared_error = reduce(&delta)?.as_f64();
        page_rank.no_mask().slice(..).assign(&new_rank)?;
        if squared_error / rows_f < opts.threshold {
            return Ok((page_rank, i + 1));
        }
        new_rank.no_mask().slice(..).assign_scalar(teleport)?;
        {
            let _b = BinaryOp::new("Plus")?.enter();
            let snapshot = page_rank.clone();
            let expr = &snapshot + &new_rank;
            page_rank.masked_complement(&snapshot).assign(expr)?;
        }
    }
    Ok((page_rank, opts.max_iters))
}

/// PageRank as a single fused-kernel dispatch (runs the Fig. 8 GBTL
/// algorithm in one module call). Returns the rank (`fp64`) and the
/// iteration count.
pub fn pagerank_dsl_fused(graph: &Matrix, opts: PageRankOptions) -> pygb::Result<(Vector, usize)> {
    let mut args = PageRankArgs {
        graph: graph.clone(),
        opts,
        rank: None,
        iters: 0,
    };
    fused::dispatch("algo_pagerank", graph.dtype(), &mut args)?;
    Ok((args.rank.expect("kernel sets the rank"), args.iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Matrix {
        Matrix::from_triples(n, n, (0..n).map(|i| (i, (i + 1) % n, 1.0f64))).unwrap()
    }

    #[test]
    fn chained_matches_loops_on_dense_product_graphs() {
        // Bidirectional cycle: every vertex has in-edges, so the
        // product stays dense and the fused chain is exactly Fig. 7.
        let n = 6;
        let edges = (0..n).flat_map(|i| [(i, (i + 1) % n, 1.0f64), ((i + 1) % n, i, 1.0)]);
        let g = Matrix::from_triples(n, n, edges).unwrap();
        let opts = PageRankOptions {
            threshold: 1e-14,
            max_iters: 5_000,
            ..Default::default()
        };
        let (a, _) = pagerank_dsl_loops(&g, opts).unwrap();
        let (b, _) = pagerank_dsl_chained(&g, opts).unwrap();
        for i in 0..n {
            let (x, y) = (a.get(i).unwrap().as_f64(), b.get(i).unwrap().as_f64());
            assert!((x - y).abs() < 1e-10, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn chained_uses_fewer_dispatches_per_iteration() {
        let g = cycle(8);
        let opts = PageRankOptions {
            threshold: 0.0,
            max_iters: 20,
            ..Default::default()
        };
        // Warm the JIT so only steady-state dispatches are counted.
        pagerank_dsl_loops(&g, opts).unwrap();
        pagerank_dsl_chained(&g, opts).unwrap();

        let before = pygb::runtime().cache().stats().snapshot();
        pagerank_dsl_loops(&g, opts).unwrap();
        let mid = pygb::runtime().cache().stats().snapshot();
        pagerank_dsl_chained(&g, opts).unwrap();
        let after = pygb::runtime().cache().stats().snapshot();

        let loops_dispatches = mid.total_dispatches() - before.total_dispatches();
        let chained_dispatches = after.total_dispatches() - mid.total_dispatches();
        // The fused chain saves exactly one dispatch per iteration.
        assert_eq!(loops_dispatches - chained_dispatches, 20);
    }

    #[test]
    fn cycle_rank_is_uniform() {
        let n = 8;
        let (pr, iters) = pagerank_dsl_loops(&cycle(n), PageRankOptions::default()).unwrap();
        assert!(iters < 100);
        for i in 0..n {
            assert!(
                (pr.get(i).unwrap().as_f64() - 1.0 / n as f64).abs() < 1e-5,
                "vertex {i}"
            );
        }
    }

    #[test]
    fn dsl_matches_fused_on_dense_rank_graphs() {
        // On graphs where every vertex keeps a rank entry, the Fig. 7
        // and Fig. 8 formulations converge to the same fixed point.
        let g = cycle(6);
        let (a, _) = pagerank_dsl_loops(&g, PageRankOptions::default()).unwrap();
        let (b, _) = pagerank_dsl_fused(&g, PageRankOptions::default()).unwrap();
        for i in 0..6 {
            let (x, y) = (a.get(i).unwrap().as_f64(), b.get(i).unwrap().as_f64());
            assert!((x - y).abs() < 1e-4, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn fused_matches_native_exactly() {
        let g = cycle(5);
        let (fused_pr, fused_iters) = pagerank_dsl_fused(&g, PageRankOptions::default()).unwrap();
        let ng: gbtl::Matrix<f64> = g.to_typed().unwrap();
        let (native_pr, native_iters) = pagerank_native(&ng, PageRankOptions::default()).unwrap();
        assert_eq!(fused_iters, native_iters);
        for (i, v) in native_pr.iter() {
            assert_eq!(fused_pr.get(i).unwrap().as_f64(), v);
        }
    }

    #[test]
    fn respects_max_iters() {
        let opts = PageRankOptions {
            max_iters: 3,
            threshold: 0.0,
            ..Default::default()
        };
        let (_, iters) = pagerank_dsl_loops(&cycle(4), opts).unwrap();
        assert_eq!(iters, 3);
    }

    #[test]
    fn hub_dominates() {
        // Bidirectional star: vertex 0 should out-rank the leaves.
        let mut edges = Vec::new();
        for i in 1..5usize {
            edges.push((i, 0, 1.0f64));
            edges.push((0, i, 1.0));
        }
        let g = Matrix::from_triples(5, 5, edges).unwrap();
        let (pr, _) = pagerank_dsl_loops(&g, PageRankOptions::default()).unwrap();
        let hub = pr.get(0).unwrap().as_f64();
        for i in 1..5 {
            assert!(hub > pr.get(i).unwrap().as_f64());
        }
    }
}
