//! Connected components in the three variants — a fifth algorithm
//! beyond the paper's four, written as a downstream user would: the DSL
//! form only touches the public PyGB API.

use pygb::{Accumulator, Matrix, MinSelect2ndSemiring, Vector};

use crate::fused::{self, CcArgs};

/// Native baseline.
pub use gbtl::algorithms::{component_count, connected_components as cc_native};

/// Min-label propagation through per-op DSL dispatch. Returns the
/// label vector (`uint64`, 1-based smallest reachable id) and the
/// number of rounds.
pub fn cc_dsl_loops(graph: &Matrix) -> pygb::Result<(Vector, usize)> {
    let n = graph.nrows();
    let mut labels = Vector::from_pairs(n, (0..n).map(|i| (i, i as u64 + 1)))?;
    let mut rounds = 0;
    loop {
        rounds += 1;
        // with gb.MinSelect2ndSemiring, gb.Accumulator("Min"):
        let _sr = MinSelect2ndSemiring.enter();
        let _acc = Accumulator::new("Min")?.enter();
        let mut next = labels.clone();
        // next[None] += graph @ labels
        next.no_mask().accum_assign(graph.mxv(&labels))?;
        // next[None] += graph.T @ next
        let snapshot = next.clone();
        next.no_mask().accum_assign(graph.t().mxv(&snapshot))?;
        if next == labels || rounds > n {
            return Ok((labels, rounds));
        }
        labels = next;
    }
}

/// Connected components as one fused-kernel dispatch.
pub fn cc_dsl_fused(graph: &Matrix) -> pygb::Result<(Vector, usize)> {
    let mut args = CcArgs {
        graph: graph.clone(),
        labels: None,
        rounds: 0,
    };
    fused::dispatch("algo_cc", graph.dtype(), &mut args)?;
    Ok((args.labels.expect("kernel sets labels"), args.rounds))
}

/// Count distinct components in a DSL label vector.
pub fn count_components(labels: &Vector) -> usize {
    let mut ids: Vec<i64> = labels
        .extract_pairs()
        .into_iter()
        .map(|(_, v)| v.as_i64())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    /// Union-find oracle over the raw edges.
    fn oracle_components(n: usize, edges: &[(usize, usize)]) -> usize {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut roots: Vec<usize> = (0..n).map(|v| find(&mut parent, v)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    fn er_graph(n: usize, m: usize, seed: u64) -> (Matrix, Vec<(usize, usize)>) {
        let edges = pygb_io::generators::erdos_renyi(n, m, seed);
        let pairs: Vec<(usize, usize)> = edges.edges.iter().map(|&(s, d, _)| (s, d)).collect();
        (edges.to_pygb(DType::Fp64), pairs)
    }

    #[test]
    fn all_variants_agree_and_match_union_find() {
        for (n, m, seed) in [(24usize, 12usize, 1u64), (48, 40, 2), (64, 20, 3)] {
            let (g, pairs) = er_graph(n, m, seed);
            let (loops, _) = cc_dsl_loops(&g).unwrap();
            let (fused, _) = cc_dsl_fused(&g).unwrap();
            assert_eq!(loops.extract_pairs(), fused.extract_pairs(), "n={n}");

            let ng: gbtl::Matrix<f64> = g.to_typed().unwrap();
            let (native, _) = cc_native(&ng).unwrap();
            let native_pairs: Vec<(usize, u64)> = native.iter().collect();
            let loop_pairs: Vec<(usize, u64)> = loops
                .extract_pairs()
                .into_iter()
                .map(|(i, v)| (i, v.as_i64() as u64))
                .collect();
            assert_eq!(loop_pairs, native_pairs, "n={n}");

            assert_eq!(
                count_components(&loops),
                oracle_components(n, &pairs),
                "n={n} seed={seed}"
            );
        }
    }

    #[test]
    fn labels_are_canonical_minimums() {
        // In each component the label equals the smallest member id + 1.
        let (g, pairs) = er_graph(32, 20, 9);
        let (labels, _) = cc_dsl_loops(&g).unwrap();
        // Build components from the oracle and check min ids.
        let mut parent: Vec<usize> = (0..32).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for &(a, b) in &pairs {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut min_of_root = std::collections::HashMap::new();
        for v in 0..32 {
            let r = find(&mut parent, v);
            let e = min_of_root.entry(r).or_insert(v);
            *e = (*e).min(v);
        }
        for v in 0..32usize {
            let r = find(&mut parent, v);
            let expect = min_of_root[&r] as i64 + 1;
            assert_eq!(labels.get(v).unwrap().as_i64(), expect, "vertex {v}");
        }
    }
}
