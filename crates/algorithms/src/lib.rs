//! # pygb-algorithms — the paper's four benchmark algorithms in three
//! variants each
//!
//! Section VI evaluates BFS, SSSP, PageRank, and triangle counting in
//! three forms:
//!
//! 1. **`*_dsl_loops`** — "Python calls C++ operations that were
//!    compiled separately, using individual bindings and Python loops":
//!    the outer loop runs in the host language and *every* GraphBLAS
//!    operation goes through the dynamic DSL → JIT dispatch pipeline.
//! 2. **`*_dsl_fused`** — "Python calls a complete C++ algorithm where
//!    the data between GBTL calls is handled by C++": one dynamic
//!    dispatch per algorithm call, to a whole-algorithm kernel.
//! 3. **`*_native`** — "GBTL C++ native code": direct statically-typed
//!    calls (re-exported from [`gbtl::algorithms`]).
//!
//! All three variants of an algorithm produce identical results (see
//! the crate tests and `tests/algorithms_equiv.rs`); Fig. 10 measures
//! the abstraction penalty between them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc;
mod fused;
pub mod incremental;
pub mod nonblocking;
pub mod pagerank;
pub mod sssp;
pub mod triangle;
pub mod util;

pub use bfs::{bfs_dsl_fused, bfs_dsl_loops, bfs_native};
pub use cc::{cc_dsl_fused, cc_dsl_loops, cc_native, count_components};
pub use incremental::{bfs_incremental, pagerank_incremental};
pub use nonblocking::{
    bfs_nonblocking, pagerank_nonblocking, pagerank_nonblocking_from, sssp_nonblocking,
    tricount_nonblocking,
};
pub use pagerank::{
    pagerank_dsl_chained, pagerank_dsl_fused, pagerank_dsl_loops, pagerank_native, PageRankOptions,
};
pub use sssp::{sssp_dsl_fused, sssp_dsl_loops, sssp_native};
pub use triangle::{tricount_dsl_fused, tricount_dsl_loops, tricount_native, tril};

/// The execution strategies of the Fig. 10 experiment, plus the
/// nonblocking op-DAG runtime as a fourth series.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Outer loop in the host language, one dynamic dispatch per op.
    DslLoops,
    /// Per-op dispatch deferred into the nonblocking op-DAG with
    /// automatic fusion (`pygb-runtime`).
    Nonblocking,
    /// One dynamic dispatch to a whole-algorithm kernel.
    DslFused,
    /// Direct statically-typed calls.
    Native,
}

impl Variant {
    /// All variants, in the order Fig. 10 plots them.
    pub const ALL: [Variant; 4] = [
        Variant::DslLoops,
        Variant::Nonblocking,
        Variant::DslFused,
        Variant::Native,
    ];

    /// The label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::DslLoops => "pygb-loops",
            Variant::Nonblocking => "pygb-nonblocking",
            Variant::DslFused => "pygb-fused",
            Variant::Native => "native",
        }
    }
}
