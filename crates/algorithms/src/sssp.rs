//! SSSP in the three Fig. 10 variants.
//!
//! The DSL form is Fig. 4a verbatim:
//!
//! ```python
//! def sssp(graph, path):
//!     with gb.MinPlusSemiring, gb.Accumulator("Min"):
//!         for i in range(graph.shape[0]):
//!             path[None] += graph.T @ path
//! ```

use pygb::{Accumulator, Matrix, MinPlusSemiring, Vector};

use crate::fused::{self, SsspArgs};

/// Native baseline (Fig. 4b).
pub use gbtl::algorithms::sssp as sssp_native;

/// SSSP with the relaxation loop in the host language; `path` holds the
/// tentative distances (`path[source] = 0`) and is updated in place.
pub fn sssp_dsl_loops(graph: &Matrix, path: &mut Vector) -> pygb::Result<()> {
    // with gb.MinPlusSemiring, gb.Accumulator("Min"):
    let _sr = MinPlusSemiring.enter();
    let _acc = Accumulator::new("Min")?.enter();
    for _ in 0..graph.nrows() {
        // path[None] += graph.T @ path
        let snapshot = path.clone();
        let expr = graph.t().mxv(&snapshot);
        path.no_mask().accum_assign(expr)?;
    }
    Ok(())
}

/// SSSP as a single fused-kernel dispatch. The path vector must share
/// the graph's dtype (the fused GBTL algorithm is a single template
/// instantiation).
pub fn sssp_dsl_fused(graph: &Matrix, path: &mut Vector) -> pygb::Result<()> {
    let typed_path = if path.dtype() == graph.dtype() {
        path.clone()
    } else {
        path.cast(graph.dtype())
    };
    let mut args = SsspArgs {
        graph: graph.clone(),
        path: Some(typed_path),
    };
    fused::dispatch("algo_sssp", graph.dtype(), &mut args)?;
    *path = args.path.expect("kernel returns the path");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    fn weighted_graph() -> Matrix {
        Matrix::from_triples(
            4,
            4,
            [
                (0usize, 1usize, 2.0f64),
                (1, 2, 3.0),
                (0, 2, 10.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap()
    }

    fn source_path(n: usize, src: usize) -> Vector {
        let mut p = Vector::new(n, DType::Fp64);
        p.set(src, 0.0f64).unwrap();
        p
    }

    #[test]
    fn dsl_loops_shortest_paths() {
        let g = weighted_graph();
        let mut path = source_path(4, 0);
        sssp_dsl_loops(&g, &mut path).unwrap();
        assert_eq!(path.get(1).unwrap().as_f64(), 2.0);
        assert_eq!(path.get(2).unwrap().as_f64(), 5.0);
        assert_eq!(path.get(3).unwrap().as_f64(), 6.0);
    }

    #[test]
    fn all_three_variants_agree() {
        let g = weighted_graph();

        let mut loops = source_path(4, 0);
        sssp_dsl_loops(&g, &mut loops).unwrap();

        let mut fusion = source_path(4, 0);
        sssp_dsl_fused(&g, &mut fusion).unwrap();
        assert_eq!(loops.extract_pairs(), fusion.extract_pairs());

        let ng: gbtl::Matrix<f64> = g.to_typed().unwrap();
        let mut native = gbtl::Vector::<f64>::new(4);
        native.set(0, 0.0).unwrap();
        sssp_native(&ng, &mut native).unwrap();
        for (i, v) in native.iter() {
            assert_eq!(loops.get(i).unwrap().as_f64(), v);
        }
        assert_eq!(loops.nvals(), native.nvals());
    }

    #[test]
    fn unreachable_vertices_stay_unstored() {
        let g = weighted_graph();
        let mut path = source_path(4, 3);
        sssp_dsl_loops(&g, &mut path).unwrap();
        assert_eq!(path.nvals(), 1);
    }
}
