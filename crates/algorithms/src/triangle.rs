//! Triangle counting in the three Fig. 10 variants.
//!
//! The DSL form is Fig. 5a verbatim:
//!
//! ```python
//! def triangle_count(L):
//!     B = gb.Matrix(shape=L.shape, dtype=L.dtype)
//!     with gb.ArithmeticSemiring:
//!         B[L] = L @ L.T
//!     triangles = gb.reduce(B)
//!     return triangles
//! ```

use pygb::{reduce, ArithmeticSemiring, DynScalar, Matrix};

use crate::fused::{self, TriArgs};

/// Native baseline (Fig. 5b).
pub use gbtl::algorithms::triangle_count as tricount_native;
/// Strictly-lower-triangular extraction helper (shared with callers).
pub use gbtl::algorithms::tril;

/// Triangle counting through per-op DSL dispatch. `l` must be the
/// strictly-lower-triangular half of the undirected adjacency matrix.
pub fn tricount_dsl_loops(l: &Matrix) -> pygb::Result<DynScalar> {
    // B = gb.Matrix(shape=L.shape, dtype=L.dtype)
    let (r, c) = l.shape();
    let mut b = Matrix::new(r, c, l.dtype());
    {
        // with gb.ArithmeticSemiring: B[L] = L @ L.T
        let _sr = ArithmeticSemiring.enter();
        let expr = l.matmul(l.t());
        b.masked(l).assign(expr)?;
    }
    // triangles = gb.reduce(B)   (PlusMonoid by default)
    reduce(&b)
}

/// Triangle counting as a single fused-kernel dispatch.
pub fn tricount_dsl_fused(l: &Matrix) -> pygb::Result<DynScalar> {
    let mut args = TriArgs {
        l: l.clone(),
        count: None,
    };
    fused::dispatch("algo_tricount", l.dtype(), &mut args)?;
    Ok(args.count.expect("kernel sets the count"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    /// Lower-triangular K4 (4 triangles) as a PyGB matrix.
    fn l_k4(dtype: DType) -> Matrix {
        let mut triples = Vec::new();
        for i in 0..4usize {
            for j in 0..i {
                triples.push((i, j, 1.0f64));
            }
        }
        Matrix::from_triples(4, 4, triples).unwrap().cast(dtype)
    }

    #[test]
    fn k4_counts_four() {
        let l = l_k4(DType::Int64);
        assert_eq!(tricount_dsl_loops(&l).unwrap().as_i64(), 4);
        assert_eq!(tricount_dsl_fused(&l).unwrap().as_i64(), 4);
    }

    #[test]
    fn all_three_variants_agree() {
        let l = l_k4(DType::Fp64);
        let loops = tricount_dsl_loops(&l).unwrap().as_f64();
        let fusion = tricount_dsl_fused(&l).unwrap().as_f64();
        let native: f64 = tricount_native(&l.to_typed::<f64>().unwrap()).unwrap();
        assert_eq!(loops, fusion);
        assert_eq!(loops, native);
    }

    #[test]
    fn triangle_free() {
        // A 4-cycle: no triangles.
        let edges = [(1usize, 0usize), (2, 1), (3, 2), (3, 0)];
        let l = Matrix::from_triples(4, 4, edges.iter().map(|&(i, j)| (i, j, 1i64))).unwrap();
        assert_eq!(tricount_dsl_loops(&l).unwrap().as_i64(), 0);
        assert_eq!(tricount_dsl_fused(&l).unwrap().as_i64(), 0);
    }

    #[test]
    fn dtype_of_count_matches_container() {
        let l = l_k4(DType::Int32);
        let c = tricount_dsl_loops(&l).unwrap();
        assert_eq!(c.dtype(), DType::Int32);
    }
}
