//! DSL-visible utilities — `gb.utilities.normalize_rows` (used by
//! Fig. 7's PageRank). Like PyGB's utilities, the implementation is a
//! native kernel reached through one dynamic dispatch.

use pygb::Matrix;

use crate::fused::{self, NormalizeArgs};

/// Divide every stored element by its row sum
/// (`gb.utilities.normalize_rows(m)`).
pub fn normalize_rows(m: &mut Matrix) -> pygb::Result<()> {
    let mut args = NormalizeArgs { m: Some(m.clone()) };
    fused::dispatch("util_normalize_rows", m.dtype(), &mut args)?;
    *m = args.m.expect("kernel returns the matrix");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_become_stochastic() {
        let mut m = Matrix::from_triples(
            2,
            3,
            [
                (0usize, 0usize, 1.0f64),
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 0, 5.0),
            ],
        )
        .unwrap();
        normalize_rows(&mut m).unwrap();
        assert!((m.get(0, 2).unwrap().as_f64() - 0.5).abs() < 1e-12);
        assert_eq!(m.get(1, 0).unwrap().as_f64(), 1.0);
    }

    #[test]
    fn empty_matrix_ok() {
        let mut m = Matrix::new(3, 3, pygb::DType::Fp64);
        normalize_rows(&mut m).unwrap();
        assert_eq!(m.nvals(), 0);
    }
}
