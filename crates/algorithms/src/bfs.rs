//! BFS in the three Fig. 10 variants.
//!
//! The DSL form is Fig. 2b verbatim:
//!
//! ```python
//! def bfs(graph, frontier, levels):
//!     depth = 0
//!     while frontier.nvals > 0:
//!         depth += 1
//!         levels[front][:] = depth
//!         with gb.LogicalSemiring, gb.Replace:
//!             frontier[~levels] = graph.T @ frontier
//! ```

use pygb::{DType, LogicalSemiring, Matrix, Replace, Vector};

use crate::fused::{self, BfsArgs};

/// Native baseline (Fig. 2c): direct statically-typed GBTL calls.
pub use gbtl::algorithms::bfs_level as bfs_native;

/// BFS with the outer loop in the host language and one dynamic
/// dispatch per GraphBLAS operation. Returns the levels vector
/// (`uint64`, source at level 1).
pub fn bfs_dsl_loops(graph: &Matrix, source: usize) -> pygb::Result<Vector> {
    let n = graph.nrows();
    let mut frontier = Vector::new(n, DType::Bool);
    frontier.set(source, true)?;
    let mut levels = Vector::new(n, DType::UInt64);
    let mut depth = 0u64;
    while frontier.nvals() > 0 {
        depth += 1;
        // levels[front][:] = depth
        levels.masked(&frontier).assign_scalar(depth)?;
        // with gb.LogicalSemiring, gb.Replace:
        //     frontier[~levels] = graph.T @ frontier
        let _sr = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let expr = graph.t().mxv(&frontier);
        frontier.masked_complement(&levels).assign(expr)?;
    }
    Ok(levels)
}

/// BFS as a single fused-kernel dispatch.
pub fn bfs_dsl_fused(graph: &Matrix, source: usize) -> pygb::Result<Vector> {
    let mut args = BfsArgs {
        graph: graph.clone(),
        source,
        levels: None,
    };
    fused::dispatch("algo_bfs", graph.dtype(), &mut args)?;
    Ok(args.levels.expect("kernel sets levels on success"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_graph() -> Matrix {
        let edges: Vec<(usize, usize, f64)> = vec![
            (0, 1, 1.0),
            (0, 3, 1.0),
            (1, 4, 1.0),
            (1, 6, 1.0),
            (2, 5, 1.0),
            (3, 0, 1.0),
            (3, 2, 1.0),
            (4, 5, 1.0),
            (5, 2, 1.0),
            (6, 2, 1.0),
            (6, 3, 1.0),
            (6, 4, 1.0),
        ];
        Matrix::from_triples(7, 7, edges).unwrap()
    }

    fn levels_as_u64(v: &Vector) -> Vec<(usize, u64)> {
        v.extract_pairs()
            .into_iter()
            .map(|(i, x)| (i, x.as_i64() as u64))
            .collect()
    }

    #[test]
    fn dsl_loops_matches_fig1() {
        let levels = bfs_dsl_loops(&fig1_graph(), 3).unwrap();
        assert_eq!(levels.get(3).unwrap().as_i64(), 1);
        assert_eq!(levels.get(0).unwrap().as_i64(), 2);
        assert_eq!(levels.get(2).unwrap().as_i64(), 2);
        assert_eq!(levels.get(6).unwrap().as_i64(), 4);
    }

    #[test]
    fn all_three_variants_agree() {
        let g = fig1_graph();
        let loops = bfs_dsl_loops(&g, 3).unwrap();
        let fusion = bfs_dsl_fused(&g, 3).unwrap();
        assert_eq!(levels_as_u64(&loops), levels_as_u64(&fusion));

        let native_g: gbtl::Matrix<f64> = g.to_typed().unwrap();
        let native = bfs_native(&native_g, 3).unwrap();
        let native_pairs: Vec<(usize, u64)> = native.iter().collect();
        assert_eq!(levels_as_u64(&loops), native_pairs);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = Matrix::from_triples(4, 4, [(0usize, 1usize, 1.0f64)]).unwrap();
        let levels = bfs_dsl_loops(&g, 0).unwrap();
        assert_eq!(levels.nvals(), 2);
        let fusion = bfs_dsl_fused(&g, 0).unwrap();
        assert_eq!(fusion.nvals(), 2);
    }

    #[test]
    fn works_on_integer_graphs() {
        let g = fig1_graph().cast(DType::Int32);
        let loops = bfs_dsl_loops(&g, 3).unwrap();
        let fusion = bfs_dsl_fused(&g, 3).unwrap();
        assert_eq!(levels_as_u64(&loops), levels_as_u64(&fusion));
    }
}
