//! Whole-algorithm fused kernels — the "complete C++ algorithm" variant.
//!
//! Each algorithm registers one JIT factory (`algo_bfs`, `algo_sssp`,
//! `algo_pagerank`, `algo_tricount`, plus the `util_normalize_rows`
//! utility Fig. 7 calls). The key carries only the graph dtype — like
//! compiling the templated algorithm of Fig. 2c once per instantiated
//! type — and the whole computation runs inside a single dispatch, so
//! the dynamic layer is paid exactly once per call.

use std::any::Any;
use std::sync::OnceLock;

use gbtl::algorithms as native;
use pygb::{DType, DynScalar, Element, Matrix, Vector};
use pygb_jit::kernel::FnKernel;
use pygb_jit::{JitError, Kernel, ModuleKey, PipelineTrace};

pub use gbtl::algorithms::PageRankOptions;

/// Arguments for `algo_bfs`.
pub(crate) struct BfsArgs {
    pub graph: Matrix,
    pub source: usize,
    pub levels: Option<Vector>,
}

/// Arguments for `algo_sssp` (path is in-out).
pub(crate) struct SsspArgs {
    pub graph: Matrix,
    pub path: Option<Vector>,
}

/// Arguments for `algo_pagerank`.
pub(crate) struct PageRankArgs {
    pub graph: Matrix,
    pub opts: PageRankOptions,
    pub rank: Option<Vector>,
    pub iters: usize,
}

/// Arguments for `algo_tricount`.
pub(crate) struct TriArgs {
    pub l: Matrix,
    pub count: Option<DynScalar>,
}

/// Arguments for `util_normalize_rows` (in-out matrix).
pub(crate) struct NormalizeArgs {
    pub m: Option<Matrix>,
}

/// Arguments for `algo_cc`.
pub(crate) struct CcArgs {
    pub graph: Matrix,
    pub labels: Option<Vector>,
    pub rounds: usize,
}

fn op_err(e: impl std::fmt::Display) -> JitError {
    JitError::op(e)
}

fn graph_ref<'a, T: Element>(m: &'a Matrix, what: &str) -> Result<&'a gbtl::Matrix<T>, JitError> {
    T::unwrap_matrix(m.store()).ok_or_else(|| {
        JitError::bad_key(format!(
            "`{what}` has dtype {} but kernel was instantiated for {}",
            m.dtype(),
            T::DTYPE
        ))
    })
}

fn k_bfs<T: Element>(args: &mut BfsArgs) -> Result<(), JitError> {
    let g = graph_ref::<T>(&args.graph, "graph")?;
    let levels = native::bfs_level(g, args.source).map_err(op_err)?;
    args.levels = Some(Vector::from_typed(levels));
    Ok(())
}

fn k_sssp<T: Element>(args: &mut SsspArgs) -> Result<(), JitError> {
    let g = graph_ref::<T>(&args.graph, "graph")?;
    let path_in = args
        .path
        .take()
        .ok_or_else(|| JitError::bad_key("sssp kernel needs a path vector"))?;
    let mut path: gbtl::Vector<T> = path_in
        .to_typed()
        .ok_or_else(|| JitError::bad_key("path dtype must match graph dtype"))?;
    native::sssp(g, &mut path).map_err(op_err)?;
    args.path = Some(Vector::from_typed(path));
    Ok(())
}

fn k_pagerank<T: Element>(args: &mut PageRankArgs) -> Result<(), JitError> {
    let g = graph_ref::<T>(&args.graph, "graph")?;
    let (rank, iters) = native::page_rank(g, args.opts).map_err(op_err)?;
    args.rank = Some(Vector::from_typed(rank));
    args.iters = iters;
    Ok(())
}

fn k_tricount<T: Element>(args: &mut TriArgs) -> Result<(), JitError> {
    let l = graph_ref::<T>(&args.l, "L")?;
    let count: T = native::triangle_count(l).map_err(op_err)?;
    args.count = Some(count.to_dyn());
    Ok(())
}

fn k_cc<T: Element>(args: &mut CcArgs) -> Result<(), JitError> {
    let g = graph_ref::<T>(&args.graph, "graph")?;
    let (labels, rounds) = native::connected_components(g).map_err(op_err)?;
    args.labels = Some(Vector::from_typed(labels));
    args.rounds = rounds;
    Ok(())
}

fn k_normalize<T: Element>(args: &mut NormalizeArgs) -> Result<(), JitError> {
    let m_in = args
        .m
        .take()
        .ok_or_else(|| JitError::bad_key("normalize kernel needs a matrix"))?;
    let mut m: gbtl::Matrix<T> = m_in
        .to_typed()
        .ok_or_else(|| JitError::bad_key("matrix dtype mismatch"))?;
    native::normalize_rows(&mut m);
    args.m = Some(Matrix::from_typed(m));
    Ok(())
}

macro_rules! algo_factory {
    ($fname:literal, $argty:ty, $body:ident) => {{
        fn factory(key: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
            let ct = DType::from_name(key.require("c_type")?)
                .map_err(|e| JitError::bad_key(e.to_string()))?;
            let desc = format!("{}<{}> [{}]", $fname, ct, key.module_name());
            Ok(match ct {
                DType::Bool => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<bool>(a)
                })) as Box<dyn Kernel>,
                DType::Int8 => {
                    Box::new(FnKernel::new($fname, desc, |a: &mut $argty| $body::<i8>(a)))
                }
                DType::Int16 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i16>(a)
                })),
                DType::Int32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i32>(a)
                })),
                DType::Int64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i64>(a)
                })),
                DType::UInt8 => {
                    Box::new(FnKernel::new($fname, desc, |a: &mut $argty| $body::<u8>(a)))
                }
                DType::UInt16 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u16>(a)
                })),
                DType::UInt32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u32>(a)
                })),
                DType::UInt64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u64>(a)
                })),
                DType::Fp32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<f32>(a)
                })),
                DType::Fp64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<f64>(a)
                })),
            })
        }
        factory
    }};
}

/// Register the fused-algorithm factories with the global PyGB runtime
/// (idempotent).
pub fn ensure_registered() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let rt = pygb::runtime();
        rt.register("algo_bfs", algo_factory!("algo_bfs", BfsArgs, k_bfs));
        rt.register("algo_sssp", algo_factory!("algo_sssp", SsspArgs, k_sssp));
        rt.register(
            "algo_pagerank",
            algo_factory!("algo_pagerank", PageRankArgs, k_pagerank),
        );
        rt.register(
            "algo_tricount",
            algo_factory!("algo_tricount", TriArgs, k_tricount),
        );
        rt.register("algo_cc", algo_factory!("algo_cc", CcArgs, k_cc));
        rt.register(
            "util_normalize_rows",
            algo_factory!("util_normalize_rows", NormalizeArgs, k_normalize),
        );
    });
}

/// Dispatch a fused kernel through the JIT pipeline: one module key per
/// (algorithm × graph dtype).
pub(crate) fn dispatch(func: &str, dtype: DType, args: &mut dyn Any) -> pygb::Result<()> {
    ensure_registered();
    let key = ModuleKey::new(func).with("c_type", dtype.name());
    pygb::runtime()
        .dispatch(&key, args, PipelineTrace::new(key.canonical()))
        .map_err(pygb::PygbError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        ensure_registered();
        ensure_registered();
        // Registered factories are resolvable.
        let key = ModuleKey::new("algo_bfs").with("c_type", "fp64");
        assert!(pygb::runtime().registry().instantiate(&key).is_ok());
    }

    #[test]
    fn unknown_dtype_rejected() {
        ensure_registered();
        let key = ModuleKey::new("algo_bfs").with("c_type", "decimal");
        assert!(pygb::runtime().registry().instantiate(&key).is_err());
    }
}
