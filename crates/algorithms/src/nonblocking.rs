//! The four benchmark algorithms under GraphBLAS *nonblocking* mode —
//! the fourth Fig. 10 series.
//!
//! Each `*_nonblocking` function is the `*_dsl_loops` transcription run
//! inside a [`pygb_runtime::nonblocking`] scope: assignments defer into
//! the per-thread operation DAG, the fusion pass collapses
//! producer/consumer pairs into composite kernels, and reads (loop
//! conditions, convergence reductions, final results) flush. Results
//! are identical to the corresponding blocking variant on the same
//! formulation — nonblocking changes *when* and *how many* kernels run,
//! never *what* they compute.

use pygb::{
    apply, reduce, Accumulator, ArithmeticSemiring, BinaryOp, DType, DynScalar, LogicalSemiring,
    Matrix, MinPlusSemiring, Monoid, Replace, Semiring, UnaryOp, Vector,
};

use crate::pagerank::PageRankOptions;
use crate::util::normalize_rows;

/// BFS with deferred per-level operations. The frontier update goes
/// through a materialize-then-assign temporary, which the fusion pass
/// collapses back into a single masked SpMV (fusion rule 3) — the
/// blocking transcription of the same code would dispatch twice per
/// level.
pub fn bfs_nonblocking(graph: &Matrix, source: usize) -> pygb::Result<Vector> {
    let n = graph.nrows();
    let mut frontier = Vector::new(n, DType::Bool);
    frontier.set(source, true)?;
    let mut levels = Vector::new(n, DType::UInt64);
    let mut depth = 0u64;
    // `frontier.nvals()` is a read: it flushes the level's deferred ops.
    while frontier.nvals() > 0 {
        depth += 1;
        let _nb = pygb_runtime::nonblocking()?;
        levels.masked(&frontier).assign_scalar(depth)?;
        let _sr = LogicalSemiring.enter();
        let _rp = Replace.enter();
        let t = Vector::from_expr(graph.t().mxv(&frontier))?;
        frontier.masked_complement(&levels).assign(&t)?;
    }
    Ok(levels)
}

/// SSSP with every relaxation deferred: the whole `n`-step chain
/// enqueues before a single flush executes it, so the host-language
/// loop runs without ever blocking on a kernel.
pub fn sssp_nonblocking(graph: &Matrix, path: &mut Vector) -> pygb::Result<()> {
    let _nb = pygb_runtime::nonblocking()?;
    let _sr = MinPlusSemiring.enter();
    let _acc = Accumulator::new("Min")?.enter();
    for _ in 0..graph.nrows() {
        let snapshot = path.clone();
        let expr = graph.t().mxv(&snapshot);
        path.no_mask().accum_assign(expr)?;
    }
    // Surface any shape/operator error here as a `Result` rather than
    // from the scope guard's drop.
    pygb_runtime::flush()
}

/// PageRank with the iteration body deferred. Two fusions fire per
/// iteration: the rank propagation `vxm` and the teleport `apply`
/// collapse into one kernel (rule 2), and the squared-error
/// `delta * delta` folds into the convergence reduction (rule 4) — so
/// each iteration issues strictly fewer dispatches than
/// [`crate::pagerank_dsl_loops`]. Uses the overwrite formulation of
/// [`crate::pagerank_dsl_chained`], which matches Fig. 7 whenever the
/// product keeps a dense pattern.
pub fn pagerank_nonblocking(
    graph: &Matrix,
    opts: PageRankOptions,
) -> pygb::Result<(Vector, usize)> {
    let rows = graph.nrows();
    let mut start = Vector::new(rows, DType::Fp64);
    start.no_mask().slice(..).assign_scalar(1.0 / rows as f64)?;
    pagerank_nonblocking_from(graph, &start, opts)
}

/// The deferred power iteration of [`pagerank_nonblocking`], started
/// from an arbitrary `fp64` rank vector instead of the uniform one —
/// the warm-start entry point of
/// [`crate::incremental::pagerank_incremental`]. The damped iteration
/// is a contraction, so any start converges to the same fixed point;
/// the start only decides how many iterations that takes.
pub fn pagerank_nonblocking_from(
    graph: &Matrix,
    start: &Vector,
    opts: PageRankOptions,
) -> pygb::Result<(Vector, usize)> {
    let (rows, _cols) = graph.shape();
    let rows_f = rows as f64;
    let mut m = Matrix::new(rows, rows, DType::Fp64);
    m.no_mask().assign(graph)?;
    normalize_rows(&mut m)?;
    {
        let _u = UnaryOp::bound("Times", opts.damping_factor)?.enter();
        let snapshot = m.clone();
        m.no_mask().assign(apply(&snapshot))?;
    }

    let mut page_rank = Vector::new(rows, DType::Fp64);
    page_rank.no_mask().assign(start)?;
    let mut new_rank = Vector::new(rows, DType::Fp64);
    let mut delta = Vector::new(rows, DType::Fp64);
    let teleport = (1.0 - opts.damping_factor) / rows_f;

    let _nb = pygb_runtime::nonblocking()?;
    for i in 0..opts.max_iters {
        // new_rank = (page_rank @ m) + teleport — the deferred product
        // and the apply fuse into one `vxm_apply` dispatch. `t` must
        // drop before the flush so its placeholder is unobservable.
        {
            let plus_monoid = Monoid::new("Plus", "Zero")?;
            let _sr = Semiring::new(plus_monoid, "Times")?.enter();
            let t = Vector::from_expr(page_rank.vxm(&m))?;
            let _u = UnaryOp::bound("Plus", teleport)?.enter();
            new_rank.no_mask().assign(apply(&t))?;
        }
        {
            let _b = BinaryOp::new("Minus")?.enter();
            delta.no_mask().assign(&page_rank + &new_rank)?;
        }
        {
            let snapshot = delta.clone();
            delta.no_mask().assign(&snapshot * &snapshot)?;
        }
        // The reduction flushes; `delta * delta` folds into it.
        let squared_error = reduce(&delta)?.as_f64();

        page_rank.no_mask().slice(..).assign(&new_rank)?;
        if squared_error / rows_f < opts.threshold {
            pygb_runtime::flush()?;
            return Ok((page_rank, i + 1));
        }

        new_rank.no_mask().slice(..).assign_scalar(teleport)?;
        {
            let _b = BinaryOp::new("Plus")?.enter();
            let snapshot = page_rank.clone();
            let expr = &snapshot + &new_rank;
            page_rank.masked_complement(&snapshot).assign(expr)?;
        }
    }
    pygb_runtime::flush()?;
    Ok((page_rank, opts.max_iters))
}

/// Triangle counting with the masked product deferred; the final
/// reduction is the flush point.
pub fn tricount_nonblocking(l: &Matrix) -> pygb::Result<DynScalar> {
    let (r, c) = l.shape();
    let mut b = Matrix::new(r, c, l.dtype());
    let _nb = pygb_runtime::nonblocking()?;
    {
        let _sr = ArithmeticSemiring.enter();
        let expr = l.matmul(l.t());
        b.masked(l).assign(expr)?;
    }
    reduce(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs_dsl_loops, pagerank_dsl_loops, sssp_dsl_loops, tricount_dsl_loops};

    fn fig1_graph() -> Matrix {
        let edges: Vec<(usize, usize, f64)> = vec![
            (0, 1, 1.0),
            (0, 3, 1.0),
            (1, 4, 1.0),
            (1, 6, 1.0),
            (2, 5, 1.0),
            (3, 0, 1.0),
            (3, 2, 1.0),
            (4, 5, 1.0),
            (5, 2, 1.0),
            (6, 2, 1.0),
            (6, 3, 1.0),
            (6, 4, 1.0),
        ];
        Matrix::from_triples(7, 7, edges).unwrap()
    }

    #[test]
    fn bfs_matches_blocking() {
        let g = fig1_graph();
        let blocking = bfs_dsl_loops(&g, 3).unwrap();
        let nb = bfs_nonblocking(&g, 3).unwrap();
        assert_eq!(blocking.extract_pairs(), nb.extract_pairs());
    }

    #[test]
    fn sssp_matches_blocking() {
        let g = Matrix::from_triples(
            4,
            4,
            [
                (0usize, 1usize, 2.0f64),
                (1, 2, 3.0),
                (0, 2, 10.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap();
        let mut blocking = Vector::new(4, DType::Fp64);
        blocking.set(0, 0.0f64).unwrap();
        let mut nb = blocking.clone();
        sssp_dsl_loops(&g, &mut blocking).unwrap();
        sssp_nonblocking(&g, &mut nb).unwrap();
        assert_eq!(blocking.extract_pairs(), nb.extract_pairs());
    }

    #[test]
    fn pagerank_matches_blocking_on_dense_product_graphs() {
        let n = 6;
        let edges = (0..n).flat_map(|i| [(i, (i + 1) % n, 1.0f64), ((i + 1) % n, i, 1.0)]);
        let g = Matrix::from_triples(n, n, edges).unwrap();
        let opts = PageRankOptions {
            threshold: 1e-14,
            max_iters: 5_000,
            ..Default::default()
        };
        let (a, _) = pagerank_dsl_loops(&g, opts).unwrap();
        let (b, _) = pagerank_nonblocking(&g, opts).unwrap();
        for i in 0..n {
            let (x, y) = (a.get(i).unwrap().as_f64(), b.get(i).unwrap().as_f64());
            assert!((x - y).abs() < 1e-10, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tricount_matches_blocking() {
        let mut triples = Vec::new();
        for i in 0..4usize {
            for j in 0..i {
                triples.push((i, j, 1.0f64));
            }
        }
        let l = Matrix::from_triples(4, 4, triples).unwrap();
        assert_eq!(tricount_dsl_loops(&l).unwrap().as_f64(), 4.0);
        assert_eq!(tricount_nonblocking(&l).unwrap().as_f64(), 4.0);
    }

    /// The issue's acceptance criterion: on the PageRank iteration
    /// body, nonblocking mode must issue strictly fewer kernel
    /// invocations than blocking mode, with at least one fused chain
    /// dispatched as a single cached kernel.
    #[test]
    fn nonblocking_uses_fewer_dispatches_than_blocking() {
        let g = Matrix::from_triples(8, 8, (0..8).map(|i| (i, (i + 1) % 8, 1.0f64))).unwrap();
        let opts = PageRankOptions {
            threshold: 0.0,
            max_iters: 20,
            ..Default::default()
        };
        // Warm both variants so only steady-state dispatches count.
        pagerank_dsl_loops(&g, opts).unwrap();
        pagerank_nonblocking(&g, opts).unwrap();

        let before = pygb::runtime().cache().stats().snapshot();
        pagerank_dsl_loops(&g, opts).unwrap();
        let mid = pygb::runtime().cache().stats().snapshot();
        pagerank_nonblocking(&g, opts).unwrap();
        let after = pygb::runtime().cache().stats().snapshot();

        let blocking = mid.invocations - before.invocations;
        let nonblocking = after.invocations - mid.invocations;
        assert!(
            nonblocking < blocking,
            "nonblocking must invoke fewer kernels: {nonblocking} vs {blocking}"
        );
        // Two fusions per iteration: vxm+apply (rule 2) and
        // ewise+reduce (rule 4).
        assert_eq!(after.fused_ops - mid.fused_ops, 40);
        // Everything in the iteration body deferred before running.
        assert!(after.deferred_ops > mid.deferred_ops);
    }
}
