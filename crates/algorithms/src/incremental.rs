//! Incremental recomputation over streamed edge mutations.
//!
//! Companions to the batch algorithms for the streaming layer
//! ([`pygb::StreamingMatrix`]): instead of recomputing from scratch
//! after every published delta, these warm-start from the previous
//! answer and touch only the part of the graph the delta disturbed.
//! Both run as nonblocking DAG ops (deferred enqueue, fusion, flush on
//! read) and report under their own kernel families
//! (`stream/bfs_inc`, `stream/pagerank_inc`) plus `stream/*` counters
//! in the PR-5 metrics registry.
//!
//! **Incremental BFS** is *exact* for insert-only deltas: adding edges
//! can only decrease hop counts, so relaxing candidate improvements
//! outward from the inserted edges converges to exactly
//! `bfs(new graph)` — the proof obligation discharged differentially
//! in `tests/streaming_equiv.rs`. A batch containing a delete can
//! *increase* distances, which monotone relaxation cannot express, so
//! the function falls back to a full traversal (counted in
//! `stream/bfs_inc_fallbacks`).
//!
//! **Incremental PageRank** warm-starts the power iteration from the
//! previous ranks. The damped iteration is a contraction (factor =
//! damping < 1), so it converges to the *same* fixed point from any
//! start; beginning at the old ranks — already within `‖Δ‖` of the new
//! fixed point for a small delta — just takes far fewer iterations
//! than the uniform start. Agreement is within convergence tolerance,
//! not bit-identical (a different trajectory to the same fixed point).

use std::time::Instant;

use pygb::{
    apply, BinaryOp, DType, DynScalar, EdgeUpdate, Matrix, Monoid, Semiring, UnaryOp, Vector,
};

use crate::nonblocking::bfs_nonblocking;
use crate::pagerank::PageRankOptions;

/// Incremental BFS: given `prev_levels = bfs(old graph, source)` and
/// the edge batch that turned the old graph into `graph`, produce
/// `bfs(graph, source)` — bit-identical to a fresh traversal.
///
/// Insert-only batches relax outward from the inserted edges
/// (decrease-only dynamic shortest paths over the hop metric); a batch
/// with any delete falls back to [`bfs_nonblocking`] on the full
/// graph. Levels follow the Fig. 2b convention: `uint64`, source at
/// level 1, unreached vertices unstored.
pub fn bfs_incremental(
    graph: &Matrix,
    source: usize,
    prev_levels: &Vector,
    batch: &[EdgeUpdate],
) -> pygb::Result<Vector> {
    let start = Instant::now();
    let _sp = pygb_obs::span(pygb_obs::Cat::Exec, "stream/bfs_inc");
    if batch.iter().any(|u| u.val.is_none()) {
        // A delete can lengthen paths; monotone relaxation can't undo
        // a level, so recompute from scratch.
        pygb_obs::registry()
            .counter("stream/bfs_inc_fallbacks")
            .inc();
        let out = bfs_nonblocking(graph, source)?;
        pygb_obs::observe_kernel("stream/bfs_inc", start.elapsed().as_nanos() as u64);
        return Ok(out);
    }

    let n = graph.nrows();
    // Hop counts are small integers — exact in fp64 — and the float
    // domain keeps every DSL op in the promotion lattice's fixed point.
    let mut levels = prev_levels.cast(DType::Fp64);

    // Seed candidates: each inserted edge (u, v) offers v a level of
    // level(u) + 1; keep the offers that beat v's current level.
    let mut seeds: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for up in batch {
        if let Some(lu) = levels.get(up.row) {
            let offer = lu.as_f64() + 1.0;
            let beats = match levels.get(up.col) {
                Some(lv) => offer < lv.as_f64(),
                None => true,
            };
            if beats {
                let slot = seeds.entry(up.col).or_insert(f64::INFINITY);
                if offer < *slot {
                    *slot = offer;
                }
            }
        }
    }
    pygb_obs::registry().counter("stream/bfs_inc_runs").inc();
    if seeds.is_empty() {
        // No inserted edge improves anything: the old answer stands.
        pygb_obs::observe_kernel("stream/bfs_inc", start.elapsed().as_nanos() as u64);
        return Ok(levels.cast(DType::UInt64));
    }
    let mut cand = Vector::from_pairs(n, seeds)?;

    // Relax improvements outward. Each round merges the candidate
    // levels (strict improvements by construction), then propagates
    // one hop from the just-improved vertices; `nvals` is the flush
    // point terminating each deferred round.
    while cand.nvals() > 0 {
        let _nb = pygb_runtime::nonblocking()?;
        {
            // levels = min-union(levels, cand)
            let _b = BinaryOp::new("Min")?.enter();
            let snapshot = levels.clone();
            levels.no_mask().assign(&snapshot + &cand)?;
        }
        // One hop from the improved vertices over the *new* graph:
        // offer(v) = min over improved in-neighbors u of level(u) + 1.
        let next = {
            let min_monoid = Monoid::new("Min", "MinIdentity")?;
            let _sr = Semiring::new(min_monoid, "Second")?.enter();
            let t = Vector::from_expr(cand.vxm(graph))?;
            let _u = UnaryOp::bound("Plus", 1.0)?.enter();
            Vector::from_expr(apply(&t))?
        };
        // Keep strict improvements: offers below the stored level...
        let improves = {
            let _b = BinaryOp::new("LessThan")?.enter();
            Vector::from_expr(next.ewise_mult(&levels))?
        };
        let mut improved = Vector::new(n, DType::Fp64);
        improved.masked(&improves).assign(&next)?;
        // ...plus offers reaching vertices with no level at all.
        let mut reached = Vector::new(n, DType::Fp64);
        reached.masked_complement(&levels).assign(&next)?;
        cand = {
            // Disjoint patterns; the binop only labels the union.
            let _b = BinaryOp::new("Min")?.enter();
            Vector::from_expr(improved.ewise_add(&reached))?
        };
    }
    let out = levels.cast(DType::UInt64);
    pygb_obs::observe_kernel("stream/bfs_inc", start.elapsed().as_nanos() as u64);
    Ok(out)
}

/// Incremental PageRank: re-run the damped power iteration on `graph`
/// warm-started from `prev_ranks` (any dtype; cast to `fp64`). Returns
/// `(ranks, iterations)`. Converges to the same fixed point as
/// [`crate::pagerank_nonblocking`] from the uniform start — the
/// contraction
/// has one fixed point — but a small delta leaves the old ranks close
/// to it, so far fewer iterations run (`stream/pagerank_inc_iters`
/// counts them).
pub fn pagerank_incremental(
    graph: &Matrix,
    prev_ranks: &Vector,
    opts: PageRankOptions,
) -> pygb::Result<(Vector, usize)> {
    let start = Instant::now();
    let _sp = pygb_obs::span(pygb_obs::Cat::Exec, "stream/pagerank_inc");
    let rows = graph.nrows();
    let rows_f = rows as f64;

    // Warm start: previous rank where one exists, uniform elsewhere
    // (a vertex the old graph never ranked starts at 1/n).
    let mut seed = Vector::new(rows, DType::Fp64);
    seed.no_mask().slice(..).assign_scalar(1.0 / rows_f)?;
    {
        let _b = BinaryOp::new("Second")?.enter();
        let snapshot = seed.clone();
        let prev = prev_ranks.cast(DType::Fp64);
        seed.no_mask().assign(&snapshot + &prev)?;
    }

    let (ranks, iters) = crate::nonblocking::pagerank_nonblocking_from(graph, &seed, opts)?;
    let reg = pygb_obs::registry();
    reg.counter("stream/pagerank_inc_runs").inc();
    reg.counter("stream/pagerank_inc_iters").add(iters as u64);
    pygb_obs::observe_kernel("stream/pagerank_inc", start.elapsed().as_nanos() as u64);
    Ok((ranks, iters))
}

/// The unweighted hop count a query would see for `v`, used by tests.
#[doc(hidden)]
pub fn level_of(levels: &Vector, v: usize) -> Option<u64> {
    levels.get(v).map(DynScalar::as_i64).map(|x| x as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_dsl_loops;
    use crate::nonblocking::pagerank_nonblocking;

    fn fig1_graph() -> Matrix {
        let edges: Vec<(usize, usize, f64)> = vec![
            (0, 1, 1.0),
            (0, 3, 1.0),
            (1, 4, 1.0),
            (1, 6, 1.0),
            (2, 5, 1.0),
            (3, 0, 1.0),
            (3, 2, 1.0),
            (4, 5, 1.0),
            (5, 2, 1.0),
            (6, 2, 1.0),
            (6, 3, 1.0),
            (6, 4, 1.0),
        ];
        Matrix::from_triples(7, 7, edges).unwrap()
    }

    fn updated(graph: &Matrix, batch: &[EdgeUpdate]) -> Matrix {
        let mut g = graph.dup();
        g.update_edges(batch).unwrap();
        g
    }

    #[test]
    fn insert_only_delta_matches_fresh_bfs() {
        let old = fig1_graph();
        let prev = bfs_dsl_loops(&old, 3).unwrap();
        // A shortcut edge and an edge into an already-settled vertex.
        let batch = [EdgeUpdate::add(3, 5, 1.0f64), EdgeUpdate::add(5, 4, 1.0f64)];
        let new = updated(&old, &batch);
        let inc = bfs_incremental(&new, 3, &prev, &batch).unwrap();
        let fresh = bfs_dsl_loops(&new, 3).unwrap();
        assert_eq!(inc.extract_pairs(), fresh.extract_pairs());
    }

    #[test]
    fn chained_inserts_reach_previously_unreachable_vertices() {
        // Path 0→1; vertices 2, 3 unreachable until the delta links
        // 1→2 and 2→3 in the same batch (propagation must chain
        // through a vertex that had no previous level).
        let old = Matrix::from_triples(4, 4, vec![(0usize, 1usize, 1.0f64)]).unwrap();
        let prev = bfs_dsl_loops(&old, 0).unwrap();
        let batch = [EdgeUpdate::add(1, 2, 1.0f64), EdgeUpdate::add(2, 3, 1.0f64)];
        let new = updated(&old, &batch);
        let inc = bfs_incremental(&new, 0, &prev, &batch).unwrap();
        let fresh = bfs_dsl_loops(&new, 0).unwrap();
        assert_eq!(inc.extract_pairs(), fresh.extract_pairs());
        assert_eq!(level_of(&inc, 3), Some(4));
    }

    #[test]
    fn useless_insert_returns_previous_answer() {
        let old = fig1_graph();
        let prev = bfs_dsl_loops(&old, 3).unwrap();
        // (2, 0): source side already at a deeper level than 0 has.
        let batch = [EdgeUpdate::add(2, 0, 1.0f64)];
        let new = updated(&old, &batch);
        let inc = bfs_incremental(&new, 3, &prev, &batch).unwrap();
        assert_eq!(inc.extract_pairs(), prev.extract_pairs());
    }

    #[test]
    fn delete_falls_back_to_full_traversal() {
        let old = fig1_graph();
        let prev = bfs_dsl_loops(&old, 3).unwrap();
        let batch = [EdgeUpdate::del(3, 0)];
        let new = updated(&old, &batch);
        let before = pygb_obs::registry()
            .counter("stream/bfs_inc_fallbacks")
            .get();
        let inc = bfs_incremental(&new, 3, &prev, &batch).unwrap();
        let fresh = bfs_dsl_loops(&new, 3).unwrap();
        assert_eq!(inc.extract_pairs(), fresh.extract_pairs());
        let after = pygb_obs::registry()
            .counter("stream/bfs_inc_fallbacks")
            .get();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn pagerank_warm_start_reaches_the_same_fixed_point_faster() {
        // Hub-and-ring: in-degrees are wildly irregular, so the
        // uniform start is far from the fixed point (on a regular
        // graph uniform IS the fixed point and a cold start would win
        // trivially), and one extra edge is a small relative delta.
        let n = 64;
        let ring = (0..n).map(|i| (i, (i + 1) % n, 1.0f64));
        let hub = (1..n - 1).map(|i| (i, 0, 1.0f64));
        let old = Matrix::from_triples(n, n, ring.chain(hub).collect::<Vec<_>>()).unwrap();
        let opts = PageRankOptions {
            threshold: 1e-14,
            max_iters: 5_000,
            ..Default::default()
        };
        let (prev, _) = pagerank_nonblocking(&old, opts).unwrap();

        let batch = [EdgeUpdate::add(2, 4, 1.0f64)];
        let mut new = old.dup();
        new.update_edges(&batch).unwrap();

        let (warm, warm_iters) = pagerank_incremental(&new, &prev, opts).unwrap();
        let (full, cold_iters) = pagerank_nonblocking(&new, opts).unwrap();
        for i in 0..n {
            let (x, y) = (warm.get(i).unwrap().as_f64(), full.get(i).unwrap().as_f64());
            assert!((x - y).abs() < 1e-6, "vertex {i}: {x} vs {y}");
        }
        assert!(
            warm_iters < cold_iters,
            "warm start took {warm_iters} iterations, cold start {cold_iters}"
        );
    }
}
