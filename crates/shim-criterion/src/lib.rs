//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness behind the criterion API the workspace's
//! benches use: `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `Bencher::iter`, plus the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark reports min / median / mean
//! over the configured sample count to stdout. No statistics beyond
//! that — the repo's EXPERIMENTS bookkeeping needs comparable medians,
//! not confidence intervals.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&id.to_string(), 20, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label `function_name` at `parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (JIT caches, allocator) — untimed.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{label:<48} min {:>12} | median {:>12} | mean {:>12}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut ran = 0u32;
        run_benchmark("test/count", 5, |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert_eq!(ran, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shape");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| b.iter(|| n + 1));
        g.finish();
    }

    #[test]
    fn durations_format_by_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
