//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `read`
//! / `write` / `lock` return guards directly. A poisoned lock (a writer
//! panicked) recovers the inner data — the workspace's lock-protected
//! state (cache maps, trace buffers) stays structurally valid across
//! panics, which is the same practical contract parking_lot offers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Read guard, as returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard, as returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutex with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn default_builds() {
        let l: RwLock<Vec<u32>> = RwLock::default();
        assert!(l.read().is_empty());
    }
}
