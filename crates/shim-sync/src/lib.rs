//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `read`
//! / `write` / `lock` return guards directly. A poisoned lock (a writer
//! panicked) recovers the inner data — the workspace's lock-protected
//! state (cache maps, trace buffers) stays structurally valid across
//! panics, which is the same practical contract parking_lot offers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Read guard, as returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard, as returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutex with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

pub mod model {
    //! Loom-style exhaustive schedule exploration for deterministic
    //! state machines.
    //!
    //! The upstream `loom` crate model-checks lock-free code by running
    //! a closure under every legal thread interleaving. This offline
    //! stand-in provides the same *exploration* primitive for the
    //! cooperative schedulers in this workspace: the model under test
    //! is a deterministic state machine whose nondeterminism comes only
    //! from event ordering (which node of a wave completes first, when
    //! a re-entrant flush lands), so enumerating every ordering and
    //! asserting invariants under each is a complete check of the
    //! schedule space — no weak-memory modelling is required, because
    //! the checked code is single-threaded-cooperative by construction.
    //!
    //! Both drivers are exhaustive depth-first enumerations and return
    //! the number of schedules explored, so tests can assert the whole
    //! space was covered (e.g. `3! == 6`).

    /// Visit every permutation of `items` (each a complete schedule of
    /// distinguishable events), calling `check` with one order at a
    /// time. Returns the number of schedules explored (`items.len()!`).
    pub fn permutations<T: Clone, F: FnMut(&[T])>(items: &[T], mut check: F) -> usize {
        fn recurse<T: Clone, F: FnMut(&[T])>(
            pool: &mut Vec<T>,
            acc: &mut Vec<T>,
            check: &mut F,
            explored: &mut usize,
        ) {
            if pool.is_empty() {
                *explored += 1;
                check(acc);
                return;
            }
            for i in 0..pool.len() {
                let item = pool.remove(i);
                acc.push(item);
                recurse(pool, acc, check, explored);
                let item = acc.pop().expect("pushed above");
                pool.insert(i, item);
            }
        }
        let mut pool = items.to_vec();
        let mut acc = Vec::with_capacity(pool.len());
        let mut explored = 0;
        recurse(&mut pool, &mut acc, &mut check, &mut explored);
        explored
    }

    /// Visit every interleaving of `steps.len()` logical threads where
    /// thread `i` performs `steps[i]` ordered atomic steps. `check`
    /// receives each schedule as the sequence of thread indices whose
    /// next step runs. Returns the number of schedules explored (the
    /// multinomial coefficient over `steps`).
    pub fn interleavings<F: FnMut(&[usize])>(steps: &[usize], mut check: F) -> usize {
        fn recurse<F: FnMut(&[usize])>(
            remaining: &mut [usize],
            acc: &mut Vec<usize>,
            check: &mut F,
            explored: &mut usize,
        ) {
            if remaining.iter().all(|&r| r == 0) {
                *explored += 1;
                check(acc);
                return;
            }
            for t in 0..remaining.len() {
                if remaining[t] == 0 {
                    continue;
                }
                remaining[t] -= 1;
                acc.push(t);
                recurse(remaining, acc, check, explored);
                acc.pop();
                remaining[t] += 1;
            }
        }
        let mut remaining = steps.to_vec();
        let mut acc = Vec::with_capacity(steps.iter().sum());
        let mut explored = 0;
        recurse(&mut remaining, &mut acc, &mut check, &mut explored);
        explored
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn permutations_cover_the_full_factorial_space() {
            let mut seen = std::collections::HashSet::new();
            let explored = permutations(&[0, 1, 2], |order| {
                seen.insert(order.to_vec());
            });
            assert_eq!(explored, 6);
            assert_eq!(seen.len(), 6, "all 3! orders must be distinct");
        }

        #[test]
        fn permutations_of_empty_run_once() {
            let explored = permutations::<u8, _>(&[], |order| assert!(order.is_empty()));
            assert_eq!(explored, 1);
        }

        #[test]
        fn interleavings_cover_the_multinomial_space() {
            let mut seen = std::collections::HashSet::new();
            let explored = interleavings(&[2, 2], |sched| {
                assert_eq!(sched.iter().filter(|&&t| t == 0).count(), 2);
                assert_eq!(sched.iter().filter(|&&t| t == 1).count(), 2);
                seen.insert(sched.to_vec());
            });
            assert_eq!(explored, 6, "C(4,2) interleavings of two 2-step threads");
            assert_eq!(seen.len(), 6);
        }

        #[test]
        fn interleavings_preserve_per_thread_program_order() {
            // With steps [3], the only schedule is the thread alone.
            let explored = interleavings(&[3], |sched| assert_eq!(sched, [0, 0, 0]));
            assert_eq!(explored, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn default_builds() {
        let l: RwLock<Vec<u32>> = RwLock::default();
        assert!(l.read().is_empty());
    }
}
