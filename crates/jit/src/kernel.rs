//! The compiled-module interface.
//!
//! A [`Kernel`] is the in-process analog of a `dlopen`ed symbol from one
//! of the paper's generated `.so` files: a type-erased callable bound to
//! one (function × dtypes × operators) instantiation. Callers pass an
//! argument bundle as `&mut dyn Any`; the kernel downcasts to the
//! concrete argument struct its factory agreed on — a mismatch is the
//! moral equivalent of calling a foreign symbol with the wrong ABI and
//! is reported as [`crate::JitError::ArgumentTypeMismatch`].

use std::any::Any;

use crate::error::JitError;

/// The callable a [`FnKernel`] wraps.
type KernelFn<A> = Box<dyn Fn(&mut A) -> Result<(), JitError> + Send + Sync>;

/// One compiled module: invoke with a type-erased argument bundle.
pub trait Kernel: Send + Sync {
    /// Execute the kernel. `args` must be the argument struct the
    /// kernel's factory documented for its function name.
    fn invoke(&self, args: &mut dyn Any) -> Result<(), JitError>;

    /// A short human-readable description (module name, instantiated
    /// types) for traces and debugging.
    fn describe(&self) -> String {
        "<kernel>".to_string()
    }
}

/// Convenience: build a kernel from a closure over a concrete argument
/// type `A`. Handles the downcast and mismatch error uniformly.
pub struct FnKernel<A> {
    func_name: String,
    description: String,
    f: KernelFn<A>,
}

impl<A: Any> FnKernel<A> {
    /// Wrap `f` as a kernel for function `func_name`.
    pub fn new(
        func_name: impl Into<String>,
        description: impl Into<String>,
        f: impl Fn(&mut A) -> Result<(), JitError> + Send + Sync + 'static,
    ) -> Self {
        FnKernel {
            func_name: func_name.into(),
            description: description.into(),
            f: Box::new(f),
        }
    }
}

impl<A: Any> Kernel for FnKernel<A> {
    fn invoke(&self, args: &mut dyn Any) -> Result<(), JitError> {
        match args.downcast_mut::<A>() {
            Some(concrete) => (self.f)(concrete),
            None => Err(JitError::ArgumentTypeMismatch {
                func: self.func_name.clone(),
            }),
        }
    }

    fn describe(&self) -> String {
        self.description.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AddArgs {
        a: i32,
        b: i32,
        out: i32,
    }

    #[test]
    fn fn_kernel_invokes() {
        let k = FnKernel::new("add", "add<i32>", |args: &mut AddArgs| {
            args.out = args.a + args.b;
            Ok(())
        });
        let mut args = AddArgs { a: 2, b: 3, out: 0 };
        k.invoke(&mut args).unwrap();
        assert_eq!(args.out, 5);
        assert_eq!(k.describe(), "add<i32>");
    }

    #[test]
    fn wrong_bundle_type_rejected() {
        let k = FnKernel::new("add", "add<i32>", |_: &mut AddArgs| Ok(()));
        let mut wrong = 42u8;
        let err = k.invoke(&mut wrong).unwrap_err();
        assert_eq!(err, JitError::ArgumentTypeMismatch { func: "add".into() });
    }

    #[test]
    fn kernel_errors_propagate() {
        let k = FnKernel::new("fail", "fail", |_: &mut AddArgs| {
            Err(JitError::op("inner failure"))
        });
        let mut args = AddArgs { a: 0, b: 0, out: 0 };
        assert!(k.invoke(&mut args).is_err());
    }
}
