//! Dispatch statistics: cache outcomes and per-outcome timing.
//!
//! These counters back the paper's claims that (a) compile cost is paid
//! once per key and amortized over reuse, and (b) warm dispatch overhead
//! is a hash + map lookup. The `figures` binary prints them for the
//! compile-time experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one cache/runtime instance. All methods are
/// lock-free and callable concurrently.
#[derive(Debug, Default)]
pub struct JitStats {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    compiles: AtomicU64,
    invocations: AtomicU64,
    compile_ns_total: AtomicU64,
    lookup_ns_total: AtomicU64,
    deferred_ops: AtomicU64,
    fused_ops: AtomicU64,
    elided_ops: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Dispatches served from process memory.
    pub memory_hits: u64,
    /// Dispatches served by "loading" a module recorded by a previous
    /// process run (disk index hit).
    pub disk_hits: u64,
    /// Cold compiles (kernel instantiations).
    pub compiles: u64,
    /// Total kernel invocations.
    pub invocations: u64,
    /// Nanoseconds spent instantiating kernels.
    pub compile_ns_total: u64,
    /// Nanoseconds spent in key hashing + cache lookup.
    pub lookup_ns_total: u64,
    /// Operations enqueued into a nonblocking op-DAG instead of
    /// dispatching eagerly.
    pub deferred_ops: u64,
    /// DAG nodes absorbed into a composite kernel by the nonblocking
    /// fusion pass (each one is a dispatch that never happened).
    pub fused_ops: u64,
    /// DAG nodes dropped as dead code (results never observed).
    pub elided_ops: u64,
}

impl JitStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a memory hit.
    pub fn record_memory_hit(&self) {
        self.memory_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a disk-index hit.
    pub fn record_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cold compile taking `ns` nanoseconds.
    pub fn record_compile(&self, ns: u64) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_ns_total.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a kernel invocation.
    pub fn record_invocation(&self) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record lookup (hash + map probe) time.
    pub fn record_lookup_ns(&self, ns: u64) {
        self.lookup_ns_total.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record an operation deferred into a nonblocking op-DAG.
    pub fn record_deferred(&self) {
        self.deferred_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes fused into composite kernels.
    pub fn record_fused(&self, n: u64) {
        self.fused_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes elided as dead code.
    pub fn record_elided(&self, n: u64) {
        self.elided_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            compile_ns_total: self.compile_ns_total.load(Ordering::Relaxed),
            lookup_ns_total: self.lookup_ns_total.load(Ordering::Relaxed),
            deferred_ops: self.deferred_ops.load(Ordering::Relaxed),
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
            elided_ops: self.elided_ops.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (tests, bench warm-up separation).
    pub fn reset(&self) {
        self.memory_hits.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
        self.compiles.store(0, Ordering::Relaxed);
        self.invocations.store(0, Ordering::Relaxed);
        self.compile_ns_total.store(0, Ordering::Relaxed);
        self.lookup_ns_total.store(0, Ordering::Relaxed);
        self.deferred_ops.store(0, Ordering::Relaxed);
        self.fused_ops.store(0, Ordering::Relaxed);
        self.elided_ops.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total dispatches that consulted the cache.
    pub fn total_dispatches(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.compiles
    }

    /// Fraction of dispatches that avoided a compile, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_dispatches();
        if total == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits) as f64 / total as f64
    }

    /// Mean nanoseconds per cold compile.
    pub fn mean_compile_ns(&self) -> f64 {
        if self.compiles == 0 {
            return 0.0;
        }
        self.compile_ns_total as f64 / self.compiles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = JitStats::new();
        s.record_compile(100);
        s.record_compile(300);
        s.record_memory_hit();
        s.record_memory_hit();
        s.record_memory_hit();
        s.record_disk_hit();
        s.record_invocation();
        let snap = s.snapshot();
        assert_eq!(snap.compiles, 2);
        assert_eq!(snap.memory_hits, 3);
        assert_eq!(snap.disk_hits, 1);
        assert_eq!(snap.invocations, 1);
        assert_eq!(snap.total_dispatches(), 6);
        assert!((snap.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.mean_compile_ns(), 200.0);
    }

    #[test]
    fn empty_snapshot_rates() {
        let snap = JitStats::new().snapshot();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.mean_compile_ns(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let s = JitStats::new();
        s.record_compile(5);
        s.reset();
        assert_eq!(s.snapshot().compiles, 0);
        assert_eq!(s.snapshot().compile_ns_total, 0);
    }
}
