//! Dispatch statistics: cache outcomes and per-outcome timing.
//!
//! These counters back the paper's claims that (a) compile cost is paid
//! once per key and amortized over reuse, and (b) warm dispatch overhead
//! is a hash + map lookup. The `figures` binary prints them for the
//! compile-time experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which SpGEMM kernel an `mxm` dispatch selected (mirrors the
/// substrate's kernel report without depending on it).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MxmSelect {
    /// Unmasked Gustavson (mask absent or opaque, post-filtered).
    Unmasked,
    /// Gustavson with the structural mask stamped into the inner loop.
    MaskedGustavson,
    /// Mask-guided dot products (triangle-counting shape).
    MaskedDot,
}

/// Which SpMV direction an `mxv`/`vxm` dispatch selected.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpmvSelect {
    /// Row-parallel gather (dense direction).
    Pull,
    /// Gather confined to the structural mask.
    MaskedPull,
    /// Frontier-driven scatter (sparse direction).
    Push,
    /// Scatter with the mask stamped ahead of accumulation.
    MaskedPush,
}

/// Monotonic counters for one cache/runtime instance. All methods are
/// lock-free and callable concurrently.
#[derive(Debug, Default)]
pub struct JitStats {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    compiles: AtomicU64,
    invocations: AtomicU64,
    compile_ns_total: AtomicU64,
    lookup_ns_total: AtomicU64,
    deferred_ops: AtomicU64,
    fused_ops: AtomicU64,
    elided_ops: AtomicU64,
    cse_deduped: AtomicU64,
    noop_folded: AtomicU64,
    refused_fusions: AtomicU64,
    sel_spgemm: AtomicU64,
    sel_masked_spgemm: AtomicU64,
    sel_dot_spgemm: AtomicU64,
    sel_pull: AtomicU64,
    sel_masked_pull: AtomicU64,
    sel_push: AtomicU64,
    sel_masked_push: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Dispatches served from process memory.
    pub memory_hits: u64,
    /// Dispatches served by "loading" a module recorded by a previous
    /// process run (disk index hit).
    pub disk_hits: u64,
    /// Cold compiles (kernel instantiations).
    pub compiles: u64,
    /// Total kernel invocations.
    pub invocations: u64,
    /// Nanoseconds spent instantiating kernels.
    pub compile_ns_total: u64,
    /// Nanoseconds spent in key hashing + cache lookup.
    pub lookup_ns_total: u64,
    /// Operations enqueued into a nonblocking op-DAG instead of
    /// dispatching eagerly.
    pub deferred_ops: u64,
    /// DAG nodes absorbed into a composite kernel by the nonblocking
    /// fusion pass (each one is a dispatch that never happened).
    pub fused_ops: u64,
    /// DAG nodes dropped as dead code (results never observed).
    pub elided_ops: u64,
    /// DAG nodes merged into a structurally identical node by the
    /// common-subexpression-elimination pass.
    pub cse_deduped: u64,
    /// DAG nodes folded away by the no-op elimination pass (empty
    /// masks with replace, identity applies, known-empty operands).
    pub noop_folded: u64,
    /// Producer/consumer pairs that matched a fusion rule but were
    /// refused by the aliasing analysis (the consumer's output aliases
    /// a producer input, so fusion legality could not be proven).
    pub refused_fusions: u64,
    /// `mxm` dispatches that ran the unmasked Gustavson SpGEMM.
    pub sel_spgemm: u64,
    /// `mxm` dispatches that ran the mask-stamped Gustavson SpGEMM.
    pub sel_masked_spgemm: u64,
    /// `mxm` dispatches that ran the mask-guided dot-product SpGEMM.
    pub sel_dot_spgemm: u64,
    /// `mxv`/`vxm` dispatches that ran the unmasked pull (gather) SpMV.
    pub sel_pull: u64,
    /// `mxv`/`vxm` dispatches that ran the masked pull SpMV.
    pub sel_masked_pull: u64,
    /// `mxv`/`vxm` dispatches that ran the unmasked push (scatter) SpMV.
    pub sel_push: u64,
    /// `mxv`/`vxm` dispatches that ran the masked push SpMV.
    pub sel_masked_push: u64,
}

impl JitStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a memory hit.
    pub fn record_memory_hit(&self) {
        self.memory_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a disk-index hit.
    pub fn record_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cold compile taking `ns` nanoseconds.
    pub fn record_compile(&self, ns: u64) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_ns_total.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a kernel invocation.
    pub fn record_invocation(&self) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record lookup (hash + map probe) time.
    pub fn record_lookup_ns(&self, ns: u64) {
        self.lookup_ns_total.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record an operation deferred into a nonblocking op-DAG.
    pub fn record_deferred(&self) {
        self.deferred_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes fused into composite kernels.
    pub fn record_fused(&self, n: u64) {
        self.fused_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes elided as dead code.
    pub fn record_elided(&self, n: u64) {
        self.elided_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes merged by the CSE pass.
    pub fn record_cse(&self, n: u64) {
        self.cse_deduped.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` DAG nodes folded by the no-op elimination pass.
    pub fn record_noop(&self, n: u64) {
        self.noop_folded.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` fusion opportunities refused by the aliasing analysis.
    pub fn record_refused(&self, n: u64) {
        self.refused_fusions.fetch_add(n, Ordering::Relaxed);
    }

    /// Record which SpGEMM kernel an `mxm` dispatch selected.
    pub fn record_mxm_select(&self, sel: MxmSelect) {
        let c = match sel {
            MxmSelect::Unmasked => &self.sel_spgemm,
            MxmSelect::MaskedGustavson => &self.sel_masked_spgemm,
            MxmSelect::MaskedDot => &self.sel_dot_spgemm,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Record which SpMV kernel an `mxv`/`vxm` dispatch selected.
    pub fn record_spmv_select(&self, sel: SpmvSelect) {
        let c = match sel {
            SpmvSelect::Pull => &self.sel_pull,
            SpmvSelect::MaskedPull => &self.sel_masked_pull,
            SpmvSelect::Push => &self.sel_push,
            SpmvSelect::MaskedPush => &self.sel_masked_push,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            compile_ns_total: self.compile_ns_total.load(Ordering::Relaxed),
            lookup_ns_total: self.lookup_ns_total.load(Ordering::Relaxed),
            deferred_ops: self.deferred_ops.load(Ordering::Relaxed),
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
            elided_ops: self.elided_ops.load(Ordering::Relaxed),
            cse_deduped: self.cse_deduped.load(Ordering::Relaxed),
            noop_folded: self.noop_folded.load(Ordering::Relaxed),
            refused_fusions: self.refused_fusions.load(Ordering::Relaxed),
            sel_spgemm: self.sel_spgemm.load(Ordering::Relaxed),
            sel_masked_spgemm: self.sel_masked_spgemm.load(Ordering::Relaxed),
            sel_dot_spgemm: self.sel_dot_spgemm.load(Ordering::Relaxed),
            sel_pull: self.sel_pull.load(Ordering::Relaxed),
            sel_masked_pull: self.sel_masked_pull.load(Ordering::Relaxed),
            sel_push: self.sel_push.load(Ordering::Relaxed),
            sel_masked_push: self.sel_masked_push.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (tests, bench warm-up separation).
    pub fn reset(&self) {
        self.memory_hits.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
        self.compiles.store(0, Ordering::Relaxed);
        self.invocations.store(0, Ordering::Relaxed);
        self.compile_ns_total.store(0, Ordering::Relaxed);
        self.lookup_ns_total.store(0, Ordering::Relaxed);
        self.deferred_ops.store(0, Ordering::Relaxed);
        self.fused_ops.store(0, Ordering::Relaxed);
        self.elided_ops.store(0, Ordering::Relaxed);
        self.cse_deduped.store(0, Ordering::Relaxed);
        self.noop_folded.store(0, Ordering::Relaxed);
        self.refused_fusions.store(0, Ordering::Relaxed);
        self.sel_spgemm.store(0, Ordering::Relaxed);
        self.sel_masked_spgemm.store(0, Ordering::Relaxed);
        self.sel_dot_spgemm.store(0, Ordering::Relaxed);
        self.sel_pull.store(0, Ordering::Relaxed);
        self.sel_masked_pull.store(0, Ordering::Relaxed);
        self.sel_push.store(0, Ordering::Relaxed);
        self.sel_masked_push.store(0, Ordering::Relaxed);
    }
}

/// The unified-registry facade: a `JitStats` plugs into the process
/// `pygb_obs` [`MetricsRegistry`](pygb_obs::MetricsRegistry) as one
/// [`MetricsSource`](pygb_obs::MetricsSource), so the JIT, fusion, and
/// kernel-selection counters all read out through a single
/// `registry().snapshot()` (as `jit/<counter>`). The struct keeps its
/// own lock-free fields for the hot path; [`JitStats::snapshot`]
/// remains the public per-instance API.
impl pygb_obs::MetricsSource for JitStats {
    fn collect(&self) -> Vec<(String, u64)> {
        let s = self.snapshot();
        [
            ("memory_hits", s.memory_hits),
            ("disk_hits", s.disk_hits),
            ("compiles", s.compiles),
            ("invocations", s.invocations),
            ("compile_ns_total", s.compile_ns_total),
            ("lookup_ns_total", s.lookup_ns_total),
            ("deferred_ops", s.deferred_ops),
            ("fused_ops", s.fused_ops),
            ("elided_ops", s.elided_ops),
            ("cse_deduped", s.cse_deduped),
            ("noop_folded", s.noop_folded),
            ("refused_fusions", s.refused_fusions),
            ("sel_spgemm", s.sel_spgemm),
            ("sel_masked_spgemm", s.sel_masked_spgemm),
            ("sel_dot_spgemm", s.sel_dot_spgemm),
            ("sel_pull", s.sel_pull),
            ("sel_masked_pull", s.sel_masked_pull),
            ("sel_push", s.sel_push),
            ("sel_masked_push", s.sel_masked_push),
        ]
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
    }
}

impl StatsSnapshot {
    /// Total dispatches that consulted the cache.
    pub fn total_dispatches(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.compiles
    }

    /// Fraction of dispatches that avoided a compile, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_dispatches();
        if total == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits) as f64 / total as f64
    }

    /// Mean nanoseconds per cold compile.
    pub fn mean_compile_ns(&self) -> f64 {
        if self.compiles == 0 {
            return 0.0;
        }
        self.compile_ns_total as f64 / self.compiles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = JitStats::new();
        s.record_compile(100);
        s.record_compile(300);
        s.record_memory_hit();
        s.record_memory_hit();
        s.record_memory_hit();
        s.record_disk_hit();
        s.record_invocation();
        let snap = s.snapshot();
        assert_eq!(snap.compiles, 2);
        assert_eq!(snap.memory_hits, 3);
        assert_eq!(snap.disk_hits, 1);
        assert_eq!(snap.invocations, 1);
        assert_eq!(snap.total_dispatches(), 6);
        assert!((snap.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.mean_compile_ns(), 200.0);
    }

    #[test]
    fn empty_snapshot_rates() {
        let snap = JitStats::new().snapshot();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.mean_compile_ns(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let s = JitStats::new();
        s.record_compile(5);
        s.record_mxm_select(MxmSelect::MaskedDot);
        s.reset();
        assert_eq!(s.snapshot().compiles, 0);
        assert_eq!(s.snapshot().compile_ns_total, 0);
        assert_eq!(s.snapshot().sel_dot_spgemm, 0);
    }

    #[test]
    fn selection_counters() {
        let s = JitStats::new();
        s.record_mxm_select(MxmSelect::Unmasked);
        s.record_mxm_select(MxmSelect::MaskedGustavson);
        s.record_mxm_select(MxmSelect::MaskedDot);
        s.record_mxm_select(MxmSelect::MaskedDot);
        s.record_spmv_select(SpmvSelect::Pull);
        s.record_spmv_select(SpmvSelect::MaskedPull);
        s.record_spmv_select(SpmvSelect::Push);
        s.record_spmv_select(SpmvSelect::MaskedPush);
        s.record_spmv_select(SpmvSelect::MaskedPush);
        let snap = s.snapshot();
        assert_eq!(snap.sel_spgemm, 1);
        assert_eq!(snap.sel_masked_spgemm, 1);
        assert_eq!(snap.sel_dot_spgemm, 2);
        assert_eq!(snap.sel_pull, 1);
        assert_eq!(snap.sel_masked_pull, 1);
        assert_eq!(snap.sel_push, 1);
        assert_eq!(snap.sel_masked_push, 2);
    }
}
