//! The two-level module cache of Fig. 9's `get_module`:
//!
//! ```python
//! def get_module(kwargs):
//!     mod = hash(kwargs)
//!     if mod in modules:        return modules[mod]       # memory hit
//!     elif os.path.isfile(mod): return import_module(mod) # disk hit
//!     else:                     subprocess.call(["g++", ...]); ...
//! ```
//!
//! Memory level: a hash map of instantiated kernels. Disk level: a
//! persistent JSON *module index* recording every key ever compiled, so
//! a later process run classifies the key as a (cheap) disk hit instead
//! of a cold compile — reproducing how the paper's `.so` files amortize
//! compilation across runs.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::error::JitError;
use crate::json;
use crate::kernel::Kernel;
use crate::key::ModuleKey;
use crate::stats::JitStats;

/// How a module was obtained.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Found already instantiated in process memory.
    MemoryHit,
    /// Known from a previous process run (disk index); re-instantiated
    /// without counting as a cold compile — the `import_module` path.
    DiskHit,
    /// Never seen before: instantiated ("compiled") now and recorded.
    Compiled,
}

/// One line of the persistent module index.
#[derive(Debug, Clone)]
pub struct ModuleRecord {
    /// Hex module name (`{hash:016x}`, the `.so` filename analog).
    pub module: String,
    /// The canonical key text, for human inspection of the cache.
    pub key: String,
    /// Nanoseconds the original instantiation took.
    pub compile_ns: u64,
}

/// Two-level module cache with dispatch statistics.
pub struct ModuleCache {
    memory: RwLock<HashMap<u64, Arc<dyn Kernel>>>,
    disk: Option<DiskIndex>,
    stats: Arc<JitStats>,
}

struct DiskIndex {
    path: PathBuf,
    known: RwLock<HashMap<u64, ModuleRecord>>,
}

impl ModuleCache {
    /// A purely in-memory cache (no cross-run persistence). What tests
    /// and benchmarks use by default.
    pub fn in_memory() -> Self {
        ModuleCache {
            memory: RwLock::new(HashMap::new()),
            disk: None,
            stats: Arc::new(JitStats::new()),
        }
    }

    /// A cache whose module index persists at `dir/modules.json`.
    /// The directory is created if needed; unreadable or corrupt index
    /// files are treated as empty.
    pub fn with_disk_index(dir: impl AsRef<Path>) -> Self {
        let dir = dir.as_ref();
        let _ = fs::create_dir_all(dir);
        let path = dir.join("modules.json");
        let known = load_index(&path)
            .into_iter()
            .filter_map(|r| u64::from_str_radix(&r.module, 16).ok().map(|h| (h, r)))
            .collect();
        ModuleCache {
            memory: RwLock::new(HashMap::new()),
            disk: Some(DiskIndex {
                path,
                known: RwLock::new(known),
            }),
            stats: Arc::new(JitStats::new()),
        }
    }

    /// Fig. 9's `get_module`: return the kernel for `key`, instantiating
    /// it with `factory` if neither cache level knows it.
    pub fn get_or_compile<F>(
        &self,
        key: &ModuleKey,
        factory: F,
    ) -> Result<(Arc<dyn Kernel>, CacheOutcome), JitError>
    where
        F: FnOnce(&ModuleKey) -> Result<Box<dyn Kernel>, JitError>,
    {
        let lookup_start = Instant::now();
        let hash = key.module_hash();
        if let Some(k) = self.memory.read().get(&hash) {
            self.stats
                .record_lookup_ns(lookup_start.elapsed().as_nanos() as u64);
            self.stats.record_memory_hit();
            return Ok((Arc::clone(k), CacheOutcome::MemoryHit));
        }
        self.stats
            .record_lookup_ns(lookup_start.elapsed().as_nanos() as u64);

        // Not in memory: instantiate. (Two threads may race here; the
        // second insert wins nothing but wastes one instantiation, like
        // two Python processes racing on the same .so.)
        let compile_start = Instant::now();
        let kernel: Arc<dyn Kernel> = Arc::from(factory(key)?);
        let compile_ns = compile_start.elapsed().as_nanos() as u64;

        let outcome = match &self.disk {
            Some(disk) if disk.known.read().contains_key(&hash) => {
                self.stats.record_disk_hit();
                CacheOutcome::DiskHit
            }
            Some(disk) => {
                self.stats.record_compile(compile_ns);
                let record = ModuleRecord {
                    module: key.module_name(),
                    key: key.canonical(),
                    compile_ns,
                };
                {
                    let mut known = disk.known.write();
                    known.insert(hash, record);
                    persist_index(&disk.path, &known);
                }
                CacheOutcome::Compiled
            }
            None => {
                self.stats.record_compile(compile_ns);
                CacheOutcome::Compiled
            }
        };

        self.memory.write().insert(hash, Arc::clone(&kernel));
        Ok((kernel, outcome))
    }

    /// Whether the key is resident in process memory.
    pub fn contains(&self, key: &ModuleKey) -> bool {
        self.memory.read().contains_key(&key.module_hash())
    }

    /// Number of modules resident in memory.
    pub fn resident_modules(&self) -> usize {
        self.memory.read().len()
    }

    /// Number of modules the disk index knows (0 without an index).
    pub fn indexed_modules(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.known.read().len())
    }

    /// Drop all in-memory kernels, keeping the disk index — simulates a
    /// process restart for tests and the compile-time bench.
    pub fn evict_memory(&self) {
        self.memory.write().clear();
    }

    /// The dispatch statistics for this cache.
    pub fn stats(&self) -> &JitStats {
        &self.stats
    }

    /// Shared handle to the statistics — what the global runtime
    /// registers with the `pygb-obs` metrics registry, so one snapshot
    /// reads these counters alongside every other subsystem's.
    pub fn stats_arc(&self) -> Arc<JitStats> {
        Arc::clone(&self.stats)
    }
}

fn load_index(path: &Path) -> Vec<ModuleRecord> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    // Unreadable or structurally surprising indices are treated as
    // empty — the cache regenerates them on the next compile.
    let Ok(value) = json::parse(&text) else {
        return Vec::new();
    };
    let Some(entries) = value.as_array() else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            Some(ModuleRecord {
                module: e.get("module")?.as_str()?.to_string(),
                key: e.get("key")?.as_str()?.to_string(),
                compile_ns: e.get("compile_ns")?.as_u64()?,
            })
        })
        .collect()
}

fn persist_index(path: &Path, known: &HashMap<u64, ModuleRecord>) {
    let mut records: Vec<&ModuleRecord> = known.values().collect();
    records.sort_by(|a, b| a.module.cmp(&b.module));
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\n    \"module\": \"{}\",\n    \"key\": \"{}\",\n    \"compile_ns\": {}\n  }}",
            json::escape_string(&r.module),
            json::escape_string(&r.key),
            r.compile_ns
        ));
    }
    out.push_str(if records.is_empty() { "]" } else { "\n]" });
    let _ = fs::write(path, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;

    fn key(n: u32) -> ModuleKey {
        ModuleKey::new("op").with("n", n.to_string())
    }

    fn trivial_factory(_: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
        Ok(Box::new(FnKernel::new("op", "op<test>", |_: &mut ()| {
            Ok(())
        })))
    }

    #[test]
    fn first_call_compiles_second_hits_memory() {
        let cache = ModuleCache::in_memory();
        let (_, o1) = cache.get_or_compile(&key(1), trivial_factory).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        let (_, o2) = cache.get_or_compile(&key(1), trivial_factory).unwrap();
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(cache.resident_modules(), 1);
        let snap = cache.stats().snapshot();
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.memory_hits, 1);
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let cache = ModuleCache::in_memory();
        cache.get_or_compile(&key(1), trivial_factory).unwrap();
        cache.get_or_compile(&key(2), trivial_factory).unwrap();
        assert_eq!(cache.resident_modules(), 2);
        assert_eq!(cache.stats().snapshot().compiles, 2);
    }

    #[test]
    fn factory_error_propagates_and_caches_nothing() {
        let cache = ModuleCache::in_memory();
        let err = cache.get_or_compile(&key(1), |_| {
            Err::<Box<dyn Kernel>, _>(JitError::bad_key("nope"))
        });
        assert!(err.is_err());
        assert_eq!(cache.resident_modules(), 0);
    }

    #[test]
    fn disk_index_survives_restart() {
        let dir = std::env::temp_dir().join(format!("pygb-jit-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let cache = ModuleCache::with_disk_index(&dir);
        let (_, o1) = cache.get_or_compile(&key(7), trivial_factory).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        assert_eq!(cache.indexed_modules(), 1);

        // "Restart": fresh cache instance over the same directory.
        let cache2 = ModuleCache::with_disk_index(&dir);
        assert_eq!(cache2.indexed_modules(), 1);
        let (_, o2) = cache2.get_or_compile(&key(7), trivial_factory).unwrap();
        assert_eq!(o2, CacheOutcome::DiskHit);
        assert_eq!(cache2.stats().snapshot().compiles, 0);
        assert_eq!(cache2.stats().snapshot().disk_hits, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_memory_keeps_index() {
        let dir = std::env::temp_dir().join(format!("pygb-jit-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ModuleCache::with_disk_index(&dir);
        cache.get_or_compile(&key(1), trivial_factory).unwrap();
        cache.evict_memory();
        assert_eq!(cache.resident_modules(), 0);
        let (_, o) = cache.get_or_compile(&key(1), trivial_factory).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_treated_as_empty() {
        let dir = std::env::temp_dir().join(format!("pygb-jit-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("modules.json"), "not json at all {{{").unwrap();
        let cache = ModuleCache::with_disk_index(&dir);
        assert_eq!(cache.indexed_modules(), 0);
        let (_, o) = cache.get_or_compile(&key(1), trivial_factory).unwrap();
        assert_eq!(o, CacheOutcome::Compiled);
        let _ = fs::remove_dir_all(&dir);
    }
}
