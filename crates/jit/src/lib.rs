//! # pygb-jit — the dynamic-compilation model of PyGB
//!
//! The paper's PyGB dispatches every GraphBLAS operation through a
//! just-in-time pipeline (Fig. 9): the operand dtypes and operator names
//! are hashed into a *module key*; a two-level cache (process memory,
//! then `.so` files on disk) is consulted; on a miss, `g++` instantiates
//! `operation_binding.cpp` with `-D` parameters for exactly that key and
//! the resulting binary is `dlopen`ed and cached.
//!
//! Rust has no runtime template instantiation, so this crate reproduces
//! the *mechanism* rather than the compiler invocation (see DESIGN.md):
//!
//! * [`key::ModuleKey`] — the same (function × dtypes × operators) key,
//!   hashed to a stable module name exactly as the paper hashes kwargs.
//! * [`registry::FactoryRegistry`] — per-operation *kernel factories*
//!   that monomorphize a generic kernel for the key's dtype/operators on
//!   demand (the "template instantiation" step).
//! * [`cache::ModuleCache`] — in-memory map plus a persistent on-disk
//!   module index, distinguishing memory hits, disk hits (a prior
//!   process compiled this key), and cold compiles, with per-outcome
//!   timing statistics.
//! * [`pipeline`] — stage-by-stage traces of each dispatch, regenerating
//!   the Fig. 9 walkthrough and the paper's compile-time claims.
//! * [`combinatorics`] — the Section V counting argument (11⁴ mxm type
//!   combinations, 17·11³ accumulators, ~6·10¹² total keys) showing why
//!   ahead-of-time instantiation is infeasible and on-demand is not.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod combinatorics;
pub mod error;
pub mod json;
pub mod kernel;
pub mod key;
pub mod pipeline;
pub mod registry;
pub mod runtime;
pub mod stats;

pub use cache::{CacheOutcome, ModuleCache};
pub use error::JitError;
pub use kernel::Kernel;
pub use key::ModuleKey;
pub use pipeline::{PipelineTrace, Stage};
pub use registry::FactoryRegistry;
pub use runtime::{global, JitRuntime};
pub use stats::{JitStats, MxmSelect, SpmvSelect};
