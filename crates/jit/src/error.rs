//! Errors of the dynamic-compilation pipeline.

use std::fmt;

/// Errors from module-key resolution, kernel instantiation, or kernel
/// invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JitError {
    /// No factory is registered for the requested function — the analog
    /// of `operation_binding.cpp` not knowing the operation.
    UnknownFunction {
        /// The function name that failed to resolve.
        func: String,
    },
    /// A key parameter is missing or malformed for the factory.
    BadKey {
        /// Human-readable description.
        context: String,
    },
    /// A kernel was invoked with an argument bundle of the wrong type —
    /// the analog of calling a `dlopen`ed symbol with a bad signature.
    ArgumentTypeMismatch {
        /// The function whose kernel rejected the arguments.
        func: String,
    },
    /// The underlying GraphBLAS operation failed (dimension mismatch,
    /// bad indices, ...). Carries its display string.
    OperationFailed {
        /// The failure message from the substrate.
        message: String,
    },
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::UnknownFunction { func } => {
                write!(f, "no kernel factory registered for `{func}`")
            }
            JitError::BadKey { context } => write!(f, "bad module key: {context}"),
            JitError::ArgumentTypeMismatch { func } => {
                write!(f, "kernel `{func}` invoked with mismatched argument bundle")
            }
            JitError::OperationFailed { message } => write!(f, "operation failed: {message}"),
        }
    }
}

impl std::error::Error for JitError {}

impl JitError {
    /// Wrap a substrate failure message.
    pub fn op(message: impl fmt::Display) -> Self {
        JitError::OperationFailed {
            message: message.to_string(),
        }
    }

    /// A malformed-key error with context.
    pub fn bad_key(context: impl Into<String>) -> Self {
        JitError::BadKey {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            JitError::UnknownFunction { func: "mxm".into() }.to_string(),
            "no kernel factory registered for `mxm`"
        );
        assert!(JitError::bad_key("missing ctype")
            .to_string()
            .contains("ctype"));
        assert!(JitError::op("boom").to_string().contains("boom"));
    }
}
