//! The Section V counting argument, computed rather than quoted.
//!
//! The paper motivates JIT compilation by counting how many distinct
//! template instantiations a precompiled binary would need: four
//! independently-typed containers give `11⁴` combinations for `mxm`
//! alone; accumulators add `17·11³`; with semirings, transposition
//! flags, and mask complementing the total reaches trillions — "roughly
//! 6 trillion combinations of template parameters for mxm alone".
//! These functions reproduce that arithmetic so tests and the `figures`
//! binary can print the table with our exact operator inventory.

/// Number of supported POD scalar types (the paper's 11).
pub const NUM_TYPES: u64 = 11;
/// Number of predefined binary operators (Fig. 6's 17).
pub const NUM_BINARY_OPS: u64 = 17;
/// Number of predefined unary operators (Fig. 6's 4).
pub const NUM_UNARY_OPS: u64 = 4;

/// `mxm` touches four containers (two inputs, output, mask), each of
/// any of the 11 types: `11⁴ = 14641`.
pub fn mxm_type_combinations() -> u64 {
    NUM_TYPES.pow(4)
}

/// Accumulators are a binary op typed over two inputs and one output:
/// `17 · 11³ = 22627`.
pub fn accumulator_combinations() -> u64 {
    NUM_BINARY_OPS * NUM_TYPES.pow(3)
}

/// Typed semiring combinations as the paper counts them: an add op, a
/// mult op, and three independent domain types (two inputs, one
/// output): `17 · 17 · 11³ ≈ 3.8·10⁵` — the paper rounds its own
/// variant of this to "1020 semiring types" per type-triple
/// (untyped: 17 monoid candidates × ... the paper's exact factoring is
/// not spelled out; we expose the untyped operator pairing too).
pub fn semiring_op_pairings() -> u64 {
    NUM_BINARY_OPS * NUM_BINARY_OPS
}

/// Typed semiring combinations: operator pairing × input/output types.
pub fn semiring_combinations() -> u64 {
    semiring_op_pairings() * NUM_TYPES.pow(3)
}

/// The full `mxm` key space: container types × semirings × optional
/// accumulator (+1 for "none") × `Aᵀ` × `Bᵀ` × mask complement ×
/// replace flag. This is the "roughly 6 trillion" of Section V.
pub fn mxm_total_combinations() -> u64 {
    let types = mxm_type_combinations();
    let semirings = semiring_combinations();
    let accums = NUM_BINARY_OPS + 1; // untyped accum choice (or none)
    let structural = 2 * 2 * 2 * 2; // At, Bt, complement, replace
    types
        .saturating_mul(semirings)
        .saturating_mul(accums)
        .saturating_mul(structural)
}

/// How many instantiations a run that touches `k` distinct keys
/// actually materializes, as a fraction of the full space — the
/// quantity that makes on-demand compilation feasible.
pub fn coverage_fraction(keys_used: u64) -> f64 {
    keys_used as f64 / mxm_total_combinations() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_counts() {
        assert_eq!(mxm_type_combinations(), 14_641); // 11⁴, Section V
        assert_eq!(accumulator_combinations(), 22_627); // 17·11³, Section V
    }

    #[test]
    fn total_is_trillions() {
        let total = mxm_total_combinations();
        assert!(total > 1_000_000_000_000, "total = {total}");
        // Same order of magnitude as the paper's "roughly 6 trillion".
        assert!(total < 100_000_000_000_000, "total = {total}");
    }

    #[test]
    fn coverage_of_real_runs_is_negligible() {
        // A typical PyGB session touches tens of keys.
        let frac = coverage_fraction(100);
        assert!(frac < 1e-9);
    }

    #[test]
    fn semiring_counts_consistent() {
        assert_eq!(semiring_op_pairings(), 289);
        assert_eq!(semiring_combinations(), 289 * 1331);
    }
}
