//! Module keys — the identity of a compiled kernel.
//!
//! Fig. 9's `get_module` names modules by `hash(kwargs)`, where kwargs
//! carry the dtype of every operand and the operator parameters
//! (`-DA_TYPE=int64_t -DADD_BINOP=Plus ...`). [`ModuleKey`] is the same
//! structure: a function name plus an ordered parameter map, with a
//! stable 64-bit FNV-1a hash serving as the module name. Using our own
//! hash (not `DefaultHasher`) keeps module names stable across processes
//! so the on-disk index works, just like `.so` filenames.

use std::collections::BTreeMap;
use std::fmt;

/// The key identifying one compiled module: one GraphBLAS function
/// instantiated for specific dtypes and operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleKey {
    func: String,
    params: BTreeMap<String, String>,
}

impl ModuleKey {
    /// Start a key for `func` with no parameters.
    pub fn new(func: impl Into<String>) -> Self {
        ModuleKey {
            func: func.into(),
            params: BTreeMap::new(),
        }
    }

    /// Add (or overwrite) a parameter — a `-Dname=value` in the paper's
    /// `g++` invocation. Builder style.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    /// Add a parameter in place.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.params.insert(name.into(), value.into());
    }

    /// The function this key instantiates.
    pub fn func(&self) -> &str {
        &self.func
    }

    /// Look up a parameter.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Look up a parameter, erroring like a missing `-D` would fail the
    /// preprocessor.
    pub fn require(&self, name: &str) -> Result<&str, crate::JitError> {
        self.get(name).ok_or_else(|| {
            crate::JitError::bad_key(format!("`{}` missing parameter `{name}`", self.func))
        })
    }

    /// Iterate parameters in sorted order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// The canonical textual form: `func(k1=v1,k2=v2,...)` with sorted
    /// parameter order — what gets hashed and what the disk index
    /// records.
    pub fn canonical(&self) -> String {
        let mut s = String::with_capacity(32 + self.params.len() * 16);
        s.push_str(&self.func);
        s.push('(');
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s.push(')');
        s
    }

    /// Stable 64-bit module hash — the paper's `mod = hash(kwargs)`,
    /// used as the module (file) name. FNV-1a over the canonical form.
    pub fn module_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// The module's name on disk: hex of the hash, like the paper's
    /// `{hash}.so`.
    pub fn module_name(&self) -> String {
        format!("{:016x}", self.module_hash())
    }

    /// The `g++` command line the paper's pipeline would run for this
    /// key (Fig. 9, "gcc" stage) — emitted by the pipeline demo for
    /// exposition.
    pub fn as_gcc_command(&self) -> String {
        let mut s = format!(
            "g++ -std=c++14 operation_binding.cpp -o {}.so -DFUNC={}",
            self.module_name(),
            self.func
        );
        for (k, v) in self.params.iter() {
            s.push_str(&format!(" -D{}={}", k.to_uppercase(), v));
        }
        s
    }
}

impl fmt::Display for ModuleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mxm_key() -> ModuleKey {
        ModuleKey::new("mxm")
            .with("a_type", "int64")
            .with("b_type", "int64")
            .with("c_type", "int64")
            .with("semiring", "ArithmeticSemiring")
    }

    #[test]
    fn canonical_is_sorted_and_stable() {
        let a = ModuleKey::new("mxm").with("z", "1").with("a", "2");
        assert_eq!(a.canonical(), "mxm(a=2,z=1)");
        // Insertion order must not matter.
        let b = ModuleKey::new("mxm").with("a", "2").with("z", "1");
        assert_eq!(a, b);
        assert_eq!(a.module_hash(), b.module_hash());
    }

    #[test]
    fn hash_distinguishes_params() {
        let base = mxm_key();
        let other = mxm_key().with("c_type", "fp64");
        assert_ne!(base.module_hash(), other.module_hash());
        let other_func = ModuleKey::new("mxv").with("a_type", "int64");
        assert_ne!(base.module_hash(), other_func.module_hash());
    }

    #[test]
    fn hash_is_cross_process_stable() {
        // Pinned value: if this changes, on-disk indices would be
        // silently invalidated.
        let k = ModuleKey::new("mxm").with("a_type", "int64");
        assert_eq!(k.canonical(), "mxm(a_type=int64)");
        // FNV-1a of the canonical string, computed independently.
        let expected = "mxm(a_type=int64)"
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            });
        assert_eq!(k.module_hash(), expected);
        assert_eq!(k.module_name().len(), 16);
        assert_eq!(k.module_name(), format!("{:016x}", k.module_hash()));
    }

    #[test]
    fn require_reports_missing() {
        let k = mxm_key();
        assert_eq!(k.require("semiring").unwrap(), "ArithmeticSemiring");
        let err = k.require("mask_type").unwrap_err();
        assert!(err.to_string().contains("mask_type"));
    }

    #[test]
    fn gcc_command_shape() {
        let cmd = mxm_key().as_gcc_command();
        assert!(cmd.starts_with("g++ -std=c++14 operation_binding.cpp"));
        assert!(cmd.contains("-DA_TYPE=int64"));
        assert!(cmd.contains("-DSEMIRING=ArithmeticSemiring"));
        assert!(cmd.contains(&mxm_key().module_name()));
    }

    #[test]
    fn display_matches_canonical() {
        let k = mxm_key();
        assert_eq!(k.to_string(), k.canonical());
    }
}
