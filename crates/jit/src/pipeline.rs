//! Stage-by-stage instrumentation of the Fig. 9 execution model.
//!
//! Every dynamic dispatch walks the same stages the paper diagrams:
//! expression construction → operator/context resolution → type
//! inference → key hashing → module retrieval (with its cache outcome) →
//! invocation. A [`PipelineTrace`] records the wall time of each stage;
//! the `jit_pipeline` example and the `figures` binary render them as
//! the paper's walkthrough.

use std::time::Instant;

use crate::cache::CacheOutcome;

/// The stages of one dynamic dispatch, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Building the deferred expression object (magic-method analog).
    ExpressionConstruction,
    /// Searching the operator context stack (`with` blocks).
    ContextResolution,
    /// Inferring operand/output dtypes and upcasts.
    TypeInference,
    /// Hashing kwargs into the module key.
    KeyHash,
    /// Cache probe + (if needed) instantiation — Fig. 9's `get_module`.
    ModuleRetrieval,
    /// Calling the kernel on the operands.
    Invocation,
}

impl Stage {
    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ExpressionConstruction => "expression construction",
            Stage::ContextResolution => "context resolution",
            Stage::TypeInference => "type inference",
            Stage::KeyHash => "key hash",
            Stage::ModuleRetrieval => "module retrieval",
            Stage::Invocation => "invocation",
        }
    }
}

/// Timings for one dispatch through the pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    stages: Vec<(Stage, u64)>,
    /// The canonical key text of the dispatched module.
    pub key: String,
    /// How the module was obtained, once known.
    pub outcome: Option<CacheOutcome>,
}

impl PipelineTrace {
    /// An empty trace for the given key text.
    pub fn new(key: impl Into<String>) -> Self {
        PipelineTrace {
            stages: Vec::with_capacity(6),
            key: key.into(),
            outcome: None,
        }
    }

    /// Record that `stage` took `ns` nanoseconds.
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages.push((stage, ns));
    }

    /// Time a closure and record it under `stage`, passing its result
    /// through.
    pub fn timed<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record(stage, start.elapsed().as_nanos() as u64);
        r
    }

    /// The recorded `(stage, nanoseconds)` pairs in execution order.
    pub fn stages(&self) -> &[(Stage, u64)] {
        &self.stages
    }

    /// Nanoseconds for one stage, if recorded (sums duplicates).
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        let mut total = None;
        for &(s, ns) in &self.stages {
            if s == stage {
                *total.get_or_insert(0) += ns;
            }
        }
        total
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|&(_, ns)| ns).sum()
    }

    /// Everything except the kernel invocation — the DSL's abstraction
    /// penalty for this dispatch, the quantity Fig. 10 measures.
    pub fn overhead_ns(&self) -> u64 {
        self.stages
            .iter()
            .filter(|&&(s, _)| s != Stage::Invocation)
            .map(|&(_, ns)| ns)
            .sum()
    }

    /// Render the trace in the style of the paper's Fig. 9 walkthrough.
    pub fn render(&self) -> String {
        let mut out = format!("dispatch {}\n", self.key);
        for &(stage, ns) in &self.stages {
            out.push_str(&format!("  {:<26} {:>10} ns\n", stage.name(), ns));
        }
        if let Some(outcome) = self.outcome {
            out.push_str(&format!("  outcome: {outcome:?}\n"));
        }
        out.push_str(&format!("  total: {} ns\n", self.total_ns()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = PipelineTrace::new("mxm(a_type=fp64)");
        t.record(Stage::KeyHash, 100);
        t.record(Stage::ModuleRetrieval, 400);
        t.record(Stage::Invocation, 10_000);
        assert_eq!(t.stage_ns(Stage::KeyHash), Some(100));
        assert_eq!(t.stage_ns(Stage::ContextResolution), None);
        assert_eq!(t.total_ns(), 10_500);
        assert_eq!(t.overhead_ns(), 500);
    }

    #[test]
    fn timed_measures_and_passes_through() {
        let mut t = PipelineTrace::new("k");
        let v = t.timed(Stage::TypeInference, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.stages().len(), 1);
        assert_eq!(t.stages()[0].0, Stage::TypeInference);
    }

    #[test]
    fn duplicate_stages_sum() {
        let mut t = PipelineTrace::new("k");
        t.record(Stage::Invocation, 10);
        t.record(Stage::Invocation, 20);
        assert_eq!(t.stage_ns(Stage::Invocation), Some(30));
    }

    #[test]
    fn render_contains_stage_names() {
        let mut t = PipelineTrace::new("mxm(x=1)");
        t.record(Stage::ExpressionConstruction, 5);
        t.outcome = Some(CacheOutcome::Compiled);
        let rendered = t.render();
        assert!(rendered.contains("expression construction"));
        assert!(rendered.contains("mxm(x=1)"));
        assert!(rendered.contains("Compiled"));
    }

    #[test]
    fn stage_names_unique() {
        let all = [
            Stage::ExpressionConstruction,
            Stage::ContextResolution,
            Stage::TypeInference,
            Stage::KeyHash,
            Stage::ModuleRetrieval,
            Stage::Invocation,
        ];
        let mut names: Vec<_> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
