//! Minimal JSON reading/writing for the persistent module index (and
//! for anything else in the workspace that needs to emit JSON without a
//! serialization framework — the build environment is offline, so there
//! is no serde).
//!
//! Supports the full JSON value grammar on input; writing is done with
//! [`escape_string`] plus ordinary formatting at the call site.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the module index only stores
    /// values ≤ 2^53 so this is lossless in practice).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, key-sorted.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, text: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".into())
}

/// Escape `text` as the body of a JSON string (no surrounding quotes).
pub fn escape_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_index_shape() {
        let text = r#"[
  {
    "compile_ns": 1200,
    "key": "mxm(a_type=fp64)",
    "module": "00ab12cd34ef5678"
  }
]"#;
        let v = parse(text).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("module").unwrap().as_str(),
            Some("00ab12cd34ef5678")
        );
        assert_eq!(arr[0].get("compile_ns").unwrap().as_u64(), Some(1200));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json at all {{{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[] trailing").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote \" slash \\ newline \n tab \t unicode µ";
        let parsed = parse(&format!("\"{}\"", escape_string(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5").unwrap(), Value::Number(-12.5));
        assert_eq!(parse("\"x\"").unwrap(), Value::String("x".into()));
    }
}
