//! The kernel-factory registry: which operations the "binding source"
//! knows how to instantiate.
//!
//! The paper's `operation_binding.cpp` is one templated translation unit
//! that can be preprocessed into any GraphBLAS operation. Here, each
//! operation contributes a *factory* — a function from a [`ModuleKey`]
//! to a monomorphized [`Kernel`]. The `pygb` crate registers factories
//! for every Table I operation at startup; asking for an unregistered
//! function is [`JitError::UnknownFunction`].

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::JitError;
use crate::kernel::Kernel;
use crate::key::ModuleKey;

/// A kernel factory: instantiate a kernel for a concrete key.
pub type Factory = fn(&ModuleKey) -> Result<Box<dyn Kernel>, JitError>;

/// Registry mapping function names to factories.
#[derive(Default)]
pub struct FactoryRegistry {
    factories: RwLock<HashMap<String, Factory>>,
}

impl FactoryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the factory for `func`.
    pub fn register(&self, func: impl Into<String>, factory: Factory) {
        self.factories.write().insert(func.into(), factory);
    }

    /// Look up the factory for `func`.
    pub fn get(&self, func: &str) -> Result<Factory, JitError> {
        self.factories
            .read()
            .get(func)
            .copied()
            .ok_or_else(|| JitError::UnknownFunction { func: func.into() })
    }

    /// Instantiate a kernel for `key` through its function's factory —
    /// the "g++" step of the pipeline.
    pub fn instantiate(&self, key: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
        (self.get(key.func())?)(key)
    }

    /// Names of all registered functions, sorted.
    pub fn registered_functions(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.factories.read().len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;

    fn make_noop(_: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
        Ok(Box::new(FnKernel::new("noop", "noop", |_: &mut ()| Ok(()))))
    }

    #[test]
    fn register_and_instantiate() {
        let reg = FactoryRegistry::new();
        assert!(reg.is_empty());
        reg.register("noop", make_noop);
        let key = ModuleKey::new("noop");
        let kernel = reg.instantiate(&key).unwrap();
        let mut args = ();
        kernel.invoke(&mut args).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.registered_functions(), vec!["noop".to_string()]);
    }

    #[test]
    fn unknown_function_errors() {
        let reg = FactoryRegistry::new();
        let err = match reg.instantiate(&ModuleKey::new("mystery")) {
            Err(e) => e,
            Ok(_) => panic!("expected UnknownFunction"),
        };
        assert_eq!(
            err,
            JitError::UnknownFunction {
                func: "mystery".into()
            }
        );
    }

    #[test]
    fn reregistering_replaces() {
        fn failing(_: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
            Err(JitError::bad_key("always fails"))
        }
        let reg = FactoryRegistry::new();
        reg.register("op", failing);
        assert!(reg.instantiate(&ModuleKey::new("op")).is_err());
        reg.register("op", make_noop);
        assert!(reg.instantiate(&ModuleKey::new("op")).is_ok());
        assert_eq!(reg.len(), 1);
    }
}
