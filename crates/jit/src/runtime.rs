//! The process-wide JIT runtime: registry + cache + trace buffer.
//!
//! Mirrors the module-level globals of the paper's Python implementation
//! (`modules = {}` and the import machinery). A [`JitRuntime`] can also
//! be constructed standalone for tests and benchmarks that need
//! isolation from the global cache.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::RwLock;

use crate::cache::ModuleCache;
use crate::error::JitError;
use crate::key::ModuleKey;
use crate::pipeline::{PipelineTrace, Stage};
use crate::registry::{Factory, FactoryRegistry};

/// How many dispatch traces the ring buffer retains.
const TRACE_CAPACITY: usize = 256;

/// Registry + cache + trace collection for one "interpreter".
pub struct JitRuntime {
    registry: FactoryRegistry,
    cache: ModuleCache,
    traces: RwLock<VecDeque<PipelineTrace>>,
    tracing: AtomicBool,
}

impl JitRuntime {
    /// A runtime with a purely in-memory module cache.
    pub fn in_memory() -> Self {
        JitRuntime {
            registry: FactoryRegistry::new(),
            cache: ModuleCache::in_memory(),
            traces: RwLock::new(VecDeque::new()),
            tracing: AtomicBool::new(false),
        }
    }

    /// A runtime whose module index persists under `dir`.
    pub fn with_disk_index(dir: impl AsRef<std::path::Path>) -> Self {
        JitRuntime {
            registry: FactoryRegistry::new(),
            cache: ModuleCache::with_disk_index(dir),
            traces: RwLock::new(VecDeque::new()),
            tracing: AtomicBool::new(false),
        }
    }

    /// The kernel-factory registry.
    pub fn registry(&self) -> &FactoryRegistry {
        &self.registry
    }

    /// The module cache.
    pub fn cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Register a factory for `func` (convenience passthrough).
    pub fn register(&self, func: impl Into<String>, factory: Factory) {
        self.registry.register(func, factory);
    }

    /// Enable or disable trace collection. Off by default; dispatch
    /// still times nothing extra when off beyond two atomics.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether traces are being collected.
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Drain the collected traces (oldest first).
    pub fn take_traces(&self) -> Vec<PipelineTrace> {
        self.traces.write().drain(..).collect()
    }

    /// The full dispatch path: resolve → retrieve module → invoke.
    ///
    /// `trace` carries stage timings the *caller* has already recorded
    /// (expression construction, context resolution, type inference);
    /// this function appends the key-hash, module-retrieval, and
    /// invocation stages, then files the trace if tracing is enabled.
    pub fn dispatch(
        &self,
        key: &ModuleKey,
        args: &mut dyn Any,
        mut trace: PipelineTrace,
    ) -> Result<(), JitError> {
        let _sp = pygb_obs::span_labeled(pygb_obs::Cat::Dispatch, || {
            format!("dispatch/{}", key.func())
        });

        // Key hashing (the paper's `hash(kwargs)`).
        let start = Instant::now();
        let _hash = key.module_hash();
        trace.record(Stage::KeyHash, start.elapsed().as_nanos() as u64);

        // Module retrieval (cache probe + optional instantiation).
        let start = Instant::now();
        let (kernel, outcome) = self
            .cache
            .get_or_compile(key, |k| self.registry.instantiate(k))?;
        trace.record(Stage::ModuleRetrieval, start.elapsed().as_nanos() as u64);
        trace.outcome = Some(outcome);

        // Invocation.
        let start = Instant::now();
        let result = kernel.invoke(args);
        let invoke_ns = start.elapsed().as_nanos() as u64;
        trace.record(Stage::Invocation, invoke_ns);
        self.cache.stats().record_invocation();
        if pygb_obs::enabled() {
            pygb_obs::registry()
                .histogram(&format!("dispatch/{}", key.func()))
                .record(invoke_ns);
        }

        if self.tracing() {
            let mut traces = self.traces.write();
            if traces.len() == TRACE_CAPACITY {
                traces.pop_front();
            }
            traces.push_back(trace);
        }
        result
    }
}

/// The process-global runtime, created on first use. Uses a persistent
/// module index under `$PYGB_CACHE_DIR` when that variable is set
/// (opt-in, like the paper's on-disk `.so` cache); otherwise the cache
/// lives in memory only.
pub fn global() -> &'static Arc<JitRuntime> {
    static GLOBAL: OnceLock<Arc<JitRuntime>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let runtime = match std::env::var_os("PYGB_CACHE_DIR") {
            Some(dir) if !dir.is_empty() => JitRuntime::with_disk_index(dir),
            _ => JitRuntime::in_memory(),
        };
        // The global runtime's counters feed the unified metrics
        // registry (standalone runtimes stay private to their tests),
        // and `PYGB_TRACE=<path>` turns tracing on at first dispatch.
        pygb_obs::registry().register_source("jit", runtime.cache().stats_arc());
        pygb_obs::init_from_env();
        Arc::new(runtime)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheOutcome;
    use crate::kernel::{FnKernel, Kernel};

    struct DoubleArgs {
        x: i32,
    }

    fn double_factory(_: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
        Ok(Box::new(FnKernel::new(
            "double",
            "double<i32>",
            |a: &mut DoubleArgs| {
                a.x *= 2;
                Ok(())
            },
        )))
    }

    #[test]
    fn dispatch_runs_kernel() {
        let rt = JitRuntime::in_memory();
        rt.register("double", double_factory);
        let key = ModuleKey::new("double").with("t", "int32");
        let mut args = DoubleArgs { x: 21 };
        rt.dispatch(&key, &mut args, PipelineTrace::new(key.canonical()))
            .unwrap();
        assert_eq!(args.x, 42);
    }

    #[test]
    fn traces_collected_when_enabled() {
        let rt = JitRuntime::in_memory();
        rt.register("double", double_factory);
        rt.set_tracing(true);
        let key = ModuleKey::new("double");
        let mut args = DoubleArgs { x: 1 };
        rt.dispatch(&key, &mut args, PipelineTrace::new(key.canonical()))
            .unwrap();
        rt.dispatch(&key, &mut args, PipelineTrace::new(key.canonical()))
            .unwrap();
        let traces = rt.take_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].outcome, Some(CacheOutcome::Compiled));
        assert_eq!(traces[1].outcome, Some(CacheOutcome::MemoryHit));
        assert!(traces[0].stage_ns(Stage::Invocation).is_some());
        // Drained.
        assert!(rt.take_traces().is_empty());
    }

    #[test]
    fn traces_not_collected_when_disabled() {
        let rt = JitRuntime::in_memory();
        rt.register("double", double_factory);
        let key = ModuleKey::new("double");
        let mut args = DoubleArgs { x: 1 };
        rt.dispatch(&key, &mut args, PipelineTrace::new(key.canonical()))
            .unwrap();
        assert!(rt.take_traces().is_empty());
    }

    #[test]
    fn unknown_function_fails_dispatch() {
        let rt = JitRuntime::in_memory();
        let key = ModuleKey::new("nothing");
        let mut args = ();
        let err = rt
            .dispatch(&key, &mut args, PipelineTrace::new("x"))
            .unwrap_err();
        assert!(matches!(err, JitError::UnknownFunction { .. }));
    }

    #[test]
    fn global_is_singleton() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(a, b));
    }
}
