//! Property tests for module-key canonicalization — the invariants the
//! two-level cache depends on: insertion order must not matter, every
//! parameter must matter, and hashes must be stable.

use proptest::prelude::*;

use pygb_jit::ModuleKey;

fn kv_pairs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9_]{1,12}"), 0..8).prop_map(|v| {
        // Deduplicate names (later writes win in a map; make it explicit).
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect()
    })
}

proptest! {
    #[test]
    fn insertion_order_is_irrelevant(pairs in kv_pairs(), seed in any::<u64>()) {
        let forward = pairs.iter().fold(ModuleKey::new("op"), |k, (n, v)| k.with(n, v));
        // A deterministic shuffle.
        let mut shuffled = pairs.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let backward = shuffled.iter().fold(ModuleKey::new("op"), |k, (n, v)| k.with(n, v));
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.module_hash(), backward.module_hash());
        prop_assert_eq!(forward.canonical(), backward.canonical());
    }

    #[test]
    fn every_parameter_value_matters(pairs in kv_pairs()) {
        prop_assume!(!pairs.is_empty());
        let base = pairs.iter().fold(ModuleKey::new("op"), |k, (n, v)| k.with(n, v));
        for (i, (name, value)) in pairs.iter().enumerate() {
            let mut mutated = pairs.clone();
            mutated[i] = (name.clone(), format!("{value}X"));
            let other = mutated.iter().fold(ModuleKey::new("op"), |k, (n, v)| k.with(n, v));
            prop_assert_ne!(base.module_hash(), other.module_hash(), "param {}", name);
        }
    }

    #[test]
    fn function_name_matters(pairs in kv_pairs()) {
        let a = pairs.iter().fold(ModuleKey::new("mxm"), |k, (n, v)| k.with(n, v));
        let b = pairs.iter().fold(ModuleKey::new("mxv"), |k, (n, v)| k.with(n, v));
        prop_assert_ne!(a.module_hash(), b.module_hash());
    }

    #[test]
    fn module_name_is_hash_hex(pairs in kv_pairs()) {
        let k = pairs.iter().fold(ModuleKey::new("op"), |key, (n, v)| key.with(n, v));
        prop_assert_eq!(k.module_name(), format!("{:016x}", k.module_hash()));
        prop_assert_eq!(k.module_name().len(), 16);
    }

    #[test]
    fn overwriting_a_parameter_keeps_one_entry(name in "[a-z]{1,8}") {
        let k = ModuleKey::new("op").with(&name, "1").with(&name, "2");
        prop_assert_eq!(k.param_count(), 1);
        prop_assert_eq!(k.get(&name), Some("2"));
    }

    #[test]
    fn require_matches_get(pairs in kv_pairs()) {
        let k = pairs.iter().fold(ModuleKey::new("op"), |key, (n, v)| key.with(n, v));
        for (name, value) in &pairs {
            prop_assert_eq!(k.require(name).unwrap(), value.as_str());
        }
        prop_assert!(k.require("definitely_not_a_param").is_err());
    }
}
