//! Section VIII future work, demonstrated on the substrate: "One
//! interesting prospect is to define sets as the data type of a matrix,
//! and a semiring that performs set unions and intersections."
//!
//! Because GBTL-rs kernels are generic over [`gbtl::Scalar`], a custom
//! scalar domain drops in without touching the library: here a 64-bit
//! bitset whose ⊕ is set union and whose ⊗ is set intersection.

use std::fmt;

use gbtl::ops::monoid::GenMonoid;
use gbtl::ops::semiring::GenSemiring;
use gbtl::ops::BinaryOp as BinaryOpTrait;
use gbtl::prelude::*;

/// A set over the universe `{0, …, 63}`, stored as a bitmask.
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default)]
struct SetScalar(u64);

impl SetScalar {
    fn of(items: &[u32]) -> SetScalar {
        SetScalar(items.iter().fold(0, |m, &i| m | (1 << i)))
    }
    fn len(self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Display for SetScalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{0x{:x}}}", self.0)
    }
}

impl Scalar for SetScalar {
    const NAME: &'static str = "set64";
    const IS_FLOAT: bool = false;
    const IS_BOOL: bool = false;
    const IS_SIGNED_INT: bool = false;
    const BITS: u32 = 64;

    fn zero() -> Self {
        SetScalar(0) // ∅ — the union identity and intersection annihilator
    }
    fn one() -> Self {
        SetScalar(u64::MAX) // the full universe — intersection identity
    }
    fn min_identity() -> Self {
        SetScalar(u64::MAX)
    }
    fn max_identity() -> Self {
        SetScalar(0)
    }
    fn s_add(self, b: Self) -> Self {
        SetScalar(self.0 | b.0) // union
    }
    fn s_sub(self, b: Self) -> Self {
        SetScalar(self.0 & !b.0) // set difference
    }
    fn s_mul(self, b: Self) -> Self {
        SetScalar(self.0 & b.0) // intersection
    }
    fn s_div(self, b: Self) -> Self {
        SetScalar(self.0 & !b.0)
    }
    fn s_min(self, b: Self) -> Self {
        SetScalar(self.0 & b.0)
    }
    fn s_max(self, b: Self) -> Self {
        SetScalar(self.0 | b.0)
    }
    fn s_ainv(self) -> Self {
        SetScalar(!self.0) // complement
    }
    fn s_minv(self) -> Self {
        SetScalar(!self.0)
    }
    fn to_bool(self) -> bool {
        self.0 != 0
    }
    fn from_bool(b: bool) -> Self {
        if b {
            SetScalar(u64::MAX)
        } else {
            SetScalar(0)
        }
    }
    fn to_f64(self) -> f64 {
        self.0 as f64
    }
    fn from_f64(v: f64) -> Self {
        SetScalar(v as u64)
    }
    fn to_i64(self) -> i64 {
        self.0 as i64
    }
    fn from_i64(v: i64) -> Self {
        SetScalar(v as u64)
    }
}

/// The union/intersection semiring of Section VIII.
fn set_semiring() -> impl Semiring<SetScalar> {
    let union_monoid = GenMonoid::new(
        gbtl::ops::binary::Plus::<SetScalar>::new(), // |
        SetScalar::zero(),
    );
    GenSemiring::new(union_monoid, gbtl::ops::binary::Times::<SetScalar>::new())
    // &
}

#[test]
fn semiring_laws_hold_for_sets() {
    let sr = set_semiring();
    let a = SetScalar::of(&[1, 2, 3]);
    let b = SetScalar::of(&[3, 4]);
    let c = SetScalar::of(&[2, 4, 9]);
    // ⊕ identity & commutativity.
    assert_eq!(sr.add(a, sr.zero()), a);
    assert_eq!(sr.add(a, b), sr.add(b, a));
    // ⊗ annihilated by ∅.
    assert_eq!(sr.mult(a, sr.zero()), sr.zero());
    // Distributivity: a ∩ (b ∪ c) = (a ∩ b) ∪ (a ∩ c).
    assert_eq!(
        sr.mult(a, sr.add(b, c)),
        sr.add(sr.mult(a, b), sr.mult(a, c))
    );
}

#[test]
fn mxv_computes_reachable_label_sets() {
    // Each edge carries a set of labels; wᵢ = ⋃ⱼ (A(i,j) ∩ u(j))
    // collects which labels can reach vertex i through a labeled edge.
    let a = Matrix::from_triples(
        3,
        3,
        [
            (0usize, 1usize, SetScalar::of(&[0, 1])),
            (0, 2, SetScalar::of(&[2])),
            (1, 2, SetScalar::of(&[1, 2])),
        ],
    )
    .unwrap();
    let u = Vector::from_pairs(
        3,
        [
            (1usize, SetScalar::of(&[1, 5])),
            (2, SetScalar::of(&[1, 2])),
        ],
    )
    .unwrap();
    let mut w = Vector::<SetScalar>::new(3);
    operations::mxv(
        &mut w,
        &NoMask,
        NoAccumulate,
        &set_semiring(),
        &a,
        &u,
        Replace(false),
    )
    .unwrap();
    // Row 0: ({0,1} ∩ {1,5}) ∪ ({2} ∩ {1,2}) = {1} ∪ {2} = {1,2}.
    assert_eq!(w.get(0), Some(SetScalar::of(&[1, 2])));
    // Row 1: {1,2} ∩ {1,2} = {1,2}.
    assert_eq!(w.get(1), Some(SetScalar::of(&[1, 2])));
    assert_eq!(w.get(2), None);
}

#[test]
fn mxm_propagates_sets_two_hops() {
    let edge = |s: &[u32]| SetScalar::of(s);
    let a = Matrix::from_triples(2, 2, [(0usize, 1usize, edge(&[0, 1, 2]))]).unwrap();
    let b = Matrix::from_triples(2, 2, [(1usize, 0usize, edge(&[1, 2, 3]))]).unwrap();
    let mut c = Matrix::<SetScalar>::new(2, 2);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &set_semiring(),
        &a,
        &b,
        Replace(false),
    )
    .unwrap();
    // Labels surviving both hops: {0,1,2} ∩ {1,2,3} = {1,2}.
    assert_eq!(c.get(0, 0), Some(edge(&[1, 2])));
    assert_eq!(c.get(0, 0).unwrap().len(), 2);
}

#[test]
fn reduce_unions_all_sets() {
    let u = Vector::from_pairs(
        4,
        [
            (0usize, SetScalar::of(&[0])),
            (2, SetScalar::of(&[5, 9])),
            (3, SetScalar::of(&[9, 63])),
        ],
    )
    .unwrap();
    let union_monoid = GenMonoid::new(
        gbtl::ops::binary::Plus::<SetScalar>::new(),
        SetScalar::zero(),
    );
    let total = operations::reduce_vector_scalar(&union_monoid, &u);
    assert_eq!(total, SetScalar::of(&[0, 5, 9, 63]));
    assert_eq!(total.len(), 4);
}

#[test]
fn masks_and_apply_work_on_sets() {
    // A set-valued container can even be a mask (∅ is falsy).
    let m = Vector::from_pairs(2, [(0usize, SetScalar::of(&[1])), (1, SetScalar::zero())]).unwrap();
    use gbtl::mask::VectorMask;
    assert!(m.allows(0));
    assert!(!m.allows(1)); // stored empty set is falsy

    // apply with complement (AdditiveInverse = set complement here).
    let mut w = Vector::<SetScalar>::new(2);
    operations::apply_vector(
        &mut w,
        &NoMask,
        NoAccumulate,
        gbtl::ops::unary::AdditiveInverse::new(),
        &m,
        Replace(false),
    )
    .unwrap();
    assert_eq!(w.get(0), Some(SetScalar(!(1u64 << 1))));
}

#[test]
fn generic_functors_compose_with_custom_scalars() {
    // The Fig. 6 functors are generic: Min/Max become ∩/∪ on sets.
    let min = gbtl::ops::binary::Min::<SetScalar>::new();
    let a = SetScalar::of(&[1, 2]);
    let b = SetScalar::of(&[2, 3]);
    assert_eq!(min.apply(a, b), SetScalar::of(&[2]));
}
