//! Differential tests: every optimized operation kernel vs. the dense
//! reference oracle in [`gbtl::reference`].
//!
//! Each case generates random sparse operands (including stored-falsy
//! mask entries), then runs the optimized kernel and the naive oracle
//! side by side across every decoration combination — no mask /
//! structural mask / complemented mask × no accumulator / Plus
//! accumulator × merge / replace — and across the operand orientations
//! (plain, transposed, dual) that drive kernel selection. Results must
//! be *identical*, stored pattern and values: the masked SpGEMM, the
//! mask-guided dot-product SpGEMM, and the push/pull SpMV paths all
//! combine contributions in the same k-ascending order as the oracle,
//! so even floating-point outputs match bitwise.

use std::collections::BTreeMap;

use proptest::prelude::*;

use gbtl::ops::accum::Accumulate;
use gbtl::prelude::*;
use gbtl::reference;

const N: usize = 8;

type VecModel = BTreeMap<usize, i64>;
type MatModel = BTreeMap<(usize, usize), i64>;

fn vec_model() -> impl Strategy<Value = VecModel> {
    proptest::collection::btree_map(0..N, -8i64..9, 0..N)
}

fn mat_model() -> impl Strategy<Value = MatModel> {
    proptest::collection::btree_map((0..N, 0..N), -8i64..9, 0..(N * N / 2))
}

/// Mask models draw values from {0, 1} so stored-but-falsy entries are
/// exercised (a stored 0 must NOT enable a position).
fn vec_mask_model() -> impl Strategy<Value = VecModel> {
    proptest::collection::btree_map(0..N, 0i64..2, 0..N)
}

fn mat_mask_model() -> impl Strategy<Value = MatModel> {
    proptest::collection::btree_map((0..N, 0..N), 0i64..2, 0..(N * N / 2))
}

fn to_vector(m: &VecModel) -> Vector<i64> {
    Vector::from_pairs(N, m.iter().map(|(&i, &v)| (i, v))).unwrap()
}

fn to_matrix(m: &MatModel) -> Matrix<i64> {
    Matrix::from_triples(N, N, m.iter().map(|(&(i, j), &v)| (i, j, v))).unwrap()
}

/// A sized vector built from the model's entries below `len`.
fn to_sized_vector(m: &VecModel, len: usize) -> Vector<i64> {
    Vector::from_pairs(
        len,
        m.iter().filter(|&(&i, _)| i < len).map(|(&i, &v)| (i, v)),
    )
    .unwrap()
}

fn op_err(ctx: &str) -> impl Fn(GblasError) -> TestCaseError + '_ {
    move |e| TestCaseError::fail(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------
// mxv / vxm
// ---------------------------------------------------------------------

fn spmv_case<T, Mk, S>(
    w: &Vector<T>,
    mask: &Mk,
    a: MatrixArg<'_, T>,
    u: &Vector<T>,
    sr: &S,
    vxm_form: bool,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    S: Semiring<T>,
{
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            let r = if vxm_form {
                operations::vxm(&mut got, mask, NoAccumulate, sr, u, a, replace)
            } else {
                operations::mxv(&mut got, mask, NoAccumulate, sr, a, u, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if vxm_form {
                reference::vxm(w, mask, &NoAccumulate, sr, u, a, replace)
            } else {
                reference::mxv(w, mask, &NoAccumulate, sr, a, u, replace)
            };
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<T>::new());
            let mut got = w.clone();
            let r = if vxm_form {
                operations::vxm(&mut got, mask, acc, sr, u, a, replace)
            } else {
                operations::mxv(&mut got, mask, acc, sr, a, u, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if vxm_form {
                reference::vxm(w, mask, &acc, sr, u, a, replace)
            } else {
                reference::mxv(w, mask, &acc, sr, a, u, replace)
            };
            prop_assert_eq!(&got, &want, "{} plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn run_spmv_suite<T: Scalar, S: Semiring<T>>(
    sr: &S,
    am: &MatModel,
    um: &VecModel,
    wm: &VecModel,
    km: &VecModel,
) -> TestCaseResult {
    let a = to_matrix(am).cast::<T>();
    let at = a.transpose_owned();
    let u = to_vector(um).cast::<T>();
    let w = to_vector(wm).cast::<T>();
    let mask = to_vector(km);
    // Three spellings of the same logical operand `a`: plain (pull),
    // transposed (push), dual (density-switched).
    let args = [
        ("plain", MatrixArg::Plain(&a)),
        ("transposed", transpose(&at)),
        ("dual", dual(&a, &at)),
    ];
    for vxm_form in [false, true] {
        let name = if vxm_form { "vxm" } else { "mxv" };
        for (orient, arg) in args {
            let ctx = format!("{name}/{orient}");
            spmv_case(&w, &NoMask, arg, &u, sr, vxm_form, &format!("{ctx}/nomask"))?;
            spmv_case(&w, &mask, arg, &u, sr, vxm_form, &format!("{ctx}/mask"))?;
            spmv_case(
                &w,
                &complement(&mask),
                arg,
                &u,
                sr,
                vxm_form,
                &format!("{ctx}/comp"),
            )?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// mxm
// ---------------------------------------------------------------------

fn mxm_case<T, Mk>(
    c: &Matrix<T>,
    mask: &Mk,
    a: MatrixArg<'_, T>,
    b: MatrixArg<'_, T>,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
{
    let sr = ArithmeticSemiring::<T>::new();
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = c.clone();
            operations::mxm(&mut got, mask, NoAccumulate, &sr, a, b, replace)
                .map_err(op_err(ctx))?;
            let want = reference::mxm(c, mask, &NoAccumulate, &sr, a, b, replace);
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<T>::new());
            let mut got = c.clone();
            operations::mxm(&mut got, mask, acc, &sr, a, b, replace).map_err(op_err(ctx))?;
            let want = reference::mxm(c, mask, &acc, &sr, a, b, replace);
            prop_assert_eq!(&got, &want, "{} plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn run_mxm_suite<T: Scalar>(
    am: &MatModel,
    bm: &MatModel,
    cm: &MatModel,
    km: &MatModel,
) -> TestCaseResult {
    let a = to_matrix(am).cast::<T>();
    let at = a.transpose_owned();
    let b = to_matrix(bm).cast::<T>();
    let bt = b.transpose_owned();
    let c = to_matrix(cm).cast::<T>();
    let mask = to_matrix(km);
    let a_args = [
        ("a", MatrixArg::Plain(&a)),
        ("aT", transpose(&at)),
        ("aD", dual(&a, &at)),
    ];
    // `bT` with a structural mask selects the dot-product kernel; the
    // other orientations select masked/unmasked Gustavson.
    let b_args = [
        ("b", MatrixArg::Plain(&b)),
        ("bT", transpose(&bt)),
        ("bD", dual(&b, &bt)),
    ];
    for (an, aarg) in a_args {
        for (bn, barg) in b_args {
            let ctx = format!("mxm/{an}x{bn}");
            mxm_case(&c, &NoMask, aarg, barg, &format!("{ctx}/nomask"))?;
            mxm_case(&c, &mask, aarg, barg, &format!("{ctx}/mask"))?;
            mxm_case(&c, &complement(&mask), aarg, barg, &format!("{ctx}/comp"))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Element-wise, apply, reduce
// ---------------------------------------------------------------------

fn ewise_vec_case<T, Mk, Op>(
    w: &Vector<T>,
    mask: &Mk,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    add: bool,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    Op: BinaryOp<T> + Copy,
{
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            let r = if add {
                operations::e_wise_add_vector(&mut got, mask, NoAccumulate, op, u, v, replace)
            } else {
                operations::e_wise_mult_vector(&mut got, mask, NoAccumulate, op, u, v, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if add {
                reference::e_wise_add_vector(w, mask, &NoAccumulate, op, u, v, replace)
            } else {
                reference::e_wise_mult_vector(w, mask, &NoAccumulate, op, u, v, replace)
            };
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<T>::new());
            let mut got = w.clone();
            let r = if add {
                operations::e_wise_add_vector(&mut got, mask, acc, op, u, v, replace)
            } else {
                operations::e_wise_mult_vector(&mut got, mask, acc, op, u, v, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if add {
                reference::e_wise_add_vector(w, mask, &acc, op, u, v, replace)
            } else {
                reference::e_wise_mult_vector(w, mask, &acc, op, u, v, replace)
            };
            prop_assert_eq!(&got, &want, "{} plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn ewise_mat_case<T, Mk>(
    c: &Matrix<T>,
    mask: &Mk,
    a: MatrixArg<'_, T>,
    b: MatrixArg<'_, T>,
    add: bool,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
{
    let op = Min::<T>::new();
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = c.clone();
            let r = if add {
                operations::e_wise_add_matrix(&mut got, mask, NoAccumulate, op, a, b, replace)
            } else {
                operations::e_wise_mult_matrix(&mut got, mask, NoAccumulate, op, a, b, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if add {
                reference::e_wise_add_matrix(c, mask, &NoAccumulate, op, a, b, replace)
            } else {
                reference::e_wise_mult_matrix(c, mask, &NoAccumulate, op, a, b, replace)
            };
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<T>::new());
            let mut got = c.clone();
            let r = if add {
                operations::e_wise_add_matrix(&mut got, mask, acc, op, a, b, replace)
            } else {
                operations::e_wise_mult_matrix(&mut got, mask, acc, op, a, b, replace)
            };
            r.map_err(op_err(ctx))?;
            let want = if add {
                reference::e_wise_add_matrix(c, mask, &acc, op, a, b, replace)
            } else {
                reference::e_wise_mult_matrix(c, mask, &acc, op, a, b, replace)
            };
            prop_assert_eq!(&got, &want, "{} plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn apply_vec_case<T, Mk, F>(
    w: &Vector<T>,
    mask: &Mk,
    f: F,
    u: &Vector<T>,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    F: UnaryOp<T> + Copy,
{
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            operations::apply_vector(&mut got, mask, NoAccumulate, f, u, replace)
                .map_err(op_err(ctx))?;
            let want = reference::apply_vector(w, mask, &NoAccumulate, f, u, replace);
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<T>::new());
            let mut got = w.clone();
            operations::apply_vector(&mut got, mask, acc, f, u, replace).map_err(op_err(ctx))?;
            let want = reference::apply_vector(w, mask, &acc, f, u, replace);
            prop_assert_eq!(&got, &want, "{} plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn apply_mat_case<T, Mk, F>(
    c: &Matrix<T>,
    mask: &Mk,
    f: F,
    a: MatrixArg<'_, T>,
    ctx: &str,
) -> TestCaseResult
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    F: UnaryOp<T> + Copy,
{
    for replace in [Replace(false), Replace(true)] {
        let mut got = c.clone();
        operations::apply_matrix(&mut got, mask, NoAccumulate, f, a, replace)
            .map_err(op_err(ctx))?;
        let want = reference::apply_matrix(c, mask, &NoAccumulate, f, a, replace);
        prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
    }
    Ok(())
}

fn reduce_case<T, Mk>(w: &Vector<T>, mask: &Mk, a: MatrixArg<'_, T>, ctx: &str) -> TestCaseResult
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
{
    let monoid = PlusMonoid::<T>::new();
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            operations::reduce_matrix_to_vector(&mut got, mask, NoAccumulate, &monoid, a, replace)
                .map_err(op_err(ctx))?;
            let want =
                reference::reduce_matrix_to_vector(w, mask, &NoAccumulate, &monoid, a, replace);
            prop_assert_eq!(&got, &want, "{} no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Min::<T>::new());
            let mut got = w.clone();
            operations::reduce_matrix_to_vector(&mut got, mask, acc, &monoid, a, replace)
                .map_err(op_err(ctx))?;
            let want = reference::reduce_matrix_to_vector(w, mask, &acc, &monoid, a, replace);
            prop_assert_eq!(&got, &want, "{} min-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// assign / extract
// ---------------------------------------------------------------------

fn assign_case<Mk>(
    w: &Vector<i64>,
    mask: &Mk,
    u: &Vector<i64>,
    ix: &Indices,
    ctx: &str,
) -> TestCaseResult
where
    Mk: VectorMask + ?Sized,
{
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            operations::assign_vector(&mut got, mask, NoAccumulate, u, ix, replace)
                .map_err(op_err(ctx))?;
            let want = reference::assign_vector(w, mask, &NoAccumulate, u, ix, replace);
            prop_assert_eq!(&got, &want, "{} assign no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<i64>::new());
            let mut got = w.clone();
            operations::assign_vector(&mut got, mask, acc, u, ix, replace).map_err(op_err(ctx))?;
            let want = reference::assign_vector(w, mask, &acc, u, ix, replace);
            prop_assert_eq!(&got, &want, "{} assign plus-accum z={}", ctx, replace.0);
        }
        {
            let mut got = w.clone();
            operations::assign_vector_constant(&mut got, mask, NoAccumulate, 42, ix, replace)
                .map_err(op_err(ctx))?;
            let want = reference::assign_vector_constant(w, mask, &NoAccumulate, 42, ix, replace);
            prop_assert_eq!(&got, &want, "{} const no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<i64>::new());
            let mut got = w.clone();
            operations::assign_vector_constant(&mut got, mask, acc, 42, ix, replace)
                .map_err(op_err(ctx))?;
            let want = reference::assign_vector_constant(w, mask, &acc, 42, ix, replace);
            prop_assert_eq!(&got, &want, "{} const plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

fn extract_case<Mk>(
    w: &Vector<i64>,
    mask: &Mk,
    u: &Vector<i64>,
    ix: &Indices,
    ctx: &str,
) -> TestCaseResult
where
    Mk: VectorMask + ?Sized,
{
    for replace in [Replace(false), Replace(true)] {
        {
            let mut got = w.clone();
            operations::extract_vector(&mut got, mask, NoAccumulate, u, ix, replace)
                .map_err(op_err(ctx))?;
            let want = reference::extract_vector(w, mask, &NoAccumulate, u, ix, replace);
            prop_assert_eq!(&got, &want, "{} extract no-accum z={}", ctx, replace.0);
        }
        {
            let acc = Accumulate(Plus::<i64>::new());
            let mut got = w.clone();
            operations::extract_vector(&mut got, mask, acc, u, ix, replace).map_err(op_err(ctx))?;
            let want = reference::extract_vector(w, mask, &acc, u, ix, replace);
            prop_assert_eq!(&got, &want, "{} extract plus-accum z={}", ctx, replace.0);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The properties
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn spmv_matches_oracle(a in mat_model(), u in vec_model(), w in vec_model(), k in vec_mask_model()) {
        run_spmv_suite(&ArithmeticSemiring::<i64>::new(), &a, &u, &w, &k)?;
    }

    #[test]
    fn spmv_minplus_matches_oracle(a in mat_model(), u in vec_model(), w in vec_model(), k in vec_mask_model()) {
        run_spmv_suite(&MinPlusSemiring::<i64>::new(), &a, &u, &w, &k)?;
    }

    #[test]
    fn spmv_oracle_dtype_sweep(a in mat_model(), u in vec_model(), w in vec_model(), k in vec_mask_model()) {
        run_spmv_suite(&ArithmeticSemiring::<f64>::new(), &a, &u, &w, &k)?;
        run_spmv_suite(&ArithmeticSemiring::<i32>::new(), &a, &u, &w, &k)?;
        run_spmv_suite(&ArithmeticSemiring::<u8>::new(), &a, &u, &w, &k)?;
        run_spmv_suite(&LogicalSemiring::<bool>::new(), &a, &u, &w, &k)?;
    }

    #[test]
    fn spgemm_matches_oracle(a in mat_model(), b in mat_model(), c in mat_model(), k in mat_mask_model()) {
        run_mxm_suite::<i64>(&a, &b, &c, &k)?;
    }

    #[test]
    fn spgemm_oracle_dtype_sweep(a in mat_model(), b in mat_model(), c in mat_model(), k in mat_mask_model()) {
        run_mxm_suite::<f64>(&a, &b, &c, &k)?;
        run_mxm_suite::<i32>(&a, &b, &c, &k)?;
        run_mxm_suite::<u8>(&a, &b, &c, &k)?;
        run_mxm_suite::<bool>(&a, &b, &c, &k)?;
    }

    #[test]
    fn ewise_vector_matches_oracle(u in vec_model(), v in vec_model(), w in vec_model(), k in vec_mask_model()) {
        let (u, v, w) = (to_vector(&u), to_vector(&v), to_vector(&w));
        let mask = to_vector(&k);
        for add in [true, false] {
            let ctx = if add { "eadd" } else { "emult" };
            ewise_vec_case(&w, &NoMask, Plus::<i64>::new(), &u, &v, add, &format!("{ctx}/plus/nomask"))?;
            ewise_vec_case(&w, &mask, Plus::<i64>::new(), &u, &v, add, &format!("{ctx}/plus/mask"))?;
            ewise_vec_case(&w, &complement(&mask), Min::<i64>::new(), &u, &v, add, &format!("{ctx}/min/comp"))?;
        }
    }

    #[test]
    fn ewise_matrix_matches_oracle(am in mat_model(), bm in mat_model(), cm in mat_model(), k in mat_mask_model()) {
        let (a, b, c) = (to_matrix(&am), to_matrix(&bm), to_matrix(&cm));
        let (at, bt) = (a.transpose_owned(), b.transpose_owned());
        let mask = to_matrix(&k);
        for add in [true, false] {
            let ctx = if add { "eadd_m" } else { "emult_m" };
            ewise_mat_case(&c, &NoMask, MatrixArg::Plain(&a), transpose(&bt), add, &format!("{ctx}/nomask"))?;
            ewise_mat_case(&c, &mask, transpose(&at), MatrixArg::Plain(&b), add, &format!("{ctx}/mask"))?;
            ewise_mat_case(&c, &complement(&mask), dual(&a, &at), dual(&b, &bt), add, &format!("{ctx}/comp"))?;
        }
    }

    #[test]
    fn apply_matches_oracle(um in vec_model(), wm in vec_model(), k in vec_mask_model(), am in mat_model()) {
        let (u, w) = (to_vector(&um), to_vector(&wm));
        let mask = to_vector(&k);
        apply_vec_case(&w, &NoMask, AdditiveInverse::<i64>::new(), &u, "apply/ainv/nomask")?;
        apply_vec_case(&w, &mask, Bind2nd::new(Times::<i64>::new(), 3), &u, "apply/x3/mask")?;
        apply_vec_case(&w, &complement(&mask), Bind2nd::new(Plus::<i64>::new(), 7), &u, "apply/+7/comp")?;

        let a = to_matrix(&am);
        let at = a.transpose_owned();
        let c = to_matrix(&am).cast::<i64>();
        let mmask = Matrix::from_triples(N, N, k.iter().map(|(&i, &v)| (i, i, v))).unwrap();
        apply_mat_case(&c, &NoMask, AdditiveInverse::<i64>::new(), MatrixArg::Plain(&a), "applym/nomask")?;
        apply_mat_case(&c, &mmask, AdditiveInverse::<i64>::new(), transpose(&at), "applym/mask")?;
        apply_mat_case(&c, &complement(&mmask), AdditiveInverse::<i64>::new(), dual(&a, &at), "applym/comp")?;
    }

    #[test]
    fn reduce_matches_oracle(am in mat_model(), wm in vec_model(), k in vec_mask_model()) {
        let a = to_matrix(&am);
        let at = a.transpose_owned();
        let w = to_vector(&wm);
        let mask = to_vector(&k);
        for (orient, arg) in [
            ("plain", MatrixArg::Plain(&a)),
            ("transposed", transpose(&at)),
            ("dual", dual(&a, &at)),
        ] {
            reduce_case(&w, &NoMask, arg, &format!("reduce/{orient}/nomask"))?;
            reduce_case(&w, &mask, arg, &format!("reduce/{orient}/mask"))?;
            reduce_case(&w, &complement(&mask), arg, &format!("reduce/{orient}/comp"))?;

            prop_assert_eq!(
                operations::reduce_matrix_scalar(&PlusMonoid::<i64>::new(), arg),
                reference::reduce_matrix_scalar(&PlusMonoid::<i64>::new(), arg),
                "scalar reduce {}", orient
            );
        }
        let u = to_vector(&wm);
        prop_assert_eq!(
            operations::reduce_vector_scalar(&PlusMonoid::<i64>::new(), &u),
            reference::reduce_vector_scalar(&PlusMonoid::<i64>::new(), &u)
        );
        prop_assert_eq!(
            operations::reduce_vector_scalar(&MinMonoid::<i64>::new(), &u),
            reference::reduce_vector_scalar(&MinMonoid::<i64>::new(), &u)
        );
    }

    #[test]
    fn assign_matches_oracle(
        wm in vec_model(),
        um in vec_model(),
        k in vec_mask_model(),
        picks in proptest::collection::btree_set(0..N, 0..N),
        bounds in (0..N, 0..N),
    ) {
        let w = to_vector(&wm);
        let mask = to_vector(&k);
        let (x, y) = bounds;
        let (lo, hi) = (x.min(y), x.max(y));
        let list: Vec<usize> = picks.iter().copied().collect();
        for ix in [Indices::All, Indices::Range(lo, hi), Indices::List(list)] {
            let len = ix.len(N);
            let u = to_sized_vector(&um, len);
            assign_case(&w, &NoMask, &u, &ix, "assign/nomask")?;
            assign_case(&w, &mask, &u, &ix, "assign/mask")?;
            assign_case(&w, &complement(&mask), &u, &ix, "assign/comp")?;
        }
    }

    #[test]
    fn extract_matches_oracle(
        wm in vec_model(),
        um in vec_model(),
        k in vec_mask_model(),
        picks in proptest::collection::vec(0..N, 0..N),
        bounds in (0..N, 0..N),
    ) {
        let u = to_vector(&um);
        let (x, y) = bounds;
        let (lo, hi) = (x.min(y), x.max(y));
        // `picks` may repeat source indices — legal for extract.
        for ix in [Indices::All, Indices::Range(lo, hi), Indices::List(picks.clone())] {
            let len = ix.len(N);
            let w = to_sized_vector(&wm, len);
            let mask = to_sized_vector(&k, len);
            extract_case(&w, &NoMask, &u, &ix, "extract/nomask")?;
            extract_case(&w, &mask, &u, &ix, "extract/mask")?;
            extract_case(&w, &complement(&mask), &u, &ix, "extract/comp")?;
        }
    }
}
