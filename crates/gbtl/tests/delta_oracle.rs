//! Differential tests: the hypersparse delta container vs. the dense
//! mutation oracle in [`gbtl::reference::apply_edge_updates`].
//!
//! Each case generates a random base matrix and a random *script* of
//! update batches with interleaved settle points, then drives a
//! [`DeltaMatrix`] through the script while the oracle replays the
//! same updates on a dense grid and rebuilds from scratch. After every
//! batch — settled or not — the container's merged view must be
//! bit-identical (structure AND values, `Matrix: PartialEq`) to the
//! rebuilt matrix, and its O(1) `nvals` must agree. This is the
//! update≡rebuild proof at the storage layer; `tests/streaming_equiv.rs`
//! lifts it to the typed DSL and the algorithm suite.

use std::collections::BTreeMap;

use proptest::prelude::*;

use gbtl::prelude::*;
use gbtl::reference;

const N: usize = 8;

type MatModel = BTreeMap<(usize, usize), i64>;

fn mat_model() -> impl Strategy<Value = MatModel> {
    proptest::collection::btree_map((0..N, 0..N), -8i64..9, 0..(N * N / 2))
}

fn to_matrix(m: &MatModel) -> Matrix<i64> {
    Matrix::from_triples(N, N, m.iter().map(|(&(i, j), &v)| (i, j, v))).unwrap()
}

/// One scripted step: a batch of updates (`None` value = delete),
/// optionally followed by an explicit settle.
#[derive(Clone, Debug)]
struct Step {
    batch: Vec<(usize, usize, Option<i64>)>,
    settle_after: bool,
}

/// `Some(v)` with 2:1 odds over `None` (delete).
fn maybe_val() -> impl Strategy<Value = Option<i64>> {
    (0u8..3, -8i64..9).prop_map(|(k, v)| (k > 0).then_some(v))
}

fn step() -> impl Strategy<Value = Step> {
    (
        proptest::collection::vec((0..N, 0..N, maybe_val()), 0..12),
        any::<bool>(),
    )
        .prop_map(|(batch, settle_after)| Step {
            batch,
            settle_after,
        })
}

fn script() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(step(), 1..8)
}

/// Drive `delta` through `script`, checking the merged view against
/// the oracle rebuild after every batch.
fn run_script(
    mut delta: DeltaMatrix<i64>,
    base: &Matrix<i64>,
    script: &[Step],
    tracked_reads: bool,
    ctx: &str,
) -> TestCaseResult {
    let mut applied: Vec<(usize, usize, Option<i64>)> = Vec::new();
    for (s, step) in script.iter().enumerate() {
        delta
            .update_edges(step.batch.iter().copied())
            .map_err(|e| TestCaseError::fail(format!("{ctx} step {s}: {e}")))?;
        applied.extend_from_slice(&step.batch);
        let want = reference::apply_edge_updates(base, &applied);
        prop_assert_eq!(
            delta.merged(),
            want.clone(),
            "{} step {}: merged view != rebuild",
            ctx,
            s
        );
        prop_assert_eq!(
            delta.nvals(),
            want.nvals(),
            "{} step {}: O(1) nvals drifted",
            ctx,
            s
        );
        if tracked_reads {
            // Tracked point reads agree with the oracle and may settle
            // the container under read pressure mid-script.
            for &(i, j, _) in step.batch.iter().take(3) {
                prop_assert_eq!(delta.read(i, j), want.get(i, j), "{} step {}", ctx, s);
            }
        }
        if step.settle_after {
            prop_assert_eq!(delta.settle(), &want, "{} step {}: settle", ctx, s);
            prop_assert!(delta.is_settled());
        }
    }
    // Final settle always lands on the full rebuild, whatever mix of
    // auto-merges and explicit settles happened along the way.
    let want = reference::apply_edge_updates(base, &applied);
    prop_assert_eq!(delta.into_settled(), want, "{}: final settle", ctx);
    Ok(())
}

proptest! {
    /// Default policy: merges happen only at explicit settle points.
    #[test]
    fn delta_matches_rebuild(base in mat_model(), script in script()) {
        let m = to_matrix(&base);
        run_script(DeltaMatrix::new(m.clone()), &m, &script, false, "default")?;
    }

    /// Tiny `max_pending` forces auto-merges mid-batch; equivalence
    /// must hold across any merge schedule.
    #[test]
    fn delta_matches_rebuild_under_merge_pressure(base in mat_model(), script in script()) {
        let m = to_matrix(&base);
        let policy = MergePolicy { max_pending: 3, read_pressure: usize::MAX };
        run_script(
            DeltaMatrix::with_policy(m.clone(), policy),
            &m,
            &script,
            false,
            "max_pending=3",
        )?;
    }

    /// Tracked reads trigger read-pressure merges; interleaved reads
    /// must never observe a half-merged state.
    #[test]
    fn delta_matches_rebuild_under_read_pressure(base in mat_model(), script in script()) {
        let m = to_matrix(&base);
        let policy = MergePolicy { max_pending: usize::MAX, read_pressure: 4 };
        run_script(
            DeltaMatrix::with_policy(m.clone(), policy),
            &m,
            &script,
            true,
            "read_pressure=4",
        )?;
    }

    /// Dtype sweep: the splice is value-agnostic, but prove it for a
    /// float, a narrow unsigned, and bool (stored falsy values!).
    #[test]
    fn delta_matches_rebuild_dtype_sweep(base in mat_model(), script in script()) {
        let m = to_matrix(&base);
        macro_rules! sweep {
            ($($t:ty),*) => {$({
                let mc: Matrix<$t> = m.cast();
                let mut delta = DeltaMatrix::new(mc.clone());
                let mut applied: Vec<(usize, usize, Option<$t>)> = Vec::new();
                for step in &script {
                    let batch: Vec<(usize, usize, Option<$t>)> = step
                        .batch
                        .iter()
                        .map(|&(i, j, v)| (i, j, v.map(<$t as Scalar>::cast_from)))
                        .collect();
                    delta
                        .update_edges(batch.iter().copied())
                        .map_err(|e| TestCaseError::fail(format!("{}: {e}", <$t as Scalar>::NAME)))?;
                    applied.extend_from_slice(&batch);
                    if step.settle_after {
                        delta.settle();
                    }
                }
                let want = reference::apply_edge_updates(&mc, &applied);
                prop_assert_eq!(delta.into_settled(), want, "dtype {}", <$t as Scalar>::NAME);
            })*};
        }
        sweep!(f64, f32, u8, i32, bool);
    }

    /// Out-of-bounds coordinates abort the batch with an error and the
    /// merged view still matches the rebuild over the applied prefix.
    #[test]
    fn out_of_bounds_rejected_mid_batch(base in mat_model(), prefix in proptest::collection::vec((0..N, 0..N, maybe_val()), 0..6)) {
        let m = to_matrix(&base);
        let mut delta = DeltaMatrix::new(m.clone());
        let mut batch = prefix.clone();
        batch.push((N, 0, Some(1)));
        prop_assert!(delta.update_edges(batch.iter().copied()).is_err());
        let want = reference::apply_edge_updates(&m, &prefix);
        prop_assert_eq!(delta.into_settled(), want);
    }
}
