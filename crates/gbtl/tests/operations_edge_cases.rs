//! Degenerate shapes, extreme values, and decoration combinations the
//! unit tests don't reach — every operation must behave sensibly on
//! empty containers, 1×1 containers, and fully-dense containers.

use gbtl::ops::accum::Accumulate;
use gbtl::prelude::*;

#[test]
fn mxm_on_empty_operands() {
    // Zero-dimension matrices are legal GraphBLAS objects.
    let a = Matrix::<f64>::new(0, 0);
    let mut c = Matrix::<f64>::new(0, 0);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &a,
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), 0);

    // Structurally empty but nonzero-dimension operands.
    let a = Matrix::<f64>::new(5, 7);
    let b = Matrix::<f64>::new(7, 3);
    let mut c = Matrix::<f64>::new(5, 3);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &a,
        &b,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), 0);
    assert!(c.is_valid());
}

#[test]
fn one_by_one_everything() {
    let a = Matrix::from_triples(1, 1, [(0usize, 0usize, 3i64)]).unwrap();
    let mut c = Matrix::<i64>::new(1, 1);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &a,
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.get(0, 0), Some(9));
    operations::transpose_into(&mut c, &NoMask, NoAccumulate, &a, Replace(false)).unwrap();
    assert_eq!(c.get(0, 0), Some(3));
    assert_eq!(operations::reduce_matrix_scalar(&PlusMonoid::new(), &a), 3);
}

#[test]
fn fully_dense_operands() {
    let n = 16;
    let a = Matrix::from_dense(&vec![vec![1.0f64; n]; n]).unwrap();
    let mut c = Matrix::<f64>::new(n, n);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &a,
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), n * n);
    assert_eq!(c.get(3, 7), Some(n as f64));
}

#[test]
fn stored_zeros_participate_structurally() {
    // GraphBLAS distinguishes stored zeros from absent entries: an
    // explicitly stored 0 produces entries through ⊗.
    let a = Matrix::from_triples(1, 1, [(0usize, 0usize, 0.0f64)]).unwrap();
    let mut c = Matrix::<f64>::new(1, 1);
    operations::mxm(
        &mut c,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &a,
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), 1); // 0·0 = 0, stored
    assert_eq!(c.get(0, 0), Some(0.0));
}

#[test]
fn extreme_values_in_min_plus() {
    // Tropical zero (∞) must annihilate through ⊗ = +.
    let inf = f64::INFINITY;
    let a = Matrix::from_triples(2, 2, [(0usize, 1usize, inf), (1, 0, 1.0)]).unwrap();
    let x = Vector::from_pairs(2, [(1usize, 2.0f64)]).unwrap();
    let mut w = Vector::<f64>::new(2);
    operations::mxv(
        &mut w,
        &NoMask,
        NoAccumulate,
        &MinPlusSemiring::new(),
        &a,
        &x,
        Replace(false),
    )
    .unwrap();
    assert_eq!(w.get(0), Some(inf)); // ∞ + 2 = ∞, stored (structural)
}

#[test]
fn integer_extremes_wrap_not_panic() {
    let a = Matrix::from_triples(1, 1, [(0usize, 0usize, i64::MAX)]).unwrap();
    let mut c = Matrix::<i64>::new(1, 1);
    operations::e_wise_add_matrix(
        &mut c,
        &NoMask,
        NoAccumulate,
        gbtl::ops::binary::Plus::new(),
        &a,
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.get(0, 0), Some(i64::MAX.wrapping_add(i64::MAX)));
}

#[test]
fn every_operation_rejects_bad_mask_shape() {
    let a = Matrix::<f64>::new(3, 3);
    let u = Vector::<f64>::new(3);
    let bad_m = Matrix::<bool>::new(2, 2);
    let bad_v = Vector::<bool>::new(2);
    let sr = ArithmeticSemiring::<f64>::new();

    let mut c = Matrix::<f64>::new(3, 3);
    assert!(operations::mxm(&mut c, &bad_m, NoAccumulate, &sr, &a, &a, Replace(false)).is_err());
    assert!(operations::e_wise_add_matrix(
        &mut c,
        &bad_m,
        NoAccumulate,
        gbtl::ops::binary::Plus::new(),
        &a,
        &a,
        Replace(false)
    )
    .is_err());
    assert!(operations::apply_matrix(
        &mut c,
        &bad_m,
        NoAccumulate,
        gbtl::ops::unary::Identity::new(),
        &a,
        Replace(false)
    )
    .is_err());

    let mut w = Vector::<f64>::new(3);
    assert!(operations::mxv(&mut w, &bad_v, NoAccumulate, &sr, &a, &u, Replace(false)).is_err());
    assert!(operations::assign_vector_constant(
        &mut w,
        &bad_v,
        NoAccumulate,
        1.0,
        &Indices::All,
        Replace(false)
    )
    .is_err());
}

#[test]
fn transposed_mask_free_operations_compose() {
    // (Aᵀ)ᵀ through two transposed eWise operands.
    let a = Matrix::from_triples(2, 3, [(0usize, 2usize, 5i64), (1, 0, 2)]).unwrap();
    let mut sym = Matrix::<i64>::new(3, 2);
    operations::e_wise_add_matrix(
        &mut sym,
        &NoMask,
        NoAccumulate,
        gbtl::ops::binary::Plus::new(),
        transpose(&a),
        transpose(&a),
        Replace(false),
    )
    .unwrap();
    assert_eq!(sym.get(2, 0), Some(10));
    assert_eq!(sym.get(0, 1), Some(4));
}

#[test]
fn accumulate_into_empty_output_equals_plain_write() {
    let a = Vector::from_pairs(4, [(1usize, 7i64)]).unwrap();
    let b = Vector::from_pairs(4, [(2usize, 8i64)]).unwrap();
    let mut with_accum = Vector::<i64>::new(4);
    operations::e_wise_add_vector(
        &mut with_accum,
        &NoMask,
        Accumulate(gbtl::ops::binary::Plus::new()),
        gbtl::ops::binary::Plus::new(),
        &a,
        &b,
        Replace(false),
    )
    .unwrap();
    let mut without = Vector::<i64>::new(4);
    operations::e_wise_add_vector(
        &mut without,
        &NoMask,
        NoAccumulate,
        gbtl::ops::binary::Plus::new(),
        &a,
        &b,
        Replace(false),
    )
    .unwrap();
    assert_eq!(with_accum, without);
}

#[test]
fn assign_full_range_equals_all() {
    let u = Vector::from_dense(&[1i64, 2, 3]);
    let mut w1 = Vector::<i64>::new(3);
    operations::assign_vector(
        &mut w1,
        &NoMask,
        NoAccumulate,
        &u,
        &Indices::All,
        Replace(false),
    )
    .unwrap();
    let mut w2 = Vector::<i64>::new(3);
    operations::assign_vector(
        &mut w2,
        &NoMask,
        NoAccumulate,
        &u,
        &Indices::Range(0, 3),
        Replace(false),
    )
    .unwrap();
    assert_eq!(w1, w2);
}

#[test]
fn extract_empty_selection() {
    let a = Matrix::from_dense(&[vec![1i64, 2], vec![3, 4]]).unwrap();
    let mut c = Matrix::<i64>::new(0, 2);
    operations::extract_matrix(
        &mut c,
        &NoMask,
        NoAccumulate,
        &a,
        &Indices::Range(1, 1),
        &Indices::All,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), 0);
    assert_eq!(c.shape(), (0, 2));
}

#[test]
fn reduce_empty_row_vs_missing_row() {
    // A matrix with an entirely empty middle row: the reduce-to-vector
    // result has no entry there (not a stored identity).
    let a = Matrix::from_triples(3, 3, [(0usize, 0usize, 2i64), (2, 2, 3)]).unwrap();
    let mut w = Vector::<i64>::new(3);
    operations::reduce_matrix_to_vector(
        &mut w,
        &NoMask,
        NoAccumulate,
        &MinMonoid::new(),
        &a,
        Replace(false),
    )
    .unwrap();
    assert_eq!(w.nvals(), 2);
    assert_eq!(w.get(1), None);
}

#[test]
fn self_assignment_via_clone_is_stable() {
    // w[None] = w (through a snapshot) must be the identity.
    let w0 = Vector::from_pairs(5, [(0usize, 1i64), (3, -3)]).unwrap();
    let mut w = w0.clone();
    let snapshot = w.clone();
    operations::assign_vector(
        &mut w,
        &NoMask,
        NoAccumulate,
        &snapshot,
        &Indices::All,
        Replace(false),
    )
    .unwrap();
    assert_eq!(w, w0);
}

#[test]
fn masked_dot_mxm_with_empty_mask() {
    let l = Matrix::from_triples(3, 3, [(1usize, 0usize, 1i64), (2, 1, 1)]).unwrap();
    let empty_mask = Matrix::<bool>::new(3, 3);
    let mut c = Matrix::<i64>::new(3, 3);
    operations::mxm_masked_dot(
        &mut c,
        &empty_mask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        &l,
        &l,
        Replace(false),
    )
    .unwrap();
    assert_eq!(c.nvals(), 0);
}
