//! Property tests for the algebraic laws GraphBLAS assumes of its
//! predefined operators: monoid identity/associativity/commutativity,
//! and semiring distributivity with the ⊕-identity annihilating ⊗.
//!
//! Laws are tested on domains where they hold *exactly*: wrapping
//! integers form a commutative ring, `bool` is a Boolean algebra, and
//! min/max lattices are exact everywhere. (IEEE float addition is not
//! associative, which is why floats are exercised by the reference
//! comparisons elsewhere rather than by law-checking.)

use proptest::prelude::*;

use gbtl::ops::kind::{BinaryOpKind, IdentityKind, KindMonoid, KindSemiring};
use gbtl::ops::{Monoid, Semiring};

fn monoids_exact_on_i64() -> Vec<KindMonoid> {
    // The logical monoids are exact only on `bool` (they coerce any
    // other domain through truthiness, so e.g. LogicalOr(2, 0) = 1 ≠ 2);
    // they are law-checked separately below.
    vec![
        KindMonoid::new(BinaryOpKind::Plus, IdentityKind::Zero),
        KindMonoid::new(BinaryOpKind::Times, IdentityKind::One),
        KindMonoid::new(BinaryOpKind::Min, IdentityKind::MinIdentity),
        KindMonoid::new(BinaryOpKind::Max, IdentityKind::MaxIdentity),
    ]
}

fn logical_monoids() -> Vec<KindMonoid> {
    vec![
        KindMonoid::new(BinaryOpKind::LogicalOr, IdentityKind::Zero),
        KindMonoid::new(BinaryOpKind::LogicalAnd, IdentityKind::One),
        KindMonoid::new(BinaryOpKind::LogicalXor, IdentityKind::Zero),
    ]
}

proptest! {
    #[test]
    fn monoid_laws_on_wrapping_i64(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        for m in monoids_exact_on_i64() {
            let id: i64 = Monoid::<i64>::identity(&m);
            // Identity.
            prop_assert_eq!(m.apply(a, id), a, "{:?} right identity", m);
            prop_assert_eq!(m.apply(id, a), a, "{:?} left identity", m);
            // Associativity.
            prop_assert_eq!(
                m.apply(m.apply(a, b), c),
                m.apply(a, m.apply(b, c)),
                "{:?} associativity", m
            );
            // Commutativity.
            prop_assert_eq!(m.apply(a, b), m.apply(b, a), "{:?} commutativity", m);
        }
    }

    #[test]
    fn logical_monoid_laws_on_bool(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        for m in logical_monoids() {
            let id: bool = Monoid::<bool>::identity(&m);
            prop_assert_eq!(m.apply(a, id), a, "{:?} right identity", m);
            prop_assert_eq!(m.apply(id, a), a, "{:?} left identity", m);
            prop_assert_eq!(
                m.apply(m.apply(a, b), c),
                m.apply(a, m.apply(b, c)),
                "{:?} associativity", m
            );
            prop_assert_eq!(m.apply(a, b), m.apply(b, a), "{:?} commutativity", m);
        }
    }

    #[test]
    fn arithmetic_semiring_is_a_ring_on_wrapping_i64(
        a in any::<i64>(), b in any::<i64>(), c in any::<i64>(),
    ) {
        let s = KindSemiring::from_name("ArithmeticSemiring").unwrap();
        // Distributivity (exact under wrapping arithmetic).
        prop_assert_eq!(
            s.mult(a, s.add(b, c)),
            Semiring::<i64>::add(&s, s.mult(a, b), s.mult(a, c))
        );
        // The ⊕-identity annihilates ⊗.
        let zero: i64 = Semiring::<i64>::zero(&s);
        prop_assert_eq!(s.mult(a, zero), zero);
        prop_assert_eq!(s.mult(zero, a), zero);
    }

    #[test]
    fn logical_semiring_laws_on_bool(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let s = KindSemiring::from_name("LogicalSemiring").unwrap();
        prop_assert_eq!(
            s.mult(a, s.add(b, c)),
            Semiring::<bool>::add(&s, s.mult(a, b), s.mult(a, c))
        );
        let zero: bool = Semiring::<bool>::zero(&s);
        prop_assert_eq!(s.mult(a, zero), zero);
        // Idempotence of ∨.
        prop_assert_eq!(s.add(a, a), a);
    }

    #[test]
    fn min_plus_is_a_semiring_within_safe_range(
        a in -100_000i64..100_000, b in -100_000i64..100_000, c in -100_000i64..100_000,
    ) {
        // Tropical laws hold exactly while sums stay far from the
        // MAX sentinel (no wrap past the Min identity).
        let s = KindSemiring::from_name("MinPlusSemiring").unwrap();
        prop_assert_eq!(
            s.mult(a, s.add(b, c)),
            Semiring::<i64>::add(&s, s.mult(a, b), s.mult(a, c)),
            "a + min(b,c) == min(a+b, a+c)"
        );
        // ⊕ (min) is idempotent.
        prop_assert_eq!(s.add(a, a), a);
        // Identity of min.
        let inf: i64 = Semiring::<i64>::zero(&s);
        prop_assert_eq!(s.add(a, inf), a);
    }

    #[test]
    fn select_semirings_project(a in any::<u32>(), b in any::<u32>()) {
        let s1 = KindSemiring::from_name("MinSelect1stSemiring").unwrap();
        let s2 = KindSemiring::from_name("MinSelect2ndSemiring").unwrap();
        prop_assert_eq!(Semiring::<u32>::mult(&s1, a, b), a);
        prop_assert_eq!(Semiring::<u32>::mult(&s2, a, b), b);
        // Their ⊕ is the same min lattice.
        prop_assert_eq!(Semiring::<u32>::add(&s1, a, b), a.min(b));
    }

    #[test]
    fn monoid_fold_order_invariance(values in proptest::collection::vec(any::<i64>(), 0..24)) {
        // Folding in any grouping gives the same result — the property
        // reduce (and parallel row sums) rely on.
        for m in monoids_exact_on_i64() {
            let id: i64 = Monoid::<i64>::identity(&m);
            let left = values.iter().fold(id, |acc, &v| m.apply(acc, v));
            let right = values.iter().rev().fold(id, |acc, &v| m.apply(v, acc));
            prop_assert_eq!(left, right, "{:?}", m);
            // Split-and-combine (simulating a parallel tree reduction).
            let mid = values.len() / 2;
            let l = values[..mid].iter().fold(id, |acc, &v| m.apply(acc, v));
            let r = values[mid..].iter().fold(id, |acc, &v| m.apply(acc, v));
            prop_assert_eq!(m.apply(l, r), left, "{:?} split", m);
        }
    }
}
