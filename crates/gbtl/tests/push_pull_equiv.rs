//! Push/pull SpMV equivalence: the scatter (push) and gather (pull)
//! kernels must produce bitwise-identical results at *every* frontier
//! density, including the empty and fully-dense extremes, masked and
//! unmasked. Both directions combine contributions in k-ascending
//! order, so even `f64` outputs are exactly equal — the tests assert
//! `==`, not approximate closeness.

use gbtl::ops::accum::Accumulate;
use gbtl::prelude::*;

const N: usize = 32;

/// A fixed irregular graph: 6 distinct out-edges per vertex, spread so
/// columns receive different in-degrees (deterministic, no RNG).
fn graph() -> Matrix<f64> {
    let mut triples = Vec::new();
    for i in 0..N {
        for t in 0..6usize {
            let j = (i * 7 + t * 5 + 3) % N;
            let w = ((i * 13 + t * 11 + j) % 9 + 1) as f64;
            triples.push((i, j, w));
        }
    }
    Matrix::from_triples(N, N, triples).unwrap()
}

/// A frontier with exactly `nnz` stored entries, spread deterministically.
fn frontier(nnz: usize) -> Vector<f64> {
    let pairs = (0..nnz).map(|k| (k * N / nnz.max(1), (k + 1) as f64));
    Vector::from_pairs(N, pairs).unwrap()
}

/// A structural mask enabling roughly half the positions.
fn mask() -> Vector<i64> {
    Vector::from_pairs(N, (0..N).filter(|i| i % 3 != 0).map(|i| (i, 1i64))).unwrap()
}

/// Run mxv with a forced direction: `Plain` always pulls, `Transposed`
/// always pushes. Returns (result, kernel actually selected).
fn mxv_directed<Mk: VectorMask + ?Sized>(
    g: &Matrix<f64>,
    gt: &Matrix<f64>,
    mask: &Mk,
    u: &Vector<f64>,
    push: bool,
) -> (Vector<f64>, SpmvKernel) {
    let mut out = Vector::<f64>::new(N);
    let arg = if push {
        transpose(gt)
    } else {
        MatrixArg::Plain(g)
    };
    let sel = operations::mxv(
        &mut out,
        mask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        arg,
        u,
        Replace(false),
    )
    .unwrap();
    (out, sel)
}

#[test]
fn push_equals_pull_at_every_density() {
    let g = graph();
    let gt = g.transpose_owned();
    // Sweep nnz from empty through every density band to fully dense.
    for nnz in [0, 1, 2, 3, 5, 8, 13, 16, 21, 27, 31, N] {
        let u = frontier(nnz);
        assert_eq!(u.nvals(), nnz.min(N), "fixture density");
        let (pull, ks) = mxv_directed(&g, &gt, &NoMask, &u, false);
        let (push, kp) = mxv_directed(&g, &gt, &NoMask, &u, true);
        assert_eq!(ks, SpmvKernel::Pull);
        assert_eq!(kp, SpmvKernel::Push);
        assert_eq!(pull, push, "unmasked, nnz={nnz}");
    }
}

#[test]
fn masked_push_equals_masked_pull_at_every_density() {
    let g = graph();
    let gt = g.transpose_owned();
    let m = mask();
    for nnz in [0, 1, 4, 11, 16, 24, N] {
        let u = frontier(nnz);
        let (pull, ks) = mxv_directed(&g, &gt, &m, &u, false);
        let (push, kp) = mxv_directed(&g, &gt, &m, &u, true);
        assert_eq!(ks, SpmvKernel::MaskedPull);
        assert_eq!(kp, SpmvKernel::MaskedPush);
        assert_eq!(pull, push, "masked, nnz={nnz}");

        let (cpull, cks) = mxv_directed(&g, &gt, &complement(&m), &u, false);
        let (cpush, ckp) = mxv_directed(&g, &gt, &complement(&m), &u, true);
        assert_eq!(cks, SpmvKernel::MaskedPull);
        assert_eq!(ckp, SpmvKernel::MaskedPush);
        assert_eq!(cpull, cpush, "complement-masked, nnz={nnz}");
    }
}

#[test]
fn dual_agrees_with_both_forced_directions() {
    let g = graph();
    let gt = g.transpose_owned();
    for nnz in [0, 1, 8, 16, N] {
        let u = frontier(nnz);
        let mut auto = Vector::<f64>::new(N);
        let sel = operations::mxv(
            &mut auto,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            dual(&g, &gt),
            &u,
            Replace(false),
        )
        .unwrap();
        let (pull, _) = mxv_directed(&g, &gt, &NoMask, &u, false);
        assert_eq!(auto, pull, "dual vs pull, nnz={nnz}");
        // The heuristic must switch on the documented threshold.
        let density = nnz as f64 / N as f64;
        if density >= PUSH_PULL_DENSITY {
            assert_eq!(sel, SpmvKernel::Pull, "nnz={nnz}");
        } else {
            assert_eq!(sel, SpmvKernel::Push, "nnz={nnz}");
        }
    }
}

#[test]
fn vxm_push_equals_pull_with_accum() {
    // vxm through the flipped argument, with an active accumulator and
    // a non-empty output: the union-merge path must also agree.
    let g = graph();
    let gt = g.transpose_owned();
    let m = mask();
    for nnz in [0, 3, 16, N] {
        let u = frontier(nnz);
        let seed = frontier(5);
        let mut pull = seed.clone();
        let ks = operations::vxm(
            &mut pull,
            &m,
            Accumulate(Min::<f64>::new()),
            &MinPlusSemiring::new(),
            &u,
            MatrixArg::Plain(&g), // flips to Transposed(g): push over g's rows
            Replace(false),
        )
        .unwrap();
        let mut pushv = seed.clone();
        let kp = operations::vxm(
            &mut pushv,
            &m,
            Accumulate(Min::<f64>::new()),
            &MinPlusSemiring::new(),
            &u,
            transpose(&gt), // flips to Plain(gt): pull over gt's rows
            Replace(false),
        )
        .unwrap();
        assert_eq!(ks, SpmvKernel::MaskedPush);
        assert_eq!(kp, SpmvKernel::MaskedPull);
        assert_eq!(pull, pushv, "vxm accum, nnz={nnz}");
    }
}

#[test]
fn empty_size_vector_is_handled() {
    // Degenerate 0-dimension operands: density is defined as 1.0 (pull).
    let g = Matrix::<f64>::new(0, 0);
    let u = Vector::<f64>::new(0);
    let mut out = Vector::<f64>::new(0);
    let sel = operations::mxv(
        &mut out,
        &NoMask,
        NoAccumulate,
        &ArithmeticSemiring::new(),
        dual(&g, &g),
        &u,
        Replace(false),
    )
    .unwrap();
    assert_eq!(sel, SpmvKernel::Pull);
    assert_eq!(out.nvals(), 0);
}
