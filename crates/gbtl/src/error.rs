//! Error types shared by every GBTL operation.
//!
//! GBTL (like the GraphBLAS C API) reports dimension mismatches, index
//! range violations, and domain problems. We model them as a single
//! non-exhaustive enum so downstream crates can add context without
//! breaking matches.

use std::fmt;

/// Errors produced by GBTL containers and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GblasError {
    /// Operand shapes do not conform (e.g. `mxm` inner dimensions differ).
    DimensionMismatch {
        /// Human-readable description of which dimensions clashed.
        context: String,
    },
    /// An index was outside the container's dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension it was checked against.
        bound: usize,
    },
    /// A requested element is not stored (structural zero).
    NoValue {
        /// Row (or sole) index of the missing element.
        row: usize,
        /// Column index of the missing element (0 for vectors).
        col: usize,
    },
    /// Input data was rejected (duplicate handling, malformed COO, ...).
    InvalidValue {
        /// Human-readable description.
        context: String,
    },
    /// A mask had the wrong shape for the output it guards.
    MaskShapeMismatch {
        /// Human-readable description of the shapes involved.
        context: String,
    },
    /// The operation is not supported for this combination of arguments.
    NotImplemented {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for GblasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GblasError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            GblasError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (dimension {bound})")
            }
            GblasError::NoValue { row, col } => {
                write!(f, "no stored value at ({row}, {col})")
            }
            GblasError::InvalidValue { context } => write!(f, "invalid value: {context}"),
            GblasError::MaskShapeMismatch { context } => {
                write!(f, "mask shape mismatch: {context}")
            }
            GblasError::NotImplemented { context } => write!(f, "not implemented: {context}"),
        }
    }
}

impl std::error::Error for GblasError {}

/// Result alias used throughout GBTL.
pub type Result<T> = std::result::Result<T, GblasError>;

impl GblasError {
    /// Construct a [`GblasError::DimensionMismatch`] with formatted context.
    pub fn dim(context: impl Into<String>) -> Self {
        GblasError::DimensionMismatch {
            context: context.into(),
        }
    }

    /// Construct a [`GblasError::InvalidValue`] with formatted context.
    pub fn invalid(context: impl Into<String>) -> Self {
        GblasError::InvalidValue {
            context: context.into(),
        }
    }

    /// Construct a [`GblasError::MaskShapeMismatch`] with formatted context.
    pub fn mask(context: impl Into<String>) -> Self {
        GblasError::MaskShapeMismatch {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = GblasError::dim("A is 3x4, B is 5x6");
        assert_eq!(e.to_string(), "dimension mismatch: A is 3x4, B is 5x6");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = GblasError::IndexOutOfBounds { index: 9, bound: 4 };
        assert_eq!(e.to_string(), "index 9 out of bounds (dimension 4)");
    }

    #[test]
    fn display_no_value() {
        let e = GblasError::NoValue { row: 1, col: 2 };
        assert_eq!(e.to_string(), "no stored value at (1, 2)");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GblasError::invalid("x"));
    }

    #[test]
    fn equality() {
        assert_eq!(GblasError::dim("a"), GblasError::dim("a"));
        assert_ne!(GblasError::dim("a"), GblasError::dim("b"));
    }
}
