//! The scalar domain: the 11 "plain old data types" of the paper.
//!
//! Section V of the paper enumerates 11 C++ POD types (`bool`,
//! `int8_t`…`int64_t`, `uint8_t`…`uint64_t`, `float`, `double`) that
//! GBTL containers may hold, mapped from NumPy `dtype`s. [`Scalar`]
//! abstracts the arithmetic / logical / ordering structure every GBTL
//! operator needs, so operator functors can be written once and
//! monomorphized per type — the Rust analog of GBTL's templates.
//!
//! Semantics follow C++ rules where the two languages differ:
//! * integer arithmetic wraps (GBTL compiles with `g++` where unsigned
//!   overflow wraps; we wrap for signed too rather than panic),
//! * integer division by zero yields 0 instead of trapping (SuiteSparse
//!   convention), and
//! * booleans act as the two-element Boolean ring (`+` = or, `*` = and).

/// A scalar type usable as the domain of GBTL containers and operators.
///
/// The methods are total: they never panic, matching the "arithmetic as
/// compiled by g++" behaviour GBTL inherits (wrapping integers, IEEE
/// floats, saturating casts like NumPy's C cast rules).
pub trait Scalar:
    Copy + PartialEq + PartialOrd + std::fmt::Debug + std::fmt::Display + Send + Sync + 'static
{
    /// Canonical NumPy-style dtype name (`"fp64"`, `"int32"`, ...).
    const NAME: &'static str;

    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Identity of `Min` (the maximum representable value).
    fn min_identity() -> Self;
    /// Identity of `Max` (the minimum representable value).
    fn max_identity() -> Self;

    /// `a + b` (wrapping for integers, logical OR for bool).
    fn s_add(self, b: Self) -> Self;
    /// `a - b` (wrapping for integers, logical XOR for bool).
    fn s_sub(self, b: Self) -> Self;
    /// `a * b` (wrapping for integers, logical AND for bool).
    fn s_mul(self, b: Self) -> Self;
    /// `a / b` (0 when dividing integers by zero; IEEE for floats).
    fn s_div(self, b: Self) -> Self;
    /// `min(a, b)` (for floats: NaN loses, like `fmin`).
    fn s_min(self, b: Self) -> Self;
    /// `max(a, b)` (for floats: NaN loses, like `fmax`).
    fn s_max(self, b: Self) -> Self;
    /// Additive inverse (two's-complement negate for unsigned).
    fn s_ainv(self) -> Self;
    /// Multiplicative inverse (`1/a`; 0 for non-invertible integers).
    fn s_minv(self) -> Self;

    /// Truthiness: `self != 0` — how GraphBLAS masks coerce values.
    fn to_bool(self) -> bool;
    /// Embed a boolean (`true → 1`, `false → 0`).
    fn from_bool(b: bool) -> Self;
    /// Lossy conversion to `f64` (C cast semantics).
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64` (C cast semantics; NaN → 0 for ints).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `i64`.
    fn to_i64(self) -> i64;
    /// Lossy conversion from `i64`.
    fn from_i64(v: i64) -> Self;

    /// Cast from any other scalar type, through the widest intermediate
    /// that preserves its value class (floats via `f64`, ints via `i64`).
    fn cast_from<S: Scalar>(v: S) -> Self {
        if S::IS_FLOAT || Self::IS_FLOAT {
            Self::from_f64(v.to_f64())
        } else {
            Self::from_i64(v.to_i64())
        }
    }

    /// Whether the type is a floating-point type.
    const IS_FLOAT: bool;
    /// Whether the type is `bool`.
    const IS_BOOL: bool;
    /// Whether the type is a signed integer.
    const IS_SIGNED_INT: bool;
    /// Size of the type in bits (1 for bool, by convention).
    const BITS: u32;
}

macro_rules! impl_scalar_int {
    ($t:ty, $name:literal, $signed:expr) => {
        impl Scalar for $t {
            const NAME: &'static str = $name;
            const IS_FLOAT: bool = false;
            const IS_BOOL: bool = false;
            const IS_SIGNED_INT: bool = $signed;
            const BITS: u32 = <$t>::BITS;

            #[inline]
            fn zero() -> Self {
                0
            }
            #[inline]
            fn one() -> Self {
                1
            }
            #[inline]
            fn min_identity() -> Self {
                <$t>::MAX
            }
            #[inline]
            fn max_identity() -> Self {
                <$t>::MIN
            }
            #[inline]
            fn s_add(self, b: Self) -> Self {
                self.wrapping_add(b)
            }
            #[inline]
            fn s_sub(self, b: Self) -> Self {
                self.wrapping_sub(b)
            }
            #[inline]
            fn s_mul(self, b: Self) -> Self {
                self.wrapping_mul(b)
            }
            #[inline]
            fn s_div(self, b: Self) -> Self {
                if b == 0 {
                    0
                } else {
                    self.wrapping_div(b)
                }
            }
            #[inline]
            fn s_min(self, b: Self) -> Self {
                if b < self {
                    b
                } else {
                    self
                }
            }
            #[inline]
            fn s_max(self, b: Self) -> Self {
                if b > self {
                    b
                } else {
                    self
                }
            }
            #[inline]
            fn s_ainv(self) -> Self {
                self.wrapping_neg()
            }
            #[inline]
            fn s_minv(self) -> Self {
                // Only ±1 are invertible in Z; everything else maps to 0,
                // matching integer division 1/a.
                if self == 0 {
                    0
                } else {
                    (1 as $t).wrapping_div(self)
                }
            }
            #[inline]
            fn to_bool(self) -> bool {
                self != 0
            }
            #[inline]
            fn from_bool(b: bool) -> Self {
                b as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
        }
    };
}

impl_scalar_int!(i8, "int8", true);
impl_scalar_int!(i16, "int16", true);
impl_scalar_int!(i32, "int32", true);
impl_scalar_int!(i64, "int64", true);
impl_scalar_int!(u8, "uint8", false);
impl_scalar_int!(u16, "uint16", false);
impl_scalar_int!(u32, "uint32", false);
impl_scalar_int!(u64, "uint64", false);

macro_rules! impl_scalar_float {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const NAME: &'static str = $name;
            const IS_FLOAT: bool = true;
            const IS_BOOL: bool = false;
            const IS_SIGNED_INT: bool = false;
            const BITS: u32 = (std::mem::size_of::<$t>() * 8) as u32;

            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn min_identity() -> Self {
                <$t>::INFINITY
            }
            #[inline]
            fn max_identity() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline]
            fn s_add(self, b: Self) -> Self {
                self + b
            }
            #[inline]
            fn s_sub(self, b: Self) -> Self {
                self - b
            }
            #[inline]
            fn s_mul(self, b: Self) -> Self {
                self * b
            }
            #[inline]
            fn s_div(self, b: Self) -> Self {
                self / b
            }
            #[inline]
            fn s_min(self, b: Self) -> Self {
                // fmin semantics: prefer the non-NaN operand.
                if b < self || self.is_nan() {
                    b
                } else {
                    self
                }
            }
            #[inline]
            fn s_max(self, b: Self) -> Self {
                if b > self || self.is_nan() {
                    b
                } else {
                    self
                }
            }
            #[inline]
            fn s_ainv(self) -> Self {
                -self
            }
            #[inline]
            fn s_minv(self) -> Self {
                1.0 / self
            }
            #[inline]
            fn to_bool(self) -> bool {
                self != 0.0
            }
            #[inline]
            fn from_bool(b: bool) -> Self {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
        }
    };
}

impl_scalar_float!(f32, "fp32");
impl_scalar_float!(f64, "fp64");

impl Scalar for bool {
    const NAME: &'static str = "bool";
    const IS_FLOAT: bool = false;
    const IS_BOOL: bool = true;
    const IS_SIGNED_INT: bool = false;
    const BITS: u32 = 1;

    #[inline]
    fn zero() -> Self {
        false
    }
    #[inline]
    fn one() -> Self {
        true
    }
    #[inline]
    fn min_identity() -> Self {
        true
    }
    #[inline]
    fn max_identity() -> Self {
        false
    }
    #[inline]
    fn s_add(self, b: Self) -> Self {
        self || b
    }
    #[inline]
    fn s_sub(self, b: Self) -> Self {
        self ^ b
    }
    #[inline]
    fn s_mul(self, b: Self) -> Self {
        self && b
    }
    #[inline]
    fn s_div(self, b: Self) -> Self {
        // bool/bool follows integer promotion: x/1 = x, x/0 = 0.
        self && b
    }
    #[inline]
    fn s_min(self, b: Self) -> Self {
        self && b
    }
    #[inline]
    fn s_max(self, b: Self) -> Self {
        self || b
    }
    #[inline]
    fn s_ainv(self) -> Self {
        self
    }
    #[inline]
    fn s_minv(self) -> Self {
        self
    }
    #[inline]
    fn to_bool(self) -> bool {
        self
    }
    #[inline]
    fn from_bool(b: bool) -> Self {
        b
    }
    #[inline]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    #[inline]
    fn to_i64(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_i64(v: i64) -> Self {
        v != 0
    }
}

/// The number of supported scalar types — the paper's "11 plain old
/// data types" which drive the 11⁴ combinatorics of Section V.
pub const NUM_SCALAR_TYPES: usize = 11;

/// The dtype names of all supported scalar types, in promotion order.
pub const SCALAR_TYPE_NAMES: [&str; NUM_SCALAR_TYPES] = [
    "bool", "int8", "uint8", "int16", "uint16", "int32", "uint32", "int64", "uint64", "fp32",
    "fp64",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(i32::zero(), 0);
        assert_eq!(i32::one(), 1);
        assert_eq!(i32::min_identity(), i32::MAX);
        assert_eq!(i32::max_identity(), i32::MIN);
        assert_eq!(f64::min_identity(), f64::INFINITY);
        assert!(bool::min_identity());
        assert!(!bool::max_identity());
    }

    #[test]
    fn wrapping_integer_arithmetic() {
        assert_eq!(u8::MAX.s_add(1), 0);
        assert_eq!(0u8.s_sub(1), u8::MAX);
        assert_eq!(i8::MIN.s_ainv(), i8::MIN); // two's complement edge
    }

    #[test]
    fn division_by_zero_is_zero_for_ints() {
        assert_eq!(7i32.s_div(0), 0);
        assert_eq!(7u64.s_div(0), 0);
        assert!(1.0f64.s_div(0.0).is_infinite());
    }

    #[test]
    fn min_max() {
        assert_eq!(3i32.s_min(5), 3);
        assert_eq!(3i32.s_max(5), 5);
        assert_eq!(f64::NAN.s_min(2.0), 2.0);
        assert_eq!(f64::NAN.s_max(2.0), 2.0);
    }

    #[test]
    fn bool_is_boolean_algebra() {
        assert!(true.s_add(false)); // or
        assert!(!true.s_mul(false)); // and
        assert!(true.s_sub(false)); // xor
        assert!(!true.s_sub(true));
    }

    #[test]
    fn casts_roundtrip_within_range() {
        assert_eq!(i16::cast_from(42u8), 42i16);
        assert_eq!(f64::cast_from(42i32), 42.0);
        assert_eq!(u8::cast_from(300i64), 44u8); // wrapping C cast
        assert!(bool::cast_from(2i32));
        assert_eq!(i32::cast_from(2.9f64), 2);
    }

    #[test]
    fn truthiness() {
        assert!(1i8.to_bool());
        assert!(!0u32.to_bool());
        assert!((-0.5f32).to_bool());
        assert!(!0.0f64.to_bool());
    }

    #[test]
    fn minv() {
        assert_eq!(2.0f64.s_minv(), 0.5);
        assert_eq!(1i32.s_minv(), 1);
        assert_eq!(2i32.s_minv(), 0);
        assert_eq!((-1i32).s_minv(), -1);
        assert_eq!(0i32.s_minv(), 0);
    }

    #[test]
    fn names_unique_and_counted() {
        let mut names = SCALAR_TYPE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SCALAR_TYPES);
    }
}
