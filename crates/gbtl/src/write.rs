//! The GraphBLAS output-write step: `C⟨M, z⟩ = C ⊙ T`.
//!
//! Every operation computes an intermediate result `T` and then funnels
//! through this module, which implements the specification's two-phase
//! write exactly:
//!
//! 1. **Accumulate**: `Z = C ⊙ T` when an accumulator is active
//!    (union merge: positions in both get `⊙(c, t)`, positions in only
//!    one keep their value); `Z = T` otherwise.
//! 2. **Mask / replace**: for every position `i`,
//!    `C(i) = M(i) ? Z(i) : (z ? ∅ : C(i))` — masked-in positions take
//!    `Z` (including *absence* of `Z`, which deletes), masked-out
//!    positions are kept ("merge") or deleted ("replace").
//!
//! `assign` builds its own `Z` (its `T` only covers the assigned index
//! region) and calls [`finalize_vector`] / [`finalize_matrix`] directly.

use crate::index::IndexType;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::Replace;

/// Phase 1 for vectors: `Z = C ⊙ T` (or `Z = T` with no accumulator).
pub fn merge_accum_vector<T: Scalar, A: Accum<T>>(
    c: &Vector<T>,
    t: Vector<T>,
    accum: &A,
) -> Vector<T> {
    if !accum.is_active() {
        return t;
    }
    let mut indices = Vec::with_capacity(c.nvals() + t.nvals());
    let mut values = Vec::with_capacity(c.nvals() + t.nvals());
    let mut ci = c.iter().peekable();
    let mut ti = t.iter().peekable();
    loop {
        match (ci.peek().copied(), ti.peek().copied()) {
            (Some((i, cv)), Some((j, tv))) => {
                if i == j {
                    indices.push(i);
                    values.push(accum.accum(cv, tv));
                    ci.next();
                    ti.next();
                } else if i < j {
                    indices.push(i);
                    values.push(cv);
                    ci.next();
                } else {
                    indices.push(j);
                    values.push(tv);
                    ti.next();
                }
            }
            (Some((i, cv)), None) => {
                indices.push(i);
                values.push(cv);
                ci.next();
            }
            (None, Some((j, tv))) => {
                indices.push(j);
                values.push(tv);
                ti.next();
            }
            (None, None) => break,
        }
    }
    Vector::from_sorted_entries(c.size(), indices, values)
}

/// Phase 2 for vectors: merge `Z` into `C` under the mask and replace
/// flag.
pub fn finalize_vector<T: Scalar, M: VectorMask + ?Sized>(
    c: &mut Vector<T>,
    mask: &M,
    z: Vector<T>,
    replace: Replace,
) {
    if mask.is_all() {
        // Every position is masked in: C simply becomes Z.
        *c = z;
        crate::hooks::report_fact(|| (c.nvals(), c.size()));
        return;
    }
    let mut indices = Vec::with_capacity(z.nvals() + c.nvals());
    let mut values = Vec::with_capacity(z.nvals() + c.nvals());
    let mut ci = c.iter().peekable();
    let mut zi = z.iter().peekable();
    loop {
        let (i, cv, zv) = match (ci.peek().copied(), zi.peek().copied()) {
            (Some((i, cv)), Some((j, zv))) => {
                if i == j {
                    ci.next();
                    zi.next();
                    (i, Some(cv), Some(zv))
                } else if i < j {
                    ci.next();
                    (i, Some(cv), None)
                } else {
                    zi.next();
                    (j, None, Some(zv))
                }
            }
            (Some((i, cv)), None) => {
                ci.next();
                (i, Some(cv), None)
            }
            (None, Some((j, zv))) => {
                zi.next();
                (j, None, Some(zv))
            }
            (None, None) => break,
        };
        let out = if mask.allows(i) {
            zv
        } else if replace.0 {
            None
        } else {
            cv
        };
        if let Some(v) = out {
            indices.push(i);
            values.push(v);
        }
    }
    drop(ci);
    *c = Vector::from_sorted_entries(c.size(), indices, values);
    crate::hooks::report_fact(|| (c.nvals(), c.size()));
}

/// Both phases for vectors: the standard tail of every vector-producing
/// operation.
pub fn write_vector<T: Scalar, M: VectorMask + ?Sized, A: Accum<T>>(
    c: &mut Vector<T>,
    mask: &M,
    accum: &A,
    t: Vector<T>,
    replace: Replace,
) {
    let z = merge_accum_vector(c, t, accum);
    finalize_vector(c, mask, z, replace);
}

/// Phase 1 for matrices: row-wise union merge.
pub fn merge_accum_matrix<T: Scalar, A: Accum<T>>(
    c: &Matrix<T>,
    t: Matrix<T>,
    accum: &A,
) -> Matrix<T> {
    if !accum.is_active() {
        return t;
    }
    let nrows = c.nrows();
    let mut rows: Vec<Vec<(IndexType, T)>> = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let (c_cols, c_vals) = c.row(i);
        let (t_cols, t_vals) = t.row(i);
        rows.push(union_merge_row(c_cols, c_vals, t_cols, t_vals, |cv, tv| {
            accum.accum(cv, tv)
        }));
    }
    Matrix::from_rows(nrows, c.ncols(), rows)
}

/// Union-merge two sorted rows, combining collisions with `both`.
fn union_merge_row<T: Scalar, F: Fn(T, T) -> T>(
    a_cols: &[IndexType],
    a_vals: &[T],
    b_cols: &[IndexType],
    b_vals: &[T],
    both: F,
) -> Vec<(IndexType, T)> {
    let mut out = Vec::with_capacity(a_cols.len() + b_cols.len());
    let (mut p, mut q) = (0, 0);
    while p < a_cols.len() && q < b_cols.len() {
        let (ac, bc) = (a_cols[p], b_cols[q]);
        if ac == bc {
            out.push((ac, both(a_vals[p], b_vals[q])));
            p += 1;
            q += 1;
        } else if ac < bc {
            out.push((ac, a_vals[p]));
            p += 1;
        } else {
            out.push((bc, b_vals[q]));
            q += 1;
        }
    }
    out.extend(a_cols[p..].iter().copied().zip(a_vals[p..].iter().copied()));
    out.extend(b_cols[q..].iter().copied().zip(b_vals[q..].iter().copied()));
    out
}

/// Phase 2 for matrices.
pub fn finalize_matrix<T: Scalar, M: MatrixMask + ?Sized>(
    c: &mut Matrix<T>,
    mask: &M,
    z: Matrix<T>,
    replace: Replace,
) {
    if mask.is_all() {
        *c = z;
        crate::hooks::report_fact(|| (c.nvals(), c.nrows() * c.ncols()));
        return;
    }
    let nrows = c.nrows();
    let mut rows: Vec<Vec<(IndexType, T)>> = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let (c_cols, c_vals) = c.row(i);
        let (z_cols, z_vals) = z.row(i);
        let mut row: Vec<(IndexType, T)> = Vec::with_capacity(c_cols.len() + z_cols.len());
        let (mut p, mut q) = (0, 0);
        loop {
            let (j, cv, zv) = if p < c_cols.len() && q < z_cols.len() {
                let (cc, zc) = (c_cols[p], z_cols[q]);
                if cc == zc {
                    p += 1;
                    q += 1;
                    (cc, Some(c_vals[p - 1]), Some(z_vals[q - 1]))
                } else if cc < zc {
                    p += 1;
                    (cc, Some(c_vals[p - 1]), None)
                } else {
                    q += 1;
                    (zc, None, Some(z_vals[q - 1]))
                }
            } else if p < c_cols.len() {
                p += 1;
                (c_cols[p - 1], Some(c_vals[p - 1]), None)
            } else if q < z_cols.len() {
                q += 1;
                (z_cols[q - 1], None, Some(z_vals[q - 1]))
            } else {
                break;
            };
            let out = if mask.allows(i, j) {
                zv
            } else if replace.0 {
                None
            } else {
                cv
            };
            if let Some(v) = out {
                row.push((j, v));
            }
        }
        rows.push(row);
    }
    *c = Matrix::from_rows(nrows, c.ncols(), rows);
    crate::hooks::report_fact(|| (c.nvals(), c.nrows() * c.ncols()));
}

/// Both phases for matrices.
pub fn write_matrix<T: Scalar, M: MatrixMask + ?Sized, A: Accum<T>>(
    c: &mut Matrix<T>,
    mask: &M,
    accum: &A,
    t: Matrix<T>,
    replace: Replace,
) {
    let z = merge_accum_matrix(c, t, accum);
    finalize_matrix(c, mask, z, replace);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::views::{complement, MERGE, REPLACE};

    fn v(pairs: &[(usize, i32)]) -> Vector<i32> {
        Vector::from_pairs(6, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn no_mask_no_accum_overwrites() {
        let mut c = v(&[(0, 1), (5, 9)]);
        write_vector(&mut c, &NoMask, &NoAccumulate, v(&[(2, 4)]), MERGE);
        assert_eq!(c, v(&[(2, 4)]));
    }

    #[test]
    fn accum_union_merges() {
        let mut c = v(&[(0, 1), (2, 2)]);
        write_vector(
            &mut c,
            &NoMask,
            &Accumulate(Plus::<i32>::new()),
            v(&[(2, 10), (4, 40)]),
            MERGE,
        );
        assert_eq!(c, v(&[(0, 1), (2, 12), (4, 40)]));
    }

    #[test]
    fn merge_keeps_masked_out_entries() {
        let mut c = v(&[(0, 1), (1, 2), (2, 3)]);
        let mask = v(&[(1, 1)]); // only position 1 writable
        write_vector(&mut c, &mask, &NoAccumulate, v(&[(1, 99), (2, 77)]), MERGE);
        // position 1 takes Z; positions 0 and 2 are masked out → kept.
        assert_eq!(c, v(&[(0, 1), (1, 99), (2, 3)]));
    }

    #[test]
    fn replace_deletes_masked_out_entries() {
        let mut c = v(&[(0, 1), (1, 2), (2, 3)]);
        let mask = v(&[(1, 1)]);
        write_vector(
            &mut c,
            &mask,
            &NoAccumulate,
            v(&[(1, 99), (2, 77)]),
            REPLACE,
        );
        assert_eq!(c, v(&[(1, 99)]));
    }

    #[test]
    fn masked_in_absence_deletes() {
        // Without accum, a masked-in position where T has no entry loses
        // its C entry (Z = T there, which is empty).
        let mut c = v(&[(1, 2)]);
        let mask = v(&[(1, 1)]);
        write_vector(&mut c, &mask, &NoAccumulate, v(&[]), MERGE);
        assert_eq!(c, v(&[]));
    }

    #[test]
    fn masked_in_absence_kept_with_accum() {
        // With accum, Z = C ⊙ T keeps C-only entries.
        let mut c = v(&[(1, 2)]);
        let mask = v(&[(1, 1)]);
        write_vector(
            &mut c,
            &mask,
            &Accumulate(Plus::<i32>::new()),
            v(&[]),
            MERGE,
        );
        assert_eq!(c, v(&[(1, 2)]));
    }

    #[test]
    fn complemented_mask() {
        let mut c = v(&[(0, 1), (1, 2)]);
        let mask = v(&[(1, 1)]);
        write_vector(
            &mut c,
            &complement(&mask),
            &NoAccumulate,
            v(&[(0, 50), (1, 60)]),
            MERGE,
        );
        // complement allows 0, forbids 1.
        assert_eq!(c, v(&[(0, 50), (1, 2)]));
    }

    #[test]
    fn matrix_write_mask_replace() {
        let mut c =
            Matrix::from_triples(2, 2, [(0usize, 0usize, 1i32), (0, 1, 2), (1, 1, 3)]).unwrap();
        let mask = Matrix::from_triples(2, 2, [(0usize, 0usize, true)]).unwrap();
        let t = Matrix::from_triples(2, 2, [(0usize, 0usize, 10i32), (1, 0, 20)]).unwrap();
        write_matrix(&mut c, &mask, &NoAccumulate, t.clone(), MERGE);
        assert_eq!(c.get(0, 0), Some(10));
        assert_eq!(c.get(0, 1), Some(2)); // masked out, merged
        assert_eq!(c.get(1, 0), None); // masked out, t ignored
        assert_eq!(c.get(1, 1), Some(3));

        let mut c2 =
            Matrix::from_triples(2, 2, [(0usize, 0usize, 1i32), (0, 1, 2), (1, 1, 3)]).unwrap();
        write_matrix(&mut c2, &mask, &NoAccumulate, t, REPLACE);
        assert_eq!(c2.nvals(), 1);
        assert_eq!(c2.get(0, 0), Some(10));
    }

    #[test]
    fn matrix_accum() {
        let mut c = Matrix::from_triples(1, 3, [(0usize, 0usize, 1i32), (0, 2, 3)]).unwrap();
        let t = Matrix::from_triples(1, 3, [(0usize, 0usize, 10i32), (0, 1, 20)]).unwrap();
        write_matrix(&mut c, &NoMask, &Accumulate(Plus::<i32>::new()), t, MERGE);
        assert_eq!(c.get(0, 0), Some(11));
        assert_eq!(c.get(0, 1), Some(20));
        assert_eq!(c.get(0, 2), Some(3));
    }

    #[test]
    fn union_merge_row_basics() {
        let out = union_merge_row(&[0, 2], &[1i32, 3], &[1, 2], &[10, 30], |a, b| a + b);
        assert_eq!(out, vec![(0, 1), (1, 10), (2, 33)]);
    }
}
