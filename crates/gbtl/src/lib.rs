//! # GBTL — GraphBLAS Template Library substrate, in Rust
//!
//! This crate is a from-scratch reimplementation of the role GBTL (the
//! C++ GraphBLAS Template Library) plays in the PyGB paper: a statically
//! typed, generic sparse linear-algebra library whose operations are
//! parameterized by arbitrary semirings, with the full GraphBLAS output
//! semantics (write masks, mask complement, accumulators, replace/merge).
//!
//! The design mirrors the GraphBLAS C API specification's mathematical
//! model: every operation computes an intermediate result `T` and then
//! merges it into the output `C` under the control of an optional mask
//! `M`, an optional accumulator `⊙`, and a replace flag `z`:
//!
//! ```text
//!   C⟨M, z⟩ = C ⊙ T
//! ```
//!
//! Rust generics stand in for C++ templates: operator functors are
//! zero-sized types implementing [`ops::BinaryOp`] / [`ops::Monoid`] /
//! [`ops::Semiring`], so kernels monomorphize exactly as GBTL's template
//! instantiations do. The companion `pygb` crate erases these types at
//! its boundary and re-selects monomorphized kernels at runtime through
//! the `pygb-jit` module cache, reproducing the paper's dynamic
//! compilation pipeline.
//!
//! ## Quick example (one ply of BFS, Fig. 1 of the paper)
//!
//! ```
//! use gbtl::prelude::*;
//!
//! // 7-vertex example graph from Fig. 1, as (row, col, value) triples.
//! let edges: Vec<(usize, usize, bool)> = vec![
//!     (0, 1, true), (0, 3, true), (1, 4, true), (1, 6, true),
//!     (2, 5, true), (3, 0, true), (3, 2, true), (4, 5, true),
//!     (5, 2, true), (6, 2, true), (6, 3, true), (6, 4, true),
//! ];
//! let graph = Matrix::<bool>::from_triples(7, 7, edges.iter().copied()).unwrap();
//!
//! // Frontier containing vertex 3 (the paper's source vertex "4", 1-based).
//! let frontier = Vector::<bool>::from_pairs(7, [(3usize, true)]).unwrap();
//!
//! // next = graphᵀ ⊕.⊗ frontier over the logical semiring.
//! let mut next = Vector::<bool>::new(7);
//! gbtl::operations::mxv(
//!     &mut next,
//!     &NoMask,
//!     NoAccumulate,
//!     &LogicalSemiring::<bool>::new(),
//!     gbtl::transpose(&graph),
//!     &frontier,
//!     Replace(true),
//! ).unwrap();
//!
//! assert_eq!(next.extract_indices(), vec![0, 2]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod delta;
pub mod error;
pub mod hints;
pub mod hooks;
pub mod index;
pub mod mask;
pub mod matrix;
pub mod operations;
pub mod ops;
pub mod parallel;
pub mod reference;
pub mod scalar;
pub mod vector;
pub mod views;
pub mod workspace;
pub mod write;

pub use delta::{DeltaMatrix, EdgeOp, MergePolicy};
pub use error::{GblasError, Result};
pub use hints::{
    set_mxm_family_hint, set_spmv_direction_hint, take_mxm_family_hint, take_spmv_direction_hint,
    MxmFamily, SpmvDirection,
};
pub use index::{IndexType, Indices};
pub use mask::{MaskProbe, MatrixMask, NoMask, VectorMask};
pub use matrix::Matrix;
pub use operations::{
    push_pull_density, reset_push_pull_density, set_push_pull_density, MxmKernel, SpmvKernel,
    PUSH_PULL_DENSITY,
};
pub use ops::accum::{Accum, NoAccumulate};
pub use ops::{BinaryOp, Monoid, Semiring, UnaryOp};
pub use scalar::Scalar;
pub use vector::Vector;
pub use views::{complement, dual, transpose, MatrixArg, Replace};

/// Convenience re-exports covering the types most programs need.
pub mod prelude {
    pub use crate::delta::{DeltaMatrix, EdgeOp, MergePolicy};
    pub use crate::error::{GblasError, Result};
    pub use crate::index::{IndexType, Indices};
    pub use crate::mask::{MaskProbe, MatrixMask, NoMask, VectorMask};
    pub use crate::matrix::Matrix;
    pub use crate::operations;
    pub use crate::operations::{MxmKernel, SpmvKernel, PUSH_PULL_DENSITY};
    pub use crate::ops::accum::{Accum, NoAccumulate};
    pub use crate::ops::binary::*;
    pub use crate::ops::monoid::*;
    pub use crate::ops::semiring::*;
    pub use crate::ops::unary::*;
    pub use crate::ops::{BinaryOp, Monoid, Semiring, UnaryOp};
    pub use crate::scalar::Scalar;
    pub use crate::vector::Vector;
    pub use crate::views::{complement, dual, transpose, MatrixArg, Replace};
}
