//! PageRank — Fig. 8 of the paper, transcribed operation by operation.
//!
//! The structure (seven GraphBLAS operations per iteration, convergence
//! on squared error, post-loop teleport fix-up through a complemented
//! mask) follows the paper's GBTL listing exactly.

use crate::error::Result;
use crate::mask::NoMask;
use crate::matrix::Matrix;
use crate::operations::{
    apply_matrix, apply_vector, assign_vector_constant, e_wise_add_vector, e_wise_mult_vector,
    reduce_vector_scalar, vxm,
};
use crate::ops::accum::{Accumulate, NoAccumulate};
use crate::ops::binary::{Minus, Plus, Second, Times};
use crate::ops::monoid::PlusMonoid;
use crate::ops::semiring::ArithmeticSemiring;
use crate::ops::unary::Bind2nd;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{complement, dual, Replace};
use crate::Indices;

/// Tunables matching Fig. 8's default arguments.
#[derive(Copy, Clone, Debug)]
pub struct PageRankOptions {
    /// Damping factor (Fig. 8: 0.85).
    pub damping_factor: f64,
    /// Convergence threshold on mean squared error (Fig. 8: 1e-5).
    pub threshold: f64,
    /// Iteration cap (Fig. 8: 100000).
    pub max_iters: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping_factor: 0.85,
            threshold: 1.0e-5,
            max_iters: 100_000,
        }
    }
}

/// Compute PageRank over `graph` (any scalar domain; cast to `f64`
/// internally like Fig. 8's `apply(m, ..., Identity<T, RealT>, graph)`).
/// Returns the rank vector and the number of iterations run.
pub fn page_rank<T: Scalar>(
    graph: &Matrix<T>,
    opts: PageRankOptions,
) -> Result<(Vector<f64>, usize)> {
    let rows = graph.nrows();
    let rows_f = rows as f64;
    // m = cast(graph); normalize_rows(m); m *= damping
    let mut m: Matrix<f64> = graph.cast();
    super::normalize_rows(&mut m);
    let scaled = m.clone();
    apply_matrix(
        &mut m,
        &NoMask,
        NoAccumulate,
        Bind2nd::new(Times::new(), opts.damping_factor),
        &scaled,
        Replace(false),
    )?;

    // The rank vector is dense, so every iteration's vxm pulls over the
    // rows of mᵀ; materialize the transpose once outside the loop.
    let mt = m.transpose_owned();

    // page_rank[:] = 1/rows
    let mut page_rank = Vector::<f64>::new(rows);
    assign_vector_constant(
        &mut page_rank,
        &NoMask,
        NoAccumulate,
        1.0 / rows_f,
        &Indices::All,
        Replace(false),
    )?;

    let teleport = (1.0 - opts.damping_factor) / rows_f;
    let mut new_rank = Vector::<f64>::new(rows);
    let mut delta = Vector::<f64>::new(rows);
    let mut iters = 0;

    for i in 0..opts.max_iters {
        iters = i + 1;
        // new_rank ⟨Second⟩= page_rank ⊕.⊗ m
        vxm(
            &mut new_rank,
            &NoMask,
            Accumulate(Second::<f64>::new()),
            &ArithmeticSemiring::new(),
            &page_rank,
            dual(&m, &mt),
            Replace(false),
        )?;
        // new_rank = new_rank + teleport (pattern-preserving apply)
        let snapshot = new_rank.clone();
        apply_vector(
            &mut new_rank,
            &NoMask,
            NoAccumulate,
            Bind2nd::new(Plus::new(), teleport),
            &snapshot,
            Replace(false),
        )?;
        // delta = page_rank − new_rank; delta = delta²; err = Σ delta
        e_wise_add_vector(
            &mut delta,
            &NoMask,
            NoAccumulate,
            Minus::new(),
            &page_rank,
            &new_rank,
            Replace(false),
        )?;
        let snapshot = delta.clone();
        e_wise_mult_vector(
            &mut delta,
            &NoMask,
            NoAccumulate,
            Times::new(),
            &snapshot,
            &snapshot,
            Replace(false),
        )?;
        let squared_error = reduce_vector_scalar(&PlusMonoid::new(), &delta);

        page_rank.assign_from(&new_rank)?;
        if squared_error / rows_f < opts.threshold {
            break;
        }
    }

    // Post-loop (Fig. 8 lines 59–65): give rank-less vertices the
    // teleport mass through a complemented mask.
    assign_vector_constant(
        &mut new_rank,
        &NoMask,
        NoAccumulate,
        teleport,
        &Indices::All,
        Replace(false),
    )?;
    let snapshot = page_rank.clone();
    e_wise_add_vector(
        &mut page_rank,
        &complement(&snapshot),
        NoAccumulate,
        Plus::new(),
        &snapshot,
        &new_rank,
        Replace(false),
    )?;

    Ok((page_rank, iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Matrix<f64> {
        Matrix::from_triples(n, n, (0..n).map(|i| (i, (i + 1) % n, 1.0))).unwrap()
    }

    #[test]
    fn cycle_is_uniform() {
        let n = 8;
        let (pr, _) = page_rank(&cycle(n), PageRankOptions::default()).unwrap();
        let expect = 1.0 / n as f64;
        for i in 0..n {
            assert!(
                (pr.get(i).unwrap() - expect).abs() < 1e-6,
                "vertex {i}: {:?}",
                pr.get(i)
            );
        }
    }

    #[test]
    fn ranks_sum_to_about_one() {
        // Bidirectional star: every vertex has in-edges, so no rank
        // entry ever drops out of the iteration (Fig. 8's algorithm
        // loses in-degree-0 vertices' mass until the final fix-up, and
        // this implementation reproduces that faithfully — see
        // `indegree_zero_vertices_get_teleport_only`).
        let g = Matrix::from_triples(
            5,
            5,
            [
                (1usize, 0usize, 1.0f64),
                (2, 0, 1.0),
                (3, 0, 1.0),
                (4, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (0, 4, 1.0),
            ],
        )
        .unwrap();
        let (pr, _) = page_rank(&g, PageRankOptions::default()).unwrap();
        let total: f64 = (0..5).filter_map(|i| pr.get(i)).sum();
        assert!((total - 1.0).abs() < 1e-3, "total = {total}");
        // Hub vertex 0 dominates.
        let r0 = pr.get(0).unwrap();
        for i in 1..5 {
            assert!(r0 > pr.get(i).unwrap());
        }
    }

    #[test]
    fn indegree_zero_vertices_get_teleport_only() {
        // Faithful Fig. 8 behaviour: a vertex nothing points at ends up
        // with exactly the teleport mass, set by the post-loop fix-up.
        let g = Matrix::from_triples(3, 3, [(0usize, 1usize, 1.0f64), (1, 0, 1.0), (2, 0, 1.0)])
            .unwrap();
        let (pr, _) = page_rank(&g, PageRankOptions::default()).unwrap();
        let teleport = (1.0 - 0.85) / 3.0;
        assert!((pr.get(2).unwrap() - teleport).abs() < 1e-12);
    }

    #[test]
    fn converges_quickly_on_small_graphs() {
        let (_, iters) = page_rank(&cycle(4), PageRankOptions::default()).unwrap();
        assert!(iters < 100, "took {iters} iterations");
    }

    #[test]
    fn respects_max_iters() {
        let opts = PageRankOptions {
            max_iters: 2,
            threshold: 0.0, // never converge by threshold
            ..Default::default()
        };
        let (_, iters) = page_rank(&cycle(6), opts).unwrap();
        assert_eq!(iters, 2);
    }

    #[test]
    fn integer_graph_is_cast() {
        let g: Matrix<i32> = cycle(4).cast();
        let (pr, _) = page_rank(&g, PageRankOptions::default()).unwrap();
        assert!((pr.get(0).unwrap() - 0.25).abs() < 1e-6);
    }
}
