//! Native GBTL algorithms — the "C++ version" of the paper's four
//! benchmarks (Fig. 2c BFS, Fig. 4b SSSP, Fig. 8 PageRank, Fig. 5b
//! triangle counting), written directly against the statically-typed
//! operation set.
//!
//! These are the *Native* baseline of the Fig. 10 experiment; the
//! `pygb-algorithms` crate wraps them (fused variant) and re-expresses
//! them through the dynamic DSL (per-op dispatch variant).

mod bfs;
mod cc;
mod pagerank;
mod sssp;
mod triangle;
mod util;

pub use bfs::{bfs_level, bfs_parent};
pub use cc::{component_count, connected_components};
pub use pagerank::{page_rank, PageRankOptions};
pub use sssp::{sssp, sssp_converging, sssp_from};
pub use triangle::{triangle_count, triangle_count_masked_dot, tril};
pub use util::normalize_rows;
