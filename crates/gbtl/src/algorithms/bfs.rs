//! Breadth-first search — the paper's running example (Figs. 1 and 2).
//!
//! Direct transcription of Fig. 2c:
//!
//! ```text
//! depth = 0
//! while frontier.nvals() > 0:
//!     depth += 1
//!     assign(levels, frontier, NoAccumulate, depth, AllIndices, false)
//!     mxv(frontier, complement(levels), NoAccumulate,
//!         LogicalSemiring, transpose(graph), frontier, true)
//! ```

use crate::error::Result;
use crate::index::{IndexType, Indices};
use crate::matrix::Matrix;
use crate::operations::{assign_vector_constant, mxv};
use crate::ops::accum::NoAccumulate;
use crate::ops::semiring::{LogicalSemiring, MinSelect2ndSemiring};
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{complement, dual, Replace};

/// BFS levels from `source`: `levels[v]` = 1 + hop distance, with the
/// source at level 1 (the paper's `depth` starts at 1 on the first ply).
/// Unreachable vertices have no stored entry.
///
/// The graph is interpreted as a directed adjacency matrix with edges
/// `(start, end)`; traversal follows `graphᵀ ⊕.⊗ frontier` exactly as in
/// the paper. Edge values only matter through truthiness.
pub fn bfs_level<T: Scalar>(graph: &Matrix<T>, source: IndexType) -> Result<Vector<u64>> {
    let n = graph.nrows();
    // The logical semiring only consults truthiness; one upfront
    // pattern cast (through bool, so fractional weights stay truthy)
    // puts graph, frontier, and levels in a common domain (the DSL does
    // the same upcast implicitly).
    let g: Matrix<u64> = graph.cast::<bool>().cast();
    // Pay the transpose once; the dual operand lets every ply pick the
    // push (sparse frontier) or pull (dense frontier) kernel.
    let gt = g.transpose_owned();
    let mut frontier = Vector::<u64>::new(n);
    frontier.set(source, 1)?;
    let mut levels = Vector::<u64>::new(n);
    let mut depth: u64 = 0;
    while frontier.nvals() > 0 {
        depth += 1;
        // levels<frontier, merge> = depth
        assign_vector_constant(
            &mut levels,
            &frontier,
            NoAccumulate,
            depth,
            &Indices::All,
            Replace(false),
        )?;
        // frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier
        let snapshot = frontier.clone();
        mxv(
            &mut frontier,
            &complement(&levels),
            NoAccumulate,
            &LogicalSemiring::<u64>::new(),
            dual(&gt, &g),
            &snapshot,
            Replace(true),
        )?;
    }
    Ok(levels)
}

/// BFS parent tree from `source`: `parents[v]` = 1-based parent id on a
/// shortest hop path (`source`'s parent is itself). Uses the
/// MinSelect2nd semiring — `w = Gᵀ ⊕.⊗ f` multiplies matrix entries by
/// frontier values, and Select2nd propagates the frontier's parent ids —
/// so each discovered vertex records the smallest parent id reaching it.
pub fn bfs_parent<T: Scalar>(graph: &Matrix<T>, source: IndexType) -> Result<Vector<u64>> {
    let n = graph.nrows();
    let g: Matrix<u64> = graph.cast::<bool>().cast();
    let gt = g.transpose_owned();
    // Frontier carries 1-based vertex ids as values.
    let mut frontier = Vector::<u64>::new(n);
    frontier.set(source, source as u64 + 1)?;
    let mut parents = Vector::<u64>::new(n);
    parents.set(source, source as u64 + 1)?;
    while frontier.nvals() > 0 {
        // next<!parents, replace> = min.select1st(frontier ᵀ·G)
        // (vxm: frontier values propagate along out-edges).
        let snapshot = frontier.clone();
        mxv(
            &mut frontier,
            &complement(&parents),
            NoAccumulate,
            &MinSelect2ndSemiring::<u64>::new(),
            dual(&gt, &g),
            &snapshot,
            Replace(true),
        )?;
        // parents<frontier, merge> |= discovered parent ids
        let mut discovered: Vec<(IndexType, u64)> = frontier.iter().collect();
        // Re-tag frontier values with the *discoverer's own id* for the
        // next ply: each newly found vertex v propagates v+1 onward.
        for (i, v) in discovered.iter_mut() {
            parents.set(*i, *v)?;
            *v = *i as u64 + 1;
        }
        frontier = Vector::from_pairs(n, discovered)?;
    }
    Ok(parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's 7-vertex digraph, 0-based.
    fn fig1_graph() -> Matrix<bool> {
        Matrix::from_triples(
            7,
            7,
            [
                (0usize, 1usize, true),
                (0, 3, true),
                (1, 4, true),
                (1, 6, true),
                (2, 5, true),
                (3, 0, true),
                (3, 2, true),
                (4, 5, true),
                (5, 2, true),
                (6, 2, true),
                (6, 3, true),
                (6, 4, true),
            ],
        )
        .unwrap()
    }

    #[test]
    fn levels_from_vertex_3() {
        let levels = bfs_level(&fig1_graph(), 3).unwrap();
        // 3 → {0,2} → {1,5} → {4,6} …
        assert_eq!(levels.get(3), Some(1));
        assert_eq!(levels.get(0), Some(2));
        assert_eq!(levels.get(2), Some(2));
        assert_eq!(levels.get(1), Some(3));
        assert_eq!(levels.get(5), Some(3));
        assert_eq!(levels.get(4), Some(4));
        assert_eq!(levels.get(6), Some(4));
    }

    #[test]
    fn unreachable_vertices_unstored() {
        let g = Matrix::from_triples(4, 4, [(0usize, 1usize, true)]).unwrap();
        let levels = bfs_level(&g, 0).unwrap();
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(2), None);
        assert_eq!(levels.get(3), None);
        assert_eq!(levels.nvals(), 2);
    }

    #[test]
    fn works_on_numeric_graphs() {
        // Edge weights are irrelevant to BFS; only pattern matters.
        let g = Matrix::from_triples(3, 3, [(0usize, 1usize, 0.5f64), (1, 2, 9.0)]).unwrap();
        let levels = bfs_level(&g, 0).unwrap();
        assert_eq!(levels.get(2), Some(3));
    }

    #[test]
    fn parent_tree_is_consistent_with_levels() {
        let g = fig1_graph();
        let levels = bfs_level(&g, 3).unwrap();
        let parents = bfs_parent(&g, 3).unwrap();
        assert_eq!(parents.get(3), Some(4)); // own id, 1-based
        for (v, p1) in parents.iter() {
            if v == 3 {
                continue;
            }
            let p = (p1 - 1) as usize;
            // Parent is exactly one level shallower and has the edge.
            assert_eq!(levels.get(p).unwrap() + 1, levels.get(v).unwrap());
            assert!(g.get(p, v).is_some(), "edge {p}->{v} missing");
        }
        assert_eq!(parents.nvals(), levels.nvals());
    }

    #[test]
    fn singleton_graph() {
        let g = Matrix::<bool>::new(1, 1);
        let levels = bfs_level(&g, 0).unwrap();
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.nvals(), 1);
    }
}
