//! Single-source shortest paths — Fig. 4b of the paper.
//!
//! Bellman–Ford style relaxation: `n` rounds of
//! `path ⟨min⟩= graphᵀ ⊕.⊗ path` over the MinPlus (tropical) semiring.
//! [`sssp`] runs the fixed `nrows` iterations exactly as the paper's
//! code does; [`sssp_converging`] stops as soon as a round changes
//! nothing (an extension measured by the ablation benches).

use crate::error::Result;
use crate::index::IndexType;
use crate::matrix::Matrix;
use crate::operations::mxv;
use crate::ops::accum::Accumulate;
use crate::ops::binary::Min;
use crate::ops::semiring::MinPlusSemiring;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{dual, Replace};

/// Fig. 4b verbatim: relax `graph.nrows()` times.
///
/// `path` holds the current tentative distances (typically just
/// `path[source] = 0` on entry) and is updated in place.
pub fn sssp<T: Scalar>(graph: &Matrix<T>, path: &mut Vector<T>) -> Result<()> {
    let gt = graph.transpose_owned();
    for _ in 0..graph.nrows() {
        relax(graph, &gt, path)?;
    }
    Ok(())
}

/// Relax until a fixed point: identical results, usually far fewer
/// rounds. Returns the number of relaxation rounds executed.
pub fn sssp_converging<T: Scalar>(graph: &Matrix<T>, path: &mut Vector<T>) -> Result<IndexType> {
    let gt = graph.transpose_owned();
    for round in 0..graph.nrows() {
        let before = path.clone();
        relax(graph, &gt, path)?;
        if *path == before {
            return Ok(round + 1);
        }
    }
    Ok(graph.nrows())
}

/// One relaxation round. The transpose is pre-computed by the callers,
/// so every round picks push (few settled distances) or pull (most
/// distances settled) from the frontier density.
fn relax<T: Scalar>(graph: &Matrix<T>, gt: &Matrix<T>, path: &mut Vector<T>) -> Result<()> {
    // mxv(path, NoMask, Min<T>, MinPlusSemiring<T>, transpose(graph), path)
    let snapshot = path.clone();
    mxv(
        path,
        &crate::mask::NoMask,
        Accumulate(Min::<T>::new()),
        &MinPlusSemiring::<T>::new(),
        dual(gt, graph),
        &snapshot,
        Replace(false),
    )?;
    Ok(())
}

/// Convenience: distances from a single `source` over a weighted graph.
pub fn sssp_from<T: Scalar>(graph: &Matrix<T>, source: IndexType) -> Result<Vector<T>> {
    let mut path = Vector::new(graph.nrows());
    path.set(source, T::zero())?;
    sssp(graph, &mut path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_graph() -> Matrix<f64> {
        // 0 →2→ 1 →3→ 2, plus a long direct edge 0 →10→ 2, and 2 →1→ 3.
        Matrix::from_triples(
            4,
            4,
            [
                (0usize, 1usize, 2.0f64),
                (1, 2, 3.0),
                (0, 2, 10.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shortest_paths() {
        let g = weighted_graph();
        let mut path = Vector::<f64>::new(4);
        path.set(0, 0.0).unwrap();
        sssp(&g, &mut path).unwrap();
        assert_eq!(path.get(0), Some(0.0));
        assert_eq!(path.get(1), Some(2.0));
        assert_eq!(path.get(2), Some(5.0)); // via 1, not the 10.0 edge
        assert_eq!(path.get(3), Some(6.0));
    }

    #[test]
    fn converging_matches_fixed_iterations() {
        let g = weighted_graph();
        let mut a = Vector::<f64>::new(4);
        a.set(0, 0.0).unwrap();
        sssp(&g, &mut a).unwrap();
        let mut b = Vector::<f64>::new(4);
        b.set(0, 0.0).unwrap();
        let rounds = sssp_converging(&g, &mut b).unwrap();
        assert_eq!(a, b);
        assert!(rounds <= 4);
    }

    #[test]
    fn unreachable_stay_unstored() {
        let g = weighted_graph();
        let dist = sssp_from(&g, 3).unwrap(); // vertex 3 has no out-edges
        assert_eq!(dist.get(3), Some(0.0));
        assert_eq!(dist.nvals(), 1);
    }

    #[test]
    fn integer_weights() {
        let g = Matrix::from_triples(3, 3, [(0usize, 1usize, 5i64), (1, 2, 7)]).unwrap();
        let dist = sssp_from(&g, 0).unwrap();
        assert_eq!(dist.get(2), Some(12));
    }

    #[test]
    fn negative_edges_bellman_ford() {
        // MinPlus relaxation handles negative edges (no negative cycles).
        let g =
            Matrix::from_triples(3, 3, [(0usize, 1usize, 4i64), (0, 2, 10), (1, 2, -3)]).unwrap();
        let dist = sssp_from(&g, 0).unwrap();
        assert_eq!(dist.get(2), Some(1)); // 4 + (-3) beats 10
    }
}
