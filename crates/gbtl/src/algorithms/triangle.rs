//! Triangle counting — Fig. 5b of the paper:
//!
//! ```text
//! mxm(B, L, NoAccumulate, ArithmeticSemiring, L, transpose(L));
//! reduce(triangles, NoAccumulate, PlusMonoid, B);
//! ```
//!
//! where `L` is the strictly-lower-triangular half of an undirected
//! adjacency matrix. Each triangle `{i, j, k}` with `i > j > k` is
//! counted exactly once by the masked wedge count `B⟨L⟩ = L·Lᵀ`.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::operations::{mxm, mxm_masked_dot, reduce_matrix_scalar};
use crate::ops::accum::NoAccumulate;
use crate::ops::monoid::PlusMonoid;
use crate::ops::semiring::ArithmeticSemiring;
use crate::scalar::Scalar;
use crate::views::{transpose, Replace};

/// Count triangles given the strictly-lower-triangular matrix `L`.
/// Fig. 5b verbatim: general masked SpGEMM, then a full reduce.
pub fn triangle_count<T: Scalar>(l: &Matrix<T>) -> Result<T> {
    let mut b = Matrix::<T>::new(l.nrows(), l.ncols());
    mxm(
        &mut b,
        l,
        NoAccumulate,
        &ArithmeticSemiring::<T>::new(),
        l,
        transpose(l),
        Replace(false),
    )?;
    Ok(reduce_matrix_scalar(&PlusMonoid::new(), &b))
}

/// Same computation through the mask-guided dot-product kernel — only
/// entries in `L`'s pattern are ever computed. Identical result,
/// asymptotically less work on sparse graphs (ablation bench
/// `ablation_lazy`).
pub fn triangle_count_masked_dot<T: Scalar>(l: &Matrix<T>) -> Result<T> {
    let mut b = Matrix::<T>::new(l.nrows(), l.ncols());
    // C = L·Lᵀ as dot products needs rows of (Lᵀ)ᵀ = L itself.
    mxm_masked_dot(
        &mut b,
        l,
        NoAccumulate,
        &ArithmeticSemiring::<T>::new(),
        l,
        l,
        Replace(false),
    )?;
    Ok(reduce_matrix_scalar(&PlusMonoid::new(), &b))
}

/// Strictly-lower-triangular extraction: the `L` the algorithm expects,
/// from a full (symmetric) adjacency matrix.
pub fn tril<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let triples = a.iter().filter(|&(i, j, _)| j < i);
    Matrix::from_triples(a.nrows(), a.ncols(), triples).expect("tril of a valid matrix is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undirected K4: 4 triangles.
    fn k4() -> Matrix<i64> {
        let mut triples = Vec::new();
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    triples.push((i, j, 1i64));
                }
            }
        }
        Matrix::from_triples(4, 4, triples).unwrap()
    }

    #[test]
    fn k4_has_four_triangles() {
        let l = tril(&k4());
        assert_eq!(triangle_count(&l).unwrap(), 4);
    }

    #[test]
    fn masked_dot_agrees() {
        let l = tril(&k4());
        assert_eq!(
            triangle_count(&l).unwrap(),
            triangle_count_masked_dot(&l).unwrap()
        );
    }

    #[test]
    fn triangle_free_graph() {
        // A 4-cycle has no triangles.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
        let sym = edges
            .iter()
            .flat_map(|&(a, b)| [(a, b, 1i64), (b, a, 1i64)]);
        let g = Matrix::from_triples(4, 4, sym).unwrap();
        assert_eq!(triangle_count(&tril(&g)).unwrap(), 0);
    }

    #[test]
    fn single_triangle() {
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        let sym = edges
            .iter()
            .flat_map(|&(a, b)| [(a, b, 1i64), (b, a, 1i64)]);
        let g = Matrix::from_triples(3, 3, sym).unwrap();
        assert_eq!(triangle_count(&tril(&g)).unwrap(), 1);
        assert_eq!(triangle_count_masked_dot(&tril(&g)).unwrap(), 1);
    }

    #[test]
    fn tril_is_strictly_lower() {
        let l = tril(&k4());
        assert!(l.iter().all(|(i, j, _)| j < i));
        assert_eq!(l.nvals(), 6); // C(4,2)
    }

    #[test]
    fn float_domain() {
        let l = tril(&k4()).cast::<f64>();
        assert_eq!(triangle_count(&l).unwrap(), 4.0);
    }
}
