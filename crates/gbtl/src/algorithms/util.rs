//! Algorithm utilities — GBTL's `normalize_rows` (used by PageRank,
//! Fig. 8 line 16).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Divide every stored element by its row's sum, making each non-empty
/// row sum to 1 — the row-stochastic normalization PageRank needs.
/// Rows with a zero sum are left untouched (integer division by zero
/// would zero them; GBTL divides by the sum as-is for floats).
pub fn normalize_rows<T: Scalar>(m: &mut Matrix<T>) {
    let mut rows: Vec<Vec<(usize, T)>> = Vec::with_capacity(m.nrows());
    for i in 0..m.nrows() {
        let (cols, vals) = m.row(i);
        let sum = vals.iter().fold(T::zero(), |acc, &v| acc.s_add(v));
        let row = if sum == T::zero() {
            cols.iter().copied().zip(vals.iter().copied()).collect()
        } else {
            cols.iter()
                .copied()
                .zip(vals.iter().map(|&v| v.s_div(sum)))
                .collect()
        };
        rows.push(row);
    }
    *m = Matrix::from_rows(m.nrows(), m.ncols(), rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut m = Matrix::from_triples(
            2,
            3,
            [
                (0usize, 0usize, 1.0f64),
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 0, 5.0),
            ],
        )
        .unwrap();
        normalize_rows(&mut m);
        assert!((m.get(0, 0).unwrap() - 0.25).abs() < 1e-12);
        assert!((m.get(0, 2).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn empty_rows_unchanged() {
        let mut m = Matrix::from_triples(3, 3, [(0usize, 0usize, 2.0f64)]).unwrap();
        normalize_rows(&mut m);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.row_nvals(1), 0);
        assert!(m.is_valid());
    }

    #[test]
    fn zero_sum_row_untouched() {
        let mut m = Matrix::from_triples(1, 2, [(0usize, 0usize, 1.0f64), (0, 1, -1.0)]).unwrap();
        normalize_rows(&mut m);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(0, 1), Some(-1.0));
    }
}
