//! Connected components by min-label propagation — an algorithm the
//! paper does not evaluate, built here purely on the GraphBLAS
//! operation set to show the substrate carries algorithms beyond the
//! paper's four (a downstream-user exercise).
//!
//! Every vertex starts labeled with its own (1-based) id; each round
//! pulls the minimum label across both edge directions with the
//! MinSelect2nd semiring and a Min accumulator, until a fixpoint. For a
//! graph with components of diameter `d`, this converges in `O(d)`
//! rounds.

use crate::error::Result;
use crate::mask::NoMask;
use crate::matrix::Matrix;
use crate::operations::mxv;
use crate::ops::accum::Accumulate;
use crate::ops::binary::Min;
use crate::ops::semiring::MinSelect2ndSemiring;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{transpose, Replace};

/// Component labels for every vertex: `labels[v]` is the smallest
/// (1-based) vertex id reachable from `v` treating edges as undirected.
/// Returns the labels and the number of propagation rounds.
pub fn connected_components<T: Scalar>(graph: &Matrix<T>) -> Result<(Vector<u64>, usize)> {
    let n = graph.nrows();
    let g: Matrix<u64> = graph.cast::<bool>().cast();
    let mut labels = Vector::from_pairs(n, (0..n).map(|i| (i, i as u64 + 1)))?;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut next = labels.clone();
        // Pull labels from out-neighbors: nextᵢ min= min_j g(i,j)·labelⱼ.
        mxv(
            &mut next,
            &NoMask,
            Accumulate(Min::<u64>::new()),
            &MinSelect2ndSemiring::<u64>::new(),
            &g,
            &labels,
            Replace(false),
        )?;
        // Pull labels from in-neighbors (the other edge direction).
        let snapshot = next.clone();
        mxv(
            &mut next,
            &NoMask,
            Accumulate(Min::<u64>::new()),
            &MinSelect2ndSemiring::<u64>::new(),
            transpose(&g),
            &snapshot,
            Replace(false),
        )?;
        if next == labels {
            return Ok((labels, rounds));
        }
        labels = next;
        if rounds > n {
            // Safety net; min-label propagation converges in ≤ n rounds.
            return Ok((labels, rounds));
        }
    }
}

/// Count the distinct components in a label vector.
pub fn component_count(labels: &Vector<u64>) -> usize {
    let mut ids: Vec<u64> = labels.values().to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        // {0,1,2} chained, {3,4} chained.
        let g = Matrix::from_triples(5, 5, [(0usize, 1usize, 1i64), (1, 2, 1), (3, 4, 1)]).unwrap();
        let (labels, _) = connected_components(&g).unwrap();
        assert_eq!(labels.get(0), Some(1));
        assert_eq!(labels.get(1), Some(1));
        assert_eq!(labels.get(2), Some(1));
        assert_eq!(labels.get(3), Some(4));
        assert_eq!(labels.get(4), Some(4));
        assert_eq!(component_count(&labels), 2);
    }

    #[test]
    fn direction_is_ignored() {
        // A directed path 2 → 1 → 0 still forms one component.
        let g = Matrix::from_triples(3, 3, [(2usize, 1usize, 1i64), (1, 0, 1)]).unwrap();
        let (labels, _) = connected_components(&g).unwrap();
        assert_eq!(component_count(&labels), 1);
        assert!(labels.values().iter().all(|&l| l == 1));
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = Matrix::<i64>::new(4, 4);
        let (labels, rounds) = connected_components(&g).unwrap();
        assert_eq!(component_count(&labels), 4);
        assert_eq!(rounds, 1);
        for i in 0..4 {
            assert_eq!(labels.get(i), Some(i as u64 + 1));
        }
    }

    #[test]
    fn long_path_needs_multiple_rounds() {
        let n = 32;
        let g = Matrix::from_triples(n, n, (0..n - 1).map(|i| (i, i + 1, 1i64))).unwrap();
        let (labels, rounds) = connected_components(&g).unwrap();
        assert_eq!(component_count(&labels), 1);
        assert!(rounds > 1);
        assert!(rounds <= n);
    }
}
