//! Write masks — the `⟨M⟩` of `C⟨M, z⟩ = C ⊙ T`.
//!
//! A mask is any container whose stored values, coerced to boolean,
//! decide which output positions may be written (the paper: "its data
//! will be coerced to boolean values"). [`NoMask`] allows every
//! position; [`crate::views::Complement`] inverts a mask (`~levels` in
//! Fig. 2b).

use crate::index::IndexType;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// How a kernel may consult a mask *structurally*, beyond per-position
/// [`VectorMask::allows`] probes. Masks backed by a sparse container
/// can enumerate their truthy entries, which lets kernels confine the
/// compute loop to the mask (masked SpGEMM/SpMV) instead of computing
/// the full product and post-filtering in the write step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaskProbe {
    /// Every position is allowed (no mask) — kernels skip masking.
    All,
    /// The allowed positions are exactly the truthy stored entries;
    /// `truthy_*` enumerates them.
    Structural,
    /// The allowed positions are everything *except* the truthy stored
    /// entries (a complemented structural mask); `truthy_*` enumerates
    /// the forbidden set.
    StructuralComplement,
    /// Only per-position `allows` probes are available; kernels fall
    /// back to compute-then-filter.
    Opaque,
}

/// A mask over vector outputs.
pub trait VectorMask: Sync {
    /// The dimension the mask covers (`usize::MAX` for [`NoMask`],
    /// meaning "any").
    fn mask_size(&self) -> IndexType;
    /// Whether writing to position `i` is allowed.
    fn allows(&self, i: IndexType) -> bool;
    /// Whether this mask allows every position (lets kernels skip the
    /// masked write path entirely).
    fn is_all(&self) -> bool {
        false
    }
    /// How kernels may consult this mask structurally.
    fn probe(&self) -> MaskProbe {
        MaskProbe::Opaque
    }
    /// Append the truthy stored indices (ascending) to `out`. Only
    /// meaningful when [`VectorMask::probe`] reports `Structural` (the
    /// allowed set) or `StructuralComplement` (the forbidden set).
    fn truthy_indices(&self, out: &mut Vec<IndexType>) {
        let _ = out;
    }
}

/// A mask over matrix outputs.
pub trait MatrixMask: Sync {
    /// `(nrows, ncols)` the mask covers (`(usize::MAX, usize::MAX)` for
    /// [`NoMask`]).
    fn mask_shape(&self) -> (IndexType, IndexType);
    /// Whether writing to position `(i, j)` is allowed.
    fn allows(&self, i: IndexType, j: IndexType) -> bool;
    /// Whether this mask allows every position.
    fn is_all(&self) -> bool {
        false
    }
    /// How kernels may consult this mask structurally.
    fn probe(&self) -> MaskProbe {
        MaskProbe::Opaque
    }
    /// Append the truthy stored columns of row `i` (ascending) to
    /// `out`. Only meaningful when [`MatrixMask::probe`] reports
    /// `Structural` (the allowed set) or `StructuralComplement` (the
    /// forbidden set).
    fn truthy_cols_in_row(&self, i: IndexType, out: &mut Vec<IndexType>) {
        let _ = (i, out);
    }
}

/// The absent mask (GBTL's `NoMask()`, PyGB's `C[None]`): every
/// position is writable.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoMask;

impl VectorMask for NoMask {
    fn mask_size(&self) -> IndexType {
        IndexType::MAX
    }
    #[inline]
    fn allows(&self, _i: IndexType) -> bool {
        true
    }
    fn is_all(&self) -> bool {
        true
    }
    fn probe(&self) -> MaskProbe {
        MaskProbe::All
    }
}

impl MatrixMask for NoMask {
    fn mask_shape(&self) -> (IndexType, IndexType) {
        (IndexType::MAX, IndexType::MAX)
    }
    #[inline]
    fn allows(&self, _i: IndexType, _j: IndexType) -> bool {
        true
    }
    fn is_all(&self) -> bool {
        true
    }
    fn probe(&self) -> MaskProbe {
        MaskProbe::All
    }
}

impl<T: Scalar> VectorMask for Vector<T> {
    fn mask_size(&self) -> IndexType {
        self.size()
    }
    #[inline]
    fn allows(&self, i: IndexType) -> bool {
        self.get(i).is_some_and(Scalar::to_bool)
    }
    fn probe(&self) -> MaskProbe {
        MaskProbe::Structural
    }
    fn truthy_indices(&self, out: &mut Vec<IndexType>) {
        out.extend(self.iter().filter(|(_, v)| v.to_bool()).map(|(i, _)| i));
    }
}

impl<T: Scalar> MatrixMask for Matrix<T> {
    fn mask_shape(&self) -> (IndexType, IndexType) {
        self.shape()
    }
    #[inline]
    fn allows(&self, i: IndexType, j: IndexType) -> bool {
        self.get(i, j).is_some_and(Scalar::to_bool)
    }
    fn probe(&self) -> MaskProbe {
        MaskProbe::Structural
    }
    fn truthy_cols_in_row(&self, i: IndexType, out: &mut Vec<IndexType>) {
        let (cols, vals) = self.row(i);
        out.extend(
            cols.iter()
                .zip(vals)
                .filter(|(_, v)| v.to_bool())
                .map(|(&j, _)| j),
        );
    }
}

impl<M: VectorMask + ?Sized> VectorMask for &M {
    fn mask_size(&self) -> IndexType {
        (**self).mask_size()
    }
    #[inline]
    fn allows(&self, i: IndexType) -> bool {
        (**self).allows(i)
    }
    fn is_all(&self) -> bool {
        (**self).is_all()
    }
    fn probe(&self) -> MaskProbe {
        (**self).probe()
    }
    fn truthy_indices(&self, out: &mut Vec<IndexType>) {
        (**self).truthy_indices(out)
    }
}

impl<M: MatrixMask + ?Sized> MatrixMask for &M {
    fn mask_shape(&self) -> (IndexType, IndexType) {
        (**self).mask_shape()
    }
    #[inline]
    fn allows(&self, i: IndexType, j: IndexType) -> bool {
        (**self).allows(i, j)
    }
    fn is_all(&self) -> bool {
        (**self).is_all()
    }
    fn probe(&self) -> MaskProbe {
        (**self).probe()
    }
    fn truthy_cols_in_row(&self, i: IndexType, out: &mut Vec<IndexType>) {
        (**self).truthy_cols_in_row(i, out)
    }
}

/// Validate that a vector mask conforms to an output of dimension `n`.
pub fn check_vector_mask<M: VectorMask + ?Sized>(mask: &M, n: IndexType) -> crate::Result<()> {
    let ms = mask.mask_size();
    if ms != IndexType::MAX && ms != n {
        return Err(crate::GblasError::mask(format!(
            "mask size {ms} vs output size {n}"
        )));
    }
    Ok(())
}

/// Validate that a matrix mask conforms to an output of shape `(r, c)`.
pub fn check_matrix_mask<M: MatrixMask + ?Sized>(
    mask: &M,
    r: IndexType,
    c: IndexType,
) -> crate::Result<()> {
    let (mr, mc) = mask.mask_shape();
    if (mr != IndexType::MAX && mr != r) || (mc != IndexType::MAX && mc != c) {
        return Err(crate::GblasError::mask(format!(
            "mask shape ({mr}, {mc}) vs output shape ({r}, {c})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::complement;

    #[test]
    fn no_mask_allows_everything() {
        assert!(VectorMask::allows(&NoMask, 123456));
        assert!(MatrixMask::allows(&NoMask, 7, 9));
        assert!(VectorMask::is_all(&NoMask));
    }

    #[test]
    fn vector_values_coerce_to_bool() {
        let m = Vector::from_pairs(5, [(0usize, 1i32), (2, 0), (4, -3)]).unwrap();
        assert!(m.allows(0)); // stored nonzero
        assert!(!m.allows(1)); // not stored
        assert!(!m.allows(2)); // stored zero → false
        assert!(m.allows(4)); // negative is truthy
    }

    #[test]
    fn matrix_mask() {
        let m = Matrix::from_triples(2, 2, [(0usize, 0usize, true), (1, 1, false)]).unwrap();
        assert!(MatrixMask::allows(&m, 0, 0));
        assert!(!MatrixMask::allows(&m, 0, 1));
        assert!(!MatrixMask::allows(&m, 1, 1));
    }

    #[test]
    fn complement_inverts() {
        let m = Vector::from_pairs(3, [(1usize, true)]).unwrap();
        let c = complement(&m);
        assert!(VectorMask::allows(&c, 0));
        assert!(!VectorMask::allows(&c, 1));
        assert!(VectorMask::allows(&c, 2));
    }

    #[test]
    fn shape_checks() {
        let m = Vector::<bool>::new(4);
        assert!(check_vector_mask(&m, 4).is_ok());
        assert!(check_vector_mask(&m, 5).is_err());
        assert!(check_vector_mask(&NoMask, 5).is_ok());

        let mm = Matrix::<bool>::new(2, 3);
        assert!(check_matrix_mask(&mm, 2, 3).is_ok());
        assert!(check_matrix_mask(&mm, 3, 2).is_err());
        assert!(check_matrix_mask(&NoMask, 9, 9).is_ok());
    }
}
