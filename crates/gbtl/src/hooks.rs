//! Kernel entry/exit observation hooks.
//!
//! The substrate stays dependency-free: an embedding layer (in this
//! workspace, `pygb`'s kernel registry) installs one process-wide
//! observer function, and every operation entry point reports
//! `(kernel name, elapsed nanoseconds)` on successful completion.
//! Kernel names are `family/variant` (for example `mxv/masked_push`,
//! `mxm/gustavson`) so the observer can aggregate per kernel family.
//!
//! When no observer is installed — or before one is — the per-kernel
//! cost is one `OnceLock` load and a branch; no clock is read.

use std::sync::OnceLock;
use std::time::Instant;

/// The observer signature: a kernel named `name` just completed,
/// having taken `ns` nanoseconds (measured around selection and
/// execution, excluding argument validation).
pub type KernelObserver = fn(name: &'static str, ns: u64);

static OBSERVER: OnceLock<KernelObserver> = OnceLock::new();

/// Install the process-wide kernel observer. The first installation
/// wins; returns whether this call installed it.
pub fn install_kernel_observer(observer: KernelObserver) -> bool {
    OBSERVER.set(observer).is_ok()
}

/// The fact-checker signature: a container write just finalized,
/// leaving `nvals` stored entries in a container of capacity `dim`
/// (vector size, or matrix `nrows × ncols`). An embedding layer with a
/// plan-time sparsity analysis installs one to compare each kernel's
/// concrete output against the abstract fact predicted for it
/// (the debug-mode checked interpretation of the abstract domain).
pub type FactChecker = fn(nvals: usize, dim: usize);

static FACT_CHECKER: OnceLock<FactChecker> = OnceLock::new();

/// Install the process-wide fact checker, called after every finalized
/// container write. The first installation wins; returns whether this
/// call installed it.
pub fn install_fact_checker(checker: FactChecker) -> bool {
    FACT_CHECKER.set(checker).is_ok()
}

/// Report a finalized write to the installed fact checker. `f` is only
/// evaluated when a checker is installed, so the uninstalled cost is a
/// single `OnceLock` load and a branch — no counting, no allocation
/// (asserted by the observability overhead bench).
#[inline]
pub fn report_fact(f: impl FnOnce() -> (usize, usize)) {
    if let Some(checker) = FACT_CHECKER.get() {
        let (nvals, dim) = f();
        checker(nvals, dim);
    }
}

#[inline]
fn observer() -> Option<KernelObserver> {
    OBSERVER.get().copied()
}

/// RAII-free kernel timer: reads the clock only when an observer is
/// installed, and reports on [`KernelTimer::finish`] — error paths
/// simply never call `finish`, so failed operations are not observed.
pub(crate) struct KernelTimer(Option<Instant>);

impl KernelTimer {
    #[inline]
    pub(crate) fn start() -> Self {
        KernelTimer(observer().map(|_| Instant::now()))
    }

    #[inline]
    pub(crate) fn finish(self, name: &'static str) {
        if let (Some(start), Some(f)) = (self.0, observer()) {
            f(name, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CALLS: AtomicU64 = AtomicU64::new(0);

    fn test_observer(_name: &'static str, _ns: u64) {
        CALLS.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn timer_reports_once_installed() {
        // Before installation the timer is inert.
        let t = KernelTimer::start();
        t.finish("unit/inert");
        let installed = install_kernel_observer(test_observer);
        // In-process, only the first install wins; either way an
        // observer is now present.
        assert!(installed || OBSERVER.get().is_some());
        let before = CALLS.load(Ordering::Relaxed);
        let t = KernelTimer::start();
        t.finish("unit/live");
        if installed {
            assert_eq!(CALLS.load(Ordering::Relaxed), before + 1);
        }
    }
}
