//! A deliberately naive reference oracle for the operation set.
//!
//! Every function here computes the *expected* output of the matching
//! [`crate::operations`] entry point using dense triple loops and
//! per-position `get` probes — no sparse accumulators, no kernel
//! selection, no parallelism. The implementations transcribe the
//! GraphBLAS two-phase write rule literally:
//!
//! ```text
//!   Z = C ⊙ T          (union merge when the accumulator is active,
//!                        Z = T otherwise)
//!   out(i) = M(i) ? Z(i) : (z ? ∅ : C(i))
//! ```
//!
//! The differential test suite (`crates/gbtl/tests/reference_oracle.rs`)
//! pits the optimized kernels — including the masked SpGEMM and
//! push/pull SpMV paths — against these oracles over random inputs,
//! masks, complements, accumulators, and both replace settings, so a
//! kernel rewrite can never silently change semantics. Oracle functions
//! take the output container by reference and *return* the expected
//! result instead of mutating, which keeps call sites side-by-side
//! comparable.

use crate::index::{IndexType, Indices};
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::ops::{BinaryOp, Monoid, Semiring, UnaryOp};
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};

/// Logical element probe of a (possibly transposed / dual) operand.
fn arg_get<T: Scalar>(a: &MatrixArg<'_, T>, i: IndexType, j: IndexType) -> Option<T> {
    match a {
        MatrixArg::Plain(m) | MatrixArg::Dual { rows: m, .. } => m.get(i, j),
        MatrixArg::Transposed(m) => m.get(j, i),
    }
}

/// Phase 2 for one vector position: mask, then replace-or-keep.
fn finalize_slot<T: Scalar>(
    allowed: bool,
    z: Option<T>,
    c: Option<T>,
    replace: Replace,
) -> Option<T> {
    if allowed {
        z
    } else if replace.0 {
        None
    } else {
        c
    }
}

/// Phase 1 for one position: `Z = C ⊙ T` (union merge with an active
/// accumulator, plain `T` otherwise).
fn merge_slot<T: Scalar, A: Accum<T>>(accum: &A, c: Option<T>, t: Option<T>) -> Option<T> {
    if accum.is_active() {
        match (c, t) {
            (Some(cv), Some(tv)) => Some(accum.accum(cv, tv)),
            (Some(cv), None) => Some(cv),
            (None, tv) => tv,
        }
    } else {
        t
    }
}

/// Apply the full write rule to a dense intermediate vector `t`.
fn write_vector_ref<T, Mk, A>(
    c: &Vector<T>,
    mask: &Mk,
    accum: &A,
    t: &[Option<T>],
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    let n = c.size();
    let pairs = (0..n).filter_map(|i| {
        let z = merge_slot(accum, c.get(i), t[i]);
        finalize_slot(mask.allows(i), z, c.get(i), replace).map(|v| (i, v))
    });
    Vector::from_pairs(n, pairs).expect("oracle: in-bounds by construction")
}

/// Apply the full write rule to a dense intermediate matrix `t`.
fn write_matrix_ref<T, Mk, A>(
    c: &Matrix<T>,
    mask: &Mk,
    accum: &A,
    t: &[Vec<Option<T>>],
    replace: Replace,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
{
    let (nr, nc) = c.shape();
    let triples = (0..nr).flat_map(|i| {
        let ti = &t[i];
        (0..nc).filter_map(move |j| {
            let z = merge_slot(accum, c.get(i, j), ti[j]);
            finalize_slot(mask.allows(i, j), z, c.get(i, j), replace).map(|v| (i, j, v))
        })
    });
    Matrix::from_triples(nr, nc, triples).expect("oracle: in-bounds by construction")
}

/// Expected `C⟨M, z⟩ = C ⊙ (A ⊕.⊗ B)` (GraphBLAS `mxm`).
pub fn mxm<'a, 'b, T, Mk, A, S>(
    c: &Matrix<T>,
    mask: &Mk,
    accum: &A,
    semiring: &S,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    let (a, b) = (a.into(), b.into());
    let (nr, nc, kk) = (a.nrows(), b.ncols(), a.ncols());
    let mut t = vec![vec![None; nc]; nr];
    #[allow(clippy::needless_range_loop)]
    for i in 0..nr {
        for j in 0..nc {
            let mut acc: Option<T> = None;
            for k in 0..kk {
                if let (Some(av), Some(bv)) = (arg_get(&a, i, k), arg_get(&b, k, j)) {
                    let prod = semiring.mult(av, bv);
                    acc = Some(match acc {
                        Some(s) => semiring.add(s, prod),
                        None => prod,
                    });
                }
            }
            t[i][j] = acc;
        }
    }
    write_matrix_ref(c, mask, accum, &t, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ (A ⊕.⊗ u)` (GraphBLAS `mxv`).
pub fn mxv<'a, T, Mk, A, S>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    semiring: &S,
    a: impl Into<MatrixArg<'a, T>>,
    u: &Vector<T>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    let a = a.into();
    let nr = a.nrows();
    let mut t = vec![None; nr];
    #[allow(clippy::needless_range_loop)]
    for i in 0..nr {
        let mut acc: Option<T> = None;
        for j in 0..a.ncols() {
            if let (Some(av), Some(uv)) = (arg_get(&a, i, j), u.get(j)) {
                let prod = semiring.mult(av, uv);
                acc = Some(match acc {
                    Some(s) => semiring.add(s, prod),
                    None => prod,
                });
            }
        }
        t[i] = acc;
    }
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ (uᵀ ⊕.⊗ A)` (GraphBLAS `vxm`).
pub fn vxm<'a, T, Mk, A, S>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    semiring: &S,
    u: &Vector<T>,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    mxv(w, mask, accum, semiring, a.into().flip(), u, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ (u ⊕ v)` — union element-wise op.
pub fn e_wise_add_vector<T, Mk, A, Op>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    let t: Vec<Option<T>> = (0..w.size())
        .map(|i| match (u.get(i), v.get(i)) {
            (Some(a), Some(b)) => Some(op.apply(a, b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        })
        .collect();
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ (u ⊗ v)` — intersection element-wise op.
pub fn e_wise_mult_vector<T, Mk, A, Op>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    let t: Vec<Option<T>> = (0..w.size())
        .map(|i| match (u.get(i), v.get(i)) {
            (Some(a), Some(b)) => Some(op.apply(a, b)),
            _ => None,
        })
        .collect();
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Dense intermediate for the matrix element-wise ops.
fn ewise_matrix_t<T, Op>(
    add: bool,
    op: Op,
    a: &MatrixArg<'_, T>,
    b: &MatrixArg<'_, T>,
) -> Vec<Vec<Option<T>>>
where
    T: Scalar,
    Op: BinaryOp<T>,
{
    (0..a.nrows())
        .map(|i| {
            (0..a.ncols())
                .map(|j| match (arg_get(a, i, j), arg_get(b, i, j)) {
                    (Some(x), Some(y)) => Some(op.apply(x, y)),
                    (Some(x), None) if add => Some(x),
                    (None, y) if add => y,
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// Expected `C⟨M, z⟩ = C ⊙ (A ⊕ B)` — union element-wise op.
pub fn e_wise_add_matrix<'a, 'b, T, Mk, A, Op>(
    c: &Matrix<T>,
    mask: &Mk,
    accum: &A,
    op: Op,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    let t = ewise_matrix_t(true, op, &a.into(), &b.into());
    write_matrix_ref(c, mask, accum, &t, replace)
}

/// Expected `C⟨M, z⟩ = C ⊙ (A ⊗ B)` — intersection element-wise op.
pub fn e_wise_mult_matrix<'a, 'b, T, Mk, A, Op>(
    c: &Matrix<T>,
    mask: &Mk,
    accum: &A,
    op: Op,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    let t = ewise_matrix_t(false, op, &a.into(), &b.into());
    write_matrix_ref(c, mask, accum, &t, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ f(u)` — apply on vectors.
pub fn apply_vector<T, Mk, A, F>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    f: F,
    u: &Vector<T>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    F: UnaryOp<T>,
{
    let t: Vec<Option<T>> = (0..w.size())
        .map(|i| u.get(i).map(|v| f.apply(v)))
        .collect();
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Expected `C⟨M, z⟩ = C ⊙ f(A)` — apply on matrices.
pub fn apply_matrix<'a, T, Mk, A, F>(
    c: &Matrix<T>,
    mask: &Mk,
    accum: &A,
    f: F,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    F: UnaryOp<T>,
{
    let a = a.into();
    let t: Vec<Vec<Option<T>>> = (0..a.nrows())
        .map(|i| {
            (0..a.ncols())
                .map(|j| arg_get(&a, i, j).map(|v| f.apply(v)))
                .collect()
        })
        .collect();
    write_matrix_ref(c, mask, accum, &t, replace)
}

/// Expected `w⟨m, z⟩ = w ⊙ [⊕ⱼ A(:, j)]` — row-wise reduce. Folds the
/// stored entries of each logical row in ascending column order, like
/// the optimized kernel; a row with no entries produces no entry.
pub fn reduce_matrix_to_vector<'a, T, Mk, A, M>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    monoid: &M,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    M: Monoid<T>,
{
    let a = a.into();
    let t: Vec<Option<T>> = (0..a.nrows())
        .map(|i| {
            (0..a.ncols())
                .filter_map(|j| arg_get(&a, i, j))
                .reduce(|x, y| monoid.apply(x, y))
        })
        .collect();
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Expected `s = ⊕ᵢ u(i)` over stored entries (identity when empty).
pub fn reduce_vector_scalar<T, M>(monoid: &M, u: &Vector<T>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    (0..u.size())
        .filter_map(|i| u.get(i))
        .fold(monoid.identity(), |acc, v| monoid.apply(acc, v))
}

/// Expected `s = ⊕ᵢⱼ A(i, j)` over stored entries (identity when empty).
pub fn reduce_matrix_scalar<'a, T, M>(monoid: &M, a: impl Into<MatrixArg<'a, T>>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    let a = a.into();
    let mut acc = monoid.identity();
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            if let Some(v) = arg_get(&a, i, j) {
                acc = monoid.apply(acc, v);
            }
        }
    }
    acc
}

/// Expected `w⟨m, z⟩(ix) = w(ix) ⊙ u` — assign a vector into a region.
/// Outside the region `Z = C`; inside, the region's pattern replaces
/// (no accumulator) or union-merges (accumulator active).
pub fn assign_vector<T, Mk, A>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    u: &Vector<T>,
    ix: &Indices,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    assign_vector_with(w, mask, accum, ix, replace, |k| u.get(k))
}

/// Expected `w⟨m, z⟩(ix) = w(ix) ⊙ value` — constant assign.
pub fn assign_vector_constant<T, Mk, A>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    value: T,
    ix: &Indices,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    assign_vector_with(w, mask, accum, ix, replace, |_| Some(value))
}

/// Shared body of the vector assign oracles.
fn assign_vector_with<T, Mk, A>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    ix: &Indices,
    replace: Replace,
    value_at: impl Fn(IndexType) -> Option<T>,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    let n = w.size();
    let mut in_region = vec![false; n];
    let mut region: Vec<Option<T>> = vec![None; n];
    for (k, out_i) in ix.iter(n) {
        in_region[out_i] = true;
        region[out_i] = value_at(k);
    }
    let pairs = (0..n).filter_map(|i| {
        let cv = w.get(i);
        let z = if in_region[i] {
            merge_slot(accum, cv, region[i])
        } else {
            cv
        };
        finalize_slot(mask.allows(i), z, cv, replace).map(|v| (i, v))
    });
    Vector::from_pairs(n, pairs).expect("oracle: in-bounds by construction")
}

/// Expected `w⟨m, z⟩ = w ⊙ u(ix)` — extract selected positions.
pub fn extract_vector<T, Mk, A>(
    w: &Vector<T>,
    mask: &Mk,
    accum: &A,
    u: &Vector<T>,
    ix: &Indices,
    replace: Replace,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    let mut t: Vec<Option<T>> = vec![None; w.size()];
    for (k, src) in ix.iter(u.size()) {
        t[k] = u.get(src);
    }
    write_vector_ref(w, mask, accum, &t, replace)
}

/// Mutation oracle for the streaming delta layer
/// ([`crate::delta::DeltaMatrix`]): apply edge updates to a dense
/// `Option` grid in order (`Some(v)` inserts/overwrites, `None`
/// deletes; last write to a coordinate wins) and rebuild from scratch
/// via [`Matrix::from_triples`]. The delta container's settle path
/// must match this bit-identically — that is the update≡rebuild claim.
///
/// Out-of-bounds coordinates are ignored here; the container under
/// test is expected to *reject* them before mutating, so callers feed
/// the oracle only in-bounds updates.
pub fn apply_edge_updates<T: Scalar>(
    base: &Matrix<T>,
    updates: &[(IndexType, IndexType, Option<T>)],
) -> Matrix<T> {
    let (nrows, ncols) = base.shape();
    let mut grid: Vec<Vec<Option<T>>> = vec![vec![None; ncols]; nrows];
    for (i, j, v) in base.iter() {
        grid[i][j] = Some(v);
    }
    for &(i, j, op) in updates {
        if i < nrows && j < ncols {
            grid[i][j] = op;
        }
    }
    let triples = grid.iter().enumerate().flat_map(|(i, row)| {
        row.iter()
            .enumerate()
            .filter_map(move |(j, slot)| slot.map(|v| (i, j, v)))
    });
    Matrix::from_triples(nrows, ncols, triples).expect("oracle triples are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::ops::monoid::PlusMonoid;
    use crate::ops::semiring::ArithmeticSemiring;
    use crate::views::{complement, MERGE, REPLACE};

    #[test]
    fn oracle_mxv_hand_checked() {
        // A = [[1, 2], [0, 3]] (dense positions stored), u = [10, 100].
        let a = Matrix::from_triples(2, 2, [(0usize, 0usize, 1i32), (0, 1, 2), (1, 1, 3)]).unwrap();
        let u = Vector::from_pairs(2, [(0usize, 10i32), (1, 100)]).unwrap();
        let w = Vector::<i32>::new(2);
        let got = mxv(
            &w,
            &NoMask,
            &NoAccumulate,
            &ArithmeticSemiring::new(),
            &a,
            &u,
            MERGE,
        );
        assert_eq!(got.get(0), Some(210));
        assert_eq!(got.get(1), Some(300));
    }

    #[test]
    fn oracle_write_rule_matrix() {
        // C has an entry the mask forbids: merge keeps it, replace drops it.
        let c = Matrix::from_triples(2, 2, [(0usize, 0usize, 7i32), (1, 1, 9)]).unwrap();
        let m = Matrix::from_triples(2, 2, [(1usize, 1usize, true)]).unwrap();
        let a = Matrix::from_triples(2, 2, [(1usize, 0usize, 2i32)]).unwrap();
        let b = Matrix::from_triples(2, 2, [(0usize, 1usize, 5i32)]).unwrap();
        let sr = ArithmeticSemiring::new();

        let merged = mxm(&c, &m, &Accumulate(Plus::<i32>::new()), &sr, &a, &b, MERGE);
        assert_eq!(merged.get(0, 0), Some(7)); // outside mask, kept
        assert_eq!(merged.get(1, 1), Some(19)); // 9 ⊙ (2*5)

        let replaced = mxm(&c, &m, &NoAccumulate, &sr, &a, &b, REPLACE);
        assert_eq!(replaced.get(0, 0), None); // outside mask, cleared
        assert_eq!(replaced.get(1, 1), Some(10));

        let comp = mxm(&c, &complement(&m), &NoAccumulate, &sr, &a, &b, REPLACE);
        assert_eq!(comp.get(1, 1), None); // forbidden by ~m, replace clears
        assert_eq!(comp.get(0, 0), None); // allowed, but T is empty there and no accum
        assert_eq!(comp.nvals(), 0); // T's only entry (1,1) is forbidden
    }

    #[test]
    fn oracle_reduce_identities() {
        let u = Vector::<i64>::new(4);
        assert_eq!(reduce_vector_scalar(&PlusMonoid::<i64>::new(), &u), 0);
        let m = Matrix::<i64>::new(3, 3);
        assert_eq!(reduce_matrix_scalar(&PlusMonoid::<i64>::new(), &m), 0);
    }
}
