//! Sparse matrix container (GBTL's `GraphBLAS::Matrix<T>`), stored in
//! compressed sparse row (CSR) form.
//!
//! CSR is the storage GBTL's sequential backend uses for row-major
//! traversal; all kernels in [`crate::operations`] iterate rows. A
//! transposed operand is either handled by a specialized kernel or
//! materialized with [`Matrix::transpose_owned`] (a counting sort,
//! `O(nnz + n)`), mirroring GBTL's handling of `TransposeView`.

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::scalar::Scalar;

/// A sparse `nrows × ncols` matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    nrows: IndexType,
    ncols: IndexType,
    /// `row_ptr[i]..row_ptr[i+1]` is the slice of row `i` in
    /// `col_idx` / `values`. Length `nrows + 1`.
    row_ptr: Vec<IndexType>,
    col_idx: Vec<IndexType>,
    values: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: IndexType, ncols: IndexType) -> Self {
        Matrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triples. Triples may be unordered;
    /// duplicates are an error (use [`Matrix::from_triples_dedup_with`]
    /// to combine them).
    pub fn from_triples<I>(nrows: IndexType, ncols: IndexType, triples: I) -> Result<Self>
    where
        I: IntoIterator<Item = (IndexType, IndexType, T)>,
    {
        Self::build(nrows, ncols, triples, None::<fn(T, T) -> T>)
    }

    /// Build from triples, combining duplicate coordinates with `dup`.
    pub fn from_triples_dedup_with<I, F>(
        nrows: IndexType,
        ncols: IndexType,
        triples: I,
        dup: F,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (IndexType, IndexType, T)>,
        F: FnMut(T, T) -> T,
    {
        Self::build(nrows, ncols, triples, Some(dup))
    }

    fn build<I, F>(
        nrows: IndexType,
        ncols: IndexType,
        triples: I,
        mut dup: Option<F>,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (IndexType, IndexType, T)>,
        F: FnMut(T, T) -> T,
    {
        let mut entries: Vec<(IndexType, IndexType, T)> = triples.into_iter().collect();
        for &(r, c, _) in &entries {
            if r >= nrows {
                return Err(GblasError::IndexOutOfBounds {
                    index: r,
                    bound: nrows,
                });
            }
            if c >= ncols {
                return Err(GblasError::IndexOutOfBounds {
                    index: c,
                    bound: ncols,
                });
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0; nrows + 1];
        let mut col_idx: Vec<IndexType> = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());
        let mut last: Option<(IndexType, IndexType)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                match dup.as_mut() {
                    Some(f) => {
                        let lv = values.last_mut().expect("values track entries");
                        *lv = f(*lv, v);
                        continue;
                    }
                    None => return Err(GblasError::invalid(format!("duplicate entry ({r}, {c})"))),
                }
            }
            last = Some((r, c));
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from dense row data, storing *every* element (PyGB's
    /// `gb.Matrix([[1, 2], [3, 4]])` semantics). All rows must have the
    /// same length.
    pub fn from_dense(rows: &[Vec<T>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(GblasError::invalid(format!(
                    "ragged dense data: row {i} has {} columns, expected {ncols}",
                    r.len()
                )));
            }
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::with_capacity(nrows * ncols);
        let mut values = Vec::with_capacity(nrows * ncols);
        for r in rows {
            col_idx.extend(0..ncols);
            values.extend_from_slice(r);
            row_ptr.push(col_idx.len());
        }
        Ok(Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Internal: assemble from per-row sorted `(col, value)` lists.
    pub(crate) fn from_rows(
        nrows: IndexType,
        ncols: IndexType,
        rows: Vec<Vec<(IndexType, T)>>,
    ) -> Self {
        debug_assert_eq!(rows.len(), nrows);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
            for (c, v) in row {
                debug_assert!(c < ncols);
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Internal: assemble directly from validated CSR arrays. The
    /// caller guarantees the invariants checked by [`Matrix::is_valid`]
    /// (monotone `row_ptr` of length `nrows + 1`, per-row strictly
    /// ascending in-bounds columns, parallel `col_idx` / `values`).
    pub(crate) fn from_csr_parts(
        nrows: IndexType,
        ncols: IndexType,
        row_ptr: Vec<IndexType>,
        col_idx: Vec<IndexType>,
        values: Vec<T>,
    ) -> Self {
        let m = Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        debug_assert!(m.is_valid());
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> IndexType {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> IndexType {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (IndexType, IndexType) {
        (self.nrows, self.ncols)
    }

    /// Number of stored elements.
    #[inline]
    pub fn nvals(&self) -> IndexType {
        self.col_idx.len()
    }

    /// The stored value at `(i, j)`, if present.
    pub fn get(&self, i: IndexType, j: IndexType) -> Option<T> {
        if i >= self.nrows {
            return None;
        }
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| vals[p])
    }

    /// Whether `(i, j)` holds a stored element.
    pub fn contains(&self, i: IndexType, j: IndexType) -> bool {
        self.get(i, j).is_some()
    }

    /// Store `v` at `(i, j)`, overwriting any existing element.
    /// `O(row length + tail shift)` — fine for construction, not kernels.
    pub fn set(&mut self, i: IndexType, j: IndexType, v: T) -> Result<()> {
        if i >= self.nrows {
            return Err(GblasError::IndexOutOfBounds {
                index: i,
                bound: self.nrows,
            });
        }
        if j >= self.ncols {
            return Err(GblasError::IndexOutOfBounds {
                index: j,
                bound: self.ncols,
            });
        }
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(p) => self.values[lo + p] = v,
            Err(p) => {
                self.col_idx.insert(lo + p, j);
                self.values.insert(lo + p, v);
                for rp in &mut self.row_ptr[i + 1..] {
                    *rp += 1;
                }
            }
        }
        Ok(())
    }

    /// Remove the stored element at `(i, j)` (no-op if absent).
    pub fn remove(&mut self, i: IndexType, j: IndexType) {
        if i >= self.nrows {
            return;
        }
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        if let Ok(p) = self.col_idx[lo..hi].binary_search(&j) {
            self.col_idx.remove(lo + p);
            self.values.remove(lo + p);
            for rp in &mut self.row_ptr[i + 1..] {
                *rp -= 1;
            }
        }
    }

    /// Remove every stored element, keeping the shape.
    pub fn clear(&mut self) {
        self.row_ptr.iter_mut().for_each(|p| *p = 0);
        self.col_idx.clear();
        self.values.clear();
    }

    /// The sorted column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: IndexType) -> (&[IndexType], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored elements in row `i`.
    #[inline]
    pub fn row_nvals(&self, i: IndexType) -> IndexType {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Iterate over stored `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (IndexType, IndexType, T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .copied()
                .zip(vals.iter().copied())
                .map(move |(c, v)| (i, c, v))
        })
    }

    /// Copy out the stored triples (PyGB's `extractTuples`).
    pub fn extract_triples(&self) -> Vec<(IndexType, IndexType, T)> {
        self.iter().collect()
    }

    /// Materialize the transpose as a new CSR matrix (counting sort,
    /// `O(nnz + nrows + ncols)`).
    pub fn transpose_owned(&self) -> Matrix<T> {
        let mut row_ptr = vec![0; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0; self.nvals()];
        let mut values = vec![T::zero(); self.nvals()];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = cursor[c];
                cursor[c] += 1;
                col_idx[p] = i;
                values[p] = v;
            }
        }
        Matrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Densify into row-major `Vec<Vec<T>>` with `fill` at unstored
    /// positions.
    pub fn to_dense(&self, fill: T) -> Vec<Vec<T>> {
        let mut out = vec![vec![fill; self.ncols]; self.nrows];
        for (i, j, v) in self.iter() {
            out[i][j] = v;
        }
        out
    }

    /// Element-wise cast into another scalar domain.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| U::cast_from(v)).collect(),
        }
    }

    /// Replace contents with another matrix's (same shape required).
    pub fn assign_from(&mut self, other: &Matrix<T>) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(GblasError::dim(format!(
                "assign_from: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        self.row_ptr.clone_from(&other.row_ptr);
        self.col_idx.clone_from(&other.col_idx);
        self.values.clone_from(&other.values);
        Ok(())
    }

    /// Check structural invariants (for tests and property checks).
    pub fn is_valid(&self) -> bool {
        if self.row_ptr.len() != self.nrows + 1 {
            return false;
        }
        if *self.row_ptr.first().unwrap_or(&1) != 0 {
            return false;
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return false;
        }
        if self.col_idx.len() != self.values.len() {
            return false;
        }
        for i in 0..self.nrows {
            let (cols, _) = self.row(i);
            if cols.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            if cols.last().is_some_and(|&c| c >= self.ncols) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Matrix<i32> {
        Matrix::from_triples(
            3,
            4,
            [(0usize, 1usize, 10), (2, 0, 5), (0, 3, 7), (1, 2, -2)],
        )
        .unwrap()
    }

    #[test]
    fn from_triples_sorts_rows_and_cols() {
        let m = fixture();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nvals(), 4);
        assert_eq!(m.row(0), (&[1usize, 3][..], &[10, 7][..]));
        assert_eq!(m.row(1), (&[2usize][..], &[-2][..]));
        assert!(m.is_valid());
    }

    #[test]
    fn duplicates_rejected_or_combined() {
        let dup = [(0usize, 0usize, 1i32), (0, 0, 2)];
        assert!(Matrix::from_triples(2, 2, dup).is_err());
        let m = Matrix::from_triples_dedup_with(2, 2, dup, |a, b| a + b).unwrap();
        assert_eq!(m.get(0, 0), Some(3));
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(Matrix::from_triples(2, 2, [(2usize, 0usize, 1i32)]).is_err());
        assert!(Matrix::from_triples(2, 2, [(0usize, 2usize, 1i32)]).is_err());
    }

    #[test]
    fn from_dense_stores_everything() {
        let m = Matrix::from_dense(&[vec![1, 2], vec![0, 4]]).unwrap();
        assert_eq!(m.nvals(), 4); // explicit zero stored
        assert_eq!(m.get(1, 0), Some(0));
        assert!(Matrix::from_dense(&[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn get_set_remove() {
        let mut m = fixture();
        assert_eq!(m.get(0, 1), Some(10));
        assert_eq!(m.get(0, 0), None);
        m.set(0, 0, 99).unwrap();
        assert_eq!(m.get(0, 0), Some(99));
        assert_eq!(m.nvals(), 5);
        m.set(0, 0, 1).unwrap(); // overwrite, no growth
        assert_eq!(m.nvals(), 5);
        m.remove(0, 0);
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.nvals(), 4);
        assert!(m.is_valid());
        assert!(m.set(3, 0, 1).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = fixture();
        let t = m.transpose_owned();
        assert_eq!(t.shape(), (4, 3));
        assert!(t.is_valid());
        for (i, j, v) in m.iter() {
            assert_eq!(t.get(j, i), Some(v));
        }
        assert_eq!(t.transpose_owned(), m);
    }

    #[test]
    fn iter_row_major() {
        let m = fixture();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 1, 10), (0, 3, 7), (1, 2, -2), (2, 0, 5)]);
    }

    #[test]
    fn to_dense() {
        let m = Matrix::from_triples(2, 2, [(0usize, 1usize, 3i32)]).unwrap();
        assert_eq!(m.to_dense(0), vec![vec![0, 3], vec![0, 0]]);
    }

    #[test]
    fn cast() {
        let m = Matrix::from_triples(1, 2, [(0usize, 0usize, 2.9f64), (0, 1, 0.0)]).unwrap();
        let i: Matrix<i64> = m.cast();
        assert_eq!(i.get(0, 0), Some(2));
        let b: Matrix<bool> = m.cast();
        assert_eq!(b.get(0, 1), Some(false)); // stored false, still stored
        assert_eq!(b.nvals(), 2);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut m = fixture();
        m.clear();
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.is_valid());
    }

    #[test]
    fn empty_matrix_valid() {
        let m = Matrix::<f32>::new(0, 0);
        assert!(m.is_valid());
        assert_eq!(m.nvals(), 0);
    }
}
