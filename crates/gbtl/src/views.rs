//! Non-owning argument views: transposed operands, complemented masks,
//! and the replace flag — GBTL's `transpose(A)`, `complement(M)` and the
//! trailing `bool` of every operation.

use std::borrow::Cow;

use crate::index::IndexType;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A matrix operand that is either plain or logically transposed —
/// GBTL's `TransposeView`. Kernels either have a specialized transposed
/// path or call [`MatrixArg::materialize`].
#[derive(Copy, Clone, Debug)]
pub enum MatrixArg<'a, T> {
    /// The matrix as stored.
    Plain(&'a Matrix<T>),
    /// The matrix viewed as its transpose.
    Transposed(&'a Matrix<T>),
}

/// Wrap a matrix as a transposed operand (GBTL's `GB::transpose(A)`,
/// PyGB's `A.T`).
pub fn transpose<T>(m: &Matrix<T>) -> MatrixArg<'_, T> {
    MatrixArg::Transposed(m)
}

impl<'a, T> From<&'a Matrix<T>> for MatrixArg<'a, T> {
    fn from(m: &'a Matrix<T>) -> Self {
        MatrixArg::Plain(m)
    }
}

impl<'a, T: Scalar> MatrixArg<'a, T> {
    /// Logical row count (after any transposition).
    pub fn nrows(&self) -> IndexType {
        match self {
            MatrixArg::Plain(m) => m.nrows(),
            MatrixArg::Transposed(m) => m.ncols(),
        }
    }

    /// Logical column count (after any transposition).
    pub fn ncols(&self) -> IndexType {
        match self {
            MatrixArg::Plain(m) => m.ncols(),
            MatrixArg::Transposed(m) => m.nrows(),
        }
    }

    /// Whether the view is transposed.
    pub fn is_transposed(&self) -> bool {
        matches!(self, MatrixArg::Transposed(_))
    }

    /// The underlying storage, ignoring the transposition flag.
    pub fn inner(&self) -> &'a Matrix<T> {
        match self {
            MatrixArg::Plain(m) | MatrixArg::Transposed(m) => m,
        }
    }

    /// A CSR matrix in *logical* orientation: borrowed when plain,
    /// freshly transposed when the view is transposed.
    pub fn materialize(&self) -> Cow<'a, Matrix<T>> {
        match self {
            MatrixArg::Plain(m) => Cow::Borrowed(*m),
            MatrixArg::Transposed(m) => Cow::Owned(m.transpose_owned()),
        }
    }

    /// Flip the transposition flag (`(Aᵀ)ᵀ = A`).
    pub fn flip(self) -> Self {
        match self {
            MatrixArg::Plain(m) => MatrixArg::Transposed(m),
            MatrixArg::Transposed(m) => MatrixArg::Plain(m),
        }
    }
}

/// A complemented mask: allows exactly the positions the inner mask
/// forbids (GBTL's `complement(M)`, PyGB's `~m`).
#[derive(Copy, Clone, Debug)]
pub struct Complement<M>(pub M);

/// Wrap a mask in a complement view.
pub fn complement<M>(mask: M) -> Complement<M> {
    Complement(mask)
}

impl<M: VectorMask> VectorMask for Complement<M> {
    fn mask_size(&self) -> IndexType {
        self.0.mask_size()
    }
    #[inline]
    fn allows(&self, i: IndexType) -> bool {
        !self.0.allows(i)
    }
    fn is_all(&self) -> bool {
        false
    }
}

impl<M: MatrixMask> MatrixMask for Complement<M> {
    fn mask_shape(&self) -> (IndexType, IndexType) {
        self.0.mask_shape()
    }
    #[inline]
    fn allows(&self, i: IndexType, j: IndexType) -> bool {
        !self.0.allows(i, j)
    }
    fn is_all(&self) -> bool {
        false
    }
}

/// The replace flag `z` of `C⟨M, z⟩`: when true, positions outside the
/// mask are cleared instead of merged (the paper's "replace" vs "merge").
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Replace(pub bool);

/// Merge semantics (`z` unset) — the GraphBLAS default.
pub const MERGE: Replace = Replace(false);
/// Replace semantics (`z` set).
pub const REPLACE: Replace = Replace(true);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    #[test]
    fn transposed_dims_swap() {
        let m = Matrix::<i32>::new(2, 5);
        let t = transpose(&m);
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 2);
        assert!(t.is_transposed());
        let p = MatrixArg::from(&m);
        assert_eq!(p.nrows(), 2);
        assert!(!p.is_transposed());
    }

    #[test]
    fn materialize_transposes() {
        let m = Matrix::from_triples(2, 3, [(0usize, 2usize, 7i32)]).unwrap();
        let t = transpose(&m).materialize();
        assert_eq!(t.get(2, 0), Some(7));
        let p = MatrixArg::from(&m).materialize();
        assert_eq!(p.get(0, 2), Some(7));
    }

    #[test]
    fn flip_is_involution() {
        let m = Matrix::<bool>::new(3, 4);
        let a = MatrixArg::from(&m).flip().flip();
        assert!(!a.is_transposed());
    }

    #[test]
    fn double_complement_restores() {
        let m = Vector::from_pairs(3, [(0usize, true)]).unwrap();
        let cc = complement(complement(&m));
        assert!(cc.allows(0));
        assert!(!cc.allows(1));
    }

    #[test]
    fn replace_constants() {
        assert_eq!(MERGE, Replace(false));
        assert_eq!(REPLACE, Replace(true));
    }
}
