//! Non-owning argument views: transposed operands, complemented masks,
//! and the replace flag — GBTL's `transpose(A)`, `complement(M)` and the
//! trailing `bool` of every operation.

use std::borrow::Cow;

use crate::index::IndexType;
use crate::mask::{MaskProbe, MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A matrix operand that is either plain or logically transposed —
/// GBTL's `TransposeView`. Kernels either have a specialized transposed
/// path or call [`MatrixArg::materialize`].
#[derive(Copy, Clone, Debug)]
pub enum MatrixArg<'a, T> {
    /// The matrix as stored.
    Plain(&'a Matrix<T>),
    /// The matrix viewed as its transpose.
    Transposed(&'a Matrix<T>),
    /// Both orientations pre-materialized: `rows` holds the logical
    /// matrix row-major, `cols` holds its transpose row-major (i.e. the
    /// logical matrix column-major). Lets `mxv`/`vxm` choose the push
    /// or pull kernel per call from the frontier density without any
    /// per-call transposition. Built with [`dual`].
    Dual {
        /// The logical matrix, stored by rows (CSR).
        rows: &'a Matrix<T>,
        /// Its transpose, stored by rows (the logical matrix's CSC).
        cols: &'a Matrix<T>,
    },
}

/// Wrap a matrix as a transposed operand (GBTL's `GB::transpose(A)`,
/// PyGB's `A.T`).
pub fn transpose<T>(m: &Matrix<T>) -> MatrixArg<'_, T> {
    MatrixArg::Transposed(m)
}

/// Wrap a matrix and its pre-computed transpose as a dual-orientation
/// operand; `cols` must be `rows.transpose_owned()` (checked by shape
/// here, by content in debug builds). Algorithms that multiply by the
/// same matrix every iteration (BFS, SSSP, PageRank) pay the transpose
/// once and let `mxv`/`vxm` switch push/pull per call.
pub fn dual<'a, T: Scalar>(rows: &'a Matrix<T>, cols: &'a Matrix<T>) -> MatrixArg<'a, T> {
    assert_eq!(
        (rows.nrows(), rows.ncols()),
        (cols.ncols(), cols.nrows()),
        "dual: cols must be the transpose of rows"
    );
    debug_assert_eq!(&rows.transpose_owned(), cols);
    MatrixArg::Dual { rows, cols }
}

impl<'a, T> From<&'a Matrix<T>> for MatrixArg<'a, T> {
    fn from(m: &'a Matrix<T>) -> Self {
        MatrixArg::Plain(m)
    }
}

impl<'a, T: Scalar> MatrixArg<'a, T> {
    /// Logical row count (after any transposition).
    pub fn nrows(&self) -> IndexType {
        match self {
            MatrixArg::Plain(m) | MatrixArg::Dual { rows: m, .. } => m.nrows(),
            MatrixArg::Transposed(m) => m.ncols(),
        }
    }

    /// Logical column count (after any transposition).
    pub fn ncols(&self) -> IndexType {
        match self {
            MatrixArg::Plain(m) | MatrixArg::Dual { rows: m, .. } => m.ncols(),
            MatrixArg::Transposed(m) => m.nrows(),
        }
    }

    /// Whether the view is transposed. A [`MatrixArg::Dual`] is never
    /// transposed: its `rows` half is already in logical orientation.
    pub fn is_transposed(&self) -> bool {
        matches!(self, MatrixArg::Transposed(_))
    }

    /// The underlying storage, ignoring the transposition flag (the
    /// `rows` half of a dual view).
    pub fn inner(&self) -> &'a Matrix<T> {
        match self {
            MatrixArg::Plain(m) | MatrixArg::Transposed(m) | MatrixArg::Dual { rows: m, .. } => m,
        }
    }

    /// A CSR matrix in *logical* orientation: borrowed when available,
    /// freshly transposed when the view is transposed.
    pub fn materialize(&self) -> Cow<'a, Matrix<T>> {
        match self {
            MatrixArg::Plain(m) | MatrixArg::Dual { rows: m, .. } => Cow::Borrowed(*m),
            MatrixArg::Transposed(m) => Cow::Owned(m.transpose_owned()),
        }
    }

    /// The transpose in CSR form when it is available without work:
    /// the stored matrix of a [`MatrixArg::Transposed`] view, or the
    /// `cols` half of a [`MatrixArg::Dual`].
    pub fn transposed_rows(&self) -> Option<&'a Matrix<T>> {
        match self {
            MatrixArg::Plain(_) => None,
            MatrixArg::Transposed(m) => Some(m),
            MatrixArg::Dual { cols, .. } => Some(cols),
        }
    }

    /// Flip the transposition flag (`(Aᵀ)ᵀ = A`).
    pub fn flip(self) -> Self {
        match self {
            MatrixArg::Plain(m) => MatrixArg::Transposed(m),
            MatrixArg::Transposed(m) => MatrixArg::Plain(m),
            MatrixArg::Dual { rows, cols } => MatrixArg::Dual {
                rows: cols,
                cols: rows,
            },
        }
    }
}

/// A complemented mask: allows exactly the positions the inner mask
/// forbids (GBTL's `complement(M)`, PyGB's `~m`).
#[derive(Copy, Clone, Debug)]
pub struct Complement<M>(pub M);

/// Wrap a mask in a complement view.
pub fn complement<M>(mask: M) -> Complement<M> {
    Complement(mask)
}

/// Invert a structural probe: complementing swaps the allowed and
/// forbidden enumerations; anything else degrades to opaque probing.
fn complement_probe(inner: MaskProbe) -> MaskProbe {
    match inner {
        MaskProbe::Structural => MaskProbe::StructuralComplement,
        MaskProbe::StructuralComplement => MaskProbe::Structural,
        MaskProbe::All | MaskProbe::Opaque => MaskProbe::Opaque,
    }
}

impl<M: VectorMask> VectorMask for Complement<M> {
    fn mask_size(&self) -> IndexType {
        self.0.mask_size()
    }
    #[inline]
    fn allows(&self, i: IndexType) -> bool {
        !self.0.allows(i)
    }
    fn is_all(&self) -> bool {
        false
    }
    fn probe(&self) -> MaskProbe {
        complement_probe(self.0.probe())
    }
    fn truthy_indices(&self, out: &mut Vec<IndexType>) {
        self.0.truthy_indices(out)
    }
}

impl<M: MatrixMask> MatrixMask for Complement<M> {
    fn mask_shape(&self) -> (IndexType, IndexType) {
        self.0.mask_shape()
    }
    #[inline]
    fn allows(&self, i: IndexType, j: IndexType) -> bool {
        !self.0.allows(i, j)
    }
    fn is_all(&self) -> bool {
        false
    }
    fn probe(&self) -> MaskProbe {
        complement_probe(self.0.probe())
    }
    fn truthy_cols_in_row(&self, i: IndexType, out: &mut Vec<IndexType>) {
        self.0.truthy_cols_in_row(i, out)
    }
}

/// The replace flag `z` of `C⟨M, z⟩`: when true, positions outside the
/// mask are cleared instead of merged (the paper's "replace" vs "merge").
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Replace(pub bool);

/// Merge semantics (`z` unset) — the GraphBLAS default.
pub const MERGE: Replace = Replace(false);
/// Replace semantics (`z` set).
pub const REPLACE: Replace = Replace(true);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    #[test]
    fn transposed_dims_swap() {
        let m = Matrix::<i32>::new(2, 5);
        let t = transpose(&m);
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 2);
        assert!(t.is_transposed());
        let p = MatrixArg::from(&m);
        assert_eq!(p.nrows(), 2);
        assert!(!p.is_transposed());
    }

    #[test]
    fn materialize_transposes() {
        let m = Matrix::from_triples(2, 3, [(0usize, 2usize, 7i32)]).unwrap();
        let t = transpose(&m).materialize();
        assert_eq!(t.get(2, 0), Some(7));
        let p = MatrixArg::from(&m).materialize();
        assert_eq!(p.get(0, 2), Some(7));
    }

    #[test]
    fn flip_is_involution() {
        let m = Matrix::<bool>::new(3, 4);
        let a = MatrixArg::from(&m).flip().flip();
        assert!(!a.is_transposed());
    }

    #[test]
    fn double_complement_restores() {
        let m = Vector::from_pairs(3, [(0usize, true)]).unwrap();
        let cc = complement(complement(&m));
        assert!(cc.allows(0));
        assert!(!cc.allows(1));
    }

    #[test]
    fn replace_constants() {
        assert_eq!(MERGE, Replace(false));
        assert_eq!(REPLACE, Replace(true));
    }
}
