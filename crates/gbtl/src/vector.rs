//! Sparse vector container (GBTL's `GraphBLAS::Vector<T>`).
//!
//! Stored as parallel sorted arrays of indices and values. Like
//! GraphBLAS containers, a `Vector` distinguishes *stored* elements from
//! structural zeros: `nvals` counts stored entries, and operations only
//! see stored entries. Explicitly stored zeros are allowed (construction
//! from dense data stores every element, as PyGB's `gb.Vector([...])`
//! does).

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::scalar::Scalar;

/// A sparse vector of dimension `size` holding elements of type `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct Vector<T> {
    size: IndexType,
    indices: Vec<IndexType>,
    values: Vec<T>,
}

impl<T: Scalar> Vector<T> {
    /// An empty vector of the given dimension.
    pub fn new(size: IndexType) -> Self {
        Vector {
            size,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(index, value)` pairs. Pairs may be unordered;
    /// duplicate indices are an error (use
    /// [`Vector::from_pairs_dedup_with`] to combine them).
    pub fn from_pairs<I>(size: IndexType, pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (IndexType, T)>,
    {
        let mut entries: Vec<(IndexType, T)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if i >= size {
                return Err(GblasError::IndexOutOfBounds {
                    index: i,
                    bound: size,
                });
            }
            if indices.last() == Some(&i) {
                return Err(GblasError::invalid(format!("duplicate index {i}")));
            }
            indices.push(i);
            values.push(v);
        }
        Ok(Vector {
            size,
            indices,
            values,
        })
    }

    /// Build from `(index, value)` pairs, combining duplicates with `dup`.
    pub fn from_pairs_dedup_with<I, F>(size: IndexType, pairs: I, mut dup: F) -> Result<Self>
    where
        I: IntoIterator<Item = (IndexType, T)>,
        F: FnMut(T, T) -> T,
    {
        let mut entries: Vec<(IndexType, T)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut indices: Vec<IndexType> = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if i >= size {
                return Err(GblasError::IndexOutOfBounds {
                    index: i,
                    bound: size,
                });
            }
            if indices.last() == Some(&i) {
                let last = values.last_mut().expect("values track indices");
                *last = dup(*last, v);
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Ok(Vector {
            size,
            indices,
            values,
        })
    }

    /// Build from dense data, storing *every* element (PyGB's
    /// `gb.Vector([1, 2, 3])` semantics).
    pub fn from_dense(data: &[T]) -> Self {
        Vector {
            size: data.len(),
            indices: (0..data.len()).collect(),
            values: data.to_vec(),
        }
    }

    /// Internal: build from already-sorted, duplicate-free entries.
    /// Debug-asserts the invariant.
    pub(crate) fn from_sorted_entries(
        size: IndexType,
        indices: Vec<IndexType>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&i| i < size));
        Vector {
            size,
            indices,
            values,
        }
    }

    /// The dimension of the vector.
    #[inline]
    pub fn size(&self) -> IndexType {
        self.size
    }

    /// Number of stored elements.
    #[inline]
    pub fn nvals(&self) -> IndexType {
        self.indices.len()
    }

    /// Whether no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The stored value at `i`, if present.
    pub fn get(&self, i: IndexType) -> Option<T> {
        self.position(i).map(|p| self.values[p])
    }

    /// Whether index `i` holds a stored element.
    #[inline]
    pub fn contains(&self, i: IndexType) -> bool {
        self.position(i).is_some()
    }

    fn position(&self, i: IndexType) -> Option<usize> {
        self.indices.binary_search(&i).ok()
    }

    /// Store `v` at index `i`, overwriting any existing element.
    pub fn set(&mut self, i: IndexType, v: T) -> Result<()> {
        if i >= self.size {
            return Err(GblasError::IndexOutOfBounds {
                index: i,
                bound: self.size,
            });
        }
        match self.indices.binary_search(&i) {
            Ok(p) => self.values[p] = v,
            Err(p) => {
                self.indices.insert(p, i);
                self.values.insert(p, v);
            }
        }
        Ok(())
    }

    /// Remove the stored element at `i` (no-op if absent).
    pub fn remove(&mut self, i: IndexType) {
        if let Ok(p) = self.indices.binary_search(&i) {
            self.indices.remove(p);
            self.values.remove(p);
        }
    }

    /// Remove every stored element.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// The stored indices, ascending.
    #[inline]
    pub fn indices(&self) -> &[IndexType] {
        &self.indices
    }

    /// The stored values, parallel to [`Vector::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterate over stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (IndexType, T)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Copy out the stored indices (PyGB's `extractTuples` index half).
    pub fn extract_indices(&self) -> Vec<IndexType> {
        self.indices.clone()
    }

    /// Copy out the stored values (PyGB's `extractTuples` value half).
    pub fn extract_values(&self) -> Vec<T> {
        self.values.clone()
    }

    /// Densify: a `size`-length `Vec` with `fill` at unstored positions.
    pub fn to_dense(&self, fill: T) -> Vec<T> {
        let mut out = vec![fill; self.size];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Element-wise cast into another scalar domain (the upcast PyGB
    /// performs when operand dtypes differ).
    pub fn cast<U: Scalar>(&self) -> Vector<U> {
        Vector {
            size: self.size,
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| U::cast_from(v)).collect(),
        }
    }

    /// Replace contents with another vector's (same dimension required) —
    /// the `operator=` the paper notes Python lacks.
    pub fn assign_from(&mut self, other: &Vector<T>) -> Result<()> {
        if self.size != other.size {
            return Err(GblasError::dim(format!(
                "assign_from: {} vs {}",
                self.size, other.size
            )));
        }
        self.indices.clone_from(&other.indices);
        self.values.clone_from(&other.values);
        Ok(())
    }

    /// Consume into `(size, indices, values)`.
    pub fn into_parts(self) -> (IndexType, Vec<IndexType>, Vec<T>) {
        (self.size, self.indices, self.values)
    }

    /// Check structural invariants (for tests and property checks).
    pub fn is_valid(&self) -> bool {
        self.indices.len() == self.values.len()
            && self.indices.windows(2).all(|w| w[0] < w[1])
            && self.indices.last().is_none_or(|&i| i < self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let v = Vector::<f64>::new(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 0);
        assert!(v.is_empty());
        assert!(v.is_valid());
    }

    #[test]
    fn from_pairs_sorts() {
        let v = Vector::from_pairs(5, [(3usize, 30i32), (1, 10), (4, 40)]).unwrap();
        assert_eq!(v.indices(), &[1, 3, 4]);
        assert_eq!(v.values(), &[10, 30, 40]);
        assert!(v.is_valid());
    }

    #[test]
    fn from_pairs_rejects_duplicates_and_oob() {
        assert!(Vector::from_pairs(5, [(1usize, 1i32), (1, 2)]).is_err());
        assert!(Vector::from_pairs(5, [(5usize, 1i32)]).is_err());
    }

    #[test]
    fn dedup_with_combines() {
        let v = Vector::from_pairs_dedup_with(5, [(1usize, 1i32), (1, 2), (3, 5)], |a, b| a + b)
            .unwrap();
        assert_eq!(v.get(1), Some(3));
        assert_eq!(v.get(3), Some(5));
        assert_eq!(v.nvals(), 2);
    }

    #[test]
    fn from_dense_stores_everything() {
        let v = Vector::from_dense(&[0.0, 1.5, 0.0]);
        assert_eq!(v.nvals(), 3); // explicit zeros stored
        assert_eq!(v.get(0), Some(0.0));
        assert_eq!(v.get(1), Some(1.5));
    }

    #[test]
    fn set_get_remove() {
        let mut v = Vector::<i64>::new(4);
        v.set(2, 20).unwrap();
        v.set(0, 5).unwrap();
        assert_eq!(v.get(2), Some(20));
        assert_eq!(v.get(1), None);
        v.set(2, 99).unwrap();
        assert_eq!(v.get(2), Some(99));
        v.remove(2);
        assert_eq!(v.get(2), None);
        assert!(v.set(4, 1).is_err());
        assert!(v.is_valid());
    }

    #[test]
    fn to_dense_fills() {
        let v = Vector::from_pairs(4, [(1usize, 7i32)]).unwrap();
        assert_eq!(v.to_dense(-1), vec![-1, 7, -1, -1]);
    }

    #[test]
    fn cast_changes_domain() {
        let v = Vector::from_pairs(3, [(0usize, 2.7f64), (2, -1.2)]).unwrap();
        let w: Vector<i32> = v.cast();
        assert_eq!(w.get(0), Some(2));
        assert_eq!(w.get(2), Some(-1));
        let b: Vector<bool> = v.cast();
        assert_eq!(b.get(0), Some(true));
    }

    #[test]
    fn assign_from_checks_size() {
        let mut a = Vector::<i32>::new(3);
        let b = Vector::from_pairs(3, [(1usize, 9)]).unwrap();
        a.assign_from(&b).unwrap();
        assert_eq!(a.get(1), Some(9));
        let c = Vector::<i32>::new(4);
        assert!(a.assign_from(&c).is_err());
    }

    #[test]
    fn iter_in_order() {
        let v = Vector::from_pairs(6, [(5usize, 50u8), (0, 1), (2, 4)]).unwrap();
        let collected: Vec<_> = v.iter().collect();
        assert_eq!(collected, vec![(0, 1), (2, 4), (5, 50)]);
    }

    #[test]
    fn clear_empties() {
        let mut v = Vector::from_dense(&[1, 2, 3]);
        v.clear();
        assert_eq!(v.nvals(), 0);
        assert_eq!(v.size(), 3);
    }
}
