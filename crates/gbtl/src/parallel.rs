//! Row-parallel execution helpers.
//!
//! Row-wise kernels (`mxm`, `mxv` gather form, eWise on matrices)
//! produce each output row independently, so they parallelize over
//! scoped worker threads without any shared mutable state. With the
//! `parallel` feature disabled the same code path runs sequentially.
//!
//! Small problems stay sequential: below the runtime threshold (see
//! [`par_threshold`]) the fork-join overhead outweighs the win
//! (measured in `benches/ablation_parallel.rs`). The threshold defaults
//! to [`PAR_THRESHOLD`], can be overridden per-process with the
//! `PYGB_PAR_THRESHOLD` environment variable, and can be swept at
//! runtime with [`set_par_threshold`] — the ablation benches and the
//! nonblocking scheduler both tune it without recompiling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::index::IndexType;

/// Compiled-in default minimum row count before kernels go parallel.
pub const PAR_THRESHOLD: IndexType = 512;

/// Runtime override set through [`set_par_threshold`];
/// `usize::MAX` = unset.
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// The effective parallelism threshold: a [`set_par_threshold`] value
/// if one is active, else `PYGB_PAR_THRESHOLD` from the environment
/// (read once), else [`PAR_THRESHOLD`].
pub fn par_threshold() -> IndexType {
    let over = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if over != usize::MAX {
        return over;
    }
    static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PYGB_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(PAR_THRESHOLD)
    })
}

/// Override the parallelism threshold for this process (0 forces every
/// kernel parallel; `usize::MAX - 1` or larger effectively disables
/// parallelism). Returns the previous effective threshold.
pub fn set_par_threshold(threshold: IndexType) -> IndexType {
    let previous = par_threshold();
    THRESHOLD_OVERRIDE.store(threshold.min(usize::MAX - 1), Ordering::Relaxed);
    previous
}

/// Drop any [`set_par_threshold`] override, returning to the
/// environment/compiled default.
pub fn reset_par_threshold() {
    THRESHOLD_OVERRIDE.store(usize::MAX, Ordering::Relaxed);
}

/// Worker count for a problem of `jobs` independent pieces.
fn worker_count(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
}

/// Map `f` over `0..nrows`, producing one output row each, in parallel
/// when the backend is enabled and the problem is big enough.
///
/// `init` builds a per-thread scratch workspace (e.g. a
/// [`crate::workspace::Spa`]); `f` receives the workspace and the row
/// index.
#[cfg(feature = "parallel")]
pub fn row_map<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    R: Send,
    W: Send,
    I: Fn() -> W + Send + Sync,
    F: Fn(&mut W, IndexType) -> R + Send + Sync,
{
    let workers = worker_count(nrows);
    if nrows < par_threshold() || workers <= 1 {
        return row_map_sequential(nrows, init, f);
    }
    let chunk = nrows.div_ceil(workers);
    let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let init = &init;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(nrows);
                scope.spawn(move || {
                    let mut w = init();
                    (lo..hi).map(|i| f(&mut w, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("row_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(nrows);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn row_map<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    R: Send,
    W: Send,
    I: Fn() -> W + Send + Sync,
    F: Fn(&mut W, IndexType) -> R + Send + Sync,
{
    row_map_sequential(nrows, init, f)
}

/// Force a sequential row map regardless of features — used by the
/// parallel-vs-sequential ablation bench so both paths share code.
pub fn row_map_sequential<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    I: Fn() -> W,
    F: Fn(&mut W, IndexType) -> R,
{
    let mut w = init();
    (0..nrows).map(|i| f(&mut w, i)).collect()
}

/// Run independent jobs concurrently, returning their results in input
/// order. Jobs are pulled from a shared queue by up to
/// `available_parallelism` scoped workers; with the `parallel` feature
/// disabled, or a single job, everything runs inline. Used by the
/// nonblocking scheduler to execute independent DAG levels.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = if cfg!(feature = "parallel") {
        worker_count(n)
    } else {
        1
    };
    if n <= 1 || workers <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    use std::sync::Mutex;
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("job taken twice");
                let out = job();
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("job produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_map_small_matches_sequential() {
        let a = row_map(10, || 0u32, |_, i| i * 2);
        let b = row_map_sequential(10, || 0u32, |_, i| i * 2);
        assert_eq!(a, b);
    }

    #[test]
    fn row_map_large_preserves_order() {
        let n = PAR_THRESHOLD * 4;
        let out = row_map(n, || (), |_, i| i);
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(k, &v)| k == v));
    }

    #[test]
    fn workspace_is_usable() {
        // Each worker gets its own scratch buffer; results must not bleed.
        let out = row_map(PAR_THRESHOLD * 2, Vec::<usize>::new, |scratch, i| {
            scratch.clear();
            scratch.push(i);
            scratch.len()
        });
        assert!(out.iter().all(|&l| l == 1));
    }

    #[test]
    fn threshold_override_applies_and_resets() {
        let compiled_default = par_threshold();
        let previous = set_par_threshold(7);
        assert_eq!(previous, compiled_default);
        assert_eq!(par_threshold(), 7);
        // An override of 7 sends an 8-row problem down the parallel path.
        let out = row_map(8, || (), |_, i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        reset_par_threshold();
        assert_eq!(par_threshold(), compiled_default);
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<_> = (0..17usize).map(|i| move || i * i).collect();
        let out = run_jobs(jobs);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_single_runs_inline() {
        let out = run_jobs(vec![|| 41 + 1]);
        assert_eq!(out, vec![42]);
    }
}
