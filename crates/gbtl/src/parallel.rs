//! Row-parallel execution helper.
//!
//! Row-wise kernels (`mxm`, `mxv` gather form, eWise on matrices)
//! produce each output row independently, so they parallelize with
//! Rayon's `par_iter` without any shared mutable state — the pattern the
//! session's hpc-parallel guides center on. With the `parallel` feature
//! disabled the same code path runs sequentially.
//!
//! Small problems stay sequential: below [`PAR_THRESHOLD`] rows the
//! fork-join overhead outweighs the win (measured in
//! `benches/ablation_parallel.rs`).

use crate::index::IndexType;

/// Minimum row count before kernels go parallel.
pub const PAR_THRESHOLD: IndexType = 512;

/// Map `f` over `0..nrows`, producing one output row each, in parallel
/// when the backend is enabled and the problem is big enough.
///
/// `init` builds a per-thread scratch workspace (e.g. a
/// [`crate::workspace::Spa`]); `f` receives the workspace and the row
/// index.
#[cfg(feature = "parallel")]
pub fn row_map<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    R: Send,
    W: Send,
    I: Fn() -> W + Send + Sync,
    F: Fn(&mut W, IndexType) -> R + Send + Sync,
{
    use rayon::prelude::*;
    if nrows < PAR_THRESHOLD {
        let mut w = init();
        return (0..nrows).map(|i| f(&mut w, i)).collect();
    }
    (0..nrows)
        .into_par_iter()
        .map_init(init, |w, i| f(w, i))
        .collect()
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn row_map<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    R: Send,
    W: Send,
    I: Fn() -> W + Send + Sync,
    F: Fn(&mut W, IndexType) -> R + Send + Sync,
{
    let mut w = init();
    (0..nrows).map(|i| f(&mut w, i)).collect()
}

/// Force a sequential row map regardless of features — used by the
/// parallel-vs-sequential ablation bench so both paths share code.
pub fn row_map_sequential<W, R, I, F>(nrows: IndexType, init: I, f: F) -> Vec<R>
where
    I: Fn() -> W,
    F: Fn(&mut W, IndexType) -> R,
{
    let mut w = init();
    (0..nrows).map(|i| f(&mut w, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_map_small_matches_sequential() {
        let a = row_map(10, || 0u32, |_, i| i * 2);
        let b = row_map_sequential(10, || 0u32, |_, i| i * 2);
        assert_eq!(a, b);
    }

    #[test]
    fn row_map_large_preserves_order() {
        let n = PAR_THRESHOLD * 4;
        let out = row_map(n, || (), |_, i| i);
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(k, &v)| k == v));
    }

    #[test]
    fn workspace_is_usable() {
        // Each worker gets its own scratch buffer; results must not bleed.
        let out = row_map(
            PAR_THRESHOLD * 2,
            Vec::<usize>::new,
            |scratch, i| {
                scratch.clear();
                scratch.push(i);
                scratch.len()
            },
        );
        assert!(out.iter().all(|&l| l == 1));
    }
}
