//! Index types and index-set arguments.
//!
//! GBTL uses `GraphBLAS::IndexType` (a 64-bit unsigned integer) for all
//! dimensions and indices; on a 64-bit target `usize` is the idiomatic
//! Rust equivalent and indexes slices without casts, so we alias it.
//!
//! [`Indices`] models the index-set parameter of `assign` and `extract`
//! (`GrB_ALL` / explicit index lists / contiguous ranges — the paper's
//! `AllIndices()`, Python lists, and Python slices respectively).

/// The index type used for all GBTL dimensions and coordinates.
pub type IndexType = usize;

/// An index-set argument for `assign` / `extract`.
///
/// Mirrors the three spellings the paper uses on the Python side:
/// `AllIndices` (`w[:] = ...`), explicit index lists, and slices
/// (`C[2:4, 2:4] = ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Indices {
    /// Every index of the corresponding dimension (`GrB_ALL`).
    All,
    /// An explicit list of indices, in output order (may repeat for
    /// `extract`; must not repeat for `assign`).
    List(Vec<IndexType>),
    /// A contiguous half-open range `[start, end)` — a Python slice with
    /// step 1.
    Range(IndexType, IndexType),
}

impl Indices {
    /// Number of selected indices given the dimension `n` it applies to.
    pub fn len(&self, n: IndexType) -> IndexType {
        match self {
            Indices::All => n,
            Indices::List(v) => v.len(),
            Indices::Range(a, b) => b.saturating_sub(*a),
        }
    }

    /// Whether the selection is empty for dimension `n`.
    pub fn is_empty(&self, n: IndexType) -> bool {
        self.len(n) == 0
    }

    /// The `k`-th selected index (unchecked against `n`; `k < self.len(n)`).
    #[inline]
    pub fn select(&self, k: IndexType) -> IndexType {
        match self {
            Indices::All => k,
            Indices::List(v) => v[k],
            Indices::Range(a, _) => a + k,
        }
    }

    /// Validate that every selected index is `< n`.
    pub fn validate(&self, n: IndexType) -> crate::Result<()> {
        match self {
            Indices::All => Ok(()),
            Indices::List(v) => {
                for &i in v {
                    if i >= n {
                        return Err(crate::GblasError::IndexOutOfBounds { index: i, bound: n });
                    }
                }
                Ok(())
            }
            Indices::Range(a, b) => {
                if *a > *b {
                    return Err(crate::GblasError::invalid(format!(
                        "descending range {a}..{b}"
                    )));
                }
                if *b > n {
                    return Err(crate::GblasError::IndexOutOfBounds {
                        index: b.saturating_sub(1),
                        bound: n,
                    });
                }
                Ok(())
            }
        }
    }

    /// Inverse lookup: for a source index `i`, which output position(s)
    /// does it map to?  Returns the first match for `List` (sufficient
    /// for `assign`, where duplicates are invalid).
    pub fn position_of(&self, i: IndexType, n: IndexType) -> Option<IndexType> {
        match self {
            Indices::All => (i < n).then_some(i),
            Indices::List(v) => v.iter().position(|&x| x == i),
            Indices::Range(a, b) => (i >= *a && i < *b).then(|| i - a),
        }
    }

    /// Iterate over `(output_position, selected_index)` pairs.
    pub fn iter(&self, n: IndexType) -> impl Iterator<Item = (IndexType, IndexType)> + '_ {
        (0..self.len(n)).map(move |k| (k, self.select(k)))
    }

    /// A compact rendering for diagnostics: `:` for all indices, the
    /// half-open range `a..b`, or the literal list (elided past four
    /// entries).
    pub fn describe(&self) -> String {
        match self {
            Indices::All => ":".to_string(),
            Indices::Range(a, b) => format!("{a}..{b}"),
            Indices::List(v) if v.len() <= 4 => format!("{v:?}"),
            Indices::List(v) => format!("[{}, {}, {}, … {} indices]", v[0], v[1], v[2], v.len()),
        }
    }
}

impl From<Vec<IndexType>> for Indices {
    fn from(v: Vec<IndexType>) -> Self {
        Indices::List(v)
    }
}

impl From<&[IndexType]> for Indices {
    fn from(v: &[IndexType]) -> Self {
        Indices::List(v.to_vec())
    }
}

impl From<std::ops::Range<IndexType>> for Indices {
    fn from(r: std::ops::Range<IndexType>) -> Self {
        Indices::Range(r.start, r.end)
    }
}

impl From<std::ops::RangeFull> for Indices {
    fn from(_: std::ops::RangeFull) -> Self {
        Indices::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_identity() {
        let ix = Indices::All;
        assert_eq!(ix.len(5), 5);
        assert_eq!(ix.select(3), 3);
        assert!(ix.validate(5).is_ok());
    }

    #[test]
    fn list_selects_by_position() {
        let ix = Indices::List(vec![4, 1, 3]);
        assert_eq!(ix.len(10), 3);
        assert_eq!(ix.select(0), 4);
        assert_eq!(ix.select(2), 3);
        assert_eq!(ix.position_of(1, 10), Some(1));
        assert_eq!(ix.position_of(9, 10), None);
    }

    #[test]
    fn range_is_half_open() {
        let ix = Indices::Range(2, 5);
        assert_eq!(ix.len(10), 3);
        assert_eq!(ix.select(0), 2);
        assert_eq!(ix.select(2), 4);
        assert_eq!(ix.position_of(4, 10), Some(2));
        assert_eq!(ix.position_of(5, 10), None);
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        assert!(Indices::List(vec![0, 7]).validate(7).is_err());
        assert!(Indices::Range(0, 8).validate(7).is_err());
        assert!(Indices::Range(3, 2).validate(7).is_err());
        assert!(Indices::Range(0, 7).validate(7).is_ok());
    }

    #[test]
    fn conversions() {
        assert_eq!(Indices::from(2..4), Indices::Range(2, 4));
        assert_eq!(Indices::from(..), Indices::All);
        assert_eq!(Indices::from(vec![1, 2]), Indices::List(vec![1, 2]));
    }

    #[test]
    fn iter_pairs() {
        let ix = Indices::List(vec![5, 0]);
        let pairs: Vec<_> = ix.iter(9).collect();
        assert_eq!(pairs, vec![(0, 5), (1, 0)]);
    }

    #[test]
    fn empty_range() {
        let ix = Indices::Range(3, 3);
        assert!(ix.is_empty(10));
    }

    #[test]
    fn describe_renders_all_spellings() {
        assert_eq!(Indices::All.describe(), ":");
        assert_eq!(Indices::Range(2, 5).describe(), "2..5");
        assert_eq!(Indices::List(vec![4, 1]).describe(), "[4, 1]");
        assert_eq!(
            Indices::List(vec![0, 1, 2, 3, 4, 5]).describe(),
            "[0, 1, 2, … 6 indices]"
        );
    }
}
