//! Hypersparse delta layer for streaming edge mutations.
//!
//! A [`DeltaMatrix`] layers a bucketed COO of *pending* edge inserts
//! and deletes over a settled CSR base, so a batch of `b` updates costs
//! `O(b log b)` bookkeeping instead of the `O(nnz log nnz)` full
//! rebuild that `Matrix::from_triples` performs. The pending side is
//! hypersparse in the DCSC spirit: only rows that have at least one
//! pending op occupy memory, held as an ordered `row → (col → op)`
//! two-level map so the eventual merge visits coordinates in CSR
//! order with no sort.
//!
//! Settling (merging the delta into the base) is a per-row two-pointer
//! *splice*: `O(nnz + pending)` with no comparison sort, which is what
//! makes `update → settle → query` cheaper than rebuild even when the
//! whole container is consumed. Equivalence with rebuild is the
//! load-bearing claim: [`DeltaMatrix::settle`] must produce a CSR
//! bit-identical to `Matrix::from_triples` over the post-update triple
//! set, and `crates/gbtl/tests/delta_oracle.rs` proves it
//! differentially against [`crate::reference::apply_edge_updates`].
//!
//! Merge policy: the delta settles itself when the pending-op count
//! crosses [`MergePolicy::max_pending`], when tracked reads
//! ([`DeltaMatrix::read`]) hit [`MergePolicy::read_pressure`] while
//! ops are pending, or on an explicit [`DeltaMatrix::settle`].

use std::collections::BTreeMap;

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// One pending mutation at a coordinate: the last write wins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeOp<T> {
    /// Insert or overwrite the edge with this value.
    Insert(T),
    /// Delete the edge (no-op at merge time if it never existed).
    Delete,
}

/// When a [`DeltaMatrix`] merges its pending ops into the base CSR.
#[derive(Clone, Copy, Debug)]
pub struct MergePolicy {
    /// Settle once this many coordinates have pending ops.
    pub max_pending: usize,
    /// Settle once this many tracked reads ([`DeltaMatrix::read`])
    /// have probed the container while ops were pending.
    pub read_pressure: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy {
            max_pending: 4096,
            read_pressure: 64,
        }
    }
}

/// A CSR base plus a hypersparse overlay of pending edge mutations.
///
/// Reads see through the overlay (delta-first probe), `nvals` is
/// maintained exactly as updates arrive, and the overlay folds into
/// the base lazily per [`MergePolicy`].
#[derive(Clone, Debug)]
pub struct DeltaMatrix<T> {
    base: Matrix<T>,
    /// Pending ops, bucketed by row — only touched rows are present.
    pending: BTreeMap<IndexType, BTreeMap<IndexType, EdgeOp<T>>>,
    /// Total coordinates with a pending op (not batch length: updates
    /// to the same coordinate coalesce, last write wins).
    pending_ops: usize,
    /// Exact stored-element count of the merged view.
    visible_nvals: usize,
    /// Tracked reads since the last settle (read-pressure counter).
    reads_since_settle: usize,
    /// Number of merges performed over this container's lifetime.
    merges: u64,
    policy: MergePolicy,
}

impl<T: Scalar> DeltaMatrix<T> {
    /// Layer an empty delta over `base` with the default policy.
    pub fn new(base: Matrix<T>) -> Self {
        DeltaMatrix::with_policy(base, MergePolicy::default())
    }

    /// Layer an empty delta over `base` with an explicit policy.
    pub fn with_policy(base: Matrix<T>, policy: MergePolicy) -> Self {
        let visible_nvals = base.nvals();
        DeltaMatrix {
            base,
            pending: BTreeMap::new(),
            pending_ops: 0,
            visible_nvals,
            reads_since_settle: 0,
            merges: 0,
            policy,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> IndexType {
        self.base.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> IndexType {
        self.base.ncols()
    }

    /// `(nrows, ncols)` — fixed at construction; updates never resize.
    #[inline]
    pub fn shape(&self) -> (IndexType, IndexType) {
        self.base.shape()
    }

    /// Exact stored-element count of the merged view, maintained
    /// incrementally — `O(1)`, no merge.
    #[inline]
    pub fn nvals(&self) -> usize {
        self.visible_nvals
    }

    /// Coordinates currently holding a pending op.
    #[inline]
    pub fn pending_ops(&self) -> usize {
        self.pending_ops
    }

    /// Rows currently holding at least one pending op.
    #[inline]
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Whether the overlay is empty (base == merged view).
    #[inline]
    pub fn is_settled(&self) -> bool {
        self.pending.is_empty()
    }

    /// How many times this container has merged (policy or explicit).
    #[inline]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The settled CSR underneath the overlay. Pending ops are NOT
    /// visible here; use [`DeltaMatrix::settle`] or
    /// [`DeltaMatrix::merged`] for the full view.
    #[inline]
    pub fn base(&self) -> &Matrix<T> {
        &self.base
    }

    /// The merged value at `(i, j)`: pending op if present, else base.
    /// Does not count toward read pressure (usable through `&self`).
    pub fn get(&self, i: IndexType, j: IndexType) -> Option<T> {
        match self.pending.get(&i).and_then(|row| row.get(&j)) {
            Some(EdgeOp::Insert(v)) => Some(*v),
            Some(EdgeOp::Delete) => None,
            None => self.base.get(i, j),
        }
    }

    /// A tracked read: like [`DeltaMatrix::get`], but counts toward the
    /// policy's read-pressure threshold and may trigger an auto-merge
    /// first (so repeated point reads amortize the splice).
    pub fn read(&mut self, i: IndexType, j: IndexType) -> Option<T> {
        if !self.pending.is_empty() {
            self.reads_since_settle += 1;
            if self.reads_since_settle >= self.policy.read_pressure {
                self.settle();
            }
        }
        self.get(i, j)
    }

    /// Apply a batch of updates: `Some(v)` inserts/overwrites, `None`
    /// deletes. Within a batch (and across batches) the last write to a
    /// coordinate wins. Returns the number of ops applied. Cost is
    /// `O(batch · log)` plus an eventual amortized splice; triggers an
    /// auto-merge when pending coordinates cross the policy threshold.
    pub fn update_edges<I>(&mut self, batch: I) -> Result<usize>
    where
        I: IntoIterator<Item = (IndexType, IndexType, Option<T>)>,
    {
        let (nrows, ncols) = self.shape();
        let mut applied = 0;
        for (i, j, op) in batch {
            if i >= nrows {
                return Err(GblasError::IndexOutOfBounds {
                    index: i,
                    bound: nrows,
                });
            }
            if j >= ncols {
                return Err(GblasError::IndexOutOfBounds {
                    index: j,
                    bound: ncols,
                });
            }
            let was_visible = self.get(i, j).is_some();
            let row = self.pending.entry(i).or_default();
            let now_visible = match op {
                Some(v) => {
                    if row.insert(j, EdgeOp::Insert(v)).is_none() {
                        self.pending_ops += 1;
                    }
                    true
                }
                None => {
                    if row.insert(j, EdgeOp::Delete).is_none() {
                        self.pending_ops += 1;
                    }
                    false
                }
            };
            match (was_visible, now_visible) {
                (false, true) => self.visible_nvals += 1,
                (true, false) => self.visible_nvals -= 1,
                _ => {}
            }
            applied += 1;
        }
        if self.pending_ops >= self.policy.max_pending {
            self.settle();
        }
        Ok(applied)
    }

    /// Insert or overwrite one edge.
    pub fn insert(&mut self, i: IndexType, j: IndexType, v: T) -> Result<()> {
        self.update_edges([(i, j, Some(v))]).map(|_| ())
    }

    /// Delete one edge (no-op at merge time if absent).
    pub fn delete(&mut self, i: IndexType, j: IndexType) -> Result<()> {
        self.update_edges([(i, j, None)]).map(|_| ())
    }

    /// Merge all pending ops into the base CSR (two-pointer splice,
    /// `O(nnz + pending)`, no sort) and return the settled matrix.
    pub fn settle(&mut self) -> &Matrix<T> {
        if !self.pending.is_empty() {
            self.base = self.splice();
            self.pending.clear();
            self.pending_ops = 0;
            self.merges += 1;
        }
        self.reads_since_settle = 0;
        &self.base
    }

    /// The merged view as a standalone matrix, without consuming the
    /// pending ops (the container stays unsettled). Bit-identical to
    /// what [`DeltaMatrix::settle`] would produce.
    pub fn merged(&self) -> Matrix<T> {
        if self.pending.is_empty() {
            self.base.clone()
        } else {
            self.splice()
        }
    }

    /// Settle and take the base, consuming the container.
    pub fn into_settled(mut self) -> Matrix<T> {
        self.settle();
        self.base
    }

    /// Stored `(row, col, value)` triples of the merged view, in
    /// row-major order.
    pub fn extract_triples(&self) -> Vec<(IndexType, IndexType, T)> {
        self.merged().extract_triples()
    }

    /// Per-row two-pointer splice of base CSR and pending overlay.
    fn splice(&self) -> Matrix<T> {
        let (nrows, ncols) = self.shape();
        let cap = self.visible_nvals;
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut col_idx: Vec<IndexType> = Vec::with_capacity(cap);
        let mut values: Vec<T> = Vec::with_capacity(cap);
        for i in 0..nrows {
            let (cols, vals) = self.base.row(i);
            match self.pending.get(&i) {
                None => {
                    col_idx.extend_from_slice(cols);
                    values.extend_from_slice(vals);
                }
                Some(ops) => {
                    let mut b = 0;
                    let mut ops_it = ops.iter().peekable();
                    loop {
                        // Pending op strictly left of the next base
                        // entry (or base exhausted): emit / skip it.
                        let next_base_col = cols.get(b).copied();
                        match ops_it.peek() {
                            Some(&(&c, op)) if next_base_col.is_none_or(|bc| c < bc) => {
                                if let EdgeOp::Insert(v) = op {
                                    col_idx.push(c);
                                    values.push(*v);
                                }
                                ops_it.next();
                            }
                            Some(&(&c, op)) if next_base_col == Some(c) => {
                                // Op shadows the base entry.
                                if let EdgeOp::Insert(v) = op {
                                    col_idx.push(c);
                                    values.push(*v);
                                }
                                ops_it.next();
                                b += 1;
                            }
                            _ => {
                                // Base entry unaffected, or both done.
                                match next_base_col {
                                    Some(bc) => {
                                        col_idx.push(bc);
                                        values.push(vals[b]);
                                        b += 1;
                                    }
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        debug_assert_eq!(col_idx.len(), self.visible_nvals);
        Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Matrix<i64> {
        Matrix::from_triples(
            4,
            4,
            [(0usize, 1usize, 10i64), (0, 3, 7), (1, 2, -2), (3, 0, 5)],
        )
        .unwrap()
    }

    #[test]
    fn reads_see_through_overlay() {
        let mut d = DeltaMatrix::new(base());
        d.insert(2, 2, 99).unwrap();
        d.delete(0, 1).unwrap();
        assert_eq!(d.get(2, 2), Some(99));
        assert_eq!(d.get(0, 1), None);
        assert_eq!(d.get(0, 3), Some(7)); // untouched base entry
        assert_eq!(d.nvals(), 4); // 4 - 1 delete + 1 insert
        assert!(!d.is_settled());
    }

    #[test]
    fn settle_matches_rebuild_bit_identically() {
        let mut d = DeltaMatrix::new(base());
        d.update_edges([
            (2usize, 2usize, Some(99i64)),
            (0, 1, None),
            (0, 0, Some(1)),
            (3, 0, Some(6)), // overwrite
            (1, 1, None),    // delete of absent edge: no-op
        ])
        .unwrap();
        let rebuilt = Matrix::from_triples(
            4,
            4,
            [
                (0usize, 0usize, 1i64),
                (0, 3, 7),
                (1, 2, -2),
                (2, 2, 99),
                (3, 0, 6),
            ],
        )
        .unwrap();
        assert_eq!(d.merged(), rebuilt);
        assert_eq!(*d.settle(), rebuilt);
        assert!(d.is_settled());
        assert_eq!(d.merges(), 1);
    }

    #[test]
    fn last_write_wins_within_batch() {
        let mut d = DeltaMatrix::new(base());
        d.update_edges([
            (2usize, 0usize, Some(1i64)),
            (2, 0, Some(2)),
            (2, 0, None),
            (2, 1, None),
            (2, 1, Some(4)),
        ])
        .unwrap();
        assert_eq!(d.get(2, 0), None);
        assert_eq!(d.get(2, 1), Some(4));
        assert_eq!(d.pending_ops(), 2); // coalesced per coordinate
        assert_eq!(d.nvals(), 5);
    }

    #[test]
    fn nvals_tracks_deletes_of_pending_inserts() {
        let mut d = DeltaMatrix::new(base());
        d.insert(2, 2, 1).unwrap();
        assert_eq!(d.nvals(), 5);
        d.delete(2, 2).unwrap();
        assert_eq!(d.nvals(), 4);
        d.delete(0, 1).unwrap();
        d.insert(0, 1, 3).unwrap();
        assert_eq!(d.nvals(), 4);
        assert_eq!(d.settle().nvals(), 4);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = DeltaMatrix::new(base());
        assert!(d.insert(4, 0, 1).is_err());
        assert!(d.insert(0, 4, 1).is_err());
        assert!(d.is_settled()); // failed batch left nothing pending
    }

    #[test]
    fn max_pending_triggers_auto_merge() {
        let mut d = DeltaMatrix::with_policy(
            base(),
            MergePolicy {
                max_pending: 3,
                read_pressure: usize::MAX,
            },
        );
        d.insert(0, 0, 1).unwrap();
        d.insert(1, 1, 2).unwrap();
        assert!(!d.is_settled());
        d.insert(2, 2, 3).unwrap(); // hits the threshold
        assert!(d.is_settled());
        assert_eq!(d.merges(), 1);
        assert_eq!(d.base().nvals(), 7);
    }

    #[test]
    fn read_pressure_triggers_auto_merge() {
        let mut d = DeltaMatrix::with_policy(
            base(),
            MergePolicy {
                max_pending: usize::MAX,
                read_pressure: 2,
            },
        );
        d.insert(0, 0, 1).unwrap();
        assert_eq!(d.read(0, 0), Some(1));
        assert!(!d.is_settled());
        assert_eq!(d.read(0, 3), Some(7)); // second tracked read settles
        assert!(d.is_settled());
        // Settled container: reads no longer accumulate pressure.
        assert_eq!(d.read(0, 0), Some(1));
        assert_eq!(d.merges(), 1);
    }

    #[test]
    fn pending_rows_is_hypersparse() {
        let mut d = DeltaMatrix::new(Matrix::<i64>::new(1_000_000, 1_000_000));
        d.insert(999_999, 0, 1).unwrap();
        d.insert(999_999, 7, 2).unwrap();
        d.insert(3, 3, 3).unwrap();
        assert_eq!(d.pending_rows(), 2);
        assert_eq!(d.pending_ops(), 3);
        assert_eq!(d.nvals(), 3);
    }

    #[test]
    fn empty_delta_settle_is_identity() {
        let m = base();
        let mut d = DeltaMatrix::new(m.clone());
        assert_eq!(*d.settle(), m);
        assert_eq!(d.merges(), 0);
        assert_eq!(d.merged(), m);
    }
}
