//! Kernel workspaces: the sparse accumulator (SPA) used by row-wise
//! SpGEMM/SpMV, and a dense gather buffer for sparse vectors.
//!
//! The SPA is the classic Gustavson accumulator: a dense value array
//! plus an occupancy stamp, reset in `O(touched)` between rows so a
//! whole `mxm` costs `O(ncols)` setup once, not per row.

use crate::index::IndexType;
use crate::scalar::Scalar;

/// A sparse accumulator over a dense domain of size `n`.
#[derive(Debug)]
pub struct Spa<T> {
    values: Vec<T>,
    occupied: Vec<bool>,
    touched: Vec<IndexType>,
}

impl<T: Scalar> Spa<T> {
    /// Create an accumulator covering indices `0..n`.
    pub fn new(n: IndexType) -> Self {
        Spa {
            values: vec![T::zero(); n],
            occupied: vec![false; n],
            touched: Vec::new(),
        }
    }

    /// Number of currently occupied slots.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Accumulate `v` into slot `j` with `add`, or store it if the slot
    /// is empty.
    #[inline]
    pub fn scatter<F: Fn(T, T) -> T>(&mut self, j: IndexType, v: T, add: F) {
        if self.occupied[j] {
            self.values[j] = add(self.values[j], v);
        } else {
            self.occupied[j] = true;
            self.values[j] = v;
            self.touched.push(j);
        }
    }

    /// Overwrite slot `j` unconditionally.
    #[inline]
    pub fn put(&mut self, j: IndexType, v: T) {
        if !self.occupied[j] {
            self.occupied[j] = true;
            self.touched.push(j);
        }
        self.values[j] = v;
    }

    /// The value in slot `j`, if occupied.
    #[inline]
    pub fn get(&self, j: IndexType) -> Option<T> {
        self.occupied[j].then(|| self.values[j])
    }

    /// Drain the occupied slots as sorted `(index, value)` pairs and
    /// reset the accumulator for the next row.
    ///
    /// Adaptive: a sparse drain sorts the touched list (`O(t log t)`);
    /// once more than an eighth of the domain is occupied the row is
    /// effectively dense and a bitmap sweep over `occupied`
    /// (`O(n)`, branch-predictable, no sort) is cheaper.
    pub fn drain_sorted(&mut self) -> Vec<(IndexType, T)> {
        let out: Vec<(IndexType, T)> = if self.touched.len() >= self.values.len() / 8 {
            self.occupied
                .iter()
                .enumerate()
                .filter(|(_, &occ)| occ)
                .map(|(j, _)| (j, self.values[j]))
                .collect()
        } else {
            self.touched.sort_unstable();
            self.touched.iter().map(|&j| (j, self.values[j])).collect()
        };
        for &j in &self.touched {
            self.occupied[j] = false;
        }
        self.touched.clear();
        out
    }

    /// Reset without extracting.
    pub fn reset(&mut self) {
        for &j in &self.touched {
            self.occupied[j] = false;
        }
        self.touched.clear();
    }
}

/// A reusable membership bitmap over a dense domain — the structural
/// half of a [`Spa`], used by masked kernels to stamp the mask's truthy
/// set so the inner scatter loop tests membership in `O(1)`. Reset is
/// `O(touched)`, so a whole masked `mxm` costs one `O(n)` allocation.
#[derive(Debug)]
pub struct Stamp {
    present: Vec<bool>,
    touched: Vec<IndexType>,
}

impl Stamp {
    /// Create a bitmap covering indices `0..n`, all absent.
    pub fn new(n: IndexType) -> Self {
        Stamp {
            present: vec![false; n],
            touched: Vec::new(),
        }
    }

    /// Mark index `j` present.
    #[inline]
    pub fn set(&mut self, j: IndexType) {
        if !self.present[j] {
            self.present[j] = true;
            self.touched.push(j);
        }
    }

    /// Whether index `j` is marked.
    #[inline]
    pub fn contains(&self, j: IndexType) -> bool {
        self.present[j]
    }

    /// Number of marked indices.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether no index is marked.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Clear all marks in `O(touched)`.
    pub fn clear(&mut self) {
        for &j in &self.touched {
            self.present[j] = false;
        }
        self.touched.clear();
    }
}

/// A dense gather of a sparse vector: `slot(i) = Some(x_i)` for stored
/// entries. Used by `mxv` so each row-dot is `O(nnz(row))`.
#[derive(Debug)]
pub struct DenseGather<T> {
    values: Vec<T>,
    present: Vec<bool>,
}

impl<T: Scalar> DenseGather<T> {
    /// Gather `x` into a dense buffer of its dimension.
    pub fn from_vector(x: &crate::vector::Vector<T>) -> Self {
        let mut values = vec![T::zero(); x.size()];
        let mut present = vec![false; x.size()];
        for (i, v) in x.iter() {
            values[i] = v;
            present[i] = true;
        }
        DenseGather { values, present }
    }

    /// The gathered value at `i`, if the source stored one.
    #[inline]
    pub fn get(&self, i: IndexType) -> Option<T> {
        self.present[i].then(|| self.values[i])
    }

    /// Whether the source stored an entry at `i`.
    #[inline]
    pub fn contains(&self, i: IndexType) -> bool {
        self.present[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    #[test]
    fn scatter_accumulates() {
        let mut spa = Spa::<i32>::new(5);
        spa.scatter(3, 10, |a, b| a + b);
        spa.scatter(1, 5, |a, b| a + b);
        spa.scatter(3, 7, |a, b| a + b);
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.get(3), Some(17));
        let drained = spa.drain_sorted();
        assert_eq!(drained, vec![(1, 5), (3, 17)]);
        assert!(spa.is_empty());
        assert_eq!(spa.get(3), None); // reset worked
    }

    #[test]
    fn reuse_after_drain() {
        let mut spa = Spa::<f64>::new(3);
        spa.scatter(0, 1.0, |a, b| a + b);
        spa.drain_sorted();
        spa.scatter(2, 4.0, |a, b| a + b);
        assert_eq!(spa.drain_sorted(), vec![(2, 4.0)]);
    }

    #[test]
    fn put_overwrites() {
        let mut spa = Spa::<i32>::new(2);
        spa.scatter(0, 1, |a, b| a + b);
        spa.put(0, 100);
        assert_eq!(spa.get(0), Some(100));
    }

    #[test]
    fn reset_clears() {
        let mut spa = Spa::<i32>::new(4);
        spa.scatter(1, 1, |a, b| a + b);
        spa.reset();
        assert!(spa.is_empty());
        assert_eq!(spa.get(1), None);
    }

    #[test]
    fn dense_drain_matches_sparse_drain() {
        // Occupy more than n/8 slots so the bitmap sweep kicks in, in
        // reverse order so a missing sort would be caught.
        let mut spa = Spa::<i32>::new(8);
        for j in (0..4).rev() {
            spa.scatter(j, j as i32 + 1, |a, b| a + b);
        }
        assert_eq!(spa.drain_sorted(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(spa.is_empty());
    }

    #[test]
    fn stamp_set_and_clear() {
        let mut s = Stamp::new(5);
        assert!(s.is_empty());
        s.set(3);
        s.set(1);
        s.set(3); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(s.contains(3));
        assert!(!s.contains(0));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(3));
    }

    #[test]
    fn dense_gather() {
        let x = Vector::from_pairs(4, [(1usize, 5i32), (3, 0)]).unwrap();
        let g = DenseGather::from_vector(&x);
        assert_eq!(g.get(1), Some(5));
        assert_eq!(g.get(3), Some(0)); // stored zero is present
        assert_eq!(g.get(0), None);
        assert!(g.contains(3));
        assert!(!g.contains(2));
    }
}
