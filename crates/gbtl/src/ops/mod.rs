//! Algebraic operators: unary ops, binary ops, monoids, semirings,
//! accumulators — the contents of GBTL's `algebra.hpp`.
//!
//! Two parallel families are provided:
//!
//! * **Functor types** (zero-sized structs like [`binary::Plus`]) used by
//!   statically-typed code. These monomorphize into the kernels exactly
//!   as GBTL's template functors do, with no runtime dispatch.
//! * **Kind enums** ([`kind::BinaryOpKind`], ...) carrying the operator
//!   choice as a runtime value. The `pygb` DSL resolves operator *names*
//!   (`"Plus"`, `"Min"`, ...) from its context stack into kinds, and the
//!   JIT registry instantiates kernels over [`kind::KindSemiring`] /
//!   [`kind::KindMonoid`] wrappers — the analog of the paper passing
//!   `-DADD_BINOP=Plus -DMULT_BINOP=Times` to `g++`.

pub mod accum;
pub mod binary;
pub mod kind;
pub mod monoid;
pub mod semiring;
pub mod unary;

/// A unary operator `f : T → T` (GraphBLAS `GrB_UnaryOp`).
pub trait UnaryOp<T>: Copy + Send + Sync {
    /// Apply the operator to one value.
    fn apply(&self, a: T) -> T;
}

/// A binary operator `f : T × T → T` (GraphBLAS `GrB_BinaryOp`).
pub trait BinaryOp<T>: Copy + Send + Sync {
    /// Apply the operator to two values.
    fn apply(&self, a: T, b: T) -> T;
}

/// A commutative monoid: an associative [`BinaryOp`] with an identity.
///
/// Used as the ⊕ of semirings, for `reduce`, and as the fallback
/// accumulator (the paper: `+=` falls back to the monoid of the
/// innermost semiring in context).
pub trait Monoid<T>: Copy + Send + Sync {
    /// The identity element (`x ⊕ identity = x`).
    fn identity(&self) -> T;
    /// The monoid operation.
    fn apply(&self, a: T, b: T) -> T;
}

/// A semiring `(⊕, ⊗)` where the identity of ⊕ annihilates ⊗.
///
/// GraphBLAS parameterizes `mxm`/`mxv`/`vxm` with a semiring; the ⊕
/// identity doubles as the "structural zero" never stored in sparse
/// containers.
pub trait Semiring<T>: Copy + Send + Sync {
    /// Identity of the additive monoid.
    fn zero(&self) -> T;
    /// The additive operation ⊕.
    fn add(&self, a: T, b: T) -> T;
    /// The multiplicative operation ⊗.
    fn mult(&self, a: T, b: T) -> T;
}

/// Every [`Monoid`] is trivially a [`BinaryOp`] (forget the identity).
#[derive(Copy, Clone, Debug, Default)]
pub struct MonoidOp<M>(pub M);

impl<T, M: Monoid<T>> BinaryOp<T> for MonoidOp<M> {
    #[inline]
    fn apply(&self, a: T, b: T) -> T {
        self.0.apply(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::binary::Plus;
    use super::monoid::PlusMonoid;
    use super::*;

    #[test]
    fn monoid_as_binary_op() {
        let op = MonoidOp(PlusMonoid::<i32>::new());
        assert_eq!(op.apply(2, 3), 5);
    }

    #[test]
    fn functors_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Plus<f64>>(), 0);
        assert_eq!(std::mem::size_of::<PlusMonoid<f64>>(), 0);
    }
}
