//! The 17 predefined binary operators of Fig. 6 of the paper, as
//! zero-sized functor types (GBTL's `GraphBLAS::Plus<T>` et al.).
//!
//! Predicate operators (`Equal`, `LessThan`, ...) have codomain `T`:
//! the boolean outcome is embedded with [`crate::Scalar::from_bool`],
//! matching GBTL where the templated functor returns `T(a < b)`.

use std::marker::PhantomData;

use super::BinaryOp;
use crate::scalar::Scalar;

macro_rules! binary_functor {
    ($(#[$doc:meta])* $name:ident, |$a:ident, $b:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<T>(PhantomData<fn() -> T>);

        impl<T> $name<T> {
            /// Construct the functor (zero-sized; exists for GBTL-style
            /// call sites like `Plus::<f64>::new()`).
            #[inline]
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T> Copy for $name<T> {}
        impl<T> Clone for $name<T> {
            fn clone(&self) -> Self {
                *self
            }
        }

        impl<T: Scalar> BinaryOp<T> for $name<T> {
            #[inline]
            fn apply(&self, $a: T, $b: T) -> T {
                $body
            }
        }
    };
}

binary_functor!(
    /// Logical OR: `T(a || b)` after truthiness coercion.
    LogicalOr,
    |a, b| T::from_bool(a.to_bool() || b.to_bool())
);
binary_functor!(
    /// Logical AND: `T(a && b)` after truthiness coercion.
    LogicalAnd,
    |a, b| T::from_bool(a.to_bool() && b.to_bool())
);
binary_functor!(
    /// Logical XOR: `T(a ^ b)` after truthiness coercion.
    LogicalXor,
    |a, b| T::from_bool(a.to_bool() ^ b.to_bool())
);
binary_functor!(
    /// Equality predicate: `T(a == b)`.
    Equal,
    |a, b| T::from_bool(a == b)
);
binary_functor!(
    /// Inequality predicate: `T(a != b)`.
    NotEqual,
    |a, b| T::from_bool(a != b)
);
binary_functor!(
    /// Ordering predicate: `T(a > b)`.
    GreaterThan,
    |a, b| T::from_bool(a > b)
);
binary_functor!(
    /// Ordering predicate: `T(a < b)`.
    LessThan,
    |a, b| T::from_bool(a < b)
);
binary_functor!(
    /// Ordering predicate: `T(a >= b)`.
    GreaterEqual,
    |a, b| T::from_bool(a >= b)
);
binary_functor!(
    /// Ordering predicate: `T(a <= b)`.
    LessEqual,
    |a, b| T::from_bool(a <= b)
);
binary_functor!(
    /// Projection onto the first argument (`Select1st`).
    First,
    |a, _b| a
);
binary_functor!(
    /// Projection onto the second argument (`Select2nd`).
    Second,
    |_a, b| b
);
binary_functor!(
    /// Minimum of the two arguments.
    Min,
    |a, b| a.s_min(b)
);
binary_functor!(
    /// Maximum of the two arguments.
    Max,
    |a, b| a.s_max(b)
);
binary_functor!(
    /// Addition (wrapping for integers, OR for bool).
    Plus,
    |a, b| a.s_add(b)
);
binary_functor!(
    /// Subtraction (wrapping for integers, XOR for bool).
    Minus,
    |a, b| a.s_sub(b)
);
binary_functor!(
    /// Multiplication (wrapping for integers, AND for bool).
    Times,
    |a, b| a.s_mul(b)
);
binary_functor!(
    /// Division (integer division by zero yields 0).
    Div,
    |a, b| a.s_div(b)
);

/// Number of predefined binary operators — 17, per Fig. 6, which feeds
/// the `17 * 11³` accumulator-combination count of Section V.
pub const NUM_BINARY_OPS: usize = 17;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Plus::<i32>::new().apply(2, 3), 5);
        assert_eq!(Minus::<i32>::new().apply(2, 3), -1);
        assert_eq!(Times::<i32>::new().apply(2, 3), 6);
        assert_eq!(Div::<i32>::new().apply(7, 2), 3);
        assert_eq!(Div::<i32>::new().apply(7, 0), 0);
    }

    #[test]
    fn predicates_embed_bool() {
        assert_eq!(LessThan::<f64>::new().apply(1.0, 2.0), 1.0);
        assert_eq!(GreaterEqual::<f64>::new().apply(1.0, 2.0), 0.0);
        assert_eq!(Equal::<u8>::new().apply(4, 4), 1);
        assert_eq!(NotEqual::<u8>::new().apply(4, 4), 0);
    }

    #[test]
    fn projections() {
        assert_eq!(First::<i64>::new().apply(10, 20), 10);
        assert_eq!(Second::<i64>::new().apply(10, 20), 20);
    }

    #[test]
    fn min_max() {
        assert_eq!(Min::<f32>::new().apply(2.0, -1.0), -1.0);
        assert_eq!(Max::<f32>::new().apply(2.0, -1.0), 2.0);
    }

    #[test]
    fn logical_on_numbers() {
        assert_eq!(LogicalOr::<i32>::new().apply(0, 5), 1);
        assert_eq!(LogicalAnd::<i32>::new().apply(0, 5), 0);
        assert_eq!(LogicalXor::<i32>::new().apply(3, 5), 0);
        assert_eq!(LogicalXor::<i32>::new().apply(3, 0), 1);
    }

    #[test]
    fn bool_domain() {
        assert!(LogicalOr::<bool>::new().apply(false, true));
        assert!(!LogicalAnd::<bool>::new().apply(false, true));
        assert!(Plus::<bool>::new().apply(true, true)); // saturating OR
    }
}
