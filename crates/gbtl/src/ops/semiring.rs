//! Predefined semirings and the generic semiring constructor — the set
//! GBTL's `algebra.hpp` exposes and the paper's algorithms use
//! (Arithmetic, Logical, MinPlus, MaxTimes, Min/MaxSelect1st/2nd).

use std::marker::PhantomData;

use super::{BinaryOp, Monoid, Semiring};
use crate::scalar::Scalar;

/// A semiring assembled from an additive [`Monoid`] and a multiplicative
/// [`BinaryOp`] — the `gb.Semiring(PlusMonoid, TimesOp)` constructor of
/// Fig. 6.
#[derive(Copy, Clone, Debug)]
pub struct GenSemiring<AddM, MultOp> {
    add: AddM,
    mult: MultOp,
}

impl<AddM, MultOp> GenSemiring<AddM, MultOp> {
    /// Build a semiring from an additive monoid and a multiplicative op.
    #[inline]
    pub fn new(add: AddM, mult: MultOp) -> Self {
        GenSemiring { add, mult }
    }
}

impl<T: Scalar, AddM: Monoid<T>, MultOp: BinaryOp<T>> Semiring<T> for GenSemiring<AddM, MultOp> {
    #[inline]
    fn zero(&self) -> T {
        self.add.identity()
    }
    #[inline]
    fn add(&self, a: T, b: T) -> T {
        self.add.apply(a, b)
    }
    #[inline]
    fn mult(&self, a: T, b: T) -> T {
        self.mult.apply(a, b)
    }
}

macro_rules! named_semiring {
    ($(#[$doc:meta])* $name:ident, $monoid:path, $mult:path) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<T>(PhantomData<fn() -> T>);

        impl<T> $name<T> {
            /// Construct the semiring (zero-sized).
            #[inline]
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T> Copy for $name<T> {}
        impl<T> Clone for $name<T> {
            fn clone(&self) -> Self {
                *self
            }
        }

        impl<T: Scalar> Semiring<T> for $name<T> {
            #[inline]
            fn zero(&self) -> T {
                <$monoid>::new().identity()
            }
            #[inline]
            fn add(&self, a: T, b: T) -> T {
                <$monoid>::new().apply(a, b)
            }
            #[inline]
            fn mult(&self, a: T, b: T) -> T {
                <$mult>::new().apply(a, b)
            }
        }
    };
}

named_semiring!(
    /// `(+, ×, 0)` — ordinary linear algebra; used by PageRank and
    /// triangle counting in the paper.
    ArithmeticSemiring,
    super::monoid::PlusMonoid::<T>,
    super::binary::Times::<T>
);
named_semiring!(
    /// `(∨, ∧, false)` — Boolean algebra; drives BFS (Fig. 1/2).
    LogicalSemiring,
    super::monoid::LogicalOrMonoid::<T>,
    super::binary::LogicalAnd::<T>
);
named_semiring!(
    /// `(min, +, +∞)` — the tropical semiring; drives SSSP (Fig. 4).
    MinPlusSemiring,
    super::monoid::MinMonoid::<T>,
    super::binary::Plus::<T>
);
named_semiring!(
    /// `(max, ×, −∞)`.
    MaxTimesSemiring,
    super::monoid::MaxMonoid::<T>,
    super::binary::Times::<T>
);
named_semiring!(
    /// `(min, select1st, +∞)` — keeps source values along min paths.
    MinSelect1stSemiring,
    super::monoid::MinMonoid::<T>,
    super::binary::First::<T>
);
named_semiring!(
    /// `(min, select2nd, +∞)` — e.g. parent pointers in BFS variants.
    MinSelect2ndSemiring,
    super::monoid::MinMonoid::<T>,
    super::binary::Second::<T>
);
named_semiring!(
    /// `(max, select1st, −∞)`.
    MaxSelect1stSemiring,
    super::monoid::MaxMonoid::<T>,
    super::binary::First::<T>
);
named_semiring!(
    /// `(max, select2nd, −∞)`.
    MaxSelect2ndSemiring,
    super::monoid::MaxMonoid::<T>,
    super::binary::Second::<T>
);

#[cfg(test)]
mod tests {
    use super::super::binary::Times;
    use super::super::monoid::PlusMonoid;
    use super::*;

    #[test]
    fn arithmetic_semiring() {
        let s = ArithmeticSemiring::<i64>::new();
        assert_eq!(s.zero(), 0);
        assert_eq!(s.add(2, 3), 5);
        assert_eq!(s.mult(2, 3), 6);
    }

    #[test]
    fn logical_semiring_on_bool() {
        let s = LogicalSemiring::<bool>::new();
        assert!(!s.zero());
        assert!(s.add(false, true));
        assert!(!s.mult(false, true));
    }

    #[test]
    fn min_plus_is_tropical() {
        let s = MinPlusSemiring::<f64>::new();
        assert_eq!(s.zero(), f64::INFINITY);
        assert_eq!(s.add(3.0, 5.0), 3.0);
        assert_eq!(s.mult(3.0, 5.0), 8.0);
        // zero annihilates: ∞ + x = ∞
        assert_eq!(s.mult(s.zero(), 5.0), f64::INFINITY);
    }

    #[test]
    fn select_semirings_project() {
        let s = MinSelect2ndSemiring::<u32>::new();
        assert_eq!(s.mult(10, 20), 20);
        let s1 = MaxSelect1stSemiring::<u32>::new();
        assert_eq!(s1.mult(10, 20), 10);
    }

    #[test]
    fn gen_semiring_matches_named() {
        // gb.Semiring(gb.PlusMonoid, "Times") == ArithmeticSemiring
        let g = GenSemiring::new(PlusMonoid::<i32>::new(), Times::<i32>::new());
        let n = ArithmeticSemiring::<i32>::new();
        for (a, b) in [(2, 3), (0, 9), (-4, 4)] {
            assert_eq!(g.add(a, b), n.add(a, b));
            assert_eq!(g.mult(a, b), n.mult(a, b));
        }
        assert_eq!(g.zero(), n.zero());
    }
}
