//! The accumulate argument `⊙` of every GraphBLAS operation.
//!
//! In `C⟨M, z⟩ = C ⊙ T`, an active accumulator merges the freshly
//! computed `T` into the existing contents of `C`; `NoAccumulate` means
//! `T` simply replaces the masked region. GBTL passes `NoAccumulate()`
//! or a binary functor; we mirror that with the [`Accum`] trait
//! implemented by [`NoAccumulate`] and [`Accumulate`].

use super::BinaryOp;

/// The accumulate parameter: either inactive or a binary operator.
pub trait Accum<T>: Copy + Send + Sync {
    /// Whether an accumulator is present (selects merge vs overwrite
    /// behaviour in the write step).
    fn is_active(&self) -> bool;
    /// Combine an existing output value `c` with a computed value `t`.
    /// Must only be called when [`Accum::is_active`] is true.
    fn accum(&self, c: T, t: T) -> T;
}

/// No accumulation: the computed result overwrites the masked region
/// (GBTL's `NoAccumulate()`).
#[derive(Copy, Clone, Debug, Default)]
pub struct NoAccumulate;

impl<T> Accum<T> for NoAccumulate {
    #[inline]
    fn is_active(&self) -> bool {
        false
    }
    #[inline]
    fn accum(&self, _c: T, t: T) -> T {
        t
    }
}

/// Accumulate with the wrapped binary operator (GBTL passes the functor
/// directly; the wrapper exists so `NoAccumulate` and operators can
/// implement the same trait without coherence conflicts).
#[derive(Copy, Clone, Debug, Default)]
pub struct Accumulate<Op>(pub Op);

impl<T, Op: BinaryOp<T>> Accum<T> for Accumulate<Op> {
    #[inline]
    fn is_active(&self) -> bool {
        true
    }
    #[inline]
    fn accum(&self, c: T, t: T) -> T {
        self.0.apply(c, t)
    }
}

/// A runtime-optional accumulator carrying a kind-dispatched operator —
/// what JIT-instantiated kernels use, mirroring the paper's
/// `-DACCUM_BINOP=...` preprocessor parameter being present or absent.
#[derive(Copy, Clone, Debug)]
pub struct MaybeAccum(pub Option<super::kind::BinaryOpKind>);

impl<T: crate::Scalar> Accum<T> for MaybeAccum {
    #[inline]
    fn is_active(&self) -> bool {
        self.0.is_some()
    }
    #[inline]
    fn accum(&self, c: T, t: T) -> T {
        match self.0 {
            Some(k) => k.apply(c, t),
            None => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::binary::{Min, Plus};
    use super::super::kind::BinaryOpKind;
    use super::*;

    #[test]
    fn no_accumulate_overwrites() {
        let a = NoAccumulate;
        assert!(!Accum::<i32>::is_active(&a));
        assert_eq!(a.accum(100, 7), 7);
    }

    #[test]
    fn accumulate_merges() {
        let a = Accumulate(Plus::<i32>::new());
        assert!(a.is_active());
        assert_eq!(a.accum(100, 7), 107);
    }

    #[test]
    fn min_accumulator_as_in_sssp() {
        // Fig. 4: gb.Accumulator("Min")
        let a = Accumulate(Min::<f64>::new());
        assert_eq!(a.accum(3.0, 5.0), 3.0);
        assert_eq!(a.accum(9.0, 5.0), 5.0);
    }

    #[test]
    fn maybe_accum_both_ways() {
        let off = MaybeAccum(None);
        assert_eq!(Accum::<i64>::accum(&off, 1, 2), 2);
        let on = MaybeAccum(Some(BinaryOpKind::Plus));
        assert_eq!(Accum::<i64>::accum(&on, 1, 2), 3);
    }
}
