//! Predefined monoids and the generic monoid constructor.
//!
//! GBTL generates monoids from a binary op and an identity element
//! (`GEN_GB_MONOID(Monoid, GB::ADD_BINOP, IDENTITY)` in the paper's
//! `operation_binding.cpp`). [`GenMonoid`] is the runtime-identity
//! version; the named zero-sized monoids below take their identity from
//! the [`Scalar`] trait so they stay ZSTs.

use std::marker::PhantomData;

use super::{BinaryOp, Monoid};
use crate::scalar::Scalar;

/// A monoid assembled from any [`BinaryOp`] plus an explicit identity
/// value — the `gb.Monoid(PlusOp, 0)` constructor of Fig. 6.
///
/// The caller asserts associativity and the identity law; nothing is
/// checked at construction (property tests cover the predefined ones).
#[derive(Copy, Clone, Debug)]
pub struct GenMonoid<T, Op> {
    identity: T,
    op: Op,
}

impl<T: Scalar, Op: BinaryOp<T>> GenMonoid<T, Op> {
    /// Build a monoid from `op` and its identity element.
    #[inline]
    pub fn new(op: Op, identity: T) -> Self {
        GenMonoid { identity, op }
    }
}

impl<T: Scalar, Op: BinaryOp<T>> Monoid<T> for GenMonoid<T, Op> {
    #[inline]
    fn identity(&self) -> T {
        self.identity
    }
    #[inline]
    fn apply(&self, a: T, b: T) -> T {
        self.op.apply(a, b)
    }
}

macro_rules! named_monoid {
    ($(#[$doc:meta])* $name:ident, $op:path, $ident:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<T>(PhantomData<fn() -> T>);

        impl<T> $name<T> {
            /// Construct the monoid (zero-sized).
            #[inline]
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T> Copy for $name<T> {}
        impl<T> Clone for $name<T> {
            fn clone(&self) -> Self {
                *self
            }
        }

        impl<T: Scalar> Monoid<T> for $name<T> {
            #[inline]
            fn identity(&self) -> T {
                $ident
            }
            #[inline]
            fn apply(&self, a: T, b: T) -> T {
                <$op>::new().apply(a, b)
            }
        }
    };
}

named_monoid!(
    /// `(⊕ = +, identity = 0)` — the additive monoid of arithmetic.
    PlusMonoid,
    super::binary::Plus::<T>,
    T::zero()
);
named_monoid!(
    /// `(⊕ = ×, identity = 1)`.
    TimesMonoid,
    super::binary::Times::<T>,
    T::one()
);
named_monoid!(
    /// `(⊕ = min, identity = +∞ / MAX)` — the "MinIdentity" of Fig. 6.
    MinMonoid,
    super::binary::Min::<T>,
    T::min_identity()
);
named_monoid!(
    /// `(⊕ = max, identity = −∞ / MIN)`.
    MaxMonoid,
    super::binary::Max::<T>,
    T::max_identity()
);
named_monoid!(
    /// `(⊕ = ∨, identity = false)` — the ⊕ of the logical semiring.
    LogicalOrMonoid,
    super::binary::LogicalOr::<T>,
    T::zero()
);
named_monoid!(
    /// `(⊕ = ∧, identity = true)`.
    LogicalAndMonoid,
    super::binary::LogicalAnd::<T>,
    T::one()
);
named_monoid!(
    /// `(⊕ = ⊻, identity = false)`.
    LogicalXorMonoid,
    super::binary::LogicalXor::<T>,
    T::zero()
);

#[cfg(test)]
mod tests {
    use super::super::binary::Plus;
    use super::*;

    #[test]
    fn plus_monoid_identity_law() {
        let m = PlusMonoid::<i32>::new();
        assert_eq!(m.apply(7, m.identity()), 7);
        assert_eq!(m.apply(m.identity(), 7), 7);
    }

    #[test]
    fn min_monoid_identity_is_max_value() {
        let m = MinMonoid::<i32>::new();
        assert_eq!(m.identity(), i32::MAX);
        assert_eq!(m.apply(5, m.identity()), 5);
        let mf = MinMonoid::<f64>::new();
        assert_eq!(mf.identity(), f64::INFINITY);
    }

    #[test]
    fn logical_monoids_on_bool() {
        let or = LogicalOrMonoid::<bool>::new();
        assert!(!or.identity());
        assert!(or.apply(true, false));
        let and = LogicalAndMonoid::<bool>::new();
        assert!(and.identity());
        assert!(!and.apply(true, false));
    }

    #[test]
    fn gen_monoid_matches_fig6_constructor() {
        // gb.Monoid(PlusOp, 0)
        let m = GenMonoid::new(Plus::<f64>::new(), 0.0);
        assert_eq!(m.identity(), 0.0);
        assert_eq!(m.apply(1.5, 2.5), 4.0);
    }

    #[test]
    fn fold_with_monoid() {
        let m = MaxMonoid::<i8>::new();
        let r = [3i8, -4, 7, 0]
            .iter()
            .fold(m.identity(), |acc, &x| m.apply(acc, x));
        assert_eq!(r, 7);
    }
}
