//! The 4 predefined unary operators of Fig. 6, plus the `Bind1st` /
//! `Bind2nd` adapters GBTL uses to turn a binary operator and a constant
//! into a unary one (`GB::BinaryOp_Bind2nd<RealT, GB::Times<RealT>>` in
//! the paper's PageRank, Fig. 8).

use std::marker::PhantomData;

use super::{BinaryOp, UnaryOp};
use crate::scalar::Scalar;

macro_rules! unary_functor {
    ($(#[$doc:meta])* $name:ident, |$a:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<T>(PhantomData<fn() -> T>);

        impl<T> $name<T> {
            /// Construct the functor (zero-sized).
            #[inline]
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T> Copy for $name<T> {}
        impl<T> Clone for $name<T> {
            fn clone(&self) -> Self {
                *self
            }
        }

        impl<T: Scalar> UnaryOp<T> for $name<T> {
            #[inline]
            fn apply(&self, $a: T) -> T {
                $body
            }
        }
    };
}

unary_functor!(
    /// The identity function.
    Identity,
    |a| a
);
unary_functor!(
    /// Additive inverse `-a` (wrapping negate for unsigned types).
    AdditiveInverse,
    |a| a.s_ainv()
);
unary_functor!(
    /// Logical negation after truthiness coercion: `T(!bool(a))`.
    LogicalNot,
    |a| T::from_bool(!a.to_bool())
);
unary_functor!(
    /// Multiplicative inverse `1/a` (0 for non-invertible integers).
    MultiplicativeInverse,
    |a| a.s_minv()
);

/// Bind a constant as the *first* argument of a binary op:
/// `Bind1st(op, k)(x) = op(k, x)`.
#[derive(Copy, Clone, Debug)]
pub struct Bind1st<T, Op> {
    k: T,
    op: Op,
}

impl<T, Op> Bind1st<T, Op> {
    /// Create the adapter from a constant and a binary operator.
    #[inline]
    pub fn new(k: T, op: Op) -> Self {
        Bind1st { k, op }
    }
}

impl<T: Scalar, Op: BinaryOp<T>> UnaryOp<T> for Bind1st<T, Op> {
    #[inline]
    fn apply(&self, a: T) -> T {
        self.op.apply(self.k, a)
    }
}

/// Bind a constant as the *second* argument of a binary op:
/// `Bind2nd(op, k)(x) = op(x, k)` — the adapter the paper's PageRank
/// uses for `Times(damping_factor)` and `Plus(teleport)`.
#[derive(Copy, Clone, Debug)]
pub struct Bind2nd<T, Op> {
    k: T,
    op: Op,
}

impl<T, Op> Bind2nd<T, Op> {
    /// Create the adapter from a binary operator and a constant.
    #[inline]
    pub fn new(op: Op, k: T) -> Self {
        Bind2nd { k, op }
    }
}

impl<T: Scalar, Op: BinaryOp<T>> UnaryOp<T> for Bind2nd<T, Op> {
    #[inline]
    fn apply(&self, a: T) -> T {
        self.op.apply(a, self.k)
    }
}

/// Number of predefined unary operators (Fig. 6 lists 4).
pub const NUM_UNARY_OPS: usize = 4;

#[cfg(test)]
mod tests {
    use super::super::binary::{Minus, Times};
    use super::*;

    #[test]
    fn identity() {
        assert_eq!(Identity::<i32>::new().apply(-7), -7);
    }

    #[test]
    fn additive_inverse() {
        assert_eq!(AdditiveInverse::<i32>::new().apply(5), -5);
        assert_eq!(AdditiveInverse::<u8>::new().apply(1), 255);
    }

    #[test]
    fn logical_not() {
        assert_eq!(LogicalNot::<i32>::new().apply(0), 1);
        assert_eq!(LogicalNot::<i32>::new().apply(9), 0);
        assert!(!LogicalNot::<bool>::new().apply(true));
    }

    #[test]
    fn multiplicative_inverse() {
        assert_eq!(MultiplicativeInverse::<f64>::new().apply(4.0), 0.25);
        assert_eq!(MultiplicativeInverse::<i32>::new().apply(3), 0);
    }

    #[test]
    fn bind_second_is_pagerank_damping() {
        let damp = Bind2nd::new(Times::<f64>::new(), 0.85);
        assert_eq!(damp.apply(2.0), 1.7);
    }

    #[test]
    fn bind_first_vs_second_on_noncommutative_op() {
        let sub_from_ten = Bind1st::new(10i32, Minus::<i32>::new());
        let sub_ten = Bind2nd::new(Minus::<i32>::new(), 10i32);
        assert_eq!(sub_from_ten.apply(3), 7);
        assert_eq!(sub_ten.apply(3), -7);
    }
}
