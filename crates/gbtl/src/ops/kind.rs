//! Runtime operator selection — the value-level mirror of the functor
//! types, used by the dynamic DSL and the JIT kernel registry.
//!
//! The paper's pipeline passes operator *names* to the C++ preprocessor
//! (`-DADD_BINOP=Plus -DIDENTITY=0 -DMULT_BINOP=Times`, Fig. 9). Kinds
//! play that role here: the DSL resolves the strings of Fig. 6 into
//! [`BinaryOpKind`] / [`UnaryOpKind`] values, embeds them in a
//! [`KindSemiring`] / [`KindMonoid`], and the registry instantiates a
//! generic kernel with them. Inside a kernel the kind is a loop-hoisted
//! constant, so the per-element dispatch is one predictable branch.

use std::sync::{OnceLock, RwLock};

use super::{BinaryOp, Monoid, Semiring, UnaryOp};
use crate::scalar::Scalar;

/// A user-registered operator entry (Section VIII of the paper:
/// "user-defined operators for use in the PyGB operations").
struct UserOpEntry {
    name: &'static str,
    binary: Option<fn(f64, f64) -> f64>,
    unary: Option<fn(f64) -> f64>,
    identity: Option<IdentityKind>,
}

fn user_ops() -> &'static RwLock<Vec<UserOpEntry>> {
    static OPS: OnceLock<RwLock<Vec<UserOpEntry>>> = OnceLock::new();
    OPS.get_or_init(|| RwLock::new(Vec::new()))
}

fn user_entry<R>(id: u16, f: impl FnOnce(&UserOpEntry) -> R) -> R {
    let ops = user_ops().read().expect("user-op registry poisoned");
    f(&ops[id as usize])
}

fn register_user_entry(entry: UserOpEntry) -> u16 {
    let mut ops = user_ops().write().expect("user-op registry poisoned");
    if let Some(pos) = ops.iter().position(|e| e.name == entry.name) {
        ops[pos] = entry; // redefinition, like re-running a Python def
        pos as u16
    } else {
        ops.push(entry);
        (ops.len() - 1) as u16
    }
}

fn find_user_entry(name: &str, want_binary: bool) -> Option<u16> {
    let ops = user_ops().read().expect("user-op registry poisoned");
    ops.iter()
        .position(|e| {
            e.name == name
                && if want_binary {
                    e.binary.is_some()
                } else {
                    e.unary.is_some()
                }
        })
        .map(|p| p as u16)
}

/// Register a user-defined binary operator (Section VIII): `f` computes
/// through `f64` (values are widened in and cast back out, like a
/// Python-level operator crossing the C boundary). An optional named
/// identity lets the operator serve as a monoid/semiring ⊕. Returns the
/// kind usable everywhere a Fig. 6 operator is.
///
/// Re-registering a name replaces its definition and reuses its id.
pub fn register_user_binary_op(
    name: &str,
    f: fn(f64, f64) -> f64,
    identity: Option<IdentityKind>,
) -> BinaryOpKind {
    let entry = UserOpEntry {
        name: Box::leak(name.to_string().into_boxed_str()),
        binary: Some(f),
        unary: None,
        identity,
    };
    BinaryOpKind::User(register_user_entry(entry))
}

/// Register a user-defined unary operator (Section VIII).
pub fn register_user_unary_op(name: &str, f: fn(f64) -> f64) -> UnaryOpKind {
    let entry = UserOpEntry {
        name: Box::leak(name.to_string().into_boxed_str()),
        binary: None,
        unary: Some(f),
        identity: None,
    };
    UnaryOpKind::User(register_user_entry(entry))
}

/// The 17 predefined binary operators of Fig. 6, plus user-registered
/// operators, as a runtime value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOpKind {
    /// `T(a || b)`
    LogicalOr,
    /// `T(a && b)`
    LogicalAnd,
    /// `T(a ^ b)`
    LogicalXor,
    /// `T(a == b)`
    Equal,
    /// `T(a != b)`
    NotEqual,
    /// `T(a > b)`
    GreaterThan,
    /// `T(a < b)`
    LessThan,
    /// `T(a >= b)`
    GreaterEqual,
    /// `T(a <= b)`
    LessEqual,
    /// `a`
    First,
    /// `b`
    Second,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a + b`
    Plus,
    /// `a - b`
    Minus,
    /// `a * b`
    Times,
    /// `a / b`
    Div,
    /// A user-registered operator (Section VIII future work,
    /// implemented): index into the user-op registry.
    User(u16),
}

/// All binary operator kinds, in Fig. 6 order.
pub const ALL_BINARY_OPS: [BinaryOpKind; 17] = [
    BinaryOpKind::LogicalOr,
    BinaryOpKind::LogicalAnd,
    BinaryOpKind::LogicalXor,
    BinaryOpKind::Equal,
    BinaryOpKind::NotEqual,
    BinaryOpKind::GreaterThan,
    BinaryOpKind::LessThan,
    BinaryOpKind::GreaterEqual,
    BinaryOpKind::LessEqual,
    BinaryOpKind::First,
    BinaryOpKind::Second,
    BinaryOpKind::Min,
    BinaryOpKind::Max,
    BinaryOpKind::Plus,
    BinaryOpKind::Minus,
    BinaryOpKind::Times,
    BinaryOpKind::Div,
];

impl BinaryOpKind {
    /// Parse the Fig. 6 name (`"Plus"`, `"LogicalOr"`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "LogicalOr" => Self::LogicalOr,
            "LogicalAnd" => Self::LogicalAnd,
            "LogicalXor" => Self::LogicalXor,
            "Equal" => Self::Equal,
            "NotEqual" => Self::NotEqual,
            "GreaterThan" => Self::GreaterThan,
            "LessThan" => Self::LessThan,
            "GreaterEqual" => Self::GreaterEqual,
            "LessEqual" => Self::LessEqual,
            "First" => Self::First,
            "Second" => Self::Second,
            "Min" => Self::Min,
            "Max" => Self::Max,
            "Plus" => Self::Plus,
            "Minus" => Self::Minus,
            "Times" => Self::Times,
            "Div" => Self::Div,
            other => return find_user_entry(other, true).map(Self::User),
        })
    }

    /// The Fig. 6 name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            Self::LogicalOr => "LogicalOr",
            Self::LogicalAnd => "LogicalAnd",
            Self::LogicalXor => "LogicalXor",
            Self::Equal => "Equal",
            Self::NotEqual => "NotEqual",
            Self::GreaterThan => "GreaterThan",
            Self::LessThan => "LessThan",
            Self::GreaterEqual => "GreaterEqual",
            Self::LessEqual => "LessEqual",
            Self::First => "First",
            Self::Second => "Second",
            Self::Min => "Min",
            Self::Max => "Max",
            Self::Plus => "Plus",
            Self::Minus => "Minus",
            Self::Times => "Times",
            Self::Div => "Div",
            Self::User(id) => user_entry(id, |e| e.name),
        }
    }

    /// Apply the operator to two values of any scalar type.
    #[inline]
    pub fn apply<T: Scalar>(self, a: T, b: T) -> T {
        match self {
            Self::LogicalOr => T::from_bool(a.to_bool() || b.to_bool()),
            Self::LogicalAnd => T::from_bool(a.to_bool() && b.to_bool()),
            Self::LogicalXor => T::from_bool(a.to_bool() ^ b.to_bool()),
            Self::Equal => T::from_bool(a == b),
            Self::NotEqual => T::from_bool(a != b),
            Self::GreaterThan => T::from_bool(a > b),
            Self::LessThan => T::from_bool(a < b),
            Self::GreaterEqual => T::from_bool(a >= b),
            Self::LessEqual => T::from_bool(a <= b),
            Self::First => a,
            Self::Second => b,
            Self::Min => a.s_min(b),
            Self::Max => a.s_max(b),
            Self::Plus => a.s_add(b),
            Self::Minus => a.s_sub(b),
            Self::Times => a.s_mul(b),
            Self::Div => a.s_div(b),
            // User ops compute through f64 (widen in, cast out) — the
            // boundary a Python-defined operator would cross.
            Self::User(id) => {
                let f = user_entry(id, |e| e.binary.expect("registered as binary"));
                T::from_f64(f(a.to_f64(), b.to_f64()))
            }
        }
    }

    /// The natural identity for using this op as a monoid ⊕, if it has
    /// one (`Plus → 0`, `Min → MAX`, ...). `None` for non-monoid ops
    /// like `Minus`.
    pub fn default_identity(self) -> Option<IdentityKind> {
        Some(match self {
            Self::Plus | Self::LogicalOr | Self::LogicalXor => IdentityKind::Zero,
            Self::Times | Self::LogicalAnd => IdentityKind::One,
            Self::Min => IdentityKind::MinIdentity,
            Self::Max => IdentityKind::MaxIdentity,
            Self::Equal => IdentityKind::One,
            Self::User(id) => return user_entry(id, |e| e.identity),
            _ => return None,
        })
    }
}

/// A kind-dispatched binary op usable wherever a functor is expected.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct KindBinaryOp(pub BinaryOpKind);

impl<T: Scalar> BinaryOp<T> for KindBinaryOp {
    #[inline]
    fn apply(&self, a: T, b: T) -> T {
        self.0.apply(a, b)
    }
}

/// The 4 predefined unary operators of Fig. 6, as a runtime value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOpKind {
    /// `a`
    Identity,
    /// `-a`
    AdditiveInverse,
    /// `T(!bool(a))`
    LogicalNot,
    /// `1/a`
    MultiplicativeInverse,
    /// A user-registered operator (Section VIII).
    User(u16),
}

/// All unary operator kinds, in Fig. 6 order.
pub const ALL_UNARY_OPS: [UnaryOpKind; 4] = [
    UnaryOpKind::Identity,
    UnaryOpKind::AdditiveInverse,
    UnaryOpKind::LogicalNot,
    UnaryOpKind::MultiplicativeInverse,
];

impl UnaryOpKind {
    /// Parse the Fig. 6 name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "Identity" => Self::Identity,
            "AdditiveInverse" => Self::AdditiveInverse,
            "LogicalNot" => Self::LogicalNot,
            "MultiplicativeInverse" => Self::MultiplicativeInverse,
            other => return find_user_entry(other, false).map(Self::User),
        })
    }

    /// The Fig. 6 name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            Self::Identity => "Identity",
            Self::AdditiveInverse => "AdditiveInverse",
            Self::LogicalNot => "LogicalNot",
            Self::MultiplicativeInverse => "MultiplicativeInverse",
            Self::User(id) => user_entry(id, |e| e.name),
        }
    }

    /// Apply the operator to a value of any scalar type.
    #[inline]
    pub fn apply<T: Scalar>(self, a: T) -> T {
        match self {
            Self::Identity => a,
            Self::AdditiveInverse => a.s_ainv(),
            Self::LogicalNot => T::from_bool(!a.to_bool()),
            Self::MultiplicativeInverse => a.s_minv(),
            Self::User(id) => {
                let f = user_entry(id, |e| e.unary.expect("registered as unary"));
                T::from_f64(f(a.to_f64()))
            }
        }
    }
}

/// A named identity element, resolved per scalar type — the
/// `"MinIdentity"` strings of Fig. 6 and the `-DIDENTITY=0` preprocessor
/// parameter of Fig. 9.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IdentityKind {
    /// The additive identity (`0` / `false`).
    Zero,
    /// The multiplicative identity (`1` / `true`).
    One,
    /// The identity of `Min` (`MAX` / `+∞`) — Fig. 6's `"MinIdentity"`.
    MinIdentity,
    /// The identity of `Max` (`MIN` / `−∞`).
    MaxIdentity,
}

impl IdentityKind {
    /// Parse an identity name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "Zero" | "0" => Self::Zero,
            "One" | "1" => Self::One,
            "MinIdentity" => Self::MinIdentity,
            "MaxIdentity" => Self::MaxIdentity,
            _ => return None,
        })
    }

    /// Name of the identity.
    pub fn name(self) -> &'static str {
        match self {
            Self::Zero => "Zero",
            Self::One => "One",
            Self::MinIdentity => "MinIdentity",
            Self::MaxIdentity => "MaxIdentity",
        }
    }

    /// Resolve the identity to a concrete value of type `T`.
    #[inline]
    pub fn value<T: Scalar>(self) -> T {
        match self {
            Self::Zero => T::zero(),
            Self::One => T::one(),
            Self::MinIdentity => T::min_identity(),
            Self::MaxIdentity => T::max_identity(),
        }
    }
}

/// A runtime-assembled monoid: binary op kind + identity kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct KindMonoid {
    /// The monoid operation.
    pub op: BinaryOpKind,
    /// The identity element, named.
    pub identity: IdentityKind,
}

impl KindMonoid {
    /// Assemble a monoid from kinds.
    pub fn new(op: BinaryOpKind, identity: IdentityKind) -> Self {
        KindMonoid { op, identity }
    }

    /// The monoid the op's default identity would give, if any.
    pub fn from_op(op: BinaryOpKind) -> Option<Self> {
        op.default_identity()
            .map(|identity| KindMonoid { op, identity })
    }
}

impl<T: Scalar> Monoid<T> for KindMonoid {
    #[inline]
    fn identity(&self) -> T {
        self.identity.value::<T>()
    }
    #[inline]
    fn apply(&self, a: T, b: T) -> T {
        self.op.apply(a, b)
    }
}

/// A runtime-assembled semiring: additive monoid + multiplicative op.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct KindSemiring {
    /// The additive monoid ⊕.
    pub add: KindMonoid,
    /// The multiplicative operation ⊗.
    pub mult: BinaryOpKind,
}

impl KindSemiring {
    /// Assemble a semiring from kinds.
    pub fn new(add: KindMonoid, mult: BinaryOpKind) -> Self {
        KindSemiring { add, mult }
    }

    /// The predefined semirings by their GBTL names.
    pub fn from_name(name: &str) -> Option<Self> {
        let (add, ident, mult) = match name {
            "ArithmeticSemiring" => ("Plus", "Zero", "Times"),
            "LogicalSemiring" => ("LogicalOr", "Zero", "LogicalAnd"),
            "MinPlusSemiring" => ("Min", "MinIdentity", "Plus"),
            "MaxTimesSemiring" => ("Max", "MaxIdentity", "Times"),
            "MinSelect1stSemiring" => ("Min", "MinIdentity", "First"),
            "MinSelect2ndSemiring" => ("Min", "MinIdentity", "Second"),
            "MaxSelect1stSemiring" => ("Max", "MaxIdentity", "First"),
            "MaxSelect2ndSemiring" => ("Max", "MaxIdentity", "Second"),
            _ => return None,
        };
        Some(KindSemiring {
            add: KindMonoid {
                op: BinaryOpKind::from_name(add)?,
                identity: IdentityKind::from_name(ident)?,
            },
            mult: BinaryOpKind::from_name(mult)?,
        })
    }
}

impl<T: Scalar> Semiring<T> for KindSemiring {
    #[inline]
    fn zero(&self) -> T {
        self.add.identity.value::<T>()
    }
    #[inline]
    fn add(&self, a: T, b: T) -> T {
        self.add.op.apply(a, b)
    }
    #[inline]
    fn mult(&self, a: T, b: T) -> T {
        self.mult.apply(a, b)
    }
}

/// A runtime unary operator, possibly a bound binary op — covers the
/// paper's `gb.UnaryOp("Times", damping_factor)` (bind-2nd) form. The
/// bound constant is carried as `f64` and cast into the kernel domain at
/// instantiation, exactly as the DSL passes Python floats to C++.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AppliedUnaryKind {
    /// A pure unary operator.
    Pure(UnaryOpKind),
    /// `op(k, x)` — constant bound as the first argument.
    Bind1st(BinaryOpKind, f64),
    /// `op(x, k)` — constant bound as the second argument.
    Bind2nd(BinaryOpKind, f64),
}

impl AppliedUnaryKind {
    /// Apply to a value of any scalar type (constants cast via `f64`).
    #[inline]
    pub fn apply<T: Scalar>(self, a: T) -> T {
        match self {
            Self::Pure(k) => k.apply(a),
            Self::Bind1st(k, c) => k.apply(T::from_f64(c), a),
            Self::Bind2nd(k, c) => k.apply(a, T::from_f64(c)),
        }
    }

    /// A stable textual form for JIT module keys.
    pub fn key_string(self) -> String {
        match self {
            Self::Pure(k) => k.name().to_string(),
            Self::Bind1st(k, c) => format!("Bind1st({},{})", k.name(), c),
            Self::Bind2nd(k, c) => format!("Bind2nd({},{})", k.name(), c),
        }
    }
}

/// A kind-dispatched applied-unary usable wherever a functor is expected.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KindUnaryOp(pub AppliedUnaryKind);

impl<T: Scalar> UnaryOp<T> for KindUnaryOp {
    #[inline]
    fn apply(&self, a: T) -> T {
        self.0.apply(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary as fun;
    use crate::ops::BinaryOp;

    #[test]
    fn name_roundtrip_binary() {
        for k in ALL_BINARY_OPS {
            assert_eq!(BinaryOpKind::from_name(k.name()), Some(k));
        }
        assert_eq!(BinaryOpKind::from_name("Nope"), None);
    }

    #[test]
    fn name_roundtrip_unary() {
        for k in ALL_UNARY_OPS {
            assert_eq!(UnaryOpKind::from_name(k.name()), Some(k));
        }
    }

    #[test]
    fn kinds_agree_with_functors() {
        let pairs: [(i32, i32); 4] = [(2, 3), (-1, 5), (0, 0), (7, -7)];
        for (a, b) in pairs {
            assert_eq!(
                BinaryOpKind::Plus.apply(a, b),
                fun::Plus::<i32>::new().apply(a, b)
            );
            assert_eq!(
                BinaryOpKind::Min.apply(a, b),
                fun::Min::<i32>::new().apply(a, b)
            );
            assert_eq!(
                BinaryOpKind::LessThan.apply(a, b),
                fun::LessThan::<i32>::new().apply(a, b)
            );
        }
    }

    #[test]
    fn identity_kinds_resolve_per_type() {
        assert_eq!(IdentityKind::MinIdentity.value::<i32>(), i32::MAX);
        assert_eq!(IdentityKind::MinIdentity.value::<f64>(), f64::INFINITY);
        assert_eq!(IdentityKind::Zero.value::<u8>(), 0);
        assert!(IdentityKind::One.value::<bool>());
    }

    #[test]
    fn named_semirings_resolve() {
        let s = KindSemiring::from_name("MinPlusSemiring").unwrap();
        assert_eq!(Semiring::<f64>::zero(&s), f64::INFINITY);
        assert_eq!(Semiring::<f64>::add(&s, 3.0, 5.0), 3.0);
        assert_eq!(Semiring::<f64>::mult(&s, 3.0, 5.0), 8.0);
        assert!(KindSemiring::from_name("FancySemiring").is_none());
    }

    #[test]
    fn kind_semiring_matches_static_semiring() {
        use crate::ops::semiring::ArithmeticSemiring;
        use crate::ops::Semiring as _;
        let k = KindSemiring::from_name("ArithmeticSemiring").unwrap();
        let f = ArithmeticSemiring::<i64>::new();
        for (a, b) in [(2i64, 3), (5, -5), (0, 9)] {
            assert_eq!(Semiring::<i64>::add(&k, a, b), f.add(a, b));
            assert_eq!(Semiring::<i64>::mult(&k, a, b), f.mult(a, b));
        }
    }

    #[test]
    fn applied_unary_binds_constants() {
        let damp = AppliedUnaryKind::Bind2nd(BinaryOpKind::Times, 0.85);
        assert!((damp.apply(2.0f64) - 1.7).abs() < 1e-12);
        let sub_from = AppliedUnaryKind::Bind1st(BinaryOpKind::Minus, 10.0);
        assert_eq!(sub_from.apply(3i32), 7);
    }

    #[test]
    fn default_identities() {
        assert_eq!(
            BinaryOpKind::Plus.default_identity(),
            Some(IdentityKind::Zero)
        );
        assert_eq!(
            BinaryOpKind::Min.default_identity(),
            Some(IdentityKind::MinIdentity)
        );
        assert_eq!(BinaryOpKind::Minus.default_identity(), None);
    }

    #[test]
    fn monoid_from_op() {
        let m = KindMonoid::from_op(BinaryOpKind::Min).unwrap();
        assert_eq!(Monoid::<i32>::identity(&m), i32::MAX);
        assert!(KindMonoid::from_op(BinaryOpKind::Div).is_none());
    }

    #[test]
    fn key_strings_are_stable() {
        assert_eq!(
            AppliedUnaryKind::Bind2nd(BinaryOpKind::Times, 0.85).key_string(),
            "Bind2nd(Times,0.85)"
        );
        assert_eq!(
            AppliedUnaryKind::Pure(UnaryOpKind::LogicalNot).key_string(),
            "LogicalNot"
        );
    }
}
