//! One-shot kernel-selection hints.
//!
//! A dispatch layer that analyzed the whole deferred expression before
//! execution (the `pygb-runtime` sparsity pass) can know the operand
//! densities *statically* — before the runtime probe ever looks at a
//! container. These thread-local, one-shot hints let it communicate
//! that verdict to the next kernel-selection decision on the same
//! thread:
//!
//! * [`set_spmv_direction_hint`] pre-decides the push/pull direction a
//!   [`crate::views::dual`] SpMV operand would otherwise resolve with
//!   the density probe. The override order is **hint > environment >
//!   default**: an armed hint beats `PYGB_PUSH_PULL_DENSITY`, which
//!   beats [`crate::operations::PUSH_PULL_DENSITY`].
//! * [`set_mxm_family_hint`] pre-decides the masked-SpGEMM family when
//!   both families are legal (structural mask and a transposed-rows
//!   view of `B` available).
//!
//! A hint is *consumed* (cleared) by the next `mxv`/`vxm` or `mxm`
//! entry on the thread whether or not the selection could honor it, so
//! a stale hint can never leak into an unrelated operation.

use std::cell::Cell;

/// A pre-decided SpMV direction (see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpmvDirection {
    /// Row-parallel gather over the logical matrix (dense operand).
    Pull,
    /// Frontier-driven scatter over the transposed rows (sparse
    /// operand).
    Push,
}

/// A pre-decided masked-SpGEMM family (see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MxmFamily {
    /// Dot-product kernel confined to the mask's stored positions
    /// (wins when the mask is sparse).
    MaskedDot,
    /// Row-wise Gustavson with the mask filtering the accumulator
    /// (wins when the mask is dense).
    MaskedGustavson,
}

thread_local! {
    static SPMV_HINT: Cell<Option<SpmvDirection>> = const { Cell::new(None) };
    static MXM_HINT: Cell<Option<MxmFamily>> = const { Cell::new(None) };
}

/// Arm a one-shot SpMV direction hint for the calling thread. The next
/// `mxv`/`vxm` on this thread consumes it.
pub fn set_spmv_direction_hint(dir: SpmvDirection) {
    SPMV_HINT.with(|h| h.set(Some(dir)));
}

/// Take (and clear) the calling thread's SpMV direction hint.
pub fn take_spmv_direction_hint() -> Option<SpmvDirection> {
    SPMV_HINT.with(|h| h.take())
}

/// Arm a one-shot masked-SpGEMM family hint for the calling thread.
/// The next `mxm` on this thread consumes it.
pub fn set_mxm_family_hint(family: MxmFamily) {
    MXM_HINT.with(|h| h.set(Some(family)));
}

/// Take (and clear) the calling thread's masked-SpGEMM family hint.
pub fn take_mxm_family_hint() -> Option<MxmFamily> {
    MXM_HINT.with(|h| h.take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_are_one_shot_and_thread_local() {
        assert_eq!(take_spmv_direction_hint(), None);
        set_spmv_direction_hint(SpmvDirection::Push);
        assert_eq!(take_spmv_direction_hint(), Some(SpmvDirection::Push));
        assert_eq!(take_spmv_direction_hint(), None);

        set_mxm_family_hint(MxmFamily::MaskedDot);
        assert_eq!(take_mxm_family_hint(), Some(MxmFamily::MaskedDot));
        assert_eq!(take_mxm_family_hint(), None);

        // A hint armed here is invisible to other threads.
        set_spmv_direction_hint(SpmvDirection::Pull);
        std::thread::spawn(|| assert_eq!(take_spmv_direction_hint(), None))
            .join()
            .unwrap();
        assert_eq!(take_spmv_direction_hint(), Some(SpmvDirection::Pull));
    }
}
