//! `reduce`: fold stored elements with a monoid — row-wise to a vector
//! (`w⟨m, z⟩ = w ⊙ [⊕ⱼ A(:, j)]`) or completely to a scalar
//! (`s = s ⊙ [⊕ᵢⱼ A(i, j)]`, `s = s ⊙ [⊕ᵢ u(i)]`) (Table I).
//!
//! Scalar reductions fold *stored entries only*: an empty container
//! reduces to the monoid identity, and a row with no entries produces no
//! output entry in the vector form.

use crate::error::{GblasError, Result};
use crate::mask::{check_vector_mask, VectorMask};
use crate::ops::accum::Accum;
use crate::ops::Monoid;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::write::write_vector;

/// `w⟨m, z⟩ = w ⊙ [⊕ⱼ A(:, j)]` — reduce each (logical) row of `A`.
pub fn reduce_matrix_to_vector<'a, T, Mk, A, M>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    monoid: &M,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    M: Monoid<T>,
{
    let a = a.into();
    if w.size() != a.nrows() {
        return Err(GblasError::dim(format!(
            "reduce: w has size {}, A has {} rows",
            w.size(),
            a.nrows()
        )));
    }
    check_vector_mask(mask, w.size())?;
    let timer = crate::hooks::KernelTimer::start();
    let am = a.materialize();
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..am.nrows() {
        let (_, vals) = am.row(i);
        if let Some((&first, rest)) = vals.split_first() {
            let folded = rest.iter().fold(first, |acc, &v| monoid.apply(acc, v));
            indices.push(i);
            values.push(folded);
        }
    }
    let t = Vector::from_sorted_entries(am.nrows(), indices, values);
    write_vector(w, mask, &accum, t, replace);
    timer.finish("reduce/rows");
    Ok(())
}

/// `s = [⊕ᵢⱼ A(i, j)]` — reduce a whole matrix to a scalar. Stored
/// entries only; the identity when the matrix is empty.
pub fn reduce_matrix_scalar<'a, T, M>(monoid: &M, a: impl Into<MatrixArg<'a, T>>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    // Transposition cannot change a full reduction; use storage order.
    let timer = crate::hooks::KernelTimer::start();
    let inner = a.into().inner();
    let s = inner
        .iter()
        .fold(monoid.identity(), |acc, (_, _, v)| monoid.apply(acc, v));
    timer.finish("reduce/matrix_scalar");
    s
}

/// `s = [⊕ᵢ u(i)]` — reduce a vector to a scalar.
pub fn reduce_vector_scalar<T, M>(monoid: &M, u: &Vector<T>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    let timer = crate::hooks::KernelTimer::start();
    let s = u
        .values()
        .iter()
        .fold(monoid.identity(), |acc, &v| monoid.apply(acc, v));
    timer.finish("reduce/vector_scalar");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::matrix::Matrix;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::ops::monoid::{MaxMonoid, MinMonoid, PlusMonoid};
    use crate::views::{transpose, MERGE};

    fn m() -> Matrix<i32> {
        Matrix::from_triples(
            3,
            3,
            [
                (0usize, 0usize, 1i32),
                (0, 2, 2),
                (2, 0, 3),
                (2, 1, 4),
                (2, 2, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_reduce() {
        let mut w = Vector::<i32>::new(3);
        reduce_matrix_to_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &PlusMonoid::new(),
            &m(),
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0), Some(3));
        assert_eq!(w.get(1), None); // empty row → no entry
        assert_eq!(w.get(2), Some(12));
    }

    #[test]
    fn column_reduce_via_transpose() {
        let mm = m();
        let mut w = Vector::<i32>::new(3);
        reduce_matrix_to_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &PlusMonoid::new(),
            transpose(&mm),
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0), Some(4)); // column 0: 1 + 3
        assert_eq!(w.get(1), Some(4));
        assert_eq!(w.get(2), Some(7));
    }

    #[test]
    fn matrix_scalar_reduce() {
        assert_eq!(reduce_matrix_scalar(&PlusMonoid::new(), &m()), 15);
        assert_eq!(reduce_matrix_scalar(&MaxMonoid::new(), &m()), 5);
        assert_eq!(reduce_matrix_scalar(&MinMonoid::new(), &m()), 1);
        let empty = Matrix::<i32>::new(2, 2);
        assert_eq!(reduce_matrix_scalar(&PlusMonoid::new(), &empty), 0);
        assert_eq!(
            reduce_matrix_scalar(&MinMonoid::new(), &empty),
            i32::MAX // identity
        );
    }

    #[test]
    fn vector_scalar_reduce() {
        let u = Vector::from_pairs(4, [(0usize, 1.5f64), (3, 2.5)]).unwrap();
        assert_eq!(reduce_vector_scalar(&PlusMonoid::new(), &u), 4.0);
        let empty = Vector::<f64>::new(4);
        assert_eq!(reduce_vector_scalar(&PlusMonoid::new(), &empty), 0.0);
    }

    #[test]
    fn reduce_with_accumulate() {
        let mut w = Vector::from_pairs(3, [(0usize, 100i32)]).unwrap();
        reduce_matrix_to_vector(
            &mut w,
            &NoMask,
            Accumulate(Plus::<i32>::new()),
            &PlusMonoid::new(),
            &m(),
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0), Some(103));
        assert_eq!(w.get(2), Some(12));
    }

    #[test]
    fn wrong_output_size() {
        let mut w = Vector::<i32>::new(5);
        assert!(reduce_matrix_to_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &PlusMonoid::new(),
            &m(),
            MERGE
        )
        .is_err());
    }
}
