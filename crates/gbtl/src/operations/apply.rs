//! `apply`: map a unary operator over every stored element —
//! `C⟨M, z⟩ = C ⊙ f(A)` (Table I).
//!
//! With the `Bind1st`/`Bind2nd` adapters this covers the paper's
//! PageRank scaling steps (`apply(m)` under `UnaryOp("Times", d)`).

use crate::error::{GblasError, Result};
use crate::mask::{check_matrix_mask, check_vector_mask, MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::ops::UnaryOp;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::write::{write_matrix, write_vector};

/// `w⟨m, z⟩ = w ⊙ f(u)` — apply on vectors.
pub fn apply_vector<T, Mk, A, F>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    f: F,
    u: &Vector<T>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    F: UnaryOp<T>,
{
    if w.size() != u.size() {
        return Err(GblasError::dim(format!(
            "apply: w={}, u={}",
            w.size(),
            u.size()
        )));
    }
    check_vector_mask(mask, w.size())?;
    let timer = crate::hooks::KernelTimer::start();
    let indices = u.extract_indices();
    let values = u.values().iter().map(|&v| f.apply(v)).collect();
    let t = Vector::from_sorted_entries(u.size(), indices, values);
    write_vector(w, mask, &accum, t, replace);
    timer.finish("apply/vector");
    Ok(())
}

/// `C⟨M, z⟩ = C ⊙ f(A)` — apply on matrices.
pub fn apply_matrix<'a, T, Mk, A, F>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    f: F,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    F: UnaryOp<T>,
{
    let a = a.into();
    if c.shape() != (a.nrows(), a.ncols()) {
        return Err(GblasError::dim(format!(
            "apply: C is {:?}, A is ({}, {})",
            c.shape(),
            a.nrows(),
            a.ncols()
        )));
    }
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let timer = crate::hooks::KernelTimer::start();
    let am = a.materialize();
    let rows = (0..am.nrows())
        .map(|i| {
            let (cols, vals) = am.row(i);
            cols.iter()
                .copied()
                .zip(vals.iter().map(|&v| f.apply(v)))
                .collect()
        })
        .collect();
    let t = Matrix::from_rows(am.nrows(), am.ncols(), rows);
    write_matrix(c, mask, &accum, t, replace);
    timer.finish("apply/matrix");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::NoAccumulate;
    use crate::ops::binary::{Plus, Times};
    use crate::ops::unary::{AdditiveInverse, Bind2nd, LogicalNot};
    use crate::views::{transpose, MERGE};

    #[test]
    fn negate_vector() {
        let u = Vector::from_pairs(3, [(0usize, 1i32), (2, -4)]).unwrap();
        let mut w = Vector::<i32>::new(3);
        apply_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            AdditiveInverse::new(),
            &u,
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0), Some(-1));
        assert_eq!(w.get(2), Some(4));
    }

    #[test]
    fn pagerank_damping_scale() {
        // Fig. 8: apply(m, ..., Bind2nd(Times, damping), m)
        let m = Matrix::from_triples(2, 2, [(0usize, 1usize, 1.0f64), (1, 0, 0.5)]).unwrap();
        let mut out = Matrix::<f64>::new(2, 2);
        apply_matrix(
            &mut out,
            &NoMask,
            NoAccumulate,
            Bind2nd::new(Times::new(), 0.85),
            &m,
            MERGE,
        )
        .unwrap();
        assert_eq!(out.get(0, 1), Some(0.85));
        assert_eq!(out.get(1, 0), Some(0.425));
    }

    #[test]
    fn teleport_add_constant() {
        // Fig. 8: apply(new_rank, ..., Bind2nd(Plus, (1-d)/n), new_rank)
        let u = Vector::from_pairs(4, [(0usize, 0.1f64), (3, 0.2)]).unwrap();
        let mut w = Vector::<f64>::new(4);
        apply_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            Bind2nd::new(Plus::new(), 0.0375),
            &u,
            MERGE,
        )
        .unwrap();
        assert!((w.get(0).unwrap() - 0.1375).abs() < 1e-12);
        // Only *stored* entries are touched — apply is pattern-preserving.
        assert_eq!(w.nvals(), 2);
    }

    #[test]
    fn logical_not_only_flips_stored() {
        let u = Vector::from_pairs(3, [(1usize, 0i32)]).unwrap();
        let mut w = Vector::<i32>::new(3);
        apply_vector(&mut w, &NoMask, NoAccumulate, LogicalNot::new(), &u, MERGE).unwrap();
        assert_eq!(w.get(1), Some(1));
        assert_eq!(w.nvals(), 1); // unstored positions stay unstored
    }

    #[test]
    fn apply_transposed_matrix() {
        let m = Matrix::from_triples(2, 3, [(0usize, 2usize, 3i32)]).unwrap();
        let mut out = Matrix::<i32>::new(3, 2);
        apply_matrix(
            &mut out,
            &NoMask,
            NoAccumulate,
            AdditiveInverse::new(),
            transpose(&m),
            MERGE,
        )
        .unwrap();
        assert_eq!(out.get(2, 0), Some(-3));
    }

    #[test]
    fn shape_mismatch() {
        let u = Vector::<i32>::new(3);
        let mut w = Vector::<i32>::new(4);
        assert!(apply_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            AdditiveInverse::new(),
            &u,
            MERGE
        )
        .is_err());
    }
}
