//! Matrix-vector and vector-matrix multiply over a semiring:
//! `w⟨m, z⟩ = w ⊙ (A ⊕.⊗ u)` and `w⟨m, z⟩ = w ⊙ (uᵀ ⊕.⊗ A)`.
//!
//! Two kernel directions, chosen by operand orientation — or, for a
//! [`crate::views::dual`] operand, by the frontier's density
//! ([`PUSH_PULL_DENSITY`], the GraphBLAST direction-optimization
//! heuristic):
//!
//! * **pull** (gather, `A·u`): `u` is scattered into a dense buffer
//!   once, then each output row is a `O(nnz(row))` gather-dot —
//!   row-parallel. Wins when `u` is dense (PageRank ranks, late BFS).
//! * **push** (scatter, `Aᵀ·u`): iterate the stored entries of `u` and
//!   scatter each matrix row into a sparse accumulator — cost is
//!   proportional to the frontier, not the whole graph (`graphᵀ ⊕.⊗
//!   frontier`, Fig. 2). Wins when `u` is sparse (early BFS, SSSP).
//!
//! Structural masks ([`crate::mask::MaskProbe`]) are pushed into both
//! directions: the pull kernel only visits allowed rows (or skips
//! forbidden ones), and the push kernel stamps the allowed set so the
//! scatter loop never accumulates entries the write step would drop.

// Kernel hot path: a panic here takes down a serve worker, so
// `unwrap`/`expect` are forbidden (see clippy.toml; the test module
// below is exempt).
#![warn(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::mask::{check_vector_mask, MaskProbe, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::ops::Semiring;
use crate::parallel::row_map;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::workspace::{DenseGather, Spa, Stamp};
use crate::write::write_vector;

/// Default frontier density (`nvals / size`) at or above which a
/// [`crate::views::dual`] operand uses the pull (gather) direction;
/// below it the push (scatter) direction wins because its cost tracks
/// the frontier. 5% follows the direction-optimizing SpMV literature
/// (GraphBLAST's default switch point is in the same regime).
///
/// This is the *default* of a runtime tunable: override it per process
/// with the `PYGB_PUSH_PULL_DENSITY` environment variable (read once,
/// on first kernel selection) or at any time with
/// [`set_push_pull_density`]. [`push_pull_density`] reports the value
/// currently in effect.
pub const PUSH_PULL_DENSITY: f64 = 0.05;

/// The effective threshold, stored as `f64` bits. Zero is the unset
/// sentinel (a zero threshold would be stored as the bits of a tiny
/// positive epsilon; see [`set_push_pull_density`]).
static PUSH_PULL_DENSITY_BITS: AtomicU64 = AtomicU64::new(0);

/// Encode a threshold so that `0.0` survives the unset-sentinel check.
fn encode_density(d: f64) -> u64 {
    let d = if d <= 0.0 { f64::MIN_POSITIVE } else { d };
    d.to_bits()
}

/// The push/pull switch threshold currently in effect: the last value
/// passed to [`set_push_pull_density`], else `PYGB_PUSH_PULL_DENSITY`
/// from the environment (parsed once), else [`PUSH_PULL_DENSITY`].
pub fn push_pull_density() -> f64 {
    let bits = PUSH_PULL_DENSITY_BITS.load(Ordering::Relaxed);
    if bits != 0 {
        return f64::from_bits(bits);
    }
    static ENV: OnceLock<f64> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PYGB_PUSH_PULL_DENSITY")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|d| d.is_finite() && *d >= 0.0)
            .unwrap_or(PUSH_PULL_DENSITY)
    })
}

/// Set the push/pull switch threshold for the whole process, overriding
/// the environment and the built-in default. Values ≤ 0 mean "always
/// pull"; values > 1 mean "always push". Takes effect on the next
/// kernel selection; thread-safe.
pub fn set_push_pull_density(density: f64) {
    PUSH_PULL_DENSITY_BITS.store(encode_density(density), Ordering::Relaxed);
}

/// Reset the threshold to the environment/default resolution order (for
/// tests that must not leak a programmatic override).
pub fn reset_push_pull_density() {
    PUSH_PULL_DENSITY_BITS.store(0, Ordering::Relaxed);
}

/// Which SpMV kernel [`mxv`]/[`vxm`] selected, reported back to the
/// caller so dispatch layers can count selections.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpmvKernel {
    /// Row-parallel gather-dot over all output rows (dense direction).
    Pull,
    /// Gather-dot confined to the mask: only allowed rows are visited
    /// (plain structural mask) or forbidden rows skipped (complement).
    MaskedPull,
    /// Frontier-driven scatter (sparse direction).
    Push,
    /// Frontier-driven scatter with the mask's truthy set stamped so
    /// disallowed columns never enter the accumulator.
    MaskedPush,
}

/// `w⟨m, z⟩ = w ⊙ (A ⊕.⊗ u)` — GraphBLAS `mxv`.
///
/// Returns which kernel was selected (see [`SpmvKernel`]); callers that
/// don't care can discard it.
pub fn mxv<'a, T, Mk, A, S>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    semiring: &S,
    a: impl Into<MatrixArg<'a, T>>,
    u: &Vector<T>,
    replace: Replace,
) -> Result<SpmvKernel>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    let a = a.into();
    if a.ncols() != u.size() {
        return Err(GblasError::dim(format!(
            "mxv: A is {}x{}, u has size {}",
            a.nrows(),
            a.ncols(),
            u.size()
        )));
    }
    if w.size() != a.nrows() {
        return Err(GblasError::dim(format!(
            "mxv: w has size {}, expected {}",
            w.size(),
            a.nrows()
        )));
    }
    check_vector_mask(mask, w.size())?;
    let timer = crate::hooks::KernelTimer::start();

    // Direction: pull iterates output rows of the logical matrix; push
    // iterates the stored entries of `u` and scatters rows of Aᵀ. The
    // hint is taken unconditionally so a stale one never leaks into a
    // later operation; it only has effect on a dual operand, where both
    // directions are legal (hint > env > default, see `crate::hints`).
    let dir_hint = crate::hints::take_spmv_direction_hint();
    let pull_rows: Option<&Matrix<T>> = match a {
        MatrixArg::Plain(m) => Some(m),
        MatrixArg::Transposed(_) => None,
        MatrixArg::Dual { rows, .. } => match dir_hint {
            Some(crate::hints::SpmvDirection::Pull) => Some(rows),
            Some(crate::hints::SpmvDirection::Push) => None,
            None => {
                let density = if u.size() == 0 {
                    1.0
                } else {
                    u.nvals() as f64 / u.size() as f64
                };
                (density >= push_pull_density()).then_some(rows)
            }
        },
    };

    let probe = mask.probe();
    let structural = matches!(
        probe,
        MaskProbe::Structural | MaskProbe::StructuralComplement
    );
    let keep_truthy = probe == MaskProbe::Structural;

    let (t, kernel) = if let Some(m) = pull_rows {
        if structural {
            (
                spmv_gather_masked(semiring, m, u, mask, keep_truthy),
                SpmvKernel::MaskedPull,
            )
        } else {
            (spmv_gather(semiring, m, u), SpmvKernel::Pull)
        }
    } else {
        let Some(m) = a.transposed_rows() else {
            unreachable!("push selected only when Aᵀ rows are available")
        };
        if structural {
            (
                spmv_scatter_masked(semiring, m, u, mask, keep_truthy),
                SpmvKernel::MaskedPush,
            )
        } else {
            (spmv_scatter(semiring, m, u), SpmvKernel::Push)
        }
    };
    write_vector(w, mask, &accum, t, replace);
    timer.finish(match kernel {
        SpmvKernel::Pull => "mxv/pull",
        SpmvKernel::MaskedPull => "mxv/masked_pull",
        SpmvKernel::Push => "mxv/push",
        SpmvKernel::MaskedPush => "mxv/masked_push",
    });
    Ok(kernel)
}

/// `w⟨m, z⟩ = w ⊙ (uᵀ ⊕.⊗ A)` — GraphBLAS `vxm`. Equivalent to
/// `mxv` with the matrix transposed: `u·A = Aᵀ·u`.
///
/// Returns which kernel was selected, like [`mxv`].
pub fn vxm<'a, T, Mk, A, S>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    semiring: &S,
    u: &Vector<T>,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Result<SpmvKernel>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    mxv(w, mask, accum, semiring, a.into().flip(), u, replace)
}

/// One gather-dot: `⊕_j A(i,j) ⊗ u(j)` over the stored entries of row
/// `i`, with `u` pre-densified. `None` when nothing collides.
#[inline]
fn gather_dot<T: Scalar, S: Semiring<T>>(
    sr: &S,
    (cols, vals): (&[IndexType], &[T]),
    gathered: &DenseGather<T>,
) -> Option<T> {
    let mut acc: Option<T> = None;
    for (&j, &av) in cols.iter().zip(vals) {
        if let Some(uv) = gathered.get(j) {
            let prod = sr.mult(av, uv);
            acc = Some(match acc {
                Some(s) => sr.add(s, prod),
                None => prod,
            });
        }
    }
    acc
}

/// Pull kernel: `t_i = ⊕_j A(i,j) ⊗ u(j)` with `u` densified.
fn spmv_gather<T: Scalar, S: Semiring<T>>(semiring: &S, a: &Matrix<T>, u: &Vector<T>) -> Vector<T> {
    let gathered = DenseGather::from_vector(u);
    let g = &gathered;
    let sr = *semiring;
    let entries: Vec<Option<T>> =
        row_map(a.nrows(), || (), move |_, i| gather_dot(&sr, a.row(i), g));
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if let Some(v) = e {
            indices.push(i);
            values.push(v);
        }
    }
    Vector::from_sorted_entries(a.nrows(), indices, values)
}

/// Masked pull kernel. Plain structural masks (`keep_truthy`) visit
/// *only* the allowed rows, so a sparse mask makes the whole SpMV cost
/// `O(Σ_{i∈m} nnz(Aᵢ))`; complements visit every row but skip the
/// stamped forbidden set.
fn spmv_gather_masked<T, Mk, S>(
    semiring: &S,
    a: &Matrix<T>,
    u: &Vector<T>,
    mask: &Mk,
    keep_truthy: bool,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    S: Semiring<T>,
{
    let mut truthy = Vec::new();
    mask.truthy_indices(&mut truthy);
    let gathered = DenseGather::from_vector(u);
    let g = &gathered;
    let sr = *semiring;
    if keep_truthy {
        let rows = &truthy;
        let entries: Vec<Option<T>> = row_map(
            rows.len(),
            || (),
            move |_, idx| gather_dot(&sr, a.row(rows[idx]), g),
        );
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (idx, e) in entries.into_iter().enumerate() {
            if let Some(v) = e {
                indices.push(truthy[idx]);
                values.push(v);
            }
        }
        Vector::from_sorted_entries(a.nrows(), indices, values)
    } else {
        let mut forbidden = Stamp::new(a.nrows());
        for &i in &truthy {
            forbidden.set(i);
        }
        let fb = &forbidden;
        let entries: Vec<Option<T>> = row_map(
            a.nrows(),
            || (),
            move |_, i| {
                if fb.contains(i) {
                    return None;
                }
                gather_dot(&sr, a.row(i), g)
            },
        );
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, e) in entries.into_iter().enumerate() {
            if let Some(v) = e {
                indices.push(i);
                values.push(v);
            }
        }
        Vector::from_sorted_entries(a.nrows(), indices, values)
    }
}

/// Push kernel: `t = Aᵀ·u` by scattering row `i` of `A` for each stored
/// `u(i)`.
fn spmv_scatter<T: Scalar, S: Semiring<T>>(
    semiring: &S,
    a: &Matrix<T>,
    u: &Vector<T>,
) -> Vector<T> {
    let sr = *semiring;
    let mut spa = Spa::<T>::new(a.ncols());
    for (i, uv) in u.iter() {
        let (cols, vals) = a.row(i);
        for (&j, &av) in cols.iter().zip(vals) {
            spa.scatter(j, sr.mult(av, uv), |x, y| sr.add(x, y));
        }
    }
    let entries = spa.drain_sorted();
    let (indices, values): (Vec<IndexType>, Vec<T>) = entries.into_iter().unzip();
    Vector::from_sorted_entries(a.ncols(), indices, values)
}

/// Masked push kernel: the mask's truthy set is stamped once, then the
/// scatter loop drops disallowed columns before they ever enter the
/// accumulator — the Fig. 2 BFS step (`frontier⟨¬levels⟩`) never
/// accumulates already-visited vertices.
fn spmv_scatter_masked<T, Mk, S>(
    semiring: &S,
    a: &Matrix<T>,
    u: &Vector<T>,
    mask: &Mk,
    keep_truthy: bool,
) -> Vector<T>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    S: Semiring<T>,
{
    let mut truthy = Vec::new();
    mask.truthy_indices(&mut truthy);
    let mut stamp = Stamp::new(a.ncols());
    for &j in &truthy {
        stamp.set(j);
    }
    if keep_truthy && stamp.is_empty() {
        return Vector::new(a.ncols());
    }
    let sr = *semiring;
    let mut spa = Spa::<T>::new(a.ncols());
    for (i, uv) in u.iter() {
        let (cols, vals) = a.row(i);
        for (&j, &av) in cols.iter().zip(vals) {
            if stamp.contains(j) == keep_truthy {
                spa.scatter(j, sr.mult(av, uv), |x, y| sr.add(x, y));
            }
        }
    }
    let entries = spa.drain_sorted();
    let (indices, values): (Vec<IndexType>, Vec<T>) = entries.into_iter().unzip();
    Vector::from_sorted_entries(a.ncols(), indices, values)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::matrix::Matrix;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Min;
    use crate::ops::semiring::{ArithmeticSemiring, LogicalSemiring, MinPlusSemiring};
    use crate::views::{complement, transpose, MERGE, REPLACE};

    fn graph() -> Matrix<bool> {
        // Fig. 1's 7-vertex digraph (0-based).
        Matrix::from_triples(
            7,
            7,
            [
                (0usize, 1usize, true),
                (0, 3, true),
                (1, 4, true),
                (1, 6, true),
                (2, 5, true),
                (3, 0, true),
                (3, 2, true),
                (4, 5, true),
                (5, 2, true),
                (6, 2, true),
                (6, 3, true),
                (6, 4, true),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_bfs_ply() {
        let g = graph();
        let frontier = Vector::from_pairs(7, [(3usize, true)]).unwrap();
        let mut next = Vector::<bool>::new(7);
        mxv(
            &mut next,
            &NoMask,
            NoAccumulate,
            &LogicalSemiring::new(),
            transpose(&g),
            &frontier,
            REPLACE,
        )
        .unwrap();
        // Vertex 3 (paper's "4") reaches 0 and 2 (paper's "1" and "3").
        assert_eq!(next.extract_indices(), vec![0, 2]);
    }

    #[test]
    fn gather_and_scatter_agree() {
        let m = Matrix::from_triples(
            4,
            4,
            [
                (0usize, 1usize, 2i64),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 3, 6),
            ],
        )
        .unwrap();
        let u = Vector::from_pairs(4, [(0usize, 1i64), (2, 2), (3, 3)]).unwrap();

        // A·u via gather vs via scatter on the materialized transpose.
        let mut w1 = Vector::<i64>::new(4);
        mxv(
            &mut w1,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE,
        )
        .unwrap();
        let mt = m.transpose_owned();
        let mut w2 = Vector::<i64>::new(4);
        mxv(
            &mut w2,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            transpose(&mt),
            &u,
            MERGE,
        )
        .unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn vxm_is_transposed_mxv() {
        let m = Matrix::from_triples(3, 3, [(0usize, 1usize, 2.0f64), (2, 1, 3.0)]).unwrap();
        let u = Vector::from_pairs(3, [(0usize, 1.0f64), (2, 10.0)]).unwrap();
        let mut w1 = Vector::<f64>::new(3);
        vxm(
            &mut w1,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &u,
            &m,
            MERGE,
        )
        .unwrap();
        // u·A: w_1 = 1*2 + 10*3 = 32.
        assert_eq!(w1.get(1), Some(32.0));
        assert_eq!(w1.nvals(), 1);
    }

    #[test]
    fn min_plus_relaxation_with_min_accum() {
        // One SSSP step: path ⟨min⟩= Aᵀ ⊕.⊗ path over MinPlus (Fig. 4).
        let inf = f64::INFINITY;
        let g = Matrix::from_triples(3, 3, [(0usize, 1usize, 2.0f64), (1, 2, 3.0), (0, 2, 10.0)])
            .unwrap();
        let mut path = Vector::from_pairs(3, [(0usize, 0.0f64)]).unwrap();
        for _ in 0..3 {
            let snapshot = path.clone();
            mxv(
                &mut path,
                &NoMask,
                Accumulate(Min::<f64>::new()),
                &MinPlusSemiring::new(),
                transpose(&g),
                &snapshot,
                MERGE,
            )
            .unwrap();
        }
        assert_eq!(path.get(0), Some(0.0));
        assert_eq!(path.get(1), Some(2.0));
        assert_eq!(path.get(2), Some(5.0)); // via vertex 1, not the 10.0 edge
        assert_ne!(path.get(2), Some(inf));
    }

    #[test]
    fn masked_complement_replace_bfs_step() {
        // frontier⟨¬levels, replace⟩ = graphᵀ ⊕.⊗ frontier (Fig. 2).
        let g = graph().cast::<u64>();
        let levels = Vector::from_pairs(7, [(3usize, 1u64)]).unwrap();
        let frontier = Vector::from_pairs(7, [(3usize, 1u64)]).unwrap();
        let mut next = frontier.clone();
        let snapshot = frontier.clone();
        mxv(
            &mut next,
            &complement(&levels),
            NoAccumulate,
            &LogicalSemiring::new(),
            transpose(&g),
            &snapshot,
            REPLACE,
        )
        .unwrap();
        // 3 → {0, 2}; neither is in levels, both kept; old frontier
        // entry at 3 cleared by replace.
        assert_eq!(next.extract_indices(), vec![0, 2]);
    }

    /// Tests that read or write the process-wide push/pull threshold
    /// take this lock so `cargo test` parallelism cannot interleave a
    /// `set_push_pull_density` with a selection assertion.
    static DENSITY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn density_threshold_is_tunable() {
        let _g = DENSITY_LOCK.lock().unwrap();
        let big = Matrix::from_triples(40, 40, (0..40usize).map(|i| (i, (i * 7 + 1) % 40, 1i64)))
            .unwrap();
        let bigt = big.transpose_owned();
        let sr = ArithmeticSemiring::new();
        let dense_u = Vector::from_pairs(40, (0..20usize).map(|i| (i * 2, 1i64))).unwrap(); // 50%
        let sparse_u = Vector::from_pairs(40, [(3usize, 1i64)]).unwrap(); // 2.5%

        let select = |u: &Vector<i64>| {
            let mut w = Vector::<i64>::new(40);
            mxv(
                &mut w,
                &NoMask,
                NoAccumulate,
                &sr,
                crate::views::dual(&big, &bigt),
                u,
                MERGE,
            )
            .unwrap()
        };

        // Default resolution (no env override in the test harness).
        assert_eq!(push_pull_density(), PUSH_PULL_DENSITY);
        assert_eq!(select(&dense_u), SpmvKernel::Pull);

        // Raising the threshold above 50% flips the dense frontier to
        // the push direction.
        set_push_pull_density(0.8);
        assert_eq!(push_pull_density(), 0.8);
        assert_eq!(select(&dense_u), SpmvKernel::Push);

        // A zero threshold means "always pull", even for one entry.
        set_push_pull_density(0.0);
        assert_eq!(select(&sparse_u), SpmvKernel::Pull);

        // Reset restores the default resolution order.
        reset_push_pull_density();
        assert_eq!(push_pull_density(), PUSH_PULL_DENSITY);
        assert_eq!(select(&sparse_u), SpmvKernel::Push);
    }

    #[test]
    fn dual_switches_direction_on_density() {
        let _lock = DENSITY_LOCK.lock().unwrap();
        let g = graph().cast::<i64>();
        let gt = g.transpose_owned();
        let sr = ArithmeticSemiring::new();

        // Sparse frontier (1/7 ≈ 0.14 ≥ threshold? no: use truly sparse
        // vs dense around the 5% line on a larger vector).
        let big = Matrix::from_triples(40, 40, (0..40usize).map(|i| (i, (i * 7 + 1) % 40, 1i64)))
            .unwrap();
        let bigt = big.transpose_owned();

        let sparse_u = Vector::from_pairs(40, [(3usize, 1i64)]).unwrap(); // 2.5%
        let dense_u = Vector::from_pairs(40, (0..20usize).map(|i| (i * 2, 1i64))).unwrap(); // 50%

        for u in [&sparse_u, &dense_u] {
            let mut w_plain = Vector::<i64>::new(40);
            let k_plain = mxv(&mut w_plain, &NoMask, NoAccumulate, &sr, &big, u, MERGE).unwrap();
            assert_eq!(k_plain, SpmvKernel::Pull);

            let mut w_dual = Vector::<i64>::new(40);
            let k_dual = mxv(
                &mut w_dual,
                &NoMask,
                NoAccumulate,
                &sr,
                crate::views::dual(&big, &bigt),
                u,
                MERGE,
            )
            .unwrap();
            assert_eq!(w_plain, w_dual);
            if u.nvals() == 1 {
                assert_eq!(k_dual, SpmvKernel::Push);
            } else {
                assert_eq!(k_dual, SpmvKernel::Pull);
            }
        }
        // Sanity: the small-graph dual agrees with Plain too.
        let u7 = Vector::from_pairs(7, [(3usize, 1i64)]).unwrap();
        let mut w1 = Vector::<i64>::new(7);
        mxv(&mut w1, &NoMask, NoAccumulate, &sr, &g, &u7, MERGE).unwrap();
        let mut w2 = Vector::<i64>::new(7);
        mxv(
            &mut w2,
            &NoMask,
            NoAccumulate,
            &sr,
            crate::views::dual(&g, &gt),
            &u7,
            MERGE,
        )
        .unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn masked_kernel_selection() {
        let g = graph().cast::<i64>();
        let gt = g.transpose_owned();
        let sr = ArithmeticSemiring::new();
        let m = Vector::from_pairs(7, [(0usize, true), (2, true)]).unwrap();
        let u = Vector::from_pairs(7, [(3usize, 1i64)]).unwrap();

        // Plain operand + structural mask → masked pull.
        let mut w1 = Vector::<i64>::new(7);
        let k1 = mxv(&mut w1, &m, NoAccumulate, &sr, &g, &u, REPLACE).unwrap();
        assert_eq!(k1, SpmvKernel::MaskedPull);

        // Transposed operand + complemented mask → masked push.
        let mut w2 = Vector::<i64>::new(7);
        let k2 = mxv(
            &mut w2,
            &complement(&m),
            NoAccumulate,
            &sr,
            transpose(&gt),
            &u,
            REPLACE,
        )
        .unwrap();
        assert_eq!(k2, SpmvKernel::MaskedPush);

        // Both agree with computing unmasked then filtering.
        let mut full = Vector::<i64>::new(7);
        mxv(&mut full, &NoMask, NoAccumulate, &sr, &g, &u, MERGE).unwrap();
        for i in 0..7 {
            let allowed = VectorMask::allows(&m, i);
            assert_eq!(w1.get(i), if allowed { full.get(i) } else { None }, "{i}");
            assert_eq!(w2.get(i), if allowed { None } else { full.get(i) }, "{i}");
        }
    }

    #[test]
    fn dimension_errors() {
        let m = Matrix::<i32>::new(3, 4);
        let u = Vector::<i32>::new(3); // wrong: needs 4
        let mut w = Vector::<i32>::new(3);
        assert!(mxv(
            &mut w,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE
        )
        .is_err());
        let u_ok = Vector::<i32>::new(4);
        let mut w_bad = Vector::<i32>::new(2);
        assert!(mxv(
            &mut w_bad,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u_ok,
            MERGE
        )
        .is_err());
    }

    #[test]
    fn empty_input_gives_empty_result() {
        let m = Matrix::<f32>::new(5, 5);
        let u = Vector::from_pairs(5, [(0usize, 1.0f32)]).unwrap();
        let mut w = Vector::<f32>::new(5);
        mxv(
            &mut w,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE,
        )
        .unwrap();
        assert_eq!(w.nvals(), 0);
    }
}
