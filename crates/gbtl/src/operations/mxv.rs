//! Matrix-vector and vector-matrix multiply over a semiring:
//! `w⟨m, z⟩ = w ⊙ (A ⊕.⊗ u)` and `w⟨m, z⟩ = w ⊙ (uᵀ ⊕.⊗ A)`.
//!
//! Two kernel shapes, chosen by operand orientation:
//!
//! * **gather** (`A·u`): `u` is scattered into a dense buffer once, then
//!   each output row is a `O(nnz(row))` gather-dot — row-parallel.
//! * **scatter** (`Aᵀ·u`): iterate the stored entries of `u` and scatter
//!   each matrix row into a sparse accumulator — the natural kernel for
//!   BFS frontiers (`graphᵀ ⊕.⊗ frontier`, Fig. 2) because its cost is
//!   proportional to the frontier, not the whole graph.

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::mask::{check_vector_mask, VectorMask};
use crate::ops::accum::Accum;
use crate::ops::Semiring;
use crate::parallel::row_map;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::workspace::{DenseGather, Spa};
use crate::write::write_vector;

/// `w⟨m, z⟩ = w ⊙ (A ⊕.⊗ u)` — GraphBLAS `mxv`.
pub fn mxv<'a, T, Mk, A, S>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    semiring: &S,
    a: impl Into<MatrixArg<'a, T>>,
    u: &Vector<T>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    let a = a.into();
    if a.ncols() != u.size() {
        return Err(GblasError::dim(format!(
            "mxv: A is {}x{}, u has size {}",
            a.nrows(),
            a.ncols(),
            u.size()
        )));
    }
    if w.size() != a.nrows() {
        return Err(GblasError::dim(format!(
            "mxv: w has size {}, expected {}",
            w.size(),
            a.nrows()
        )));
    }
    check_vector_mask(mask, w.size())?;

    let t = match a {
        MatrixArg::Plain(m) => spmv_gather(semiring, m, u),
        MatrixArg::Transposed(m) => spmv_scatter(semiring, m, u),
    };
    write_vector(w, mask, &accum, t, replace);
    Ok(())
}

/// `w⟨m, z⟩ = w ⊙ (uᵀ ⊕.⊗ A)` — GraphBLAS `vxm`. Equivalent to
/// `mxv` with the matrix transposed: `u·A = Aᵀ·u`.
pub fn vxm<'a, T, Mk, A, S>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    semiring: &S,
    u: &Vector<T>,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    mxv(w, mask, accum, semiring, a.into().flip(), u, replace)
}

/// Gather kernel: `t_i = ⊕_j A(i,j) ⊗ u(j)` with `u` densified.
fn spmv_gather<T: Scalar, S: Semiring<T>>(
    semiring: &S,
    a: &crate::matrix::Matrix<T>,
    u: &Vector<T>,
) -> Vector<T> {
    let gathered = DenseGather::from_vector(u);
    let sr = *semiring;
    let entries: Vec<Option<T>> = row_map(
        a.nrows(),
        || (),
        move |_, i| {
            let (cols, vals) = a.row(i);
            let mut acc: Option<T> = None;
            for (&j, &av) in cols.iter().zip(vals) {
                if let Some(uv) = gathered.get(j) {
                    let prod = sr.mult(av, uv);
                    acc = Some(match acc {
                        Some(s) => sr.add(s, prod),
                        None => prod,
                    });
                }
            }
            acc
        },
    );
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if let Some(v) = e {
            indices.push(i);
            values.push(v);
        }
    }
    Vector::from_sorted_entries(a.nrows(), indices, values)
}

/// Scatter kernel: `t = Aᵀ·u` by scattering row `i` of `A` for each
/// stored `u(i)`.
fn spmv_scatter<T: Scalar, S: Semiring<T>>(
    semiring: &S,
    a: &crate::matrix::Matrix<T>,
    u: &Vector<T>,
) -> Vector<T> {
    let sr = *semiring;
    let mut spa = Spa::<T>::new(a.ncols());
    for (i, uv) in u.iter() {
        let (cols, vals) = a.row(i);
        for (&j, &av) in cols.iter().zip(vals) {
            spa.scatter(j, sr.mult(av, uv), |x, y| sr.add(x, y));
        }
    }
    let entries = spa.drain_sorted();
    let (indices, values): (Vec<IndexType>, Vec<T>) = entries.into_iter().unzip();
    Vector::from_sorted_entries(a.ncols(), indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::matrix::Matrix;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Min;
    use crate::ops::semiring::{ArithmeticSemiring, LogicalSemiring, MinPlusSemiring};
    use crate::views::{complement, transpose, MERGE, REPLACE};

    fn graph() -> Matrix<bool> {
        // Fig. 1's 7-vertex digraph (0-based).
        Matrix::from_triples(
            7,
            7,
            [
                (0usize, 1usize, true),
                (0, 3, true),
                (1, 4, true),
                (1, 6, true),
                (2, 5, true),
                (3, 0, true),
                (3, 2, true),
                (4, 5, true),
                (5, 2, true),
                (6, 2, true),
                (6, 3, true),
                (6, 4, true),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_bfs_ply() {
        let g = graph();
        let frontier = Vector::from_pairs(7, [(3usize, true)]).unwrap();
        let mut next = Vector::<bool>::new(7);
        mxv(
            &mut next,
            &NoMask,
            NoAccumulate,
            &LogicalSemiring::new(),
            transpose(&g),
            &frontier,
            REPLACE,
        )
        .unwrap();
        // Vertex 3 (paper's "4") reaches 0 and 2 (paper's "1" and "3").
        assert_eq!(next.extract_indices(), vec![0, 2]);
    }

    #[test]
    fn gather_and_scatter_agree() {
        let m = Matrix::from_triples(
            4,
            4,
            [
                (0usize, 1usize, 2i64),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 3, 6),
            ],
        )
        .unwrap();
        let u = Vector::from_pairs(4, [(0usize, 1i64), (2, 2), (3, 3)]).unwrap();

        // A·u via gather vs via scatter on the materialized transpose.
        let mut w1 = Vector::<i64>::new(4);
        mxv(
            &mut w1,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE,
        )
        .unwrap();
        let mt = m.transpose_owned();
        let mut w2 = Vector::<i64>::new(4);
        mxv(
            &mut w2,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            transpose(&mt),
            &u,
            MERGE,
        )
        .unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn vxm_is_transposed_mxv() {
        let m = Matrix::from_triples(3, 3, [(0usize, 1usize, 2.0f64), (2, 1, 3.0)]).unwrap();
        let u = Vector::from_pairs(3, [(0usize, 1.0f64), (2, 10.0)]).unwrap();
        let mut w1 = Vector::<f64>::new(3);
        vxm(
            &mut w1,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &u,
            &m,
            MERGE,
        )
        .unwrap();
        // u·A: w_1 = 1*2 + 10*3 = 32.
        assert_eq!(w1.get(1), Some(32.0));
        assert_eq!(w1.nvals(), 1);
    }

    #[test]
    fn min_plus_relaxation_with_min_accum() {
        // One SSSP step: path ⟨min⟩= Aᵀ ⊕.⊗ path over MinPlus (Fig. 4).
        let inf = f64::INFINITY;
        let g = Matrix::from_triples(3, 3, [(0usize, 1usize, 2.0f64), (1, 2, 3.0), (0, 2, 10.0)])
            .unwrap();
        let mut path = Vector::from_pairs(3, [(0usize, 0.0f64)]).unwrap();
        for _ in 0..3 {
            let snapshot = path.clone();
            mxv(
                &mut path,
                &NoMask,
                Accumulate(Min::<f64>::new()),
                &MinPlusSemiring::new(),
                transpose(&g),
                &snapshot,
                MERGE,
            )
            .unwrap();
        }
        assert_eq!(path.get(0), Some(0.0));
        assert_eq!(path.get(1), Some(2.0));
        assert_eq!(path.get(2), Some(5.0)); // via vertex 1, not the 10.0 edge
        assert_ne!(path.get(2), Some(inf));
    }

    #[test]
    fn masked_complement_replace_bfs_step() {
        // frontier⟨¬levels, replace⟩ = graphᵀ ⊕.⊗ frontier (Fig. 2).
        let g = graph().cast::<u64>();
        let levels = Vector::from_pairs(7, [(3usize, 1u64)]).unwrap();
        let frontier = Vector::from_pairs(7, [(3usize, 1u64)]).unwrap();
        let mut next = frontier.clone();
        let snapshot = frontier.clone();
        mxv(
            &mut next,
            &complement(&levels),
            NoAccumulate,
            &LogicalSemiring::new(),
            transpose(&g),
            &snapshot,
            REPLACE,
        )
        .unwrap();
        // 3 → {0, 2}; neither is in levels, both kept; old frontier
        // entry at 3 cleared by replace.
        assert_eq!(next.extract_indices(), vec![0, 2]);
    }

    #[test]
    fn dimension_errors() {
        let m = Matrix::<i32>::new(3, 4);
        let u = Vector::<i32>::new(3); // wrong: needs 4
        let mut w = Vector::<i32>::new(3);
        assert!(mxv(
            &mut w,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE
        )
        .is_err());
        let u_ok = Vector::<i32>::new(4);
        let mut w_bad = Vector::<i32>::new(2);
        assert!(mxv(
            &mut w_bad,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u_ok,
            MERGE
        )
        .is_err());
    }

    #[test]
    fn empty_input_gives_empty_result() {
        let m = Matrix::<f32>::new(5, 5);
        let u = Vector::from_pairs(5, [(0usize, 1.0f32)]).unwrap();
        let mut w = Vector::<f32>::new(5);
        mxv(
            &mut w,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &m,
            &u,
            MERGE,
        )
        .unwrap();
        assert_eq!(w.nvals(), 0);
    }
}
