//! The GraphBLAS operation set (Table I of the paper).
//!
//! Every function follows the GBTL calling convention: output first,
//! then mask, accumulator, operator, inputs, and the replace flag:
//!
//! ```text
//! GB::mxv(frontier, GB::complement(levels), GB::NoAccumulate(),
//!         GB::LogicalSemiring<T>(), GB::transpose(graph), frontier, true);
//! ```
//!
//! becomes
//!
//! ```text
//! operations::mxv(&mut frontier_out, &complement(&levels), NoAccumulate,
//!                 &LogicalSemiring::new(), transpose(&graph), &frontier,
//!                 Replace(true))
//! ```
//!
//! (Rust's aliasing rules require the output to be a distinct binding
//! when it also appears as an input; GBTL copies internally in that
//! case, and so do callers here.)
//!
//! All operations compute the intermediate `T` and defer to
//! [`crate::write`] for the specification's mask/accumulate/replace
//! output step.

mod apply;
mod assign;
mod ewise;
mod extract;
mod mxm;
mod mxv;
mod reduce;
mod transpose_op;

pub use apply::{apply_matrix, apply_vector};
pub use assign::{assign_matrix, assign_matrix_constant, assign_vector, assign_vector_constant};
pub use ewise::{e_wise_add_matrix, e_wise_add_vector, e_wise_mult_matrix, e_wise_mult_vector};
pub use extract::{extract_matrix, extract_vector};
pub use mxm::{mxm, mxm_masked_dot, MxmKernel};
pub use mxv::{
    mxv, push_pull_density, reset_push_pull_density, set_push_pull_density, vxm, SpmvKernel,
    PUSH_PULL_DENSITY,
};
pub use reduce::{reduce_matrix_scalar, reduce_matrix_to_vector, reduce_vector_scalar};
pub use transpose_op::transpose_into;
