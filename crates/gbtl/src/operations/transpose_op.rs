//! The `transpose` *operation* — Table I's `C[M, z] = A.T`.
//!
//! Distinct from the [`crate::views::transpose`] argument view: this
//! writes `Aᵀ` into an output container under the full
//! mask/accumulate/replace semantics.

use crate::error::{GblasError, Result};
use crate::mask::{check_matrix_mask, MatrixMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::scalar::Scalar;
use crate::views::{MatrixArg, Replace};
use crate::write::write_matrix;

/// `C⟨M, z⟩ = C ⊙ Aᵀ`.
pub fn transpose_into<'a, T, Mk, A>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    a: impl Into<MatrixArg<'a, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
{
    let a = a.into().flip(); // C = Aᵀ ⇔ materialize the flipped view
    if c.shape() != (a.nrows(), a.ncols()) {
        return Err(GblasError::dim(format!(
            "transpose: C is {:?}, Aᵀ is ({}, {})",
            c.shape(),
            a.nrows(),
            a.ncols()
        )));
    }
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let t = a.materialize().into_owned();
    write_matrix(c, mask, &accum, t, replace);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::views::{transpose, MERGE};

    #[test]
    fn plain_transpose() {
        let a = Matrix::from_triples(2, 3, [(0usize, 2usize, 7i32), (1, 0, 3)]).unwrap();
        let mut c = Matrix::<i32>::new(3, 2);
        transpose_into(&mut c, &NoMask, NoAccumulate, &a, MERGE).unwrap();
        assert_eq!(c.get(2, 0), Some(7));
        assert_eq!(c.get(0, 1), Some(3));
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn transpose_of_transposed_view_is_identity_copy() {
        let a = Matrix::from_triples(2, 2, [(0usize, 1usize, 5i32)]).unwrap();
        let mut c = Matrix::<i32>::new(2, 2);
        transpose_into(&mut c, &NoMask, NoAccumulate, transpose(&a), MERGE).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn accumulated_transpose() {
        let a = Matrix::from_triples(2, 2, [(0usize, 1usize, 5i32)]).unwrap();
        let mut c = Matrix::from_triples(2, 2, [(1usize, 0usize, 1i32)]).unwrap();
        transpose_into(&mut c, &NoMask, Accumulate(Plus::<i32>::new()), &a, MERGE).unwrap();
        assert_eq!(c.get(1, 0), Some(6)); // 1 + 5
    }

    #[test]
    fn shape_mismatch() {
        let a = Matrix::<i32>::new(2, 3);
        let mut c = Matrix::<i32>::new(2, 3); // should be 3x2
        assert!(transpose_into(&mut c, &NoMask, NoAccumulate, &a, MERGE).is_err());
    }
}
