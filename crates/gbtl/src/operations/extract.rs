//! `extract`: pull a sub-container out — Table I's `C[M, z] = A[i, j]`
//! and `w[m, z] = u[i]`.
//!
//! Unlike `assign`, extract's index lists *may* contain duplicates
//! (selecting the same source row/column twice), so the inverse mapping
//! is one-to-many.

use crate::error::{GblasError, Result};
use crate::index::{IndexType, Indices};
use crate::mask::{check_matrix_mask, check_vector_mask, MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::write::{write_matrix, write_vector};

/// `w⟨m, z⟩ = w ⊙ u(ix)` — extract selected positions of `u`.
pub fn extract_vector<T, Mk, A>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    u: &Vector<T>,
    ix: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    ix.validate(u.size())?;
    check_vector_mask(mask, w.size())?;
    let out_len = ix.len(u.size());
    if w.size() != out_len {
        return Err(GblasError::dim(format!(
            "extract: w has size {}, selection has {}",
            w.size(),
            out_len
        )));
    }
    let mut entries: Vec<(IndexType, T)> = Vec::new();
    for (k, src) in ix.iter(u.size()) {
        if let Some(v) = u.get(src) {
            entries.push((k, v));
        }
    }
    entries.sort_unstable_by_key(|&(k, _)| k);
    let (indices, values): (Vec<_>, Vec<_>) = entries.into_iter().unzip();
    let t = Vector::from_sorted_entries(out_len, indices, values);
    write_vector(w, mask, &accum, t, replace);
    Ok(())
}

/// `C⟨M, z⟩ = C ⊙ A(rows, cols)` — extract a sub-matrix.
pub fn extract_matrix<'a, T, Mk, A>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    a: impl Into<MatrixArg<'a, T>>,
    rows: &Indices,
    cols: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
{
    let a = a.into();
    rows.validate(a.nrows())?;
    cols.validate(a.ncols())?;
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let (rn, cn) = (rows.len(a.nrows()), cols.len(a.ncols()));
    if c.shape() != (rn, cn) {
        return Err(GblasError::dim(format!(
            "extract: C is {:?}, selection is ({rn}, {cn})",
            c.shape()
        )));
    }
    let am = a.materialize();

    // Source column -> list of output positions (duplicates allowed).
    let mut col_map: Vec<Vec<IndexType>> = vec![Vec::new(); am.ncols()];
    for (k, src) in cols.iter(am.ncols()) {
        col_map[src].push(k);
    }

    let mut t_rows: Vec<Vec<(IndexType, T)>> = Vec::with_capacity(rn);
    for (_, src_row) in rows.iter(am.nrows()) {
        let (a_cols, a_vals) = am.row(src_row);
        let mut row: Vec<(IndexType, T)> = Vec::new();
        for (&j, &v) in a_cols.iter().zip(a_vals) {
            for &out_j in &col_map[j] {
                row.push((out_j, v));
            }
        }
        row.sort_unstable_by_key(|&(j, _)| j);
        t_rows.push(row);
    }
    let t = Matrix::from_rows(rn, cn, t_rows);
    write_matrix(c, mask, &accum, t, replace);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::NoAccumulate;
    use crate::views::{transpose, MERGE};

    #[test]
    fn extract_vector_slice() {
        let u = Vector::from_pairs(6, [(1usize, 10i32), (3, 30), (5, 50)]).unwrap();
        let mut w = Vector::<i32>::new(3);
        extract_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::Range(1, 4),
            MERGE,
        )
        .unwrap();
        // positions 1..4 → output 0..3
        assert_eq!(w.get(0), Some(10));
        assert_eq!(w.get(1), None);
        assert_eq!(w.get(2), Some(30));
    }

    #[test]
    fn extract_vector_with_duplicates_and_permutation() {
        let u = Vector::from_pairs(4, [(0usize, 5i32), (2, 7)]).unwrap();
        let mut w = Vector::<i32>::new(4);
        extract_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::List(vec![2, 0, 2, 1]),
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0), Some(7));
        assert_eq!(w.get(1), Some(5));
        assert_eq!(w.get(2), Some(7));
        assert_eq!(w.get(3), None);
    }

    #[test]
    fn extract_submatrix() {
        let a = Matrix::from_dense(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]).unwrap();
        let mut c = Matrix::<i32>::new(2, 2);
        extract_matrix(
            &mut c,
            &NoMask,
            NoAccumulate,
            &a,
            &Indices::Range(1, 3),
            &Indices::Range(0, 2),
            MERGE,
        )
        .unwrap();
        assert_eq!(c.to_dense(0), vec![vec![4, 5], vec![7, 8]]);
    }

    #[test]
    fn extract_transposed() {
        let a = Matrix::from_triples(2, 3, [(0usize, 2usize, 9i32)]).unwrap();
        let mut c = Matrix::<i32>::new(3, 2);
        extract_matrix(
            &mut c,
            &NoMask,
            NoAccumulate,
            transpose(&a),
            &Indices::All,
            &Indices::All,
            MERGE,
        )
        .unwrap();
        assert_eq!(c.get(2, 0), Some(9));
    }

    #[test]
    fn extract_duplicate_columns() {
        let a = Matrix::from_triples(1, 2, [(0usize, 1usize, 4i32)]).unwrap();
        let mut c = Matrix::<i32>::new(1, 3);
        extract_matrix(
            &mut c,
            &NoMask,
            NoAccumulate,
            &a,
            &Indices::All,
            &Indices::List(vec![1, 1, 0]),
            MERGE,
        )
        .unwrap();
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(0, 1), Some(4));
        assert_eq!(c.get(0, 2), None);
    }

    #[test]
    fn wrong_output_shape() {
        let u = Vector::<i32>::new(5);
        let mut w = Vector::<i32>::new(5);
        assert!(extract_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::Range(0, 3),
            MERGE
        )
        .is_err());
    }

    #[test]
    fn out_of_bounds_selection() {
        let u = Vector::<i32>::new(3);
        let mut w = Vector::<i32>::new(1);
        assert!(extract_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::List(vec![3]),
            MERGE
        )
        .is_err());
    }
}
