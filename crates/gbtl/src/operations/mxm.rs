//! Matrix-matrix multiply over a semiring: `C⟨M, z⟩ = C ⊙ (A ⊕.⊗ B)`.
//!
//! The general kernel is Gustavson's row-wise SpGEMM with a sparse
//! accumulator, parallelized over output rows. Transposed operands are
//! materialized first (a counting sort), matching GBTL's handling of
//! `TransposeView` operands.
//!
//! When the mask is structural ([`crate::mask::MaskProbe`]), the mask
//! is pushed *into* the multiply instead of post-filtering a full
//! product:
//!
//! * mask sparse and `Bᵀ` rows available → the dot-product formulation
//!   ([`MxmKernel::MaskedDot`]) computes *only* the allowed entries,
//!   turning an `O(flops(A·B))` multiply into
//!   `O(Σ_{(i,j)∈M} min(nnz(Aᵢ), nnz(Bⱼ)))` merge-joins — the triangle
//!   counting shape `B⟨L⟩ = L ⊕.⊗ Lᵀ`;
//! * otherwise → masked Gustavson ([`MxmKernel::MaskedGustavson`]):
//!   the row's allowed (or forbidden) set is stamped into a bitmap and
//!   the inner scatter loop skips disallowed columns, so the sparse
//!   accumulator never holds entries the write step would discard.
//!
//! Confining the computed product `T` to the mask is always legal: the
//! write step (`C⟨M, z⟩ = C ⊙ T`) never reads `T` outside the mask, and
//! accumulated `C`-only entries survive through the union merge.

// Kernel hot path: a panic here takes down a serve worker, so
// `unwrap`/`expect` are forbidden (see clippy.toml; the test module
// below is exempt).
#![warn(clippy::disallowed_methods)]

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::mask::{check_matrix_mask, MaskProbe, MatrixMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::ops::Semiring;
use crate::parallel::row_map;
use crate::scalar::Scalar;
use crate::views::{MatrixArg, Replace};
use crate::workspace::{Spa, Stamp};
use crate::write::write_matrix;

/// Which SpGEMM kernel [`mxm`] selected, reported back to the caller so
/// dispatch layers can count selections.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MxmKernel {
    /// Unmasked row-wise Gustavson (mask absent or opaque; an opaque
    /// mask is applied by post-filtering in the write step).
    Gustavson,
    /// Row-wise Gustavson with the structural mask (or its complement)
    /// stamped into the inner scatter loop.
    MaskedGustavson,
    /// Mask-guided dot products: only positions stored truthy in the
    /// mask are computed, via merge-joins of `A` rows with `Bᵀ` rows.
    MaskedDot,
}

/// `C⟨M, z⟩ = C ⊙ (A ⊕.⊗ B)` — GraphBLAS `mxm`.
///
/// Returns which kernel was selected (see [`MxmKernel`]); callers that
/// don't care can discard it.
pub fn mxm<'a, 'b, T, Mk, A, S>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    semiring: &S,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Result<MxmKernel>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    S: Semiring<T>,
{
    let a = a.into();
    let b = b.into();
    if a.ncols() != b.nrows() {
        return Err(GblasError::dim(format!(
            "mxm: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    if c.nrows() != a.nrows() || c.ncols() != b.ncols() {
        return Err(GblasError::dim(format!(
            "mxm: C is {}x{}, expected {}x{}",
            c.nrows(),
            c.ncols(),
            a.nrows(),
            b.ncols()
        )));
    }
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let timer = crate::hooks::KernelTimer::start();

    // The family hint is taken unconditionally so a stale one never
    // leaks into a later operation; it only has effect when both masked
    // families are legal — structural mask with `Bᵀ` rows available
    // (see `crate::hints`).
    let family_hint = crate::hints::take_mxm_family_hint();
    let probe = mask.probe();
    let kernel = match probe {
        MaskProbe::All => MxmKernel::Gustavson,
        MaskProbe::Structural if b.transposed_rows().is_some() => match family_hint {
            Some(crate::hints::MxmFamily::MaskedGustavson) => MxmKernel::MaskedGustavson,
            _ => MxmKernel::MaskedDot,
        },
        MaskProbe::Structural | MaskProbe::StructuralComplement => MxmKernel::MaskedGustavson,
        MaskProbe::Opaque => MxmKernel::Gustavson,
    };

    let am = a.materialize();
    let t = match kernel {
        MxmKernel::MaskedDot => {
            let Some(bt) = b.transposed_rows() else {
                unreachable!("masked-dot selected only when Bᵀ rows are available")
            };
            spgemm_masked_dot(semiring, mask, &am, bt)
        }
        MxmKernel::MaskedGustavson => {
            let bm = b.materialize();
            spgemm_masked(semiring, mask, probe == MaskProbe::Structural, &am, &bm)
        }
        MxmKernel::Gustavson => {
            let bm = b.materialize();
            spgemm(semiring, &am, &bm)
        }
    };
    write_matrix(c, mask, &accum, t, replace);
    timer.finish(match kernel {
        MxmKernel::Gustavson => "mxm/gustavson",
        MxmKernel::MaskedGustavson => "mxm/masked_gustavson",
        MxmKernel::MaskedDot => "mxm/masked_dot",
    });
    Ok(kernel)
}

/// Gustavson row-wise SpGEMM: `T = A ⊕.⊗ B` with both operands in
/// logical (row-major) orientation.
fn spgemm<T: Scalar, S: Semiring<T>>(semiring: &S, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let nrows = a.nrows();
    let ncols = b.ncols();
    let sr = *semiring;
    let rows = row_map(
        nrows,
        || Spa::<T>::new(ncols),
        move |spa, i| {
            let (a_cols, a_vals) = a.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    spa.scatter(j, sr.mult(av, bv), |x, y| sr.add(x, y));
                }
            }
            spa.drain_sorted()
        },
    );
    Matrix::from_rows(nrows, ncols, rows)
}

/// Mask-guided dot-product SpGEMM: `T(i, j) = Aᵢ · (Bᵀ)ⱼ` computed only
/// at positions the structural mask stores truthy. Rows come back
/// sorted because [`MatrixMask::truthy_cols_in_row`] enumerates columns
/// ascending.
fn spgemm_masked_dot<T, Mk, S>(semiring: &S, mask: &Mk, a: &Matrix<T>, bt: &Matrix<T>) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    S: Semiring<T>,
{
    let nrows = a.nrows();
    let ncols = bt.nrows();
    let sr = *semiring;
    let rows = row_map(nrows, Vec::<IndexType>::new, move |scratch, i| {
        scratch.clear();
        mask.truthy_cols_in_row(i, scratch);
        let mut row: Vec<(IndexType, T)> = Vec::with_capacity(scratch.len());
        for &j in scratch.iter() {
            if let Some(dot) = sparse_dot(&sr, a.row(i), bt.row(j)) {
                row.push((j, dot));
            }
        }
        row
    });
    Matrix::from_rows(nrows, ncols, rows)
}

/// Row-wise Gustavson SpGEMM with the mask stamped into the scatter
/// loop. `keep_truthy` selects plain (`true`: only stamped columns may
/// scatter) vs complement (`false`: stamped columns are skipped)
/// semantics. Rows whose plain mask is empty are skipped outright.
fn spgemm_masked<T, Mk, S>(
    semiring: &S,
    mask: &Mk,
    keep_truthy: bool,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    S: Semiring<T>,
{
    let nrows = a.nrows();
    let ncols = b.ncols();
    let sr = *semiring;
    let rows = row_map(
        nrows,
        || (Spa::<T>::new(ncols), Stamp::new(ncols), Vec::new()),
        move |(spa, stamp, scratch): &mut (_, Stamp, Vec<IndexType>), i| {
            scratch.clear();
            mask.truthy_cols_in_row(i, scratch);
            if keep_truthy && scratch.is_empty() {
                return Vec::new();
            }
            for &j in scratch.iter() {
                stamp.set(j);
            }
            let (a_cols, a_vals) = a.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    if stamp.contains(j) == keep_truthy {
                        spa.scatter(j, sr.mult(av, bv), |x, y| sr.add(x, y));
                    }
                }
            }
            stamp.clear();
            spa.drain_sorted()
        },
    );
    Matrix::from_rows(nrows, ncols, rows)
}

/// Mask-guided `C⟨M, z⟩ = C ⊙ (A ⊕.⊗ Bᵀ)` computing only entries whose
/// position is stored (and truthy) in the mask *pattern* matrix.
///
/// `B` is taken in *transposed* orientation implicitly — the dot-product
/// form needs rows of `Bᵀ`, i.e. rows of the `b` argument as passed.
/// This matches the triangle-counting call shape `L ⊕.⊗ Lᵀ` where both
/// operands are the same stored matrix. (General `mxm` now selects this
/// kernel automatically when the mask is structural and `Bᵀ` rows are
/// on hand; this entry point remains for callers that have `Bᵀ` but no
/// [`MatrixArg`] wrapping it.)
pub fn mxm_masked_dot<T, P, A, S>(
    c: &mut Matrix<T>,
    mask_pattern: &Matrix<P>,
    accum: A,
    semiring: &S,
    a: &Matrix<T>,
    b_transposed: &Matrix<T>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    P: Scalar,
    A: Accum<T>,
    S: Semiring<T>,
{
    if a.ncols() != b_transposed.ncols() {
        return Err(GblasError::dim(format!(
            "mxm_masked_dot: A has {} cols, Bᵀ rows have length {}",
            a.ncols(),
            b_transposed.ncols()
        )));
    }
    if c.nrows() != a.nrows() || c.ncols() != b_transposed.nrows() {
        return Err(GblasError::dim(format!(
            "mxm_masked_dot: C is {}x{}, expected {}x{}",
            c.nrows(),
            c.ncols(),
            a.nrows(),
            b_transposed.nrows()
        )));
    }
    check_matrix_mask(mask_pattern, c.nrows(), c.ncols())?;

    let t = spgemm_masked_dot(semiring, mask_pattern, a, b_transposed);
    // The computed T is already confined to the mask pattern; the write
    // step re-applies the mask for replace/merge correctness.
    write_matrix(c, mask_pattern, &accum, t, replace);
    Ok(())
}

/// Merge-join dot product of two sorted sparse rows under a semiring.
/// `None` when no index collides (no entry produced).
fn sparse_dot<T: Scalar, S: Semiring<T>>(
    semiring: &S,
    (a_cols, a_vals): (&[IndexType], &[T]),
    (b_cols, b_vals): (&[IndexType], &[T]),
) -> Option<T> {
    let (mut p, mut q) = (0, 0);
    let mut acc: Option<T> = None;
    while p < a_cols.len() && q < b_cols.len() {
        match a_cols[p].cmp(&b_cols[q]) {
            std::cmp::Ordering::Equal => {
                let prod = semiring.mult(a_vals[p], b_vals[q]);
                acc = Some(match acc {
                    Some(s) => semiring.add(s, prod),
                    None => prod,
                });
                p += 1;
                q += 1;
            }
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
        }
    }
    acc
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::ops::semiring::{ArithmeticSemiring, MinPlusSemiring};
    use crate::views::{transpose, MERGE, REPLACE};

    fn dense(m: &[[i32; 3]; 3]) -> Matrix<i32> {
        let rows: Vec<Vec<i32>> = m.iter().map(|r| r.to_vec()).collect();
        // Keep only nonzeros so sparsity is exercised.
        let triples = rows.iter().enumerate().flat_map(|(i, r)| {
            r.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(move |(j, &v)| (i, j, v))
        });
        Matrix::from_triples(3, 3, triples).unwrap()
    }

    fn reference_mm(a: &[[i32; 3]; 3], b: &[[i32; 3]; 3]) -> [[i32; 3]; 3] {
        let mut c = [[0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    #[test]
    fn arithmetic_mxm_matches_dense_reference() {
        let ad = [[1, 0, 2], [0, 3, 0], [4, 0, 5]];
        let bd = [[0, 1, 0], [2, 0, 0], [0, 0, 3]];
        let (a, b) = (dense(&ad), dense(&bd));
        let mut c = Matrix::<i32>::new(3, 3);
        mxm(
            &mut c,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &a,
            &b,
            MERGE,
        )
        .unwrap();
        let expect = reference_mm(&ad, &bd);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j).unwrap_or(0), expect[i][j], "({i},{j})");
            }
        }
        assert!(c.is_valid());
    }

    #[test]
    fn transposed_operands() {
        let ad = [[1, 0, 2], [0, 3, 0], [4, 0, 5]];
        let bd = [[0, 1, 0], [2, 0, 0], [0, 0, 3]];
        let (a, b) = (dense(&ad), dense(&bd));
        // C = Aᵀ · B computed two ways.
        let at = a.transpose_owned();
        let mut c1 = Matrix::<i32>::new(3, 3);
        mxm(
            &mut c1,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &at,
            &b,
            MERGE,
        )
        .unwrap();
        let mut c2 = Matrix::<i32>::new(3, 3);
        mxm(
            &mut c2,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            transpose(&a),
            &b,
            MERGE,
        )
        .unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::<i32>::new(2, 3);
        let b = Matrix::<i32>::new(4, 2);
        let mut c = Matrix::<i32>::new(2, 2);
        let err = mxm(
            &mut c,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &a,
            &b,
            MERGE,
        );
        assert!(matches!(err, Err(GblasError::DimensionMismatch { .. })));

        let b_ok = Matrix::<i32>::new(3, 5);
        let err2 = mxm(
            &mut c,
            &NoMask,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &a,
            &b_ok,
            MERGE,
        );
        assert!(err2.is_err()); // C shape wrong
    }

    #[test]
    fn min_plus_mxm() {
        // Shortest two-hop paths.
        let inf = i32::MAX;
        let a = Matrix::from_triples(2, 2, [(0usize, 1usize, 3i32), (1, 0, 4)]).unwrap();
        let mut c = Matrix::<i32>::new(2, 2);
        mxm(
            &mut c,
            &NoMask,
            NoAccumulate,
            &MinPlusSemiring::new(),
            &a,
            &a,
            MERGE,
        )
        .unwrap();
        assert_eq!(c.get(0, 0), Some(7)); // 3 + 4
        assert_eq!(c.get(1, 1), Some(7));
        assert_eq!(c.get(0, 1), None); // no 2-hop path
        assert_ne!(c.get(0, 0), Some(inf));
    }

    #[test]
    fn accumulate_into_existing() {
        let a = dense(&[[1, 0, 0], [0, 1, 0], [0, 0, 1]]); // identity
        let b = dense(&[[5, 0, 0], [0, 5, 0], [0, 0, 5]]);
        let mut c = Matrix::from_triples(3, 3, [(0usize, 0usize, 100i32)]).unwrap();
        mxm(
            &mut c,
            &NoMask,
            Accumulate(Plus::<i32>::new()),
            &ArithmeticSemiring::new(),
            &a,
            &b,
            MERGE,
        )
        .unwrap();
        assert_eq!(c.get(0, 0), Some(105));
        assert_eq!(c.get(1, 1), Some(5));
    }

    #[test]
    fn masked_dot_matches_general_masked() {
        // Triangle-count shape: B⟨L⟩ = L · Lᵀ.
        let l = Matrix::from_triples(
            4,
            4,
            [
                (1usize, 0usize, 1i32),
                (2, 0, 1),
                (2, 1, 1),
                (3, 1, 1),
                (3, 2, 1),
            ],
        )
        .unwrap();
        let lt = l.transpose_owned();

        let mut general = Matrix::<i32>::new(4, 4);
        mxm(
            &mut general,
            &l,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &l,
            transpose(&l),
            REPLACE,
        )
        .unwrap();

        let mut dot = Matrix::<i32>::new(4, 4);
        // b_transposed is the matrix whose *rows* are rows of Bᵀ = (Lᵀ)ᵀ = L.
        mxm_masked_dot(
            &mut dot,
            &l,
            NoAccumulate,
            &ArithmeticSemiring::new(),
            &l,
            &lt.transpose_owned(),
            REPLACE,
        )
        .unwrap();
        assert_eq!(general, dot);
    }

    #[test]
    fn kernel_selection() {
        let ad = [[1, 0, 2], [0, 3, 0], [4, 0, 5]];
        let bd = [[0, 1, 0], [2, 0, 0], [0, 0, 3]];
        let (a, b) = (dense(&ad), dense(&bd));
        let bt = b.transpose_owned();
        let m = Matrix::from_triples(3, 3, [(0usize, 1usize, true), (2, 2, true)]).unwrap();
        let sr = ArithmeticSemiring::new();

        let mut c = Matrix::<i32>::new(3, 3);
        let k = mxm(&mut c, &NoMask, NoAccumulate, &sr, &a, &b, MERGE).unwrap();
        assert_eq!(k, MxmKernel::Gustavson);

        // Structural mask + plain B → masked Gustavson.
        let mut c1 = Matrix::<i32>::new(3, 3);
        let k1 = mxm(&mut c1, &m, NoAccumulate, &sr, &a, &b, REPLACE).unwrap();
        assert_eq!(k1, MxmKernel::MaskedGustavson);

        // Structural mask + Bᵀ rows on hand → masked dot.
        let mut c2 = Matrix::<i32>::new(3, 3);
        let k2 = mxm(&mut c2, &m, NoAccumulate, &sr, &a, transpose(&bt), REPLACE).unwrap();
        assert_eq!(k2, MxmKernel::MaskedDot);
        assert_eq!(c1, c2);

        // Complemented structural mask → masked Gustavson (complement).
        let mut c3 = Matrix::<i32>::new(3, 3);
        let k3 = mxm(
            &mut c3,
            &crate::views::complement(&m),
            NoAccumulate,
            &sr,
            &a,
            &b,
            REPLACE,
        )
        .unwrap();
        assert_eq!(k3, MxmKernel::MaskedGustavson);

        // All masked variants agree with post-filtering the full product.
        let mut full = Matrix::<i32>::new(3, 3);
        mxm(&mut full, &NoMask, NoAccumulate, &sr, &a, &b, MERGE).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if MatrixMask::allows(&m, i, j) {
                    full.get(i, j)
                } else {
                    None
                };
                assert_eq!(c1.get(i, j), want, "masked ({i},{j})");
                let want_comp = if MatrixMask::allows(&m, i, j) {
                    None
                } else {
                    full.get(i, j)
                };
                assert_eq!(c3.get(i, j), want_comp, "complement ({i},{j})");
            }
        }
    }

    #[test]
    fn sparse_dot_none_when_disjoint() {
        let s = ArithmeticSemiring::<i32>::new();
        assert_eq!(sparse_dot(&s, (&[0, 2], &[1, 1]), (&[1, 3], &[1, 1])), None);
        assert_eq!(sparse_dot(&s, (&[0, 2], &[2, 3]), (&[2], &[4])), Some(12));
    }
}
