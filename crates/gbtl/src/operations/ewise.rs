//! Element-wise operations: `eWiseAdd` (pattern **union**) and
//! `eWiseMult` (pattern **intersection**) for vectors and matrices —
//! PyGB's `A + B` and `A * B` (Table I).
//!
//! Naming follows the GraphBLAS spec: "add" and "mult" describe the
//! *pattern* of the result, not the operator — either can run any
//! binary op.

use crate::error::{GblasError, Result};
use crate::index::IndexType;
use crate::mask::{check_matrix_mask, check_vector_mask, MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::ops::BinaryOp;
use crate::parallel::row_map;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::{MatrixArg, Replace};
use crate::write::{write_matrix, write_vector};

/// `w⟨m, z⟩ = w ⊙ (u ⊕ v)` — union element-wise op on vectors.
pub fn e_wise_add_vector<T, Mk, A, Op>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    check_vector_dims(w, u, v, "eWiseAdd")?;
    check_vector_mask(mask, w.size())?;
    let timer = crate::hooks::KernelTimer::start();
    let t = union_vectors(op, u, v);
    write_vector(w, mask, &accum, t, replace);
    timer.finish("ewise_add/vector");
    Ok(())
}

/// `w⟨m, z⟩ = w ⊙ (u ⊗ v)` — intersection element-wise op on vectors.
pub fn e_wise_mult_vector<T, Mk, A, Op>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    check_vector_dims(w, u, v, "eWiseMult")?;
    check_vector_mask(mask, w.size())?;
    let timer = crate::hooks::KernelTimer::start();
    let t = intersect_vectors(op, u, v);
    write_vector(w, mask, &accum, t, replace);
    timer.finish("ewise_mult/vector");
    Ok(())
}

fn check_vector_dims<T: Scalar>(
    w: &Vector<T>,
    u: &Vector<T>,
    v: &Vector<T>,
    what: &str,
) -> Result<()> {
    if u.size() != v.size() || w.size() != u.size() {
        return Err(GblasError::dim(format!(
            "{what}: w={}, u={}, v={}",
            w.size(),
            u.size(),
            v.size()
        )));
    }
    Ok(())
}

fn union_vectors<T: Scalar, Op: BinaryOp<T>>(op: Op, u: &Vector<T>, v: &Vector<T>) -> Vector<T> {
    let mut indices = Vec::with_capacity(u.nvals() + v.nvals());
    let mut values = Vec::with_capacity(u.nvals() + v.nvals());
    let mut ui = u.iter().peekable();
    let mut vi = v.iter().peekable();
    loop {
        match (ui.peek().copied(), vi.peek().copied()) {
            (Some((i, uv)), Some((j, vv))) => {
                if i == j {
                    indices.push(i);
                    values.push(op.apply(uv, vv));
                    ui.next();
                    vi.next();
                } else if i < j {
                    indices.push(i);
                    values.push(uv);
                    ui.next();
                } else {
                    indices.push(j);
                    values.push(vv);
                    vi.next();
                }
            }
            (Some((i, uv)), None) => {
                indices.push(i);
                values.push(uv);
                ui.next();
            }
            (None, Some((j, vv))) => {
                indices.push(j);
                values.push(vv);
                vi.next();
            }
            (None, None) => break,
        }
    }
    Vector::from_sorted_entries(u.size(), indices, values)
}

fn intersect_vectors<T: Scalar, Op: BinaryOp<T>>(
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
) -> Vector<T> {
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let (ui, uvals) = (u.indices(), u.values());
    let (vi, vvals) = (v.indices(), v.values());
    let (mut p, mut q) = (0, 0);
    while p < ui.len() && q < vi.len() {
        match ui[p].cmp(&vi[q]) {
            std::cmp::Ordering::Equal => {
                indices.push(ui[p]);
                values.push(op.apply(uvals[p], vvals[q]));
                p += 1;
                q += 1;
            }
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
        }
    }
    Vector::from_sorted_entries(u.size(), indices, values)
}

/// `C⟨M, z⟩ = C ⊙ (A ⊕ B)` — union element-wise op on matrices.
pub fn e_wise_add_matrix<'a, 'b, T, Mk, A, Op>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    op: Op,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    ewise_matrix(c, mask, accum, op, a.into(), b.into(), replace, true)
}

/// `C⟨M, z⟩ = C ⊙ (A ⊗ B)` — intersection element-wise op on matrices.
pub fn e_wise_mult_matrix<'a, 'b, T, Mk, A, Op>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    op: Op,
    a: impl Into<MatrixArg<'a, T>>,
    b: impl Into<MatrixArg<'b, T>>,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    ewise_matrix(c, mask, accum, op, a.into(), b.into(), replace, false)
}

#[allow(clippy::too_many_arguments)]
fn ewise_matrix<T, Mk, A, Op>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    op: Op,
    a: MatrixArg<'_, T>,
    b: MatrixArg<'_, T>,
    replace: Replace,
    union: bool,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    Op: BinaryOp<T>,
{
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(GblasError::dim(format!(
            "eWise: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    if c.shape() != (a.nrows(), a.ncols()) {
        return Err(GblasError::dim(format!(
            "eWise: C is {:?}, expected ({}, {})",
            c.shape(),
            a.nrows(),
            a.ncols()
        )));
    }
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let timer = crate::hooks::KernelTimer::start();

    let am = a.materialize();
    let bm = b.materialize();
    let rows = row_map(
        am.nrows(),
        || (),
        |_, i| {
            let (ac, av) = am.row(i);
            let (bc, bv) = bm.row(i);
            merge_rows(op, ac, av, bc, bv, union)
        },
    );
    let t = Matrix::from_rows(am.nrows(), am.ncols(), rows);
    write_matrix(c, mask, &accum, t, replace);
    timer.finish(if union {
        "ewise_add/matrix"
    } else {
        "ewise_mult/matrix"
    });
    Ok(())
}

fn merge_rows<T: Scalar, Op: BinaryOp<T>>(
    op: Op,
    a_cols: &[IndexType],
    a_vals: &[T],
    b_cols: &[IndexType],
    b_vals: &[T],
    union: bool,
) -> Vec<(IndexType, T)> {
    let mut out = Vec::with_capacity(if union {
        a_cols.len() + b_cols.len()
    } else {
        a_cols.len().min(b_cols.len())
    });
    let (mut p, mut q) = (0, 0);
    while p < a_cols.len() && q < b_cols.len() {
        match a_cols[p].cmp(&b_cols[q]) {
            std::cmp::Ordering::Equal => {
                out.push((a_cols[p], op.apply(a_vals[p], b_vals[q])));
                p += 1;
                q += 1;
            }
            std::cmp::Ordering::Less => {
                if union {
                    out.push((a_cols[p], a_vals[p]));
                }
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                if union {
                    out.push((b_cols[q], b_vals[q]));
                }
                q += 1;
            }
        }
    }
    if union {
        out.extend(a_cols[p..].iter().copied().zip(a_vals[p..].iter().copied()));
        out.extend(b_cols[q..].iter().copied().zip(b_vals[q..].iter().copied()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::NoAccumulate;
    use crate::ops::binary::{Minus, Plus, Times};
    use crate::views::{transpose, MERGE};

    fn uvec(pairs: &[(usize, f64)]) -> Vector<f64> {
        Vector::from_pairs(5, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn add_is_union() {
        let u = uvec(&[(0, 1.0), (2, 2.0)]);
        let v = uvec(&[(2, 10.0), (4, 4.0)]);
        let mut w = Vector::<f64>::new(5);
        e_wise_add_vector(&mut w, &NoMask, NoAccumulate, Plus::new(), &u, &v, MERGE).unwrap();
        assert_eq!(w, uvec(&[(0, 1.0), (2, 12.0), (4, 4.0)]));
    }

    #[test]
    fn mult_is_intersection() {
        let u = uvec(&[(0, 1.0), (2, 2.0)]);
        let v = uvec(&[(2, 10.0), (4, 4.0)]);
        let mut w = Vector::<f64>::new(5);
        e_wise_mult_vector(&mut w, &NoMask, NoAccumulate, Times::new(), &u, &v, MERGE).unwrap();
        assert_eq!(w, uvec(&[(2, 20.0)]));
    }

    #[test]
    fn add_with_minus_op_is_pagerank_delta() {
        // Fig. 7 line 28: delta = page_rank − new_rank via eWiseAdd(Minus).
        let u = uvec(&[(0, 0.5), (1, 0.3)]);
        let v = uvec(&[(0, 0.4), (1, 0.35)]);
        let mut w = Vector::<f64>::new(5);
        e_wise_add_vector(&mut w, &NoMask, NoAccumulate, Minus::new(), &u, &v, MERGE).unwrap();
        assert!((w.get(0).unwrap() - 0.1).abs() < 1e-12);
        assert!((w.get(1).unwrap() + 0.05).abs() < 1e-12);
    }

    #[test]
    fn unmatched_entries_pass_through_minus_unnegated() {
        // Spec quirk: eWiseAdd copies unmatched entries unchanged, even
        // for non-commutative ops like Minus.
        let u = uvec(&[(0, 5.0)]);
        let v = uvec(&[(1, 7.0)]);
        let mut w = Vector::<f64>::new(5);
        e_wise_add_vector(&mut w, &NoMask, NoAccumulate, Minus::new(), &u, &v, MERGE).unwrap();
        assert_eq!(w.get(0), Some(5.0));
        assert_eq!(w.get(1), Some(7.0)); // not -7.0
    }

    #[test]
    fn matrix_union_and_intersection() {
        let a = Matrix::from_triples(2, 2, [(0usize, 0usize, 1i32), (0, 1, 2)]).unwrap();
        let b = Matrix::from_triples(2, 2, [(0usize, 1usize, 10i32), (1, 0, 20)]).unwrap();
        let mut add = Matrix::<i32>::new(2, 2);
        e_wise_add_matrix(&mut add, &NoMask, NoAccumulate, Plus::new(), &a, &b, MERGE).unwrap();
        assert_eq!(add.get(0, 0), Some(1));
        assert_eq!(add.get(0, 1), Some(12));
        assert_eq!(add.get(1, 0), Some(20));

        let mut mult = Matrix::<i32>::new(2, 2);
        e_wise_mult_matrix(
            &mut mult,
            &NoMask,
            NoAccumulate,
            Times::new(),
            &a,
            &b,
            MERGE,
        )
        .unwrap();
        assert_eq!(mult.nvals(), 1);
        assert_eq!(mult.get(0, 1), Some(20));
    }

    #[test]
    fn transposed_operand() {
        let a = Matrix::from_triples(2, 2, [(0usize, 1usize, 5i32)]).unwrap();
        let mut w = Matrix::<i32>::new(2, 2);
        // A + Aᵀ symmetrizes.
        e_wise_add_matrix(
            &mut w,
            &NoMask,
            NoAccumulate,
            Plus::new(),
            &a,
            transpose(&a),
            MERGE,
        )
        .unwrap();
        assert_eq!(w.get(0, 1), Some(5));
        assert_eq!(w.get(1, 0), Some(5));
    }

    #[test]
    fn dimension_mismatch() {
        let u = Vector::<i32>::new(3);
        let v = Vector::<i32>::new(4);
        let mut w = Vector::<i32>::new(3);
        assert!(
            e_wise_add_vector(&mut w, &NoMask, NoAccumulate, Plus::new(), &u, &v, MERGE).is_err()
        );
    }
}
