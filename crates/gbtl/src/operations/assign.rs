//! `assign`: write a container, or a constant, into a region of another
//! container — Table I's `C[M, z][i, j] = A`, `w[m, z][i] = u`, and the
//! constant forms (`levels[frontier][:] = depth` in Fig. 2b,
//! `page_rank[:] = 1.0/rows` in Fig. 7).
//!
//! `assign` differs from every other operation in one crucial way: its
//! intermediate result is only defined on the *assigned region*. Outside
//! the region, `Z = C` — existing entries survive even without an
//! accumulator. Inside the region:
//!
//! * no accumulator: the region's pattern is **replaced** by the input's
//!   (positions the input leaves empty are deleted);
//! * with accumulator: union-merge, as everywhere else.
//!
//! The mask and replace flag then apply over the whole output, via
//! [`crate::write::finalize_vector`] / [`crate::write::finalize_matrix`].

use crate::error::{GblasError, Result};
use crate::index::{IndexType, Indices};
use crate::mask::{check_matrix_mask, check_vector_mask, MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::accum::Accum;
use crate::scalar::Scalar;
use crate::vector::Vector;
use crate::views::Replace;
use crate::write::{finalize_matrix, finalize_vector};

/// `w⟨m, z⟩(i) = w(i) ⊙ u` — assign vector `u` into positions `ix` of `w`.
pub fn assign_vector<T, Mk, A>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    u: &Vector<T>,
    ix: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    ix.validate(w.size())?;
    check_vector_mask(mask, w.size())?;
    let region_len = ix.len(w.size());
    if u.size() != region_len {
        return Err(GblasError::dim(format!(
            "assign: u has size {}, index region has {}",
            u.size(),
            region_len
        )));
    }
    let region = build_vector_region(ix, w.size(), |k| u.get(k))?;
    let z = merge_region_vector(w, &region, &accum);
    finalize_vector(w, mask, z, replace);
    Ok(())
}

/// `w⟨m, z⟩(i) = w(i) ⊙ val` — assign a constant into positions `ix`.
/// This is the Fig. 2b `levels[frontier][:] = depth` and Fig. 7
/// `page_rank[:] = 1/rows` form.
pub fn assign_vector_constant<T, Mk, A>(
    w: &mut Vector<T>,
    mask: &Mk,
    accum: A,
    value: T,
    ix: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: VectorMask + ?Sized,
    A: Accum<T>,
{
    ix.validate(w.size())?;
    check_vector_mask(mask, w.size())?;
    let region = build_vector_region(ix, w.size(), |_| Some(value))?;
    let z = merge_region_vector(w, &region, &accum);
    finalize_vector(w, mask, z, replace);
    Ok(())
}

/// The assigned region as sorted `(output index, optional value)` pairs.
/// `None` values mean "the input has no entry here" (deletion without
/// accumulator).
fn build_vector_region<T: Scalar>(
    ix: &Indices,
    n: IndexType,
    value_at: impl Fn(IndexType) -> Option<T>,
) -> Result<Vec<(IndexType, Option<T>)>> {
    let mut region: Vec<(IndexType, Option<T>)> =
        ix.iter(n).map(|(k, out_i)| (out_i, value_at(k))).collect();
    region.sort_unstable_by_key(|&(i, _)| i);
    if region.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(GblasError::invalid(
            "assign: duplicate output index in index list",
        ));
    }
    Ok(region)
}

/// `Z = C` outside the region; region semantics inside.
fn merge_region_vector<T: Scalar, A: Accum<T>>(
    c: &Vector<T>,
    region: &[(IndexType, Option<T>)],
    accum: &A,
) -> Vector<T> {
    let mut indices = Vec::with_capacity(c.nvals() + region.len());
    let mut values = Vec::with_capacity(c.nvals() + region.len());
    let mut ci = c.iter().peekable();
    let mut ri = region.iter().copied().peekable();
    loop {
        enum Slot<T> {
            COnly(T),
            Region(Option<T>, Option<T>), // (c value, t value)
        }
        let (i, slot) = match (ci.peek().copied(), ri.peek().copied()) {
            (Some((i, cv)), Some((j, tv))) => {
                if i == j {
                    ci.next();
                    ri.next();
                    (i, Slot::Region(Some(cv), tv))
                } else if i < j {
                    ci.next();
                    (i, Slot::COnly(cv))
                } else {
                    ri.next();
                    (j, Slot::Region(None, tv))
                }
            }
            (Some((i, cv)), None) => {
                ci.next();
                (i, Slot::COnly(cv))
            }
            (None, Some((j, tv))) => {
                ri.next();
                (j, Slot::Region(None, tv))
            }
            (None, None) => break,
        };
        let out = match slot {
            Slot::COnly(cv) => Some(cv),
            Slot::Region(cv, tv) => {
                if accum.is_active() {
                    match (cv, tv) {
                        (Some(c0), Some(t0)) => Some(accum.accum(c0, t0)),
                        (Some(c0), None) => Some(c0),
                        (None, Some(t0)) => Some(t0),
                        (None, None) => None,
                    }
                } else {
                    tv // region pattern replaced (None deletes)
                }
            }
        };
        if let Some(v) = out {
            indices.push(i);
            values.push(v);
        }
    }
    Vector::from_sorted_entries(c.size(), indices, values)
}

/// `C⟨M, z⟩(i, j) = C(i, j) ⊙ A` — assign matrix `a` into the region
/// `rows × cols` of `c`.
pub fn assign_matrix<T, Mk, A>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    a: &Matrix<T>,
    rows: &Indices,
    cols: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
{
    rows.validate(c.nrows())?;
    cols.validate(c.ncols())?;
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    let (rn, cn) = (rows.len(c.nrows()), cols.len(c.ncols()));
    if a.shape() != (rn, cn) {
        return Err(GblasError::dim(format!(
            "assign: A is {:?}, region is ({rn}, {cn})",
            a.shape()
        )));
    }
    assign_matrix_impl(c, mask, accum, rows, cols, replace, |r, region_cols| {
        let (a_cols, a_vals) = a.row(r);
        region_cols
            .iter()
            .map(|&(out_j, k)| {
                let v = a_cols.binary_search(&k).ok().map(|p| a_vals[p]);
                (out_j, v)
            })
            .collect()
    })
}

/// `C⟨M, z⟩(i, j) = C(i, j) ⊙ val` — assign a constant into a region.
pub fn assign_matrix_constant<T, Mk, A>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    value: T,
    rows: &Indices,
    cols: &Indices,
    replace: Replace,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
{
    rows.validate(c.nrows())?;
    cols.validate(c.ncols())?;
    check_matrix_mask(mask, c.nrows(), c.ncols())?;
    assign_matrix_impl(c, mask, accum, rows, cols, replace, |_r, region_cols| {
        region_cols
            .iter()
            .map(|&(out_j, _)| (out_j, Some(value)))
            .collect()
    })
}

/// Shared machinery: `region_row(r, cols)` yields the region's entries
/// for region-row `r` as sorted `(output col, optional value)`.
fn assign_matrix_impl<T, Mk, A, F>(
    c: &mut Matrix<T>,
    mask: &Mk,
    accum: A,
    rows: &Indices,
    cols: &Indices,
    replace: Replace,
    region_row: F,
) -> Result<()>
where
    T: Scalar,
    Mk: MatrixMask + ?Sized,
    A: Accum<T>,
    F: Fn(IndexType, &[(IndexType, IndexType)]) -> Vec<(IndexType, Option<T>)>,
{
    // Map: output row -> region row index.
    let mut row_of: Vec<Option<IndexType>> = vec![None; c.nrows()];
    for (r, out_i) in rows.iter(c.nrows()) {
        if row_of[out_i].is_some() {
            return Err(GblasError::invalid(
                "assign: duplicate output row in index list",
            ));
        }
        row_of[out_i] = Some(r);
    }
    // Region columns as sorted (output col, region col) pairs.
    let mut region_cols: Vec<(IndexType, IndexType)> =
        cols.iter(c.ncols()).map(|(k, out_j)| (out_j, k)).collect();
    region_cols.sort_unstable_by_key(|&(j, _)| j);
    if region_cols.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(GblasError::invalid(
            "assign: duplicate output column in index list",
        ));
    }

    let nrows = c.nrows();
    let mut z_rows: Vec<Vec<(IndexType, T)>> = Vec::with_capacity(nrows);
    #[allow(clippy::needless_range_loop)] // row_of and c.row share the index
    for i in 0..nrows {
        let (c_cols, c_vals) = c.row(i);
        match row_of[i] {
            None => {
                // Outside the row region: Z row = C row.
                z_rows.push(c_cols.iter().copied().zip(c_vals.iter().copied()).collect());
            }
            Some(r) => {
                let t_entries = region_row(r, &region_cols);
                z_rows.push(merge_region_row(c_cols, c_vals, &t_entries, &accum));
            }
        }
    }
    let z = Matrix::from_rows(nrows, c.ncols(), z_rows);
    finalize_matrix(c, mask, z, replace);
    Ok(())
}

fn merge_region_row<T: Scalar, A: Accum<T>>(
    c_cols: &[IndexType],
    c_vals: &[T],
    region: &[(IndexType, Option<T>)],
    accum: &A,
) -> Vec<(IndexType, T)> {
    let mut out = Vec::with_capacity(c_cols.len() + region.len());
    let (mut p, mut q) = (0, 0);
    loop {
        let (j, cv, in_region, tv) = if p < c_cols.len() && q < region.len() {
            let (cc, (rc, rv)) = (c_cols[p], region[q]);
            if cc == rc {
                p += 1;
                q += 1;
                (cc, Some(c_vals[p - 1]), true, rv)
            } else if cc < rc {
                p += 1;
                (cc, Some(c_vals[p - 1]), false, None)
            } else {
                q += 1;
                (rc, None, true, rv)
            }
        } else if p < c_cols.len() {
            p += 1;
            (c_cols[p - 1], Some(c_vals[p - 1]), false, None)
        } else if q < region.len() {
            q += 1;
            let (rc, rv) = region[q - 1];
            (rc, None, true, rv)
        } else {
            break;
        };
        let v = if !in_region {
            cv
        } else if accum.is_active() {
            match (cv, tv) {
                (Some(c0), Some(t0)) => Some(accum.accum(c0, t0)),
                (Some(c0), None) => Some(c0),
                (None, t0) => t0,
            }
        } else {
            tv
        };
        if let Some(v) = v {
            out.push((j, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::NoMask;
    use crate::ops::accum::{Accumulate, NoAccumulate};
    use crate::ops::binary::Plus;
    use crate::views::{MERGE, REPLACE};

    fn v(pairs: &[(usize, i32)]) -> Vector<i32> {
        Vector::from_pairs(5, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn constant_assign_all_indices() {
        // page_rank[:] = 1/rows (Fig. 7 line 13)
        let mut w = Vector::<f64>::new(4);
        assign_vector_constant(&mut w, &NoMask, NoAccumulate, 0.25, &Indices::All, MERGE).unwrap();
        assert_eq!(w.to_dense(0.0), vec![0.25; 4]);
        assert_eq!(w.nvals(), 4);
    }

    #[test]
    fn masked_constant_assign_is_bfs_levels_step() {
        // levels[frontier][:] = depth (Fig. 2b line 5): masked, merge.
        let mut levels = v(&[(0, 1)]);
        let frontier = v(&[(2, 1), (4, 1)]);
        assign_vector_constant(
            &mut levels,
            &frontier,
            NoAccumulate,
            2,
            &Indices::All,
            MERGE,
        )
        .unwrap();
        assert_eq!(levels, v(&[(0, 1), (2, 2), (4, 2)]));
    }

    #[test]
    fn assign_outside_region_preserved_without_accum() {
        // Entries outside the index region must survive un-accumulated
        // assigns — this is what distinguishes assign from plain writes.
        let mut w = v(&[(0, 7), (4, 9)]);
        let u = Vector::from_pairs(2, [(0usize, 100i32)]).unwrap();
        assign_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::List(vec![1, 2]),
            MERGE,
        )
        .unwrap();
        // Region {1, 2}: position 1 ← 100, position 2 ← deleted (u empty
        // there, but it had no entry anyway). 0 and 4 untouched.
        assert_eq!(w, v(&[(0, 7), (1, 100), (4, 9)]));
    }

    #[test]
    fn region_pattern_replaced_without_accum() {
        let mut w = v(&[(1, 7), (2, 8)]);
        let u = Vector::from_pairs(2, [(0usize, 50i32)]).unwrap(); // entry for region pos 0 only
        assign_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::List(vec![1, 2]),
            MERGE,
        )
        .unwrap();
        // Position 1 ← 50; position 2 deleted (region replaced, u empty there).
        assert_eq!(w, v(&[(1, 50)]));
    }

    #[test]
    fn region_union_with_accum() {
        let mut w = v(&[(1, 7), (2, 8)]);
        let u = Vector::from_pairs(2, [(0usize, 50i32)]).unwrap();
        assign_vector(
            &mut w,
            &NoMask,
            Accumulate(Plus::<i32>::new()),
            &u,
            &Indices::List(vec![1, 2]),
            MERGE,
        )
        .unwrap();
        assert_eq!(w, v(&[(1, 57), (2, 8)]));
    }

    #[test]
    fn range_indices_are_python_slices() {
        // w[1:4] = u
        let mut w = v(&[(0, 1)]);
        let u = Vector::from_dense(&[10, 20, 30]);
        assign_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::Range(1, 4),
            MERGE,
        )
        .unwrap();
        assert_eq!(w, v(&[(0, 1), (1, 10), (2, 20), (3, 30)]));
    }

    #[test]
    fn duplicate_indices_rejected() {
        let mut w = v(&[]);
        let u = Vector::from_dense(&[1, 2]);
        assert!(assign_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::List(vec![3, 3]),
            MERGE
        )
        .is_err());
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut w = v(&[]);
        let u = Vector::from_dense(&[1, 2, 3]);
        assert!(assign_vector(
            &mut w,
            &NoMask,
            NoAccumulate,
            &u,
            &Indices::Range(0, 2),
            MERGE
        )
        .is_err());
    }

    #[test]
    fn matrix_submatrix_assign() {
        // C[2:4, 2:4] = A (Sec. IV's example)
        let mut c = Matrix::<i32>::new(4, 4);
        c.set(0, 0, 1).unwrap();
        c.set(3, 3, 2).unwrap();
        let a = Matrix::from_dense(&[vec![10, 20], vec![30, 40]]).unwrap();
        assign_matrix(
            &mut c,
            &NoMask,
            NoAccumulate,
            &a,
            &Indices::Range(2, 4),
            &Indices::Range(2, 4),
            MERGE,
        )
        .unwrap();
        assert_eq!(c.get(0, 0), Some(1)); // outside region
        assert_eq!(c.get(2, 2), Some(10));
        assert_eq!(c.get(2, 3), Some(20));
        assert_eq!(c.get(3, 2), Some(30));
        assert_eq!(c.get(3, 3), Some(40)); // region overwrites old 2
    }

    #[test]
    fn matrix_constant_assign_with_mask_and_replace() {
        let mut c = Matrix::from_triples(2, 2, [(0usize, 0usize, 1i32), (1, 1, 2)]).unwrap();
        let mask = Matrix::from_triples(2, 2, [(0usize, 0usize, true), (0, 1, true)]).unwrap();
        assign_matrix_constant(
            &mut c,
            &mask,
            NoAccumulate,
            9,
            &Indices::All,
            &Indices::All,
            REPLACE,
        )
        .unwrap();
        // Masked-in positions get 9; (1,1) masked out + replace → deleted.
        assert_eq!(c.get(0, 0), Some(9));
        assert_eq!(c.get(0, 1), Some(9));
        assert_eq!(c.get(1, 1), None);
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn matrix_assign_with_index_lists_permutes() {
        let mut c = Matrix::<i32>::new(3, 3);
        let a = Matrix::from_dense(&[vec![1, 2], vec![3, 4]]).unwrap();
        assign_matrix(
            &mut c,
            &NoMask,
            NoAccumulate,
            &a,
            &Indices::List(vec![2, 0]),
            &Indices::List(vec![1, 0]),
            MERGE,
        )
        .unwrap();
        // A[0][0]=1 → C[2][1]; A[0][1]=2 → C[2][0]; A[1][0]=3 → C[0][1]; A[1][1]=4 → C[0][0]
        assert_eq!(c.get(2, 1), Some(1));
        assert_eq!(c.get(2, 0), Some(2));
        assert_eq!(c.get(0, 1), Some(3));
        assert_eq!(c.get(0, 0), Some(4));
    }
}
