//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's
//! property tests use: range/`any` strategies, character-class string
//! patterns, tuple composition, `prop_map`, sized collections, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Cases are
//! driven by a seeded deterministic generator; the case count comes
//! from `PROPTEST_CASES` (default 64) and the base seed from
//! `PROPTEST_SEED`, so failures reproduce exactly by re-running the
//! same binary with the same environment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng, StdRng};

/// The per-test random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The raw 64-bit stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform `usize` in `[0, bound)` (`bound` ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — draw another case.
    Reject,
}

impl TestCaseError {
    /// A failure with `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator: proptest's `Strategy`, minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-`value` strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + frac * (self.end - self.start)
    }
}

/// Uniform values of the whole domain of `T` — proptest's `any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The [`any`] strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can produce.
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across magnitudes: mantissa in [-1, 1) times a
        // bounded power of two. Property tests here need exact algebra
        // on finite floats, not NaN/infinity fuzzing.
        let mant = (rng.next_u64() >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
        let exp = (rng.next_u64() % 41) as i32 - 20;
        mant * (exp as f64).exp2()
    }
}

// Tuple strategies, by composition.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// String patterns: a &str literal is a strategy for strings matching a
/// single `[class]{m,n}` character-class pattern (or a literal string
/// when no class syntax is present) — the subset of proptest's regex
/// strategies this workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    if !bytes.contains(&b'[') {
        return pattern.to_string();
    }
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            out.push(bytes[i] as char);
            i += 1;
            continue;
        }
        // Parse the class.
        let close = pattern[i..]
            .find(']')
            .map(|p| p + i)
            .expect("unterminated character class in pattern");
        let mut class = Vec::new();
        let inner = &bytes[i + 1..close];
        let mut j = 0;
        while j < inner.len() {
            if j + 2 < inner.len() && inner[j + 1] == b'-' {
                for c in inner[j]..=inner[j + 2] {
                    class.push(c as char);
                }
                j += 3;
            } else {
                class.push(inner[j] as char);
                j += 1;
            }
        }
        assert!(!class.is_empty(), "empty character class in pattern");
        i = close + 1;
        // Optional {m,n} / {n} repetition.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = pattern[i..]
                .find('}')
                .map(|p| p + i)
                .expect("unterminated repetition in pattern");
            let body = &pattern[i + 1..close];
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repetition"),
                    b.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = lo + rng.below(hi - lo + 1);
        for _ in 0..len {
            out.push(class[rng.below(class.len())]);
        }
    }
    out
}

/// Sized collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Lengths a collection strategy may produce.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end || r.start == 0, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    /// `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` with keys from `key` and values from `value`. The
    /// size is a target: duplicate keys collapse, like upstream.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The [`btree_map`] strategy.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// `BTreeSet` of values from `element`; size is a target as above.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`btree_set`] strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a — stable per-test seed derivation from the test name.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive `case` over the configured number of generated cases.
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let base_seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed);
    let mut rng = TestRng::from_seed(base_seed ^ fnv1a(name));
    let mut passed = 0u64;
    let mut rejected = 0u64;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 16,
                    "property '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed after {passed} passing case(s): {msg}\n\
                     (rerun with PROPTEST_SEED={base_seed} to reproduce)"
                );
            }
        }
    }
}

/// Declare property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                #[allow(unused_mut)]
                let mut __case = || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}\n  {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            )));
        }
    }};
}

/// Reject the current inputs (draw another case) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation_matches_class_and_length() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = generate_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = generate_pattern("[a-zA-Z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
        assert_eq!(generate_pattern("literal", &mut rng), "literal");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = collection::vec(0usize..10, 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            let m = collection::btree_map(0usize..10, -5i64..5, 0..8).generate(&mut rng);
            assert!(m.len() < 8);
            assert!(m.keys().all(|&k| k < 10));
            let s = collection::btree_set(0usize..4, 0..10).generate(&mut rng);
            assert!(s.len() <= 4); // dedup caps below the target
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(a in 0usize..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
