//! The dynamically-typed `Matrix` container — PyGB's `gb.Matrix`.
//!
//! A `Matrix` is a cheap-to-clone handle (`Arc` + copy-on-write) around
//! a dtype-tagged store. Clones share storage until one side writes,
//! which is how deferred expressions can snapshot operands without
//! copying — the Rust analog of Python's reference semantics.

use std::sync::Arc;

use crate::dtype::DType;
use crate::error::{PygbError, Result};
use crate::expr::{MatOperand, MatrixExpr, TransposedMatrix, VectorExpr};
use crate::store::{Element, MatrixStore};
use crate::target::MatrixAssign;
use crate::value::DynScalar;
use crate::vector::Vector;

/// A sparse matrix with a runtime dtype.
#[derive(Clone, Debug)]
pub struct Matrix {
    pub(crate) store: Arc<MatrixStore>,
}

impl PartialEq for Matrix {
    /// Value equality. Reads through the nonblocking resolution map, so
    /// comparing a deferred container flushes it first.
    fn eq(&self, other: &Matrix) -> bool {
        *self.read_store() == *other.read_store()
    }
}

impl Matrix {
    /// An empty matrix — `gb.Matrix(shape=(r, c), dtype=...)`.
    pub fn new(nrows: usize, ncols: usize, dtype: DType) -> Matrix {
        Matrix {
            store: Arc::new(MatrixStore::new(nrows, ncols, dtype)),
        }
    }

    /// Construction from dense row data, storing every element —
    /// `gb.Matrix([[1, 2, 3], [4, 5, 6]])` (Fig. 3a).
    pub fn from_dense<T: Element>(rows: &[Vec<T>]) -> Result<Matrix> {
        let m = gbtl::Matrix::from_dense(rows)?;
        Ok(Matrix {
            store: Arc::new(T::wrap_matrix(m)),
        })
    }

    /// Construction from coordinate data —
    /// `gb.Matrix((vals, (row_idx, col_idx)), shape=(r, c))` (Fig. 3a).
    pub fn from_coo<T: Element>(
        vals: &[T],
        row_idx: &[usize],
        col_idx: &[usize],
        shape: (usize, usize),
    ) -> Result<Matrix> {
        if vals.len() != row_idx.len() || vals.len() != col_idx.len() {
            return Err(PygbError::Graphblas(gbtl::GblasError::invalid(format!(
                "COO arrays disagree: {} values, {} rows, {} cols",
                vals.len(),
                row_idx.len(),
                col_idx.len()
            ))));
        }
        let triples = row_idx
            .iter()
            .zip(col_idx)
            .zip(vals)
            .map(|((&i, &j), &v)| (i, j, v));
        Self::from_triples(shape.0, shape.1, triples)
    }

    /// Construction from `(row, col, value)` triples of a concrete type.
    pub fn from_triples<T: Element>(
        nrows: usize,
        ncols: usize,
        triples: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> Result<Matrix> {
        let m = gbtl::Matrix::from_triples(nrows, ncols, triples)?;
        Ok(Matrix {
            store: Arc::new(T::wrap_matrix(m)),
        })
    }

    /// Construction from boxed triples — the *interpreted* path (per
    /// element dynamic dispatch), used by the Fig. 11 experiment. The
    /// dtype defaults to `fp64` if any value is floating, else `int64`
    /// (Section V's Python defaults).
    pub fn from_triples_dyn(
        nrows: usize,
        ncols: usize,
        triples: &[(usize, usize, DynScalar)],
        dtype: Option<DType>,
    ) -> Result<Matrix> {
        let dtype = dtype.unwrap_or_else(|| {
            if triples.iter().any(|&(_, _, v)| v.dtype().is_float()) {
                DType::DEFAULT_FLOAT
            } else {
                DType::DEFAULT_INT
            }
        });
        let store = MatrixStore::from_dyn_triples(nrows, ncols, triples, dtype)?;
        Ok(Matrix {
            store: Arc::new(store),
        })
    }

    pub(crate) fn from_store(store: MatrixStore) -> Matrix {
        Matrix {
            store: Arc::new(store),
        }
    }

    /// Wrap a statically-typed `gbtl` matrix (zero-copy move).
    pub fn from_typed<T: Element>(m: gbtl::Matrix<T>) -> Matrix {
        Matrix::from_store(T::wrap_matrix(m))
    }

    /// Clone out the statically-typed `gbtl` matrix, if the dtype
    /// matches `T`.
    pub fn to_typed<T: Element>(&self) -> Option<gbtl::Matrix<T>> {
        T::unwrap_matrix(&self.read_store()).cloned()
    }

    /// The store with any deferred operation resolved — the read path
    /// for every data accessor (GraphBLAS flush-on-read). Panics if a
    /// deferred operation failed; use [`Matrix::settle`] to surface the
    /// error as a value instead.
    fn read_store(&self) -> Arc<MatrixStore> {
        crate::nb::resolved_mat(&self.store)
            .unwrap_or_else(|e| panic!("deferred PyGB operation failed at flush: {e}"))
    }

    /// Replace a deferred placeholder with its computed store, flushing
    /// if necessary. No-op in blocking mode. Call this before handing
    /// the container to another thread or before using [`Matrix::store`]
    /// in nonblocking code.
    pub fn settle(&mut self) -> Result<()> {
        let resolved = crate::nb::resolved_mat(&self.store)?;
        if !Arc::ptr_eq(&resolved, &self.store) {
            self.store = resolved;
        }
        Ok(())
    }

    /// Evaluate an expression into a *new* container — the `C = A @ B`
    /// form that loses the old reference (Sec. IV). The dtype is the
    /// promotion of the operand dtypes.
    pub fn from_expr(expr: MatrixExpr) -> Result<Matrix> {
        let (nrows, ncols) = expr.result_shape();
        let mut out = Matrix::new(nrows, ncols, expr.result_dtype());
        crate::dispatch::eval_matrix(&mut out, None, None, None, None, expr)?;
        Ok(out)
    }

    /// `(nrows, ncols)` — `m.shape`.
    pub fn shape(&self) -> (usize, usize) {
        (self.store.nrows(), self.store.ncols())
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.store.nrows()
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.store.ncols()
    }

    /// Stored element count — `m.nvals`. Terminating: flushes deferred
    /// work feeding this container.
    pub fn nvals(&self) -> usize {
        self.read_store().nvals()
    }

    /// The runtime dtype.
    pub fn dtype(&self) -> DType {
        self.store.dtype()
    }

    /// Boxed element access. Terminating: flushes deferred work feeding
    /// this container.
    pub fn get(&self, i: usize, j: usize) -> Option<DynScalar> {
        self.read_store().get(i, j)
    }

    /// Boxed element write (copy-on-write if the store is shared).
    pub fn set(&mut self, i: usize, j: usize, v: impl Into<DynScalar>) -> Result<()> {
        self.settle()?;
        Arc::make_mut(&mut self.store).set(i, j, v.into())?;
        Ok(())
    }

    /// Apply a batch of streamed edge mutations in place (`Some` val
    /// inserts/overwrites, `None` deletes; last write to a coordinate
    /// wins). One-shot form of [`crate::StreamingMatrix`]: the batch
    /// is analyzer-validated, applied through the hypersparse delta
    /// layer, and settled immediately — `O(nnz + batch)` splice, never
    /// an `O(nnz log nnz)` rebuild. Copy-on-write: clones of this
    /// handle keep the pre-update graph.
    pub fn update_edges(&mut self, batch: &[crate::stream::EdgeUpdate]) -> Result<()> {
        let mut streaming = crate::stream::StreamingMatrix::from_matrix(self)?;
        streaming.update_edges(batch)?; // analyzer-validated inside
        *self = streaming.into_matrix();
        Ok(())
    }

    /// Remove every stored element, keeping shape and dtype.
    pub fn clear(&mut self) {
        let (r, c) = self.shape();
        let dtype = self.dtype();
        self.store = Arc::new(MatrixStore::new(r, c, dtype));
    }

    /// A deep, independent duplicate (`m.dup()` in GraphBLAS APIs).
    /// Plain `clone()` is a cheap copy-on-write handle; `dup` severs
    /// the sharing immediately.
    pub fn dup(&self) -> Matrix {
        Matrix {
            store: Arc::new((*self.read_store()).clone()),
        }
    }

    /// A copy cast to another dtype.
    pub fn cast(&self, dtype: DType) -> Matrix {
        Matrix {
            store: Arc::new(self.read_store().cast(dtype)),
        }
    }

    /// Extract all stored triples (the `extractTuples` round-trip of
    /// Fig. 11). Terminating: flushes deferred work feeding this
    /// container.
    pub fn extract_triples(&self) -> Vec<(usize, usize, DynScalar)> {
        self.read_store().extract_triples_dyn()
    }

    /// Transposed view — `m.T`.
    pub fn t(&self) -> TransposedMatrix {
        TransposedMatrix {
            store: Arc::clone(&self.store),
        }
    }

    /// Borrow the dtype-tagged store (for fused whole-algorithm kernels
    /// that need zero-copy typed access via [`Element::unwrap_matrix`]).
    /// In nonblocking mode call [`Matrix::settle`] first — this borrow
    /// does not read through the deferred-op resolution map.
    pub fn store(&self) -> &MatrixStore {
        &self.store
    }

    /// Take the store out for kernel mutation (avoids a copy when the
    /// handle is unshared; clones a shared store — copy-on-write).
    pub(crate) fn take_store(&mut self) -> MatrixStore {
        let old = std::mem::replace(&mut self.store, Arc::new(MatrixStore::placeholder()));
        Arc::try_unwrap(old).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Put a (possibly mutated) store back.
    pub(crate) fn put_store(&mut self, store: MatrixStore) {
        self.store = Arc::new(store);
    }

    pub(crate) fn operand(&self) -> MatOperand {
        MatOperand {
            store: Arc::clone(&self.store),
            transposed: false,
        }
    }

    // --- expression builders (right-hand sides) ---

    /// `A @ B` — matrix-matrix multiply expression (semiring from
    /// context, captured now).
    pub fn matmul(&self, rhs: impl crate::expr::MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::mxm(self.operand(), rhs.into_operand())
    }

    /// `A @ u` — matrix-vector multiply expression.
    pub fn mxv(&self, u: &Vector) -> VectorExpr {
        VectorExpr::mxv(self.operand(), u.store_arc())
    }

    /// `A + B` — eWiseAdd expression (also available as `&a + &b`).
    pub fn ewise_add(&self, rhs: impl crate::expr::MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::ewise_add(self.operand(), rhs.into_operand())
    }

    /// `A * B` — eWiseMult expression (also available as `&a * &b`).
    pub fn ewise_mult(&self, rhs: impl crate::expr::MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::ewise_mult(self.operand(), rhs.into_operand())
    }

    /// `A[i, j]` — extract expression.
    pub fn extract(
        &self,
        rows: impl Into<gbtl::Indices>,
        cols: impl Into<gbtl::Indices>,
    ) -> MatrixExpr {
        MatrixExpr::extract(self.operand(), rows.into(), cols.into())
    }

    // --- assignment targets (left-hand sides) ---

    /// `C[None] = ...` — unmasked in-place assignment target.
    pub fn no_mask(&mut self) -> MatrixAssign<'_> {
        MatrixAssign::new(self, None, false)
    }

    /// `C[M] = ...` — masked assignment target (mask coerced to bool).
    pub fn masked(&mut self, mask: &Matrix) -> MatrixAssign<'_> {
        let m = Arc::clone(&mask.store);
        MatrixAssign::new(self, Some(m), false)
    }

    /// `C[~M] = ...` — complemented-mask assignment target.
    pub fn masked_complement(&mut self, mask: &Matrix) -> MatrixAssign<'_> {
        let m = Arc::clone(&mask.store);
        MatrixAssign::new(self, Some(m), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_from_dense() {
        let m = Matrix::from_dense(&[vec![1i64, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.dtype(), DType::Int64);
        assert_eq!(m.nvals(), 9);
        assert_eq!(m.get(1, 2), Some(DynScalar::Int64(6)));
    }

    #[test]
    fn construction_from_coo() {
        // gb.Matrix((vals, (row_idx, col_idx)), shape=(r, c))
        let m = Matrix::from_coo(&[1.0f64, 2.0], &[0, 2], &[1, 0], (3, 3)).unwrap();
        assert_eq!(m.dtype(), DType::Fp64);
        assert_eq!(m.get(2, 0), Some(DynScalar::Fp64(2.0)));
        assert!(Matrix::from_coo(&[1.0f64], &[0, 1], &[0], (2, 2)).is_err());
    }

    #[test]
    fn dyn_construction_infers_dtype() {
        let ints = [(0usize, 0usize, DynScalar::from(1i64))];
        let m = Matrix::from_triples_dyn(1, 1, &ints, None).unwrap();
        assert_eq!(m.dtype(), DType::Int64);
        let floats = [(0usize, 0usize, DynScalar::from(1.5f64))];
        let f = Matrix::from_triples_dyn(1, 1, &floats, None).unwrap();
        assert_eq!(f.dtype(), DType::Fp64);
        let forced = Matrix::from_triples_dyn(1, 1, &floats, Some(DType::Int8)).unwrap();
        assert_eq!(forced.dtype(), DType::Int8);
    }

    #[test]
    fn clones_share_until_write() {
        let mut a = Matrix::from_dense(&[vec![1i32]]).unwrap();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.store, &b.store));
        a.set(0, 0, 9i32).unwrap();
        assert!(!Arc::ptr_eq(&a.store, &b.store));
        assert_eq!(b.get(0, 0), Some(DynScalar::Int32(1))); // snapshot intact
        assert_eq!(a.get(0, 0), Some(DynScalar::Int32(9)));
    }

    #[test]
    fn cast_copies() {
        let m = Matrix::from_dense(&[vec![1.9f64]]).unwrap();
        let i = m.cast(DType::Int32);
        assert_eq!(i.get(0, 0), Some(DynScalar::Int32(1)));
        assert_eq!(m.dtype(), DType::Fp64);
    }

    #[test]
    fn extract_triples_roundtrip() {
        let m = Matrix::from_triples(2, 2, [(0usize, 1usize, 5u8)]).unwrap();
        assert_eq!(m.extract_triples(), vec![(0, 1, DynScalar::UInt8(5))]);
    }
}

impl std::fmt::Display for Matrix {
    /// `repr`-style rendering: shape, dtype, and up to 16 stored
    /// triples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Matrix<{}> {}x{}, {} stored",
            self.dtype(),
            self.nrows(),
            self.ncols(),
            self.nvals()
        )?;
        for (k, (i, j, v)) in self.extract_triples().into_iter().enumerate() {
            if k == 16 {
                return write!(f, "  ...");
            }
            writeln!(f, "  ({i}, {j})  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_lists_triples() {
        let m = Matrix::from_triples(2, 2, [(0usize, 1usize, 2.5f64)]).unwrap();
        let s = m.to_string();
        assert!(s.contains("Matrix<fp64> 2x2, 1 stored"));
        assert!(s.contains("(0, 1)  2.5"));
    }

    #[test]
    fn clear_and_dup() {
        let mut m = Matrix::from_dense(&[vec![1i32, 2]]).unwrap();
        let d = m.dup();
        assert!(!Arc::ptr_eq(&m.store, &d.store)); // severed immediately
        m.clear();
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.dtype(), DType::Int32);
        assert_eq!(d.nvals(), 2); // dup unaffected
    }
}
